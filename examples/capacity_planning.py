"""Capacity planning: forecasting workload and exploring the QoS/cost trade-off.

Beyond driving live scaling decisions, the NHPP workload model is useful for
offline capacity planning: given the fitted intensity, an operator can ask
"what would it cost to promise a 95% warm-start rate next week?" before
committing to an SLA.

This example

1. fits the NHPP model on an Alibaba-cluster-like trace,
2. inspects the model (detected period, goodness of fit via time rescaling,
   expected query volume for the next planning horizon), and
3. sweeps the target hitting probability and reports the projected cost of
   each SLA level on the held-out test window.

Run with::

    python examples/capacity_planning.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    DeterministicPendingTime,
    NHPPModel,
    PlannerConfig,
    ReactiveScaler,
    RobustScaler,
    SimulationConfig,
    generate_alibaba_like_trace,
    replay,
)
from repro.metrics import format_table
from repro.nhpp import ks_statistic_time_rescaling


def main() -> None:
    # 1. Fit the workload model on the first days of an Alibaba-like trace.
    trace = generate_alibaba_like_trace(n_days=3, mean_qps=0.3, seed=11)
    train, test = trace.split(2.0 / 3.0)
    model = NHPPModel(bin_seconds=60.0).fit(train)
    print(f"workload: {trace.n_queries} jobs over {trace.horizon / 86400:.0f} days")
    print(f"detected period: {model.period_seconds / 3600:.1f} hours")

    # 2. Model diagnostics: the time-rescaling KS statistic measures how well
    #    the fitted intensity explains the observed arrivals, and the
    #    integrated intensity forecasts the expected volume.
    statistic, p_value = ks_statistic_time_rescaling(
        np.asarray(train.arrival_times), model.fitted_intensity
    )
    print(f"goodness of fit (time-rescaling KS): statistic={statistic:.3f}, p={p_value:.3f}")
    forecast = model.forecast()
    next_day_volume = forecast.cumulative(86_400.0)
    print(f"expected queries over the next 24 h: {next_day_volume:,.0f}")

    # 3. What does each SLA level cost?  Replay the held-out day with
    #    RobustScaler-HP at several targets and compare against reactive
    #    scaling.
    pending = DeterministicPendingTime(13.0)
    sim_config = SimulationConfig(pending_time=13.0, engine="batched")
    reference = replay(test, ReactiveScaler(), sim_config)

    rows = []
    for target in (0.5, 0.7, 0.9, 0.95):
        scaler = RobustScaler.from_model(
            model,
            pending,
            target=target,
            planner=PlannerConfig(planning_interval=5.0, monte_carlo_samples=300),
            random_state=0,
        )
        result = replay(test, scaler, sim_config)
        rows.append(
            {
                "target_hit_probability": target,
                "achieved_hit_rate": result.hit_rate,
                "rt_avg": result.mean_response_time,
                "relative_cost": result.total_cost / reference.total_cost,
                "extra_cost_hours": (result.total_cost - reference.total_cost) / 3600.0,
            }
        )
    print()
    print(
        format_table(
            rows,
            title="Projected cost of each SLA level on the held-out day",
        )
    )
    print(
        "\nEach additional 'nine' of warm-start probability costs more idle "
        "instance time; the table quantifies that trade-off before any SLA is "
        "promised."
    )


if __name__ == "__main__":
    main()
