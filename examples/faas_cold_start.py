"""FaaS cold-start mitigation: accurate QoS control on a bursty workload.

Function-as-a-Service platforms pay a cold-start penalty whenever an
invocation cannot reuse a warm sandbox.  In the scaling-per-query setting the
same problem appears for every single query, so the operator has to choose a
point on the cost/QoS curve and *hit it accurately*.

This example shows the control accuracy of the three RobustScaler variants on
a bursty workload with a known ground-truth intensity (the paper's Table I
setting, scaled down):

* RobustScaler-HP   — "I want 90% of invocations to find a warm sandbox";
* RobustScaler-RT   — "the average extra latency must stay below 1 second";
* RobustScaler-cost — "each sandbox may idle for at most 2 seconds on average".

Run with::

    python examples/faas_cold_start.py
"""

from __future__ import annotations

from repro.api import run_experiment
from repro.metrics import format_table
from repro.scaling.calibration import calibrate_hit_probability
from repro.config import PlannerConfig, SimulationConfig
from repro.pending import DeterministicPendingTime
from repro.scaling import RobustScaler
from repro.traces import generate_trace_from_intensity


def main() -> None:
    # --- 1. Accuracy of each variant against its own target (Table I style).
    rows = run_experiment(
        "table1",
        {
            "peak_qps": 10.0,
            "period_seconds": 1800.0,
            "horizon_seconds": 4 * 1800.0,
            "target_hp": 0.9,
            "waiting_budget": 1.0,
            "idle_budget": 2.0,
            "seed": 0,
        },
    )
    print(
        format_table(
            rows,
            columns=["variant", "metric", "target_level", "achieved_level"],
            title="Requested vs delivered QoS/cost level on a bursty FaaS workload",
        )
    )

    # --- 2. Calibration: map nominal hitting probabilities to achieved ones
    #        on training data, then pick the nominal level that realizes a
    #        desired actual level (Section VI-C practical guideline).
    # The paper's calibration setting uses hourly bumps peaking near 1000 QPS
    # (see ``paper_scalability_intensity``); a single 30-minute bump with a
    # ~5 QPS peak keeps this example fast while exercising the same code.
    forecast = _small_bump()
    train_trace = generate_trace_from_intensity(
        forecast,
        horizon_seconds=3600.0,
        processing_time_mean=20.0,
        name="faas-train",
        random_state=1,
    )
    pending = DeterministicPendingTime(13.0)

    def factory(nominal: float) -> RobustScaler:
        return RobustScaler(
            forecast,
            pending,
            target=nominal,
            planner=PlannerConfig(planning_interval=5.0, monte_carlo_samples=300),
            random_state=0,
        )

    calibration = calibrate_hit_probability(
        factory,
        train_trace,
        nominal_levels=(0.5, 0.7, 0.9, 0.97),
        simulation_config=SimulationConfig(pending_time=13.0, engine="batched"),
    )
    print()
    print("Calibration curve (nominal -> achieved hit probability):")
    for nominal, achieved in zip(calibration.nominal_levels, calibration.achieved_levels):
        print(f"  nominal {nominal:.2f} -> achieved {achieved:.2f}")
    desired = 0.9
    print(
        f"\nTo actually deliver a {desired:.0%} hit probability, request a nominal "
        f"level of {calibration.nominal_for(desired):.2f}."
    )


def _small_bump():
    """A single-bump intensity (30-minute period, ~5 QPS peak) for fast runs."""
    import numpy as np

    from repro.nhpp.intensity import PiecewiseConstantIntensity
    from repro.traces import beta_bump_intensity

    bin_seconds = 10.0
    times = (np.arange(180) + 0.5) * bin_seconds
    values = beta_bump_intensity(
        times, peak=5.0, period_seconds=1800.0, exponent=20.0, base=0.05
    )
    return PiecewiseConstantIntensity(values, bin_seconds, extrapolation="periodic")


if __name__ == "__main__":
    main()
