"""Quickstart: proactive autoscaling of a scaling-per-query workload.

This example walks through the whole RobustScaler pipeline on a small
synthetic workload:

1. generate a workload trace with a periodic pattern,
2. split it into a training window and a test window,
3. fit the regularized NHPP arrival model on the training window
   (periodicity detection + ADMM),
4. build the RobustScaler-HP policy with a target hitting probability,
5. replay the test window in the scaling-per-query simulator and compare the
   QoS/cost against the purely reactive baseline.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    DeterministicPendingTime,
    NHPPModel,
    PlannerConfig,
    ReactiveScaler,
    RobustScaler,
    SimulationConfig,
    generate_google_like_trace,
    replay,
)
from repro.metrics import format_table, summarize_result


def main() -> None:
    # 1. A Google-cluster-like workload: recurrent spikes every two hours.
    trace = generate_google_like_trace(n_hours=12, mean_qps=0.2, seed=5)
    print(f"workload: {trace.n_queries} queries over {trace.horizon / 3600:.0f} hours")

    # 2. Train on the first 9 hours, evaluate on the last 3.
    train, test = trace.split(0.75)

    # 3. Fit the NHPP arrival model (detects the 2-hour period automatically).
    model = NHPPModel(bin_seconds=60.0).fit(train)
    print(
        f"detected period: {model.period_seconds / 3600:.1f} h, "
        f"ADMM iterations: {model.fit_result.admm.n_iterations}"
    )

    # 4. RobustScaler-HP with a 90% hitting-probability target.  Instances
    #    take 13 seconds to start, which is what makes proactive scaling
    #    worthwhile.
    pending = DeterministicPendingTime(13.0)
    scaler = RobustScaler.from_model(
        model,
        pending,
        target=0.9,
        planner=PlannerConfig(planning_interval=2.0, monte_carlo_samples=500),
        random_state=0,
    )

    # 5. Replay the test window with both policies and compare (the batched
    #    engine is the API default and bit-identical to the reference loop).
    sim_config = SimulationConfig(pending_time=13.0, engine="batched")
    reactive_result = replay(test, ReactiveScaler(), sim_config)
    robust_result = replay(test, scaler, sim_config)

    rows = [
        {"policy": "Reactive (cold start every query)"}
        | summarize_result(reactive_result, reference_cost=reactive_result.total_cost),
        {"policy": scaler.name}
        | summarize_result(robust_result, reference_cost=reactive_result.total_cost),
    ]
    print()
    print(
        format_table(
            rows,
            columns=["policy", "hit_rate", "rt_avg", "relative_cost"],
            title="QoS / cost comparison on the test window",
        )
    )
    print(
        "\nRobustScaler warms instances ahead of predicted arrivals: most queries "
        "hit a ready instance (higher hit_rate, lower rt_avg) at a modest cost "
        "overhead relative to purely reactive scaling."
    )
    print(
        "\nTip: the paper's full experiments are one call away via the "
        "declarative API, e.g.\n"
        '    repro.api.Session(workers=4).experiment("pareto")'
        '.scenario("google").run(scale=0.25)'
    )


if __name__ == "__main__":
    main()
