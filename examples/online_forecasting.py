"""Online operation: rolling NHPP refits and terminal dashboards.

Production autoscalers do not fit their workload model once — they refit it
periodically (the paper suggests roughly every half hour) on a sliding window
of recent arrivals.  This example simulates that control loop:

1. arrivals stream in from a periodic workload;
2. a :class:`~repro.nhpp.online.RollingNHPPForecaster` refits the regularized
   NHPP every 30 simulated minutes;
3. at each refit the example prints the forecast for the next hour and an
   ASCII chart of the recent traffic, which is what an operator dashboard
   would show;
4. at the end, the forecast quality is compared against the naive
   constant-rate (homogeneous Poisson) baseline using AIC.

Run with::

    python examples/online_forecasting.py
"""

from __future__ import annotations

import numpy as np

from repro.config import ADMMConfig, NHPPConfig
from repro.metrics import ascii_series
from repro.nhpp import (
    HomogeneousPoissonModel,
    RollingNHPPForecaster,
    compare_aic,
    NHPPModel,
)
from repro.nhpp.intensity import PiecewiseConstantIntensity
from repro.nhpp.sampling import sample_arrival_times
from repro.traces import beta_bump_intensity
from repro.types import QPSSeries


def _workload_intensity() -> PiecewiseConstantIntensity:
    """Ground truth: a 30-minute cycle peaking around 0.8 queries/second."""
    bin_seconds = 30.0
    times = (np.arange(120) + 0.5) * bin_seconds
    values = beta_bump_intensity(
        times, peak=0.8, period_seconds=1800.0, exponent=8.0, base=0.05
    )
    return PiecewiseConstantIntensity(values, bin_seconds, extrapolation="periodic")


def main() -> None:
    truth = _workload_intensity()
    horizon = 4 * 3600.0
    arrivals = sample_arrival_times(truth, horizon, random_state=3)
    print(f"simulated stream: {arrivals.size} arrivals over {horizon / 3600:.0f} hours")

    forecaster = RollingNHPPForecaster(
        bin_seconds=30.0,
        window_seconds=2.5 * 3600.0,
        refresh_seconds=1800.0,
        config=NHPPConfig(admm=ADMMConfig(max_iterations=120)),
        min_observations=50,
    )

    # Stream the arrivals and refit every 30 minutes of simulated time.
    refit_times = np.arange(1800.0, horizon + 1, 1800.0)
    consumed = 0
    for now in refit_times:
        newly_arrived = arrivals[(arrivals >= (now - 1800.0)) & (arrivals < now)]
        forecaster.observe(newly_arrived)
        consumed += newly_arrived.size
        if forecaster.maybe_refit(now) and forecaster.is_ready:
            expected_next_hour = forecaster.expected_arrivals(now, 3600.0)
            print(
                f"t = {now / 3600.0:4.1f} h | observed so far: {consumed:4d} | "
                f"forecast for the next hour: {expected_next_hour:6.1f} queries"
            )

    # Operator dashboard: recent traffic at one-minute resolution.
    recent = arrivals[arrivals >= horizon - 7200.0] - (horizon - 7200.0)
    counts, _ = np.histogram(recent, bins=np.arange(0, 7201, 60))
    print()
    print(ascii_series(counts, title="Queries per minute over the last two hours"))

    # How much does the NHPP buy over a constant-rate model on this workload?
    series = QPSSeries(
        np.histogram(arrivals, bins=np.arange(0, horizon + 1, 60.0))[0], 60.0
    )
    nhpp = NHPPModel(NHPPConfig(admm=ADMMConfig(max_iterations=150)), bin_seconds=60.0).fit(
        series
    )
    constant = HomogeneousPoissonModel().fit(series)
    comparison = compare_aic(
        np.asarray(series.counts),
        60.0,
        nhpp.fit_result.intensity,
        np.full(series.n_bins, constant.rate),
        dof_b=1,
    )
    print()
    print("Model comparison on the full stream (lower AIC is better):")
    print(f"  regularized NHPP : AIC = {comparison.aic_a:10.1f}")
    print(f"  constant rate    : AIC = {comparison.aic_b:10.1f}")
    winner = "regularized NHPP" if comparison.preferred == "a" else "constant rate"
    print(f"  preferred model  : {winner}")


if __name__ == "__main__":
    main()
