"""Container-registry scenario: comparing autoscalers on a CRS-like workload.

The paper's motivating application is a container registry service (CRS)
where each image-build query gets its own single-use instance.  The workload
is low-volume, noisy, and strongly periodic (working hours on weekdays).

This example reproduces a miniature version of the paper's Fig. 4 Pareto
study on that workload: it sweeps the trade-off parameter of each autoscaler
(Backup Pool, Adaptive Backup Pool, and the three RobustScaler variants) and
prints the resulting (relative cost, hit rate, response time) frontier.

Run with::

    python examples/container_registry.py
"""

from __future__ import annotations

from repro.experiments.base import prepare_workload, trace_defaults
from repro.experiments.pareto import run_single_trace_pareto
from repro.metrics import ParetoPoint, format_table, pareto_frontier
from repro.traces import generate_crs_like_trace


def main() -> None:
    # A two-week CRS-like trace keeps the run short while preserving the
    # weekly/daily structure of the real four-week trace.
    trace = generate_crs_like_trace(n_weeks=2, seed=7)
    print(f"CRS-like workload: {trace.n_queries} queries, mean QPS {trace.mean_qps:.4f}")

    defaults = trace_defaults("crs")
    workload = prepare_workload(
        trace,
        train_fraction=defaults["train_fraction"],
        bin_seconds=defaults["bin_seconds"],
    )
    rows = run_single_trace_pareto(
        trace,
        trace_key="crs",
        workload=workload,
        planning_interval=5.0,
        monte_carlo_samples=300,
        hp_targets=(0.3, 0.6, 0.9),
        pool_sizes=(0, 1, 2, 4),
        adaptive_factors=(25.0, 50.0, 100.0),
        include_rt_variant=True,
        include_cost_variant=False,
    )

    print()
    print(
        format_table(
            rows,
            columns=["scaler", "relative_cost", "hit_rate", "rt_avg"],
            title="Sweep of every autoscaler on the CRS-like test week",
        )
    )

    # Which configurations are Pareto-efficient in (cost, hit-rate) space?
    points = [
        ParetoPoint(cost=row["relative_cost"], qos=row["hit_rate"], label=row["scaler"])
        for row in rows
    ]
    frontier = pareto_frontier(points)
    print()
    print("Pareto-efficient configurations (low cost, high hit rate):")
    for point in frontier:
        print(f"  {point.label:<35} relative_cost={point.cost:.2f} hit_rate={point.qos:.2f}")


if __name__ == "__main__":
    main()
