"""Tests for the multi-tenant fleet subsystem (`repro.fleet`).

Three layers:

* admission policies — pure-function invariants (caps respected, grants
  never exceed demands, priority order, weighted fairness, Jain's index);
* fleet composition — deterministic specs, validation;
* the registered ``fleet`` experiment — isolation/contention semantics,
  serial vs process-pool bit-identity, and journal kill/resume bit-identity.
"""

from __future__ import annotations

import pytest

from repro.api import run_experiment
from repro.exceptions import ValidationError
from repro.fleet import (
    POLICIES,
    CapacityPool,
    FleetSpec,
    ServiceSpec,
    allocate_grants,
    allocate_tick,
    compose_fleet,
    jain_index,
)
from repro.runtime import ScalerSpec, strip_timing
from repro.store import ArtifactStore, list_runs

#: Deliberately tiny fleet: six services over the default three scenarios,
#: capacity squeezed to half the isolated peak so contention is real.
_PARAMS = {
    "n_services": 6,
    "scale": 0.02,
    "seed": 7,
    "tick_seconds": 60.0,
    "capacity_fraction": 0.5,
    "services_per_task": 2,
    "monte_carlo_samples": 40,
    "scaler_kinds": ("bp", "adapbp", "reactive"),
    "policies": ("unconstrained", "hard-cap", "fair-share"),
}


class TestAllocateTick:
    def test_unconstrained_grants_everything(self):
        demands = [5, 0, 3]
        grants = allocate_tick("unconstrained", demands, 2.0, [1, 1, 1], [0, 0, 0])
        assert grants == demands

    def test_none_capacity_means_unconstrained(self):
        for policy in POLICIES:
            grants = allocate_tick(policy, [4, 2], None, [1, 1], [0, 0])
            assert grants == [4, 2]

    @pytest.mark.parametrize("policy", ["hard-cap", "fair-share", "throttle"])
    def test_constrained_invariants(self, policy):
        demands = [7, 0, 3, 12, 1]
        weights = [1.0, 2.0, 1.0, 0.5, 3.0]
        priorities = [1, 0, 2, 0, 1]
        for capacity in (0.0, 1.0, 5.0, 9.0, 23.0, 100.0):
            grants = allocate_tick(policy, demands, capacity, weights, priorities)
            assert all(0 <= g <= d for g, d in zip(grants, demands))
            assert sum(grants) <= int(capacity)

    def test_hard_cap_priority_order(self):
        # Higher priority drains the pool first; ties break by index.
        grants = allocate_tick("hard-cap", [4, 4, 4], 6.0, [1, 1, 1], [0, 2, 0])
        assert grants == [2, 4, 0]

    def test_fair_share_is_work_conserving(self):
        # Everything fits -> everyone fully granted.
        grants = allocate_tick("fair-share", [2, 3], 10.0, [1.0, 1.0], [0, 0])
        assert grants == [2, 3]
        # Under contention the whole budget is handed out.
        grants = allocate_tick("fair-share", [8, 8, 8], 10.0, [1.0, 1.0, 1.0], [0, 0, 0])
        assert sum(grants) == 10

    def test_fair_share_weighted(self):
        # Twice the weight earns (close to) twice the allocation.
        grants = allocate_tick("fair-share", [9, 9], 9.0, [2.0, 1.0], [0, 0])
        assert grants == [6, 3]

    def test_fair_share_spillover(self):
        # A small demand's unused share spills to the hungry tenant.
        grants = allocate_tick("fair-share", [1, 9], 8.0, [1.0, 1.0], [0, 0])
        assert grants == [1, 7]

    def test_throttle_not_work_conserving(self):
        # Static quota capacity*w/sum(w): tenant 0's spare share is NOT
        # redistributed to tenant 1.
        grants = allocate_tick("throttle", [0, 9], 8.0, [1.0, 1.0], [0, 0])
        assert grants == [0, 4]

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValidationError):
            allocate_tick("lottery", [1], 1.0, [1.0], [0])
        with pytest.raises(ValidationError):
            allocate_tick("lottery", [1], None, [1.0], [0])

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValidationError):
            allocate_tick("fair-share", [-1], 1.0, [1.0], [0])
        with pytest.raises(ValidationError):
            allocate_tick("fair-share", [1], 1.0, [0.0], [0])
        with pytest.raises(ValidationError):
            allocate_tick("fair-share", [1, 2], 1.0, [1.0], [0, 0])
        with pytest.raises(ValidationError):
            allocate_tick("fair-share", [1], -1.0, [1.0], [0])

    def test_deterministic(self):
        args = ([3, 9, 4, 7], 11.0, [1.0, 2.0, 1.5, 0.5], [0, 1, 0, 1])
        for policy in POLICIES:
            assert allocate_tick(policy, *args) == allocate_tick(policy, *args)


class TestAllocateGrants:
    def test_schedule_shapes_follow_demands(self):
        demands = [(3, 2, 1), (5, 5)]
        grants = allocate_grants("fair-share", demands, 4.0, [1.0, 1.0], [0, 0])
        assert [len(g) for g in grants] == [3, 2]
        for schedule, demand in zip(grants, demands):
            assert all(0 <= g <= d for g, d in zip(schedule, demand))
        # Per-tick cap holds across the fleet.
        for tick in range(3):
            total = sum(g[tick] for g in grants if tick < len(g))
            assert total <= 4

    def test_identical_tenants_get_identical_grants(self):
        """Jain's index is exactly 1 for identical tenants under max-min.

        Capacity divisible by the tenant count, so the integerized grants
        can be exactly even; with a non-divisible capacity the largest-
        remainder deal-out necessarily leaves a one-unit spread.
        """
        demands = [(6, 4, 8)] * 4
        grants = allocate_grants("fair-share", demands, 12.0, [1.0] * 4, [0] * 4)
        assert len(set(grants)) == 1
        for tick in range(3):
            assert jain_index([g[tick] for g in grants]) == pytest.approx(1.0)
        # Non-divisible capacity: grants stay within one unit of each other.
        uneven = allocate_grants("fair-share", demands, 10.0, [1.0] * 4, [0] * 4)
        for tick in range(3):
            per_tick = [g[tick] for g in uneven]
            assert max(per_tick) - min(per_tick) <= 1
            assert jain_index(per_tick) >= 0.95

    def test_empty_fleet(self):
        assert allocate_grants("fair-share", [], 4.0, [], []) == []


class TestJainIndex:
    def test_even_allocation_is_one(self):
        assert jain_index([3, 3, 3]) == pytest.approx(1.0)

    def test_one_holds_everything(self):
        assert jain_index([9, 0, 0]) == pytest.approx(1.0 / 3.0)

    def test_empty_and_all_zero(self):
        assert jain_index([]) == 1.0
        assert jain_index([0, 0]) == 1.0


class TestFleetSpecs:
    def test_compose_fleet_deterministic(self):
        a = compose_fleet(8, scale=0.05, base_seed=3)
        b = compose_fleet(8, scale=0.05, base_seed=3)
        assert a == b
        assert len(a.services) == 8
        assert len({s.name for s in a.services}) == 8
        # Scaler kinds cycle over the default ("bp", "adapbp", "reactive").
        assert a.services[0].scaler.kind == "bp"
        assert a.services[1].scaler.kind == "adapbp"
        assert a.services[2].scaler.kind == "reactive"

    def test_compose_fleet_requires_scaler_kinds(self):
        with pytest.raises(ValidationError):
            compose_fleet(2, scaler_kinds=())

    def test_pool_validation(self):
        with pytest.raises(ValidationError):
            CapacityPool(capacity=0.5)
        with pytest.raises(ValidationError):
            CapacityPool(policy="lottery")

    def test_fleet_validation(self):
        svc = ServiceSpec(name="a", scenario="steady-state", scaler=ScalerSpec("reactive"))
        with pytest.raises(ValidationError):
            FleetSpec(services=())
        with pytest.raises(ValidationError):
            FleetSpec(services=(svc, svc))  # duplicate names
        with pytest.raises(ValidationError):
            FleetSpec(
                services=(
                    ServiceSpec(
                        name="b",
                        scenario="steady-state",
                        scaler=ScalerSpec("reactive"),
                        pool="nope",
                    ),
                )
            )

    def test_service_validation(self):
        with pytest.raises(ValidationError):
            ServiceSpec(
                name="a", scenario="steady-state", scaler=ScalerSpec("reactive"), weight=0.0
            )
        with pytest.raises(ValidationError):
            ServiceSpec(name="a", scenario="", scaler=ScalerSpec("reactive"))

    def test_members(self):
        fleet = compose_fleet(4, scale=0.05)
        assert fleet.members("default") == (0, 1, 2, 3)


class TestFleetExperiment:
    @pytest.fixture(scope="class")
    def fleet_rows(self) -> list[dict]:
        return run_experiment("fleet", _PARAMS)

    def test_phases_and_policies_covered(self, fleet_rows):
        policies = {row["policy"] for row in fleet_rows}
        assert policies == {"isolation", "unconstrained", "hard-cap", "fair-share"}
        summary = [r for r in fleet_rows if r.get("phase") == "fleet"]
        assert {r["policy"] for r in summary} == set(_PARAMS["policies"])
        services = {r["service"] for r in fleet_rows if r["policy"] == "isolation"}
        assert len(services) == _PARAMS["n_services"]

    def test_unconstrained_matches_isolation(self, fleet_rows):
        """A bottomless pool must be bit-identical to the isolation phase."""
        for row in fleet_rows:
            if row["policy"] != "unconstrained" or row.get("phase") == "fleet":
                continue
            assert row["denied_actions"] == 0
            assert row["hit_rate_delta"] == 0.0
            assert row["cost_delta"] == 0.0
            assert row["grant_ratio"] == pytest.approx(1.0)

    def test_hard_cap_generates_interference(self, fleet_rows):
        capped = [
            r
            for r in fleet_rows
            if r["policy"] == "hard-cap" and r.get("phase") != "fleet"
        ]
        assert sum(r["denied_actions"] for r in capped) > 0
        summary = next(
            r for r in fleet_rows if r.get("phase") == "fleet" and r["policy"] == "hard-cap"
        )
        assert summary["worst_hit_rate_delta"] > 0.0
        assert summary["jain_satisfaction"] < 1.0

    def test_summary_fairness_ordering(self, fleet_rows):
        """Fair-share never does worse on fairness than the hard cap."""
        summary = {
            r["policy"]: r for r in fleet_rows if r.get("phase") == "fleet"
        }
        assert summary["unconstrained"]["jain_satisfaction"] == pytest.approx(1.0, abs=1e-9)
        assert summary["unconstrained"]["denied_actions"] == 0
        assert (
            summary["fair-share"]["jain_satisfaction"]
            >= summary["hard-cap"]["jain_satisfaction"] - 1e-9
        )

    def test_frontier_marked(self, fleet_rows):
        summary = [r for r in fleet_rows if r.get("phase") == "fleet"]
        assert any(r["on_frontier"] for r in summary)

    def test_serial_vs_pooled_bit_identical(self, fleet_rows):
        pooled = run_experiment("fleet", _PARAMS, workers=2)
        assert strip_timing(pooled) == strip_timing(fleet_rows)


class TestFleetResume:
    def test_interrupted_fleet_resumes_bit_identical(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        baseline = run_experiment("fleet", _PARAMS)

        seen = []

        def interrupt(result):
            seen.append(result)
            if len(seen) >= 2:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_experiment(
                "fleet", _PARAMS, store=store, run_id="fleet-r1", on_result=interrupt
            )
        runs = list_runs(store)
        assert runs and runs[0]["run_id"] == "fleet-r1"
        assert 0 < runs[0]["completed"] < runs[0]["total"]

        resumed = run_experiment("fleet", _PARAMS, store=store, run_id="fleet-r1")
        assert strip_timing(resumed) == strip_timing(baseline)
