"""Tests for the deprecation shims of the ``repro.api`` redesign.

Three guarantees, per the one-release compatibility window:

* every legacy ``*ExperimentConfig`` dataclass still constructs and runs,
  emitting exactly one :class:`DeprecationWarning` per construction;
* the legacy implicit engine paths (``create_simulator`` with no engine
  chosen, direct ``ScalingPerQuerySimulator`` construction) warn exactly
  once while preserving their historical behavior — and the escape hatch
  ``engine="reference"`` stays warning-free;
* rows produced through a legacy config are bit-identical to the new
  ``Session`` path (and the engines themselves are bit-identical, so the
  registry's batched default changes no numbers).
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.api import Session
from repro.config import SimulationConfig
from repro.experiments.ablation import (
    KappaAblationConfig,
    MCSampleAblationConfig,
    RegularizationSensitivityConfig,
    run_kappa_ablation,
    run_mc_sample_ablation,
)
from repro.experiments.control_accuracy import (
    ControlAccuracyExperimentConfig,
    PlanningFrequencyExperimentConfig,
)
from repro.experiments.pareto import ParetoExperimentConfig
from repro.experiments.perturbation import PerturbationExperimentConfig
from repro.experiments.realenv import RealEnvExperimentConfig
from repro.experiments.regularization import (
    RegularizationExperimentConfig,
    run_regularization_experiment,
)
from repro.experiments.robustness import RobustnessExperimentConfig
from repro.experiments.scalability import (
    MCAccuracyExperimentConfig,
    ScalabilityExperimentConfig,
)
from repro.experiments.scenario_sweep import ScenarioSweepConfig
from repro.experiments.variance import VarianceExperimentConfig
from repro.runtime import strip_timing
from repro.simulation import (
    BatchedEventSimulator,
    ScalingPerQuerySimulator,
    create_simulator,
)
from repro.scaling.backup_pool import BackupPoolScaler
from repro.types import ArrivalTrace

#: Every legacy config dataclass the redesign deprecated.
ALL_CONFIGS = [
    ParetoExperimentConfig,
    VarianceExperimentConfig,
    PerturbationExperimentConfig,
    RobustnessExperimentConfig,
    ControlAccuracyExperimentConfig,
    PlanningFrequencyExperimentConfig,
    ScenarioSweepConfig,
    ScalabilityExperimentConfig,
    MCAccuracyExperimentConfig,
    RegularizationExperimentConfig,
    RealEnvExperimentConfig,
    KappaAblationConfig,
    MCSampleAblationConfig,
    RegularizationSensitivityConfig,
]


def _deprecations(record) -> list[warnings.WarningMessage]:
    return [w for w in record if issubclass(w.category, DeprecationWarning)]


class TestConfigDeprecation:
    @pytest.mark.parametrize("config_cls", ALL_CONFIGS, ids=lambda c: c.__name__)
    def test_construction_warns_exactly_once(self, config_cls):
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            config_cls()
        deprecations = _deprecations(record)
        assert len(deprecations) == 1
        message = str(deprecations[0].message)
        assert config_cls.__name__ in message
        assert "repro.api.Session" in message


class TestEngineDeprecation:
    def test_create_simulator_without_engine_warns_once(self):
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            simulator = create_simulator(SimulationConfig(pending_time=5.0))
        assert len(_deprecations(record)) == 1
        # Legacy behavior preserved: the implicit path stays on the
        # reference engine for the deprecation window.
        assert isinstance(simulator, ScalingPerQuerySimulator)

    def test_explicit_engines_do_not_warn(self):
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            reference = create_simulator(SimulationConfig(engine="reference"))
            batched = create_simulator(SimulationConfig(engine="batched"))
        assert _deprecations(record) == []
        assert isinstance(reference, ScalingPerQuerySimulator)
        assert isinstance(batched, BatchedEventSimulator)

    def test_direct_construction_warns_once(self):
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            ScalingPerQuerySimulator(SimulationConfig(pending_time=5.0))
        assert len(_deprecations(record)) == 1

    def test_implicit_engine_rows_match_the_session_default_engine(self):
        """The legacy reference path and the new batched default agree bitwise."""
        trace = ArrivalTrace([1.0, 2.0, 8.0, 30.0], 3.0, horizon=120.0)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            legacy = create_simulator(SimulationConfig(pending_time=5.0)).replay(
                trace, BackupPoolScaler(1)
            )
        batched = create_simulator(
            SimulationConfig(pending_time=5.0, engine="batched")
        ).replay(trace, BackupPoolScaler(1))
        np.testing.assert_array_equal(legacy.hits, batched.hits)
        np.testing.assert_array_equal(legacy.response_times, batched.response_times)
        assert legacy.total_cost == batched.total_cost


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
class TestLegacyRowsBitIdentical:
    """Legacy config entry points produce rows bit-identical to Session."""

    def test_regularization_config_matches_session(self):
        kwargs = dict(
            period_seconds=1800.0, n_periods=3, bin_seconds=60.0, max_iterations=80
        )
        old = run_regularization_experiment(RegularizationExperimentConfig(**kwargs))
        new = Session(store=None).experiment("table3").run(**kwargs)
        assert old == new.rows

    def test_mc_sample_config_matches_session(self):
        kwargs = dict(sample_sizes=(50,), n_trials=3)
        old = run_mc_sample_ablation(MCSampleAblationConfig(**kwargs))
        new = Session(store=None).experiment("mc-sample-ablation").run(**kwargs)
        assert strip_timing(old) == strip_timing(new.rows)

    def test_kappa_config_matches_session_across_engines(self):
        """The old driver replayed on the reference engine; the session
        resolves batched by default — rows must still match bit-for-bit."""
        kwargs = dict(horizon_seconds=900.0, monte_carlo_samples=200)
        old = run_kappa_ablation(KappaAblationConfig(**kwargs))
        new = Session(store=None).experiment("kappa-ablation").run(**kwargs)
        reference = (
            Session(store=None, engine="reference")
            .experiment("kappa-ablation")
            .run(**kwargs)
        )
        assert old == new.rows == reference.rows
        assert new.provenance.engine == "batched"
