"""End-to-end integration tests tying the whole pipeline together.

These tests check the claims that make RobustScaler *RobustScaler*:

* the full pipeline (trace -> periodicity -> NHPP -> forecast -> decisions ->
  replay) runs and beats reactive scaling;
* Proposition 1: under a known NHPP intensity the sequential scheme delivers
  the target hitting probability;
* Proposition 2 (qualitatively): a modest intensity-estimation error shifts
  the achieved hitting probability by a bounded amount;
* robustness: injecting missing data into the training window barely changes
  the decisions made on the test window.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    DeterministicPendingTime,
    NHPPModel,
    PlannerConfig,
    ReactiveScaler,
    RobustScaler,
    SequentialHPScaler,
    SimulationConfig,
    replay,
)
from repro.config import NHPPConfig, ADMMConfig
from repro.nhpp.intensity import PiecewiseConstantIntensity
from repro.nhpp.sampling import sample_arrival_times, sample_homogeneous_arrivals
from repro.traces.perturbation import inject_missing_window
from repro.traces.synthetic import beta_bump_intensity, generate_trace_from_intensity
from repro.types import ArrivalTrace


@pytest.fixture(scope="module")
def bump_intensity() -> PiecewiseConstantIntensity:
    bin_seconds = 30.0
    times = (np.arange(240) + 0.5) * bin_seconds
    values = beta_bump_intensity(
        times, peak=0.6, period_seconds=1800.0, exponent=8.0, base=0.02
    )
    return PiecewiseConstantIntensity(values, bin_seconds, extrapolation="periodic")


@pytest.fixture(scope="module")
def bump_trace(bump_intensity) -> ArrivalTrace:
    return generate_trace_from_intensity(
        bump_intensity,
        7200.0,
        processing_time_mean=15.0,
        name="bump",
        random_state=3,
    )


class TestFullPipeline:
    def test_pipeline_beats_reactive(self, bump_trace):
        train, test = bump_trace.split(0.75)
        config = NHPPConfig(admm=ADMMConfig(max_iterations=150))
        model = NHPPModel(config, bin_seconds=30.0).fit(train)
        pending = DeterministicPendingTime(10.0)
        scaler = RobustScaler.from_model(
            model,
            pending,
            target=0.9,
            planner=PlannerConfig(planning_interval=5.0, monte_carlo_samples=300),
            random_state=0,
        )
        sim = SimulationConfig(pending_time=10.0)
        reactive = replay(test, ReactiveScaler(), sim)
        robust = replay(test, scaler, sim)
        assert robust.hit_rate > 0.5
        assert robust.mean_response_time < reactive.mean_response_time
        # Proactive scaling costs more than reactive but not absurdly so.
        assert robust.total_cost < 5.0 * reactive.total_cost

    def test_decisions_scale_with_load(self, bump_intensity):
        """More instances are created around the intensity peak than in the valley."""
        trace = generate_trace_from_intensity(
            bump_intensity, 3600.0, processing_time_mean=5.0, random_state=7
        )
        pending = DeterministicPendingTime(10.0)
        scaler = RobustScaler(
            bump_intensity,
            pending,
            target=0.9,
            planner=PlannerConfig(planning_interval=5.0, monte_carlo_samples=300),
            random_state=1,
        )
        result = replay(trace, scaler, SimulationConfig(pending_time=10.0))
        creations = np.array(
            [o.instance.creation_time for o in result.outcomes if o.instance.proactive]
        )
        if creations.size >= 10:
            phase = np.mod(creations, 1800.0)
            near_peak = np.count_nonzero(np.abs(phase - 900.0) < 450.0)
            assert near_peak > 0.6 * creations.size


class TestProposition1:
    @pytest.mark.parametrize("target", [0.6, 0.9])
    def test_sequential_scheme_hits_target_under_true_intensity(self, target):
        rate = 0.15
        arrivals = sample_homogeneous_arrivals(rate, 3 * 3600.0, 17)
        trace = ArrivalTrace(arrivals, 10.0, horizon=3 * 3600.0)
        forecast = PiecewiseConstantIntensity(np.array([rate]), 60.0, extrapolation="hold")
        scaler = SequentialHPScaler(
            forecast,
            DeterministicPendingTime(13.0),
            target_hit_probability=target,
            planner=PlannerConfig(monte_carlo_samples=800),
            random_state=5,
        )
        result = replay(trace, scaler, SimulationConfig(pending_time=13.0))
        assert result.hit_rate == pytest.approx(target, abs=0.07)

    def test_hit_rate_under_nonhomogeneous_truth(self, bump_intensity):
        """Proposition 1 for a genuinely non-homogeneous intensity."""
        arrivals = sample_arrival_times(bump_intensity, 7200.0, 23)
        trace = ArrivalTrace(arrivals, 5.0, horizon=7200.0)
        scaler = SequentialHPScaler(
            bump_intensity,
            DeterministicPendingTime(10.0),
            target_hit_probability=0.8,
            planner=PlannerConfig(monte_carlo_samples=800),
            random_state=6,
        )
        result = replay(trace, scaler, SimulationConfig(pending_time=10.0))
        assert result.hit_rate == pytest.approx(0.8, abs=0.08)


class TestProposition2:
    def test_intensity_error_shifts_hit_probability_boundedly(self):
        """A +/-20% intensity error moves the hit rate, but only moderately."""
        rate = 0.15
        target = 0.8
        arrivals = sample_homogeneous_arrivals(rate, 3 * 3600.0, 29)
        trace = ArrivalTrace(arrivals, 10.0, horizon=3 * 3600.0)
        pending = DeterministicPendingTime(13.0)
        sim = SimulationConfig(pending_time=13.0)

        def run(estimated_rate: float) -> float:
            scaler = SequentialHPScaler(
                PiecewiseConstantIntensity(
                    np.array([estimated_rate]), 60.0, extrapolation="hold"
                ),
                pending,
                target_hit_probability=target,
                planner=PlannerConfig(monte_carlo_samples=800),
                random_state=7,
            )
            return replay(trace, scaler, sim).hit_rate

        exact = run(rate)
        overestimate = run(rate * 1.2)
        underestimate = run(rate * 0.8)
        # Overestimating the intensity creates instances earlier -> more hits;
        # underestimating -> fewer hits.  Both stay within a moderate band.
        assert overestimate >= exact - 0.05
        assert underestimate <= exact + 0.05
        assert abs(overestimate - target) < 0.2
        assert abs(underestimate - target) < 0.2


class TestRobustnessToMissingData:
    def test_missing_training_day_changes_little(self, bump_trace):
        train, test = bump_trace.split(0.75)
        pending = DeterministicPendingTime(10.0)
        sim = SimulationConfig(pending_time=10.0)
        config = NHPPConfig(admm=ADMMConfig(max_iterations=150))

        def evaluate(training_trace) -> float:
            model = NHPPModel(config, bin_seconds=30.0).fit(training_trace)
            scaler = RobustScaler.from_model(
                model,
                pending,
                target=0.9,
                planner=PlannerConfig(planning_interval=5.0, monte_carlo_samples=300),
                random_state=2,
            )
            return replay(test, scaler, sim).hit_rate

        baseline = evaluate(train)
        # Erase a contiguous stretch of the training data comparable, in
        # relative terms, to the paper's "one missing day out of three weeks".
        degraded = evaluate(inject_missing_window(train, 1800.0, 450.0))
        assert degraded == pytest.approx(baseline, abs=0.15)
