"""Smoke tests for the ``workloads`` CLI subcommand."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.traces.io import load_trace_csv
from repro.workloads import scenario_names


class TestParser:
    def test_workloads_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["workloads"])

    def test_list_parses(self):
        args = build_parser().parse_args(["workloads", "list"])
        assert args.command == "workloads"
        assert args.workloads_command == "list"

    def test_generate_requires_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["workloads", "generate"])

    def test_sweep_accumulates_scenarios(self):
        args = build_parser().parse_args(
            ["workloads", "sweep", "--scenario", "crs", "--scenario", "google"]
        )
        assert args.scenario == ["crs", "google"]


class TestList:
    def test_lists_all_scenarios(self, capsys):
        assert main(["workloads", "list"]) == 0
        output = capsys.readouterr().out
        for name in scenario_names():
            assert name in output
        assert f"{len(scenario_names())} scenarios registered" in output
        assert len(scenario_names()) >= 10


class TestGenerate:
    def test_prints_summary(self, capsys):
        code = main(
            [
                "workloads",
                "generate",
                "--scenario",
                "flash-crowd",
                "--scale",
                "0.05",
                "--seed",
                "3",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "n_queries" in output
        assert "flash-crowd" in output

    def test_saves_csv_round_trip(self, capsys, tmp_path):
        out = tmp_path / "trace.csv"
        code = main(
            [
                "workloads",
                "generate",
                "--scenario",
                "steady-state",
                "--scale",
                "0.05",
                "--seed",
                "3",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        assert out.exists()
        loaded = load_trace_csv(out)
        assert loaded.n_queries > 0
        assert np.all(np.diff(loaded.arrival_times) >= 0)

    def test_unknown_scenario_fails_cleanly(self, capsys):
        code = main(["workloads", "generate", "--scenario", "nope"])
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestSweep:
    def test_small_sweep_runs_and_is_deterministic(self, capsys):
        argv = [
            "workloads",
            "sweep",
            "--scenario",
            "steady-state",
            "--scale",
            "0.05",
            "--seed",
            "7",
            "--planning-interval",
            "20",
            "--mc-samples",
            "60",
            "--hp-target",
            "0.7",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "RobustScaler-HP" in first
        assert "BP(" in first
        assert "Reactive" in first
        assert "Per-scenario Pareto summary" in first
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_summary_only(self, capsys):
        code = main(
            [
                "workloads",
                "sweep",
                "--scenario",
                "steady-state",
                "--scale",
                "0.05",
                "--mc-samples",
                "60",
                "--planning-interval",
                "20",
                "--hp-target",
                "0.7",
                "--summary-only",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Per-scenario Pareto summary" in output
        assert "Scenario sweep" not in output

    def test_unknown_scenario_fails_cleanly(self, capsys):
        code = main(["workloads", "sweep", "--scenario", "nope"])
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestSimulateRegistryIntegration:
    def test_simulate_accepts_registry_scenario(self, capsys):
        code = main(
            [
                "simulate",
                "--trace",
                "steady-state",
                "--scale",
                "0.05",
                "--scaler",
                "bp",
                "--target",
                "2",
            ]
        )
        assert code == 0
        assert "hit_rate" in capsys.readouterr().out

    def test_simulate_unknown_trace_fails_cleanly(self, capsys):
        code = main(["simulate", "--trace", "nope", "--scaler", "bp", "--target", "1"])
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().err
