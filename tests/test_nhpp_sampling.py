"""Tests for the NHPP samplers."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro.exceptions import ValidationError
from repro.nhpp.intensity import PiecewiseConstantIntensity
from repro.nhpp.sampling import (
    sample_arrival_times,
    sample_counts,
    sample_homogeneous_arrivals,
    sample_next_arrivals,
)


class TestSampleCounts:
    def test_mean_matches_intensity(self):
        intensity = PiecewiseConstantIntensity(np.array([0.5, 2.0]), 100.0)
        totals = [sample_counts(intensity, 200.0, seed).sum() for seed in range(200)]
        assert np.mean(totals) == pytest.approx(250.0, rel=0.05)

    def test_output_length(self):
        intensity = PiecewiseConstantIntensity(np.array([1.0]), 60.0, extrapolation="hold")
        counts = sample_counts(intensity, 300.0, 0)
        assert counts.size == 5

    def test_truncated_last_bin(self):
        intensity = PiecewiseConstantIntensity(np.array([10.0]), 60.0, extrapolation="hold")
        # Horizon of 90 seconds: last bin only covers 30 seconds.
        totals = [sample_counts(intensity, 90.0, seed).sum() for seed in range(300)]
        assert np.mean(totals) == pytest.approx(900.0, rel=0.05)

    def test_deterministic_with_seed(self):
        intensity = PiecewiseConstantIntensity(np.array([1.0, 2.0]), 60.0)
        np.testing.assert_array_equal(
            sample_counts(intensity, 120.0, 5), sample_counts(intensity, 120.0, 5)
        )


class TestSampleArrivalTimes:
    def test_sorted_and_within_horizon(self):
        intensity = PiecewiseConstantIntensity(np.array([0.5]), 60.0, extrapolation="hold")
        arrivals = sample_arrival_times(intensity, 600.0, 1)
        assert np.all(np.diff(arrivals) >= 0)
        assert arrivals.min() >= 0.0
        assert arrivals.max() < 600.0

    def test_zero_intensity_no_arrivals(self):
        intensity = PiecewiseConstantIntensity(np.array([0.0]), 60.0, extrapolation="hold")
        assert sample_arrival_times(intensity, 600.0, 2).size == 0

    def test_count_mean_matches_mass(self):
        intensity = PiecewiseConstantIntensity(np.array([1.0, 3.0]), 50.0)
        counts = [sample_arrival_times(intensity, 100.0, seed).size for seed in range(200)]
        assert np.mean(counts) == pytest.approx(200.0, rel=0.05)

    def test_nonhomogeneous_distribution(self):
        """More arrivals should land in the high-intensity bin."""
        intensity = PiecewiseConstantIntensity(np.array([0.2, 5.0]), 100.0)
        arrivals = sample_arrival_times(intensity, 200.0, 3)
        early = np.count_nonzero(arrivals < 100.0)
        late = arrivals.size - early
        assert late > 5 * early


class TestVectorizedArrivalTimes:
    """The opt-in bulk construction of sample_arrival_times."""

    def test_default_path_draw_order_unchanged(self):
        """The default (loop) path must keep its historical draw order."""
        intensity = PiecewiseConstantIntensity(np.array([0.8, 2.5, 0.3]), 50.0)
        rng = np.random.default_rng(17)
        expected = []
        for b in range(4):
            start = b * 50.0
            width = min((b + 1) * 50.0, 170.0) - start
            rate = float(intensity.value(start + 0.5 * width)) * width
            count = int(rng.poisson(max(rate, 0.0)))
            if count:
                expected.append(start + rng.uniform(0.0, width, size=count))
        expected = np.sort(np.concatenate(expected)) if expected else np.empty(0)
        actual = sample_arrival_times(intensity, 170.0, 17)
        np.testing.assert_array_equal(actual, expected)

    def test_sorted_and_within_truncated_horizon(self):
        intensity = PiecewiseConstantIntensity(np.array([5.0]), 60.0, extrapolation="hold")
        arrivals = sample_arrival_times(intensity, 90.0, 1, vectorized=True)
        assert np.all(np.diff(arrivals) >= 0)
        assert arrivals.min() >= 0.0
        assert arrivals.max() < 90.0

    def test_zero_intensity_no_arrivals(self):
        intensity = PiecewiseConstantIntensity(np.array([0.0]), 60.0, extrapolation="hold")
        assert sample_arrival_times(intensity, 600.0, 2, vectorized=True).size == 0

    def test_count_mean_matches_mass(self):
        intensity = PiecewiseConstantIntensity(np.array([1.0, 3.0]), 50.0)
        counts = [
            sample_arrival_times(intensity, 100.0, seed, vectorized=True).size
            for seed in range(200)
        ]
        assert np.mean(counts) == pytest.approx(200.0, rel=0.05)

    def test_uniform_placement_for_constant_rate(self):
        """Conditionally on the counts, arrivals are uniform — so for a
        constant intensity the pooled sample is uniform on the horizon."""
        intensity = PiecewiseConstantIntensity(np.array([4.0]), 60.0, extrapolation="hold")
        arrivals = sample_arrival_times(intensity, 600.0, 5, vectorized=True)
        result = stats.kstest(arrivals, "uniform", args=(0.0, 600.0))
        assert result.pvalue > 0.01

    def test_nonhomogeneous_distribution(self):
        intensity = PiecewiseConstantIntensity(np.array([0.2, 5.0]), 100.0)
        arrivals = sample_arrival_times(intensity, 200.0, 3, vectorized=True)
        early = np.count_nonzero(arrivals < 100.0)
        late = arrivals.size - early
        assert late > 5 * early

    def test_same_distribution_as_loop_path(self):
        """Loop and bulk construction agree in distribution (not draws)."""
        intensity = PiecewiseConstantIntensity(np.array([1.5, 0.5, 3.0]), 40.0)
        loop = np.concatenate(
            [sample_arrival_times(intensity, 120.0, seed) for seed in range(150)]
        )
        bulk = np.concatenate(
            [
                sample_arrival_times(intensity, 120.0, 1000 + seed, vectorized=True)
                for seed in range(150)
            ]
        )
        result = stats.ks_2samp(loop, bulk)
        assert result.pvalue > 0.01


class TestSampleNextArrivals:
    def test_shape(self):
        intensity = PiecewiseConstantIntensity(np.array([1.0]), 60.0, extrapolation="hold")
        samples = sample_next_arrivals(intensity, 4, 100, 0)
        assert samples.shape == (100, 4)

    def test_rows_increasing(self):
        intensity = PiecewiseConstantIntensity(np.array([0.7]), 60.0, extrapolation="hold")
        samples = sample_next_arrivals(intensity, 5, 50, 1)
        assert np.all(np.diff(samples, axis=1) >= 0)

    def test_first_arrival_exponential_for_constant_rate(self):
        rate = 2.0
        intensity = PiecewiseConstantIntensity(np.array([rate]), 60.0, extrapolation="hold")
        samples = sample_next_arrivals(intensity, 1, 5000, 2)[:, 0]
        result = stats.kstest(samples, "expon", args=(0, 1.0 / rate))
        assert result.pvalue > 0.01

    def test_kth_arrival_gamma_for_constant_rate(self):
        rate = 1.5
        k = 4
        intensity = PiecewiseConstantIntensity(np.array([rate]), 60.0, extrapolation="hold")
        samples = sample_next_arrivals(intensity, k, 5000, 3)[:, k - 1]
        result = stats.kstest(samples, "gamma", args=(k, 0, 1.0 / rate))
        assert result.pvalue > 0.01

    def test_invalid_arguments(self):
        intensity = PiecewiseConstantIntensity(np.array([1.0]), 60.0)
        with pytest.raises(ValidationError):
            sample_next_arrivals(intensity, 0, 10)
        with pytest.raises(ValidationError):
            sample_next_arrivals(intensity, 2, 0)


class TestSampleHomogeneousArrivals:
    def test_zero_rate(self):
        assert sample_homogeneous_arrivals(0.0, 100.0, 0).size == 0

    def test_mean_count(self):
        counts = [sample_homogeneous_arrivals(0.5, 1000.0, seed).size for seed in range(100)]
        assert np.mean(counts) == pytest.approx(500.0, rel=0.05)

    def test_sorted(self):
        arrivals = sample_homogeneous_arrivals(1.0, 500.0, 4)
        assert np.all(np.diff(arrivals) >= 0)
