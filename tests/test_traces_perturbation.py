"""Tests for trace perturbation, missing-data injection, and anomaly removal."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nhpp.sampling import sample_homogeneous_arrivals
from repro.traces.perturbation import (
    inject_missing_window,
    perturb_trace,
    remove_anomalous_bursts,
)
from repro.types import ArrivalTrace


@pytest.fixture
def steady_trace() -> ArrivalTrace:
    arrivals = sample_homogeneous_arrivals(0.05, 4 * 3600.0, 3)
    return ArrivalTrace(arrivals, 10.0, name="steady", horizon=4 * 3600.0)


class TestPerturbTrace:
    def test_deletion_window_emptied(self, steady_trace):
        perturbed = perturb_trace(steady_trace, 0.0, random_state=0)
        phase = np.mod(perturbed.arrival_times, 3600.0)
        assert np.all(phase >= 300.0)

    def test_additions_scale_with_c(self, steady_trace):
        sizes = []
        for c in (0.0, 2.0, 6.0):
            perturbed = perturb_trace(steady_trace, c, random_state=0)
            sizes.append(perturbed.n_queries)
        assert sizes[0] <= sizes[1] <= sizes[2]
        assert sizes[2] > sizes[0]

    def test_original_not_modified(self, steady_trace):
        before = steady_trace.arrival_times.copy()
        perturb_trace(steady_trace, 3.0, random_state=1)
        np.testing.assert_array_equal(steady_trace.arrival_times, before)

    def test_output_sorted_within_horizon(self, steady_trace):
        perturbed = perturb_trace(steady_trace, 4.0, random_state=2)
        assert np.all(np.diff(perturbed.arrival_times) >= 0)
        assert perturbed.arrival_times.max() <= perturbed.horizon

    def test_fractional_c(self, steady_trace):
        whole = perturb_trace(steady_trace, 1.0, random_state=3)
        half = perturb_trace(steady_trace, 0.5, random_state=3)
        base = perturb_trace(steady_trace, 0.0, random_state=3)
        assert base.n_queries <= half.n_queries <= whole.n_queries


class TestInjectMissingWindow:
    def test_removes_all_queries_in_window(self, steady_trace):
        modified = inject_missing_window(steady_trace, 3600.0, 3600.0)
        in_window = (modified.arrival_times >= 3600.0) & (modified.arrival_times < 7200.0)
        assert not np.any(in_window)

    def test_preserves_other_queries(self, steady_trace):
        modified = inject_missing_window(steady_trace, 3600.0, 3600.0)
        outside_before = np.count_nonzero(
            (steady_trace.arrival_times < 3600.0) | (steady_trace.arrival_times >= 7200.0)
        )
        assert modified.n_queries == outside_before

    def test_horizon_preserved(self, steady_trace):
        modified = inject_missing_window(steady_trace, 0.0, 1800.0)
        assert modified.horizon == steady_trace.horizon


class TestRemoveAnomalousBursts:
    def _trace_with_burst(self) -> ArrivalTrace:
        base = sample_homogeneous_arrivals(0.05, 4 * 3600.0, 5)
        burst = 7000.0 + np.sort(np.random.default_rng(6).uniform(0, 300.0, size=400))
        arrivals = np.sort(np.concatenate([base, burst]))
        return ArrivalTrace(arrivals, 10.0, name="bursty", horizon=4 * 3600.0)

    def test_burst_thinned(self):
        trace = self._trace_with_burst()
        cleaned = remove_anomalous_bursts(trace, bin_seconds=300.0, random_state=0)
        before = trace.to_qps_series(300.0).counts
        after_series = cleaned.to_qps_series(300.0)
        after = after_series.counts
        burst_bin = int(np.argmax(before))
        assert after[burst_bin] < before[burst_bin] * 0.2

    def test_regular_traffic_mostly_preserved(self):
        trace = self._trace_with_burst()
        cleaned = remove_anomalous_bursts(trace, bin_seconds=300.0, random_state=0)
        # Only the burst (400 queries) should be removed, give or take.
        removed = trace.n_queries - cleaned.n_queries
        assert removed >= 300
        assert removed <= 450

    def test_empty_trace(self):
        empty = ArrivalTrace([], [], name="empty", horizon=100.0)
        cleaned = remove_anomalous_bursts(empty)
        assert cleaned.n_queries == 0
