"""Tests for the configuration dataclasses."""

from __future__ import annotations

import pytest

from repro.config import (
    ADMMConfig,
    NHPPConfig,
    PeriodicityConfig,
    PlannerConfig,
    RobustScalerConfig,
    SimulationConfig,
    WorkloadModelConfig,
)
from repro.exceptions import ConfigurationError, ValidationError


class TestADMMConfig:
    def test_defaults_valid(self):
        cfg = ADMMConfig()
        assert cfg.rho > 0
        assert cfg.max_iterations >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [{"rho": 0.0}, {"rho": -1.0}, {"max_iterations": 0}, {"tolerance": 0.0}],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            ADMMConfig(**kwargs)


class TestNHPPConfig:
    def test_defaults_valid(self):
        cfg = NHPPConfig()
        assert cfg.beta_smooth >= 0
        assert cfg.beta_period >= 0

    def test_negative_betas_rejected(self):
        with pytest.raises(ValidationError):
            NHPPConfig(beta_smooth=-1.0)
        with pytest.raises(ValidationError):
            NHPPConfig(beta_period=-1.0)

    def test_zero_betas_allowed(self):
        cfg = NHPPConfig(beta_smooth=0.0, beta_period=0.0)
        assert cfg.beta_smooth == 0.0


class TestPeriodicityConfig:
    def test_defaults_valid(self):
        PeriodicityConfig()

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValidationError):
            PeriodicityConfig(max_period_fraction=1.5)

    def test_invalid_aggregation_rejected(self):
        with pytest.raises(ValidationError):
            PeriodicityConfig(aggregation_factor=0)


class TestPlannerConfig:
    def test_defaults_valid(self):
        cfg = PlannerConfig()
        assert cfg.planning_interval > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"planning_interval": 0.0},
            {"monte_carlo_samples": 0},
            {"lookahead_margin": -1.0},
            {"max_plan_horizon": 0.0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            PlannerConfig(**kwargs)


class TestSimulationConfig:
    def test_defaults_valid(self):
        cfg = SimulationConfig()
        assert cfg.pending_time >= 0

    def test_jitter_larger_than_pending_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(pending_time=5.0, pending_time_jitter=6.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValidationError):
            SimulationConfig(scheduling_latency=-1.0)


class TestRobustScalerConfig:
    def test_defaults_valid(self):
        cfg = RobustScalerConfig()
        assert 0 <= cfg.target_hit_probability <= 1

    def test_invalid_hp_rejected(self):
        with pytest.raises(ValidationError):
            RobustScalerConfig(target_hit_probability=1.5)

    def test_with_helpers_return_copies(self):
        cfg = RobustScalerConfig()
        other = cfg.with_target_hit_probability(0.5)
        assert other.target_hit_probability == 0.5
        assert cfg.target_hit_probability == 0.9
        assert cfg.with_target_response_time(3.0).target_response_time == 3.0
        assert cfg.with_cost_budget(7.0).cost_budget == 7.0

    def test_workload_config_nested(self):
        cfg = WorkloadModelConfig(bin_seconds=30.0)
        assert cfg.nhpp.beta_smooth >= 0
        with pytest.raises(ValidationError):
            WorkloadModelConfig(bin_seconds=0.0)
