"""Tests for the synthetic trace generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.traces.synthetic import (
    beta_bump_intensity,
    generate_alibaba_like_trace,
    generate_crs_like_trace,
    generate_google_like_trace,
    generate_trace_from_intensity,
    paper_regularization_intensity,
    paper_scalability_intensity,
)


class TestBetaBumpIntensity:
    def test_peak_at_mid_period(self):
        values = beta_bump_intensity(
            np.array([1800.0]), peak=10.0, period_seconds=3600.0, exponent=40.0, base=0.5
        )
        assert values[0] == pytest.approx(10.5)

    def test_base_at_period_boundary(self):
        values = beta_bump_intensity(
            np.array([0.0, 3600.0]), peak=10.0, period_seconds=3600.0, exponent=40.0, base=0.5
        )
        np.testing.assert_allclose(values, 0.5)

    def test_periodic(self):
        t = np.array([500.0, 4100.0])
        values = beta_bump_intensity(
            t, peak=3.0, period_seconds=3600.0, exponent=10.0, base=0.1
        )
        assert values[0] == pytest.approx(values[1])

    def test_non_negative(self):
        t = np.linspace(0, 7200, 500)
        values = beta_bump_intensity(
            t, peak=5.0, period_seconds=3600.0, exponent=8.0, base=0.0
        )
        assert np.all(values >= 0)


class TestPaperIntensities:
    def test_scalability_intensity_peak(self):
        profile = paper_scalability_intensity()
        assert profile.intensity.upper_bound() == pytest.approx(1000.0, rel=0.01)
        assert profile.period_seconds == 3600.0

    def test_regularization_intensity_period(self):
        profile = paper_regularization_intensity()
        assert profile.period_seconds == 86_400.0
        assert profile.intensity.upper_bound() == pytest.approx(1.1, rel=0.01)


class TestGenerateTraceFromIntensity:
    def test_count_matches_mass(self, periodic_intensity):
        horizon = 3600.0
        counts = [
            generate_trace_from_intensity(
                periodic_intensity, horizon, random_state=seed
            ).n_queries
            for seed in range(30)
        ]
        expected = periodic_intensity.cumulative(horizon)
        assert np.mean(counts) == pytest.approx(expected, rel=0.1)

    def test_processing_distributions(self, constant_intensity):
        for dist in ("exponential", "lognormal", "constant"):
            trace = generate_trace_from_intensity(
                constant_intensity,
                1800.0,
                processing_time_mean=10.0,
                processing_time_distribution=dist,
                random_state=0,
            )
            if trace.n_queries:
                assert np.all(trace.processing_times >= 0)

    def test_unknown_distribution_rejected(self, constant_intensity):
        with pytest.raises(ValidationError):
            generate_trace_from_intensity(
                constant_intensity,
                100.0,
                processing_time_distribution="weird",
                random_state=0,
            )

    def test_reproducible(self, constant_intensity):
        a = generate_trace_from_intensity(constant_intensity, 600.0, random_state=5)
        b = generate_trace_from_intensity(constant_intensity, 600.0, random_state=5)
        np.testing.assert_array_equal(a.arrival_times, b.arrival_times)


class TestNamedGenerators:
    def test_crs_like_shape(self):
        trace = generate_crs_like_trace(n_weeks=2, seed=1)
        assert trace.horizon == pytest.approx(2 * 7 * 86_400.0)
        assert 0.001 < trace.mean_qps < 0.1
        # Long processing times characteristic of image builds.
        assert trace.processing_times.mean() > 60.0

    def test_google_like_shape(self):
        trace = generate_google_like_trace(n_hours=12, seed=2)
        assert trace.horizon == pytest.approx(12 * 3600.0)
        assert 0.05 < trace.mean_qps < 1.0

    def test_google_like_has_spikes(self):
        trace = generate_google_like_trace(n_hours=12, seed=3)
        qps = trace.to_qps_series(60.0).qps
        assert qps.max() > 3.0 * np.median(qps[qps > 0])

    def test_alibaba_like_burst_present_and_removable(self):
        with_burst = generate_alibaba_like_trace(n_days=2, burst_day=1, seed=4, mean_qps=0.5)
        without_burst = generate_alibaba_like_trace(
            n_days=2, burst_day=-1, seed=4, mean_qps=0.5
        )
        qps_with = with_burst.to_qps_series(300.0).qps
        qps_without = without_burst.to_qps_series(300.0).qps
        assert qps_with.max() > 1.5 * qps_without.max()

    def test_generators_deterministic(self):
        a = generate_google_like_trace(n_hours=6, seed=9)
        b = generate_google_like_trace(n_hours=6, seed=9)
        np.testing.assert_array_equal(a.arrival_times, b.arrival_times)

    def test_different_seeds_differ(self):
        a = generate_google_like_trace(n_hours=6, seed=1)
        b = generate_google_like_trace(n_hours=6, seed=2)
        assert a.n_queries != b.n_queries or not np.array_equal(
            a.arrival_times, b.arrival_times
        )
