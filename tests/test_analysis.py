"""The invariant linter: rule corpus, suppressions, reporters, self-clean gate.

Every rule has a fixture corpus of at least two known-bad snippets (positive
cases: the rule must fire) and at least one known-good snippet (negative
case: the rule must stay silent).  The final gate lints all of ``src/repro``
and fails with file:line output on any finding — the invariants the rules
encode are *enforced*, not aspirational.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    Severity,
    all_rules,
    lint_paths,
    lint_source,
    render_json,
    render_text,
)
from repro.analysis.core import META_RULE_ID
from repro.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"

RULE_IDS = ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006")


def findings_for(source: str, path: str = "repro/simulation/somefile.py", rules=None):
    return lint_source(textwrap.dedent(source), path=path, rules=rules)


def rule_ids(findings) -> set[str]:
    return {finding.rule_id for finding in findings}


# --------------------------------------------------------------------- corpus
#
# Each entry: (rule id, path the snippet pretends to live at, source).

POSITIVE_CASES = [
    (
        "RPR001",
        "repro/workloads/bad.py",
        """
        import numpy as np

        def sample(n):
            np.random.seed(0)
            return np.random.normal(size=n)
        """,
    ),
    (
        "RPR001",
        "repro/nhpp/bad.py",
        """
        import random

        def jitter():
            return random.random()
        """,
    ),
    (
        "RPR001",
        "repro/optimization/bad_alias.py",
        """
        from numpy import random as npr

        def draw(n):
            return npr.rand(n)
        """,
    ),
    (
        "RPR002",
        "repro/simulation/bad_clock.py",
        """
        import time

        def step(state):
            state.stamp = time.time()
            return state
        """,
    ),
    (
        "RPR002",
        "repro/fleet/bad_clock.py",
        """
        import time as _time
        from datetime import datetime

        def plan():
            started = _time.perf_counter()
            return datetime.now(), started
        """,
    ),
    (
        "RPR003",
        "repro/experiments/bad_lambda.py",
        """
        from repro.runtime import EvalTask, run_tasks

        def drive(grid):
            tasks = [EvalTask(build=lambda g=g: g) for g in grid]
            return run_tasks(tasks)
        """,
    ),
    (
        "RPR003",
        "repro/experiments/bad_closure.py",
        """
        from repro.runtime import FunctionTask, run_tasks

        def drive(grid):
            def build_one(g):
                return g

            return run_tasks([FunctionTask(build_one)])
        """,
    ),
    (
        "RPR004",
        "repro/simulation/bad_hot.py",
        """
        from repro.telemetry import get_recorder

        # repro: hot-loop
        def replay(trace):
            recorder = get_recorder()
            for query in trace:
                recorder.inc("engine.queries")
        """,
    ),
    (
        "RPR004",
        "repro/simulation/bad_hot2.py",
        """
        from repro.telemetry import get_recorder

        # repro: hot-loop
        def replay(trace):
            done = 0
            while done < len(trace):
                rec = get_recorder()
                done += 1
            return done
        """,
    ),
    (
        "RPR005",
        "repro/store/bad_except.py",
        """
        def read(path):
            try:
                return path.read_bytes()
            except Exception:
                return None
        """,
    ),
    (
        "RPR005",
        "repro/store/bad_bare.py",
        """
        def read(path):
            try:
                return path.read_bytes()
            except:
                return None
        """,
    ),
    (
        "RPR006",
        "repro/store/bad_namespace.py",
        """
        def persist(store, key, obj):
            store.put("result", key, obj)
        """,
    ),
    (
        "RPR006",
        "repro/telemetry/bad_namespace.py",
        """
        def reap(self):
            return self.store.entries(namespace="telemetries")
        """,
    ),
]

NEGATIVE_CASES = [
    (
        "RPR001",
        "repro/workloads/good.py",
        """
        import numpy as np

        def sample(n, rng: np.random.Generator):
            return rng.normal(size=n)

        def spawn(seed):
            return np.random.default_rng(seed), np.random.SeedSequence(seed)
        """,
    ),
    (
        "RPR002",
        "repro/telemetry/good_clock.py",
        """
        import time

        def stamp():
            return time.perf_counter()
        """,
    ),
    (
        "RPR002",
        "repro/experiments/good_clock.py",
        """
        import time

        def wall():
            return time.time()
        """,
    ),
    (
        "RPR003",
        "repro/experiments/good_tasks.py",
        """
        from repro.runtime import FunctionTask, run_tasks

        def build_one(g):
            return g

        def drive(grid):
            return run_tasks([FunctionTask(build_one) for _ in grid])
        """,
    ),
    (
        "RPR003",
        "repro/experiments/good_on_result.py",
        """
        from repro.runtime import FunctionTask, run_tasks

        def build_one(g):
            return g

        def drive(grid, seen):
            # on_result runs in the submitting process; it never pickles.
            return run_tasks(
                [FunctionTask(build_one) for _ in grid],
                on_result=lambda r: seen.append(r.index),
            )
        """,
    ),
    (
        "RPR004",
        "repro/simulation/good_hot.py",
        """
        from repro.telemetry import get_recorder

        # repro: hot-loop
        def replay(trace):
            recorder = get_recorder()
            served = 0
            for query in trace:
                served += 1
            if recorder.enabled:
                recorder.inc("engine.queries", served)
        """,
    ),
    (
        "RPR004",
        "repro/simulation/good_unmarked.py",
        """
        from repro.telemetry import get_recorder

        def summarize(rows):
            for row in rows:
                get_recorder().inc("rows")
        """,
    ),
    (
        "RPR005",
        "repro/store/good_except.py",
        """
        def read(path):
            try:
                return path.read_bytes()
            except OSError:
                return None
            except BaseException:
                raise
        """,
    ),
    (
        "RPR006",
        "repro/store/good_namespace.py",
        """
        def persist(store, key, obj, mapping):
            store.put("results", key, obj)
            store.entries(namespace="telemetry")
            return mapping.get("free-form-key")
        """,
    ),
]


@pytest.mark.parametrize(
    "rule_id,path,source",
    POSITIVE_CASES,
    ids=[f"{rule}-{Path(path).stem}" for rule, path, _ in POSITIVE_CASES],
)
def test_rule_fires_on_known_bad(rule_id, path, source):
    findings = findings_for(source, path=path)
    assert rule_id in rule_ids(findings), f"expected {rule_id} to fire:\n{findings}"
    for finding in findings:
        assert finding.line > 0 and finding.path == path


@pytest.mark.parametrize(
    "rule_id,path,source",
    NEGATIVE_CASES,
    ids=[f"{rule}-{Path(path).stem}" for rule, path, _ in NEGATIVE_CASES],
)
def test_rule_silent_on_known_good(rule_id, path, source):
    findings = findings_for(source, path=path)
    assert rule_id not in rule_ids(findings), f"unexpected {rule_id}:\n{findings}"


def test_every_rule_has_positive_and_negative_coverage():
    """Adding RPR007 without corpus entries fails here, per the rules README."""
    assert tuple(rule.id for rule in all_rules()) == RULE_IDS
    for rule_id in RULE_IDS:
        positives = [case for case in POSITIVE_CASES if case[0] == rule_id]
        negatives = [case for case in NEGATIVE_CASES if case[0] == rule_id]
        assert len(positives) >= 2, f"{rule_id} needs >=2 positive fixtures"
        assert len(negatives) >= 1, f"{rule_id} needs >=1 negative fixture"


# --------------------------------------------------------------- suppressions


def test_allow_tag_suppresses_finding():
    source = """
    import time

    def step():
        return time.time()  # repro: allow[RPR002] test fixture reason
    """
    assert findings_for(source) == []


def test_standalone_allow_tag_governs_next_statement():
    source = """
    import time

    def step():
        # repro: allow[RPR002] reason on the line above
        return time.time()
    """
    assert findings_for(source) == []


def test_standalone_allow_tag_skips_comment_block():
    source = """
    import time

    def step():
        # repro: allow[RPR002] reason atop a multi-line comment
        # continuation of the explanation, not a directive
        return time.time()
    """
    assert findings_for(source) == []


def test_allow_tag_only_suppresses_named_rule():
    source = """
    import time

    def step():
        return time.time()  # repro: allow[RPR001] wrong rule id
    """
    assert rule_ids(findings_for(source)) == {"RPR002"}


def test_allow_tag_without_reason_is_an_error():
    source = """
    import time

    def step():
        return time.time()  # repro: allow[RPR002]
    """
    findings = findings_for(source)
    assert META_RULE_ID in rule_ids(findings)
    [meta] = [finding for finding in findings if finding.rule_id == META_RULE_ID]
    assert "reason" in meta.message
    # ...and the reason-less tag must NOT have suppressed the finding.
    assert "RPR002" in rule_ids(findings)


def test_unknown_directive_is_an_error():
    source = """
    def step():
        pass  # repro: alow[RPR002] typo'd directive
    """
    findings = findings_for(source)
    assert rule_ids(findings) == {META_RULE_ID}


def test_malformed_rule_id_is_an_error():
    source = """
    def step():
        pass  # repro: allow[totally-bogus] some reason
    """
    findings = findings_for(source)
    assert rule_ids(findings) == {META_RULE_ID}


def test_meta_findings_cannot_be_suppressed():
    source = """
    def step():
        pass  # repro: allow[RPR000] trying to silence the engine
    """
    findings = findings_for(source)
    assert META_RULE_ID in rule_ids(findings)


def test_syntax_error_reported_as_meta_finding():
    findings = lint_source("def broken(:\n    pass\n", path="repro/bad.py")
    assert [finding.rule_id for finding in findings] == [META_RULE_ID]
    assert findings[0].severity is Severity.ERROR


# ------------------------------------------------------------------ reporters


def test_json_report_schema():
    source = """
    import time

    def step():
        return time.time()
    """
    findings = findings_for(source)
    payload = json.loads(render_json(findings, files_checked=1, rules_run=RULE_IDS))
    assert payload["schema_version"] == 1
    assert payload["files_checked"] == 1
    assert payload["rules_run"] == sorted(RULE_IDS)
    assert payload["ok"] is False
    assert payload["statistics"] == {"RPR002": 1}
    [row] = payload["findings"]
    assert set(row) == {"path", "line", "col", "rule", "severity", "message"}
    assert row["rule"] == "RPR002"
    assert row["severity"] == "error"
    assert row["line"] >= 1


def test_text_report_contains_file_line_and_summary():
    source = """
    import time

    def step():
        return time.time()
    """
    findings = findings_for(source, path="repro/simulation/x.py")
    text = render_text(findings, files_checked=1, show_statistics=True)
    assert "repro/simulation/x.py:5:" in text
    assert "RPR002" in text
    assert "RPR002: 1" in text
    assert "1 error(s)" in text
    clean = render_text([], files_checked=3)
    assert "clean" in clean


def test_rule_selection_runs_only_named_rules():
    source = """
    import time

    def step():
        try:
            return time.time()
        except Exception:
            return None
    """
    only_005 = findings_for(source, rules=["RPR005"])
    assert rule_ids(only_005) == {"RPR005"}


# ------------------------------------------------------------------------ CLI


def test_cli_lint_clean_file_exits_zero(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("def f() -> int:\n    return 1\n")
    assert cli_main(["lint", str(clean)]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_lint_dirty_file_exits_nonzero_with_location(tmp_path, capsys):
    dirty = tmp_path / "repro" / "simulation" / "dirty.py"
    dirty.parent.mkdir(parents=True)
    dirty.write_text("import time\n\n\ndef f():\n    return time.time()\n")
    assert cli_main(["lint", str(dirty)]) == 1
    out = capsys.readouterr().out
    assert f"{dirty}:5:" in out
    assert "RPR002" in out


def test_cli_lint_json_format(tmp_path, capsys):
    dirty = tmp_path / "repro" / "nhpp" / "dirty.py"
    dirty.parent.mkdir(parents=True)
    dirty.write_text("import random\n\n\ndef f():\n    return random.random()\n")
    assert cli_main(["lint", str(dirty), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert payload["statistics"] == {"RPR001": 1}


def test_cli_lint_unknown_rule_exits_two(tmp_path):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert cli_main(["lint", str(clean), "--rule", "RPR999"]) == 2


def test_cli_lint_list_rules(capsys):
    assert cli_main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in RULE_IDS:
        assert rule_id in out


# -------------------------------------------------------------- self-clean gate


def test_src_repro_is_self_clean():
    """The tier-1 gate: the shipped tree must satisfy its own invariants.

    Deleting any `# repro: allow` tag, or re-introducing a banned call such
    as ``np.random.seed``, makes this test fail with file:line findings.
    """
    findings = lint_paths([SRC])
    rendered = "\n".join(finding.render() for finding in findings)
    assert findings == [], f"repro lint found violations in src/repro:\n{rendered}"


def test_removing_an_allow_tag_breaks_the_gate(tmp_path):
    """Acceptance check: the annotated sites really depend on their tags."""
    artifacts = (SRC / "store" / "artifacts.py").read_text(encoding="utf-8")
    assert "# repro: allow[RPR005]" in artifacts
    stripped = artifacts.replace("# repro: allow[RPR005]", "# reason tag removed", 1)
    copy = tmp_path / "repro" / "store" / "artifacts.py"
    copy.parent.mkdir(parents=True)
    copy.write_text(stripped, encoding="utf-8")
    findings = lint_source(stripped, path=copy)
    assert "RPR005" in rule_ids(findings)


def test_reintroducing_np_random_seed_breaks_the_gate(tmp_path):
    sampling = (SRC / "nhpp" / "sampling.py").read_text(encoding="utf-8")
    poisoned = sampling + "\n\ndef _poison():\n    np.random.seed(0)\n"
    findings = lint_source(poisoned, path="repro/nhpp/sampling.py")
    assert "RPR001" in rule_ids(findings)


def test_both_engines_carry_the_hot_loop_marker():
    for name in ("engine.py", "fastengine.py"):
        source = (SRC / "simulation" / name).read_text(encoding="utf-8")
        assert "# repro: hot-loop" in source, f"{name} lost its hot-loop marker"


# ----------------------------------------------- optional external tool gates


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_check_is_clean():
    result = subprocess.run(
        ["ruff", "check", "src", "tests", "benchmarks"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_is_clean():
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
