"""Tests for time-aggregation and smoothing helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.timeseries.aggregation import aggregate_counts, moving_average, rolling_sum


class TestAggregateCounts:
    def test_sum(self):
        out = aggregate_counts(np.array([1, 2, 3, 4, 5, 6]), 2)
        np.testing.assert_allclose(out, [3, 7, 11])

    def test_mean(self):
        out = aggregate_counts(np.array([1, 3, 5, 7]), 2, how="mean")
        np.testing.assert_allclose(out, [2, 6])

    def test_drops_incomplete_tail(self):
        out = aggregate_counts(np.array([1, 1, 1, 1, 9]), 2)
        np.testing.assert_allclose(out, [2, 2])

    def test_factor_one_is_identity(self):
        values = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(aggregate_counts(values, 1), values)

    def test_invalid_how_rejected(self):
        with pytest.raises(ValidationError):
            aggregate_counts(np.array([1, 2]), 1, how="median")

    def test_too_short_rejected(self):
        with pytest.raises(ValidationError):
            aggregate_counts(np.array([1]), 2)

    @given(
        st.lists(st.floats(min_value=0, max_value=100), min_size=4, max_size=60),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_sum_conserved_over_full_groups(self, values, factor):
        values = np.asarray(values)
        n_full = (values.size // factor) * factor
        if n_full == 0:
            return
        out = aggregate_counts(values, factor)
        assert out.sum() == pytest.approx(values[:n_full].sum())


class TestMovingAverage:
    def test_window_one_identity(self):
        values = np.array([1.0, 5.0, 2.0])
        np.testing.assert_allclose(moving_average(values, 1), values)

    def test_constant_series_unchanged(self):
        values = np.full(10, 3.0)
        np.testing.assert_allclose(moving_average(values, 5), values)

    def test_smooths_spike(self):
        values = np.zeros(11)
        values[5] = 10.0
        smoothed = moving_average(values, 5)
        assert smoothed[5] < 10.0
        assert smoothed[5] > 0.0

    def test_output_length_matches_input(self):
        values = np.arange(7, dtype=float)
        assert moving_average(values, 3).shape == values.shape


class TestRollingSum:
    def test_simple(self):
        out = rolling_sum(np.array([1.0, 2.0, 3.0, 4.0]), 2)
        np.testing.assert_allclose(out, [1.0, 3.0, 5.0, 7.0])

    def test_window_larger_than_series(self):
        out = rolling_sum(np.array([1.0, 2.0]), 10)
        np.testing.assert_allclose(out, [1.0, 3.0])

    def test_empty(self):
        assert rolling_sum(np.array([]), 3).size == 0
