"""Shared fixtures for the RobustScaler reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ADMMConfig, NHPPConfig, PlannerConfig, SimulationConfig
from repro.nhpp.intensity import PiecewiseConstantIntensity
from repro.nhpp.sampling import sample_arrival_times, sample_homogeneous_arrivals
from repro.pending import DeterministicPendingTime
from repro.traces.synthetic import beta_bump_intensity
from repro.types import ArrivalTrace, QPSSeries


@pytest.fixture(autouse=True)
def _isolated_store_dir(tmp_path, monkeypatch):
    """Point the artifact store at a per-test directory.

    The CLI enables the disk store by default; without this, tests would
    write into (and read warm state from) the developer's real
    ``~/.cache/repro/store``.
    """
    monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "repro-store"))


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def constant_intensity() -> PiecewiseConstantIntensity:
    """A constant 0.5 queries/second intensity held forever."""
    return PiecewiseConstantIntensity(np.array([0.5]), 60.0, extrapolation="hold")


@pytest.fixture
def periodic_intensity() -> PiecewiseConstantIntensity:
    """A periodic bump intensity with a 600-second period, 10-second bins."""
    bin_seconds = 10.0
    times = (np.arange(60) + 0.5) * bin_seconds
    values = beta_bump_intensity(
        times, peak=2.0, period_seconds=600.0, exponent=8.0, base=0.05
    )
    return PiecewiseConstantIntensity(values, bin_seconds, extrapolation="periodic")


@pytest.fixture
def small_poisson_trace() -> ArrivalTrace:
    """A homogeneous Poisson trace (rate 0.3/s over one hour) with constant processing."""
    arrivals = sample_homogeneous_arrivals(0.3, 3600.0, 7)
    return ArrivalTrace(arrivals, 15.0, name="hpp-small", horizon=3600.0)


@pytest.fixture
def periodic_trace(periodic_intensity: PiecewiseConstantIntensity) -> ArrivalTrace:
    """An NHPP trace drawn from the periodic bump intensity over one hour."""
    arrivals = sample_arrival_times(periodic_intensity, 3600.0, 11)
    return ArrivalTrace(arrivals, 10.0, name="periodic-small", horizon=3600.0)


@pytest.fixture
def small_qps_series(periodic_trace: ArrivalTrace) -> QPSSeries:
    """QPS series of the periodic trace at 30-second bins."""
    return periodic_trace.to_qps_series(30.0)


@pytest.fixture
def fast_admm() -> ADMMConfig:
    """An ADMM configuration sized for unit tests."""
    return ADMMConfig(rho=10.0, max_iterations=150, tolerance=1e-3)


@pytest.fixture
def fast_nhpp(fast_admm: ADMMConfig) -> NHPPConfig:
    """An NHPP configuration sized for unit tests."""
    return NHPPConfig(beta_smooth=20.0, beta_period=10.0, admm=fast_admm)


@pytest.fixture
def fast_planner() -> PlannerConfig:
    """A planner configuration with few Monte Carlo samples for fast tests."""
    return PlannerConfig(planning_interval=5.0, monte_carlo_samples=200)


@pytest.fixture
def sim_config() -> SimulationConfig:
    """Simulator configuration with a 10-second deterministic pending time."""
    return SimulationConfig(pending_time=10.0)


@pytest.fixture
def pending_model() -> DeterministicPendingTime:
    """A deterministic 10-second pending time."""
    return DeterministicPendingTime(10.0)
