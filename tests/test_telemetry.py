"""Unit tests for :mod:`repro.telemetry`: metrics, recorder, console, snapshots."""

from __future__ import annotations

import io
import json

import pytest

from repro.exceptions import ValidationError
from repro.store import ArtifactStore, RunJournal
from repro.telemetry import (
    Console,
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NULL_RECORDER,
    NullRecorder,
    ProgressLine,
    Recorder,
    TELEMETRY_NAMESPACE,
    build_snapshot,
    diff_snapshots,
    gc_orphan_snapshots,
    get_recorder,
    load_snapshot,
    persist_snapshot,
    set_recorder,
    snapshot_key,
    span_rows,
    summarize_snapshot,
    use,
)
from repro.telemetry.metrics import Histogram
from repro.telemetry.recorder import MAX_SPANS


class TestMetricsRegistry:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc(4)
        assert registry.snapshot()["counters"]["a"] == 5

    def test_gauge_holds_last_value(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(3)
        registry.gauge("g").set(2)
        assert registry.snapshot()["gauges"]["g"] == 2

    def test_histogram_buckets_and_stats(self):
        histogram = Histogram(buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            histogram.observe(value)
        payload = histogram.to_value()
        assert payload["counts"] == [1, 1, 1]  # <=1, <=10, overflow
        assert payload["count"] == 3
        assert payload["sum"] == pytest.approx(55.5)
        assert payload["min"] == 0.5
        assert payload["max"] == 50.0

    def test_histogram_rejects_non_increasing_buckets(self):
        with pytest.raises(ValidationError):
            Histogram(buckets=(5.0, 1.0))

    def test_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValidationError):
            registry.gauge("x")

    def test_merge_per_kind_semantics(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        a.gauge("g").set(1)
        b.gauge("g").set(7)
        a.histogram("h").observe(0.5)
        b.histogram("h").observe(2.0)
        a.merge(b.snapshot())
        merged = a.snapshot()
        assert merged["counters"]["c"] == 5  # counters add
        assert merged["gauges"]["g"] == 7  # gauges keep the max
        assert merged["histograms"]["h"]["count"] == 2
        assert merged["histograms"]["h"]["sum"] == pytest.approx(2.5)

    def test_merge_rejects_bucket_mismatch(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        b.histogram("h", buckets=(1.0, 2.0, 3.0)).observe(0.5)
        with pytest.raises(ValidationError):
            a.merge(b.snapshot())


class TestRecorder:
    def test_convenience_helpers(self):
        recorder = Recorder()
        recorder.inc("jobs", 2)
        recorder.set_gauge("level", 4)
        recorder.observe("latency", 0.25)
        snapshot = recorder.snapshot()
        assert snapshot["counters"]["jobs"] == 2
        assert snapshot["gauges"]["level"] == 4
        assert snapshot["histograms"]["latency"]["count"] == 1

    def test_span_nesting_parent_links(self):
        recorder = Recorder()
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
        inner, outer = recorder.spans  # children close first
        assert inner["name"] == "inner"
        assert inner["parent"] == outer["id"]
        assert inner["depth"] == 1
        assert outer["parent"] is None
        assert outer["depth"] == 0
        assert outer["duration_seconds"] >= inner["duration_seconds"]

    def test_trace_jsonl_round_trips(self, tmp_path):
        recorder = Recorder()
        with recorder.span("a"):
            pass
        records = [json.loads(line) for line in recorder.trace_jsonl().splitlines()]
        assert [record["name"] for record in records] == ["a"]
        path = tmp_path / "trace.jsonl"
        recorder.write_trace(path)
        assert path.read_text().strip() == recorder.trace_jsonl()

    def test_span_cap_counts_drops(self):
        recorder = Recorder()
        recorder.spans = [{} for _ in range(MAX_SPANS)]
        with recorder.span("over"):
            pass
        assert len(recorder.spans) == MAX_SPANS
        assert recorder.dropped_spans == 1
        assert recorder.snapshot()["n_spans"] == MAX_SPANS + 1

    def test_merge_snapshot_rebases_span_ids(self):
        parent = Recorder()
        with parent.span("local"):
            pass
        worker = Recorder()
        with worker.span("outer"):
            with worker.span("inner"):
                pass
        parent.merge_snapshot(worker.snapshot())
        ids = [record["id"] for record in parent.spans]
        assert len(set(ids)) == len(ids)
        merged_inner = next(r for r in parent.spans if r["name"] == "inner")
        merged_outer = next(r for r in parent.spans if r["name"] == "outer")
        assert merged_inner["parent"] == merged_outer["id"]
        # A second merge must not collide either.
        parent.merge_snapshot(worker.snapshot())
        ids = [record["id"] for record in parent.spans]
        assert len(set(ids)) == len(ids)


class TestAmbientRecorder:
    def test_default_is_null(self):
        assert get_recorder() is NULL_RECORDER
        assert not get_recorder().enabled

    def test_use_restores_previous(self):
        recorder = Recorder()
        with use(recorder):
            assert get_recorder() is recorder
            nested = Recorder()
            with use(nested):
                assert get_recorder() is nested
            assert get_recorder() is recorder
        assert get_recorder() is NULL_RECORDER

    def test_set_recorder_none_deactivates(self):
        recorder = Recorder()
        set_recorder(recorder)
        try:
            assert get_recorder() is recorder
        finally:
            set_recorder(None)
        assert get_recorder() is NULL_RECORDER

    def test_null_recorder_is_inert(self):
        null = NullRecorder()
        null.inc("x")
        null.set_gauge("y", 1)
        null.observe("z", 2.0)
        with null.span("nothing"):
            pass
        assert null.counter("x") is null.gauge("y")


class TestConsole:
    def test_emit_writes_unless_quiet(self):
        loud = io.StringIO()
        Console(loud).emit("hello")
        assert loud.getvalue() == "hello\n"
        muted = io.StringIO()
        Console(muted, quiet=True).emit("hello")
        assert muted.getvalue() == ""

    def test_progress_none_when_quiet(self):
        assert Console(io.StringIO(), quiet=True).progress() is None
        progress = Console(io.StringIO()).progress()
        assert isinstance(progress, ProgressLine)


class _FakeResult:
    resumed = False


class TestProgressLine:
    def test_non_tty_prints_bounded_snapshots(self):
        stream = io.StringIO()
        line = ProgressLine(stream)
        line.begin(100)
        for _ in range(100):
            line.update(_FakeResult())
        line.finish()
        printed = stream.getvalue().splitlines()
        assert 1 <= len(printed) <= 11
        assert printed[-1].startswith("[progress] 100/100")


def _store(tmp_path) -> ArtifactStore:
    return ArtifactStore(tmp_path / "store")


class TestSnapshots:
    def test_build_ranks_and_truncates_spans(self):
        recorder = Recorder()
        recorder.inc("n")
        for index in range(5):
            with recorder.span(f"s{index}"):
                pass
        snapshot = build_snapshot(recorder, run_id="r", top_spans=2)
        assert snapshot["run_id"] == "r"
        assert len(snapshot["spans"]) == 2
        assert snapshot["n_spans"] == 5
        durations = [record["duration_seconds"] for record in snapshot["spans"]]
        assert durations == sorted(durations, reverse=True)

    def test_persist_requires_run_id(self, tmp_path):
        snapshot = build_snapshot(Recorder())
        with pytest.raises(ValueError):
            persist_snapshot(_store(tmp_path), snapshot)

    def test_persist_load_round_trip(self, tmp_path):
        store = _store(tmp_path)
        recorder = Recorder()
        recorder.inc("events", 3)
        persist_snapshot(store, build_snapshot(recorder, run_id="run-1"))
        loaded = load_snapshot(store, "run-1")
        assert loaded is not None
        assert loaded["counters"]["events"] == 3
        assert load_snapshot(store, "missing") is None
        assert store.get(TELEMETRY_NAMESPACE, snapshot_key("run-1")) is not None

    def test_summarize_and_span_rows(self):
        recorder = Recorder()
        recorder.inc("hits", 2)
        recorder.set_gauge("workers", 4)
        recorder.observe("wait", 0.5)
        with recorder.span("slow"):
            pass
        snapshot = build_snapshot(recorder, run_id="r")
        rows = {row["metric"]: row["value"] for row in summarize_snapshot(snapshot)}
        assert rows["hits"] == 2
        assert rows["workers"] == 4
        assert rows["wait"].startswith("n=1")
        spans = span_rows(snapshot, limit=5)
        assert spans[0]["span"] == "slow"

    def test_diff_reports_delta_and_ratio(self):
        a = Recorder()
        b = Recorder()
        a.inc("queries", 10)
        b.inc("queries", 30)
        b.inc("only_b")
        a.observe("latency", 1.0)
        b.observe("latency", 2.0)
        rows = {
            row["metric"]: row
            for row in diff_snapshots(
                build_snapshot(a, run_id="a"), build_snapshot(b, run_id="b")
            )
        }
        assert rows["queries"]["delta"] == 20
        assert rows["queries"]["ratio"] == pytest.approx(3.0)
        assert rows["only_b"]["a"] is None
        assert rows["latency.mean"]["ratio"] == pytest.approx(2.0)

    def test_gc_reaps_only_orphans(self, tmp_path):
        store = _store(tmp_path)
        journal = RunJournal(store, "alive", 0)
        journal.publish_index(1)
        for run_id in ("alive", "dead"):
            recorder = Recorder()
            recorder.inc("n")
            persist_snapshot(store, build_snapshot(recorder, run_id=run_id))
        removed, freed = gc_orphan_snapshots(store)
        assert removed == 1
        assert freed > 0
        assert load_snapshot(store, "alive") is not None
        assert load_snapshot(store, "dead") is None


class TestDefaultBuckets:
    def test_strictly_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert len(set(DEFAULT_BUCKETS)) == len(DEFAULT_BUCKETS)
