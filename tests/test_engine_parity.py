"""Differential tests: the fast engines must be bit-compatible with the reference.

Every assertion here compares full :class:`~repro.types.SimulationResult`
rows — hit flags, waiting times, instance lifecycles, pending draws, unused
cost and planning-call counts — between
:class:`~repro.simulation.engine.ScalingPerQuerySimulator` (the semantics)
and each fast engine:
:class:`~repro.simulation.fastengine.BatchedEventSimulator` and
:class:`~repro.simulation.fastengine.KernelEventSimulator` (the kernelized
per-arrival tier).  Any future engine (async backend, compiled whole-trace
kernel) is expected to pass this suite unchanged.
"""

from __future__ import annotations

import itertools
import time

import numpy as np
import pytest

from repro.config import PlannerConfig, SimulationConfig
from repro.nhpp.sampling import sample_homogeneous_arrivals
from repro.pending import ExponentialPendingTime
from repro.runtime import (
    EvalTask,
    PrepSpec,
    ScalerSpec,
    WorkloadSpec,
    prepare_workload,
    run_task_rows,
    strip_timing,
)
from repro.scaling.adaptive_backup_pool import AdaptiveBackupPoolScaler
from repro.scaling.backup_pool import BackupPoolScaler, ReactiveScaler
from repro.scaling.base import Autoscaler, ScalingResponse
from repro.scaling.robustscaler import RobustScaler, RobustScalerObjective
from repro.simulation import (
    BatchedEventSimulator,
    KernelEventSimulator,
    ScalingPerQuerySimulator,
    create_simulator,
)
from repro.types import ArrivalTrace, ScalingAction
from repro.workloads import get_scenario, list_scenarios


#: Result columns compared bit-for-bit between the engines.
_COLUMNS = (
    "hits",
    "waiting_times",
    "response_times",
    "creation_times",
    "ready_times",
    "start_times",
    "deletion_times",
    "pending_times",
    "proactive_flags",
    "lifecycle_costs",
)


#: The fast engines differentially tested against the reference; every
#: scenario/config cell in this suite runs through all of them.
_FAST_ENGINES = (BatchedEventSimulator, KernelEventSimulator)


def assert_engine_parity(trace, scaler_factory, config, *, pending_model=None):
    """Replay under every engine and assert bit-identical results."""
    reference = ScalingPerQuerySimulator(config, pending_model=pending_model).replay(
        trace, scaler_factory()
    )
    fast = None
    for engine_cls in _FAST_ENGINES:
        fast = engine_cls(config, pending_model=pending_model).replay(
            trace, scaler_factory()
        )
        for column in _COLUMNS:
            np.testing.assert_array_equal(
                getattr(reference, column),
                getattr(fast, column),
                err_msg=f"column {column!r} diverged on {engine_cls.__name__}",
            )
        assert reference.unused_instance_cost == fast.unused_instance_cost
        assert reference.n_unused_instances == fast.n_unused_instances
        assert len(reference.planning_times) == len(fast.planning_times)
        assert reference.n_queries == fast.n_queries
        assert reference.total_cost == fast.total_cost
    return reference, fast


class SchedulingScaler(Autoscaler):
    """Tick policy exercising scheduled creations, cancels and scale-ins."""

    name = "SchedulingScaler"
    reacts_to_arrivals = False

    def __init__(self, interval: float, lookahead: float, burst: int = 2) -> None:
        self._interval = interval
        self._lookahead = lookahead
        self._burst = burst

    @property
    def planning_interval(self) -> float:
        return self._interval

    def on_planning_tick(self, context) -> ScalingResponse:
        actions = [
            ScalingAction(
                creation_time=context.time + self._lookahead * (k + 1) / self._burst,
                planned_at=context.time,
            )
            for k in range(self._burst)
        ]
        return ScalingResponse(
            actions=actions,
            cancel_scheduled=1 if context.scheduled_creations > 3 else 0,
            scale_in=1 if context.created_unassigned > 2 else 0,
        )


class FixedPlanScaler(Autoscaler):
    """Creates instances at a fixed list of absolute times."""

    name = "FixedPlan"

    def __init__(self, creation_times) -> None:
        self._creation_times = list(creation_times)

    def initialize(self, context) -> ScalingResponse:
        actions = [
            ScalingAction(creation_time=t, planned_at=0.0) for t in self._creation_times
        ]
        return ScalingResponse(actions=actions)


def _poisson_trace(rate=0.6, horizon=1800.0, seed=5, processing=9.0):
    arrivals = sample_homogeneous_arrivals(rate, horizon, seed)
    return ArrivalTrace(arrivals, processing, name="parity", horizon=horizon)


class TestScenarioRegistryParity:
    """Replay every registered scenario under both engines."""

    @pytest.mark.parametrize(
        "scenario_name", [scenario.name for scenario in list_scenarios()]
    )
    def test_registry_scenario_parity(self, scenario_name):
        scenario = get_scenario(scenario_name)
        trace = scenario.build_trace(scale=0.02, seed=3)
        config = SimulationConfig(pending_time=scenario.pending_time, seed=3)
        for factory in (ReactiveScaler, lambda: BackupPoolScaler(2)):
            assert_engine_parity(trace, factory, config)

    @pytest.mark.parametrize("seed", [3, 11])
    def test_pareto_bursts_parity_across_seeds(self, seed):
        scenario = get_scenario("pareto-bursts")
        trace = scenario.build_trace(scale=0.03, seed=seed)
        config = SimulationConfig(
            pending_time=scenario.pending_time, pending_time_jitter=2.0, seed=seed
        )
        for factory in (
            ReactiveScaler,
            lambda: AdaptiveBackupPoolScaler(15.0, update_interval=120.0),
            lambda: SchedulingScaler(45.0, 60.0),
        ):
            assert_engine_parity(trace, factory, config)


class TestConfigurationGridParity:
    """Jitter, scheduling latency, planning intervals, latency charging."""

    @pytest.mark.parametrize(
        "jitter,latency",
        [(0.0, 0.0), (4.0, 0.0), (0.0, 1.5), (4.0, 1.5)],
    )
    def test_jitter_and_scheduling_latency(self, jitter, latency):
        trace = _poisson_trace()
        config = SimulationConfig(
            pending_time=8.0,
            pending_time_jitter=jitter,
            scheduling_latency=latency,
            seed=7,
        )
        for factory in (
            ReactiveScaler,
            lambda: BackupPoolScaler(3),
            lambda: SchedulingScaler(20.0, 30.0),
        ):
            assert_engine_parity(trace, factory, config)

    @pytest.mark.parametrize("interval", [5.0, 17.0, 300.0])
    def test_planning_interval_grid(self, interval):
        trace = _poisson_trace(rate=0.4, horizon=2400.0, seed=2)
        config = SimulationConfig(pending_time=10.0, seed=2)
        assert_engine_parity(
            trace, lambda: SchedulingScaler(interval, interval * 1.5, burst=3), config
        )

    def test_exponential_pending_model(self):
        """Bulk draws must be stream-prefix-stable for the ziggurat sampler too."""
        trace = _poisson_trace(seed=9)
        config = SimulationConfig(pending_time=8.0, seed=4)
        model = ExponentialPendingTime(6.0)
        for factory in (ReactiveScaler, lambda: SchedulingScaler(30.0, 40.0)):
            assert_engine_parity(trace, factory, config, pending_model=model)

    def test_charge_decision_latency_with_deterministic_clock(self, monkeypatch):
        """With a deterministic clock, charged latency is engine-independent."""
        ticks = itertools.count()
        # A power-of-two step makes consecutive differences exactly equal, so
        # the charged latency is the same constant no matter how many clock
        # reads an engine performs before a given hook.
        step = 2.0**-10

        def fake_perf_counter() -> float:
            return next(ticks) * step

        monkeypatch.setattr(time, "perf_counter", fake_perf_counter)
        trace = _poisson_trace(rate=0.3, horizon=1200.0, seed=6)
        config = SimulationConfig(
            pending_time=5.0, charge_decision_latency=True, seed=6
        )
        for factory in (
            ReactiveScaler,
            lambda: BackupPoolScaler(2),
            lambda: SchedulingScaler(30.0, 20.0),
        ):
            assert_engine_parity(trace, factory, config)


class TestEdgeCaseParity:
    def test_empty_trace(self):
        trace = ArrivalTrace([], [], horizon=500.0)
        config = SimulationConfig(pending_time=5.0)
        reference, batched = assert_engine_parity(
            trace, lambda: FixedPlanScaler([0.0, 10.0]), config
        )
        # The immediate creation at t=0 idles until the horizon; the one
        # scheduled for t=10 never materializes because no event reaches it.
        assert reference.unused_instance_cost == pytest.approx(500.0)
        assert batched.n_unused_instances == 1

    def test_arrival_at_time_zero(self):
        trace = ArrivalTrace([0.0, 0.0, 5.0], [2.0, 2.0, 2.0], horizon=60.0)
        config = SimulationConfig(pending_time=3.0)
        assert_engine_parity(trace, lambda: FixedPlanScaler([0.0]), config)

    def test_simultaneous_ready_tiebreaks(self):
        """Deterministic pending times create ready-time ties; the creation
        order (tiebreak counter) must decide identically in both engines."""
        trace = ArrivalTrace([20.0, 20.0, 20.0, 21.0], 1.0, horizon=60.0)
        config = SimulationConfig(pending_time=10.0)
        assert_engine_parity(
            trace, lambda: FixedPlanScaler([0.0, 0.0, 0.0, 5.0]), config
        )

    def test_reactive_cold_start_cancels_scheduled(self):
        # Arrivals before any scheduled creation exists force cold starts
        # that cancel the earliest outstanding scheduled creations.
        trace = ArrivalTrace([1.0, 2.0, 3.0, 50.0], 2.0, horizon=200.0)
        config = SimulationConfig(pending_time=4.0)
        assert_engine_parity(
            trace, lambda: FixedPlanScaler([40.0, 45.0, 110.0]), config
        )


class TestRobustScalerParity:
    def test_robustscaler_hp_parity(self):
        arrivals = sample_homogeneous_arrivals(0.4, 5400.0, 4)
        trace = ArrivalTrace(arrivals, 10.0, name="rs-parity", horizon=5400.0)
        workload = prepare_workload(
            trace, train_fraction=0.7, bin_seconds=60.0, pending_time=9.0
        )
        config = SimulationConfig(pending_time=9.0, seed=2)

        def factory():
            return RobustScaler(
                workload.forecast,
                workload.pending_model,
                objective=RobustScalerObjective.HIT_PROBABILITY,
                target=0.9,
                planner=PlannerConfig(planning_interval=5.0, monte_carlo_samples=60),
                random_state=11,
            )

        assert_engine_parity(workload.test, factory, config)


class BurstyHookScaler(Autoscaler):
    """Active arrival hook with no kernel: every 5th arrival adds an instance.

    Forces :class:`KernelEventSimulator` onto the per-query fallback path
    for the whole replay (``arrival_kernel()`` returns the base ``None``).
    """

    name = "BurstyHook"

    def on_query_arrival(self, context) -> ScalingResponse:
        if context.n_arrivals % 5 == 0:
            return ScalingResponse.create_now(context.time, 1)
        return ScalingResponse.empty()


class ScheduledTopUpScaler(BackupPoolScaler):
    """BP's top-up hook plus ticks that schedule *future* creations.

    While a scheduled creation is outstanding the kernel tier's empty-queue
    precondition fails, so arrivals fall back to per-query hook dispatch;
    once the creation materializes the kernel resumes.  Exercises the
    interleaving of all three dispatch outcomes within one replay.
    """

    name = "ScheduledTopUp"

    @property
    def planning_interval(self) -> float:
        return 120.0

    def on_planning_tick(self, context) -> ScalingResponse:
        return ScalingResponse(
            actions=[
                ScalingAction(
                    creation_time=context.time + 30.0, planned_at=context.time
                )
            ]
        )


class TestKernelDispatch:
    """The kernel tier's dispatch decisions and its fallback behavior."""

    def test_policy_without_kernel_falls_back_silently(self):
        """A hook policy with no kernel must replay identically (hook path)."""
        trace = _poisson_trace(rate=0.5, horizon=1500.0, seed=8)
        config = SimulationConfig(pending_time=7.0, seed=8)
        assert_engine_parity(trace, BurstyHookScaler, config)

    def test_fallback_is_counted(self):
        from repro.telemetry import Recorder, use

        trace = _poisson_trace(rate=0.5, horizon=900.0, seed=8)
        config = SimulationConfig(pending_time=7.0, seed=8)
        with use(Recorder()) as recorder:
            KernelEventSimulator(config).replay(trace, BurstyHookScaler())
        counters = recorder.snapshot()["counters"]
        assert counters["engine.kernel.chunks"] == 0
        assert counters["engine.kernel.fallback_arrivals"] == trace.n_queries
        assert counters["engine.batched.hook_arrivals"] == trace.n_queries

    def test_scheduled_creations_interleave_with_kernel_chunks(self):
        """Kernel chunks must pause while scheduled creations are in flight."""
        trace = _poisson_trace(rate=0.5, horizon=2400.0, seed=12)
        for jitter in (0.0, 2.0):
            config = SimulationConfig(
                pending_time=6.0, pending_time_jitter=jitter, seed=12
            )
            assert_engine_parity(trace, lambda: ScheduledTopUpScaler(2), config)

    def test_mixed_dispatch_counters_partition_arrivals(self):
        from repro.telemetry import Recorder, use

        trace = _poisson_trace(rate=0.5, horizon=2400.0, seed=12)
        config = SimulationConfig(pending_time=6.0, seed=12)
        with use(Recorder()) as recorder:
            KernelEventSimulator(config).replay(trace, ScheduledTopUpScaler(2))
        counters = recorder.snapshot()["counters"]
        assert counters["engine.kernel.chunks"] >= 1
        assert counters["engine.kernel.fallback_arrivals"] >= 1
        assert (
            counters["engine.kernel.arrivals"]
            + counters["engine.kernel.fallback_arrivals"]
            == trace.n_queries
        )

    def test_charged_latency_disables_the_kernel_tier(self):
        """Charged decision latency turns create-now into scheduled creations,
        which kernels do not model — the tier must switch off entirely."""
        from repro.telemetry import Recorder, use

        trace = _poisson_trace(rate=0.4, horizon=600.0, seed=3)
        config = SimulationConfig(
            pending_time=6.0, charge_decision_latency=True, seed=3
        )
        with use(Recorder()) as recorder:
            KernelEventSimulator(config).replay(trace, BackupPoolScaler(2))
        counters = recorder.snapshot()["counters"]
        assert counters["engine.kernel.chunks"] == 0
        assert counters["engine.kernel.fallback_arrivals"] == trace.n_queries

    def test_passive_tier_outranks_the_kernel(self):
        """Reactive inherits BP's kernel but is passive: no kernel chunks."""
        from repro.telemetry import Recorder, use

        trace = _poisson_trace(rate=0.4, horizon=600.0, seed=3)
        config = SimulationConfig(pending_time=6.0, seed=3)
        with use(Recorder()) as recorder:
            KernelEventSimulator(config).replay(trace, ReactiveScaler())
        counters = recorder.snapshot()["counters"]
        assert "engine.kernel.chunks" not in counters
        assert counters["engine.batched.passive_arrivals"] == trace.n_queries


class TestEngineSelection:
    """Engine plumbing: config, factory, runtime specs, executors."""

    def test_config_rejects_unknown_engine(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            SimulationConfig(engine="warp-drive")

    def test_factory_maps_names_to_engines(self):
        assert isinstance(
            create_simulator(SimulationConfig(engine="reference")),
            ScalingPerQuerySimulator,
        )
        assert isinstance(
            create_simulator(SimulationConfig(engine="batched")), BatchedEventSimulator
        )
        kernel = create_simulator(SimulationConfig(engine="kernel"))
        assert isinstance(kernel, KernelEventSimulator)
        assert kernel.use_kernels
        # No engine specified -> the batched default, everywhere.
        assert isinstance(create_simulator(), BatchedEventSimulator)

    def test_resolve_engine_accepts_kernel(self):
        from repro.simulation import resolve_engine

        assert resolve_engine("kernel") == "kernel"

    def test_prepare_workload_engine_override(self):
        trace = _poisson_trace(rate=0.2, horizon=1200.0)
        workload = prepare_workload(trace, engine="batched")
        assert workload.simulation.engine == "batched"

    def test_prepspec_key_carries_engine(self):
        # Engine None normalizes to the batched default in the cache key;
        # only an explicit "reference" addresses a different artifact.
        deferred = WorkloadSpec(scenario="steady-state", prep=PrepSpec())
        batched = WorkloadSpec(
            scenario="steady-state", prep=PrepSpec(engine="batched")
        )
        reference = WorkloadSpec(
            scenario="steady-state", prep=PrepSpec(engine="reference")
        )
        assert deferred.cache_key() == batched.cache_key()
        assert reference.cache_key() != batched.cache_key()
        assert batched.prep.resolve(None)["engine"] == "batched"

    def test_runtime_rows_identical_across_engines(self):
        """EvalTask batches produce the same rows whichever engine replays."""

        def rows_for(engine):
            workload = WorkloadSpec(
                scenario="steady-state",
                scale=0.02,
                seed=3,
                prep=PrepSpec(engine=engine),
            )
            tasks = [
                EvalTask(workload, ScalerSpec("reactive")),
                EvalTask(workload, ScalerSpec("bp", 2)),
            ]
            return strip_timing(run_task_rows(tasks, base_seed=3))

        assert rows_for("reference") == rows_for("batched") == rows_for("kernel")
