"""Tests for the regularized NHPP objective and soft-thresholding."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.nhpp.objective import RegularizedNHPPObjective, soft_threshold


class TestSoftThreshold:
    def test_scalar(self):
        assert soft_threshold(3.0, 1.0) == 2.0
        assert soft_threshold(-3.0, 1.0) == -2.0
        assert soft_threshold(0.5, 1.0) == 0.0

    def test_zero_threshold_identity(self):
        x = np.array([-2.0, 0.0, 5.0])
        np.testing.assert_allclose(soft_threshold(x, 0.0), x)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValidationError):
            soft_threshold(1.0, -0.5)

    @given(
        st.floats(min_value=-100, max_value=100),
        st.floats(min_value=0, max_value=50),
    )
    @settings(max_examples=100, deadline=None)
    def test_is_proximal_operator_of_l1(self, x, threshold):
        """Soft thresholding minimizes 0.5*(z-x)^2 + threshold*|z|."""
        z_star = soft_threshold(x, threshold)
        def objective(z):
            return 0.5 * (z - x) ** 2 + threshold * abs(z)

        for delta in (-1e-3, 1e-3):
            assert objective(z_star) <= objective(z_star + delta) + 1e-9

    @given(st.lists(st.floats(min_value=-50, max_value=50), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_shrinks_magnitude(self, values):
        x = np.asarray(values)
        out = soft_threshold(x, 1.5)
        assert np.all(np.abs(out) <= np.abs(x) + 1e-12)


class TestRegularizedNHPPObjective:
    def _objective(self, counts=None, period=None, beta_smooth=1.0, beta_period=1.0):
        if counts is None:
            counts = np.array([3.0, 5.0, 2.0, 4.0, 6.0, 1.0])
        return RegularizedNHPPObjective(
            counts=counts,
            bin_seconds=60.0,
            beta_smooth=beta_smooth,
            beta_period=beta_period,
            period_bins=period,
        )

    def test_nll_matches_direct_formula(self):
        obj = self._objective()
        r = np.log(np.maximum(obj.counts, 1.0) / 60.0)
        direct = -obj.counts @ r + 60.0 * np.exp(r).sum()
        assert obj.negative_log_likelihood(r) == pytest.approx(direct)

    def test_nll_minimized_at_mle(self):
        obj = self._objective(beta_smooth=0.0, beta_period=0.0)
        mle = np.log(obj.counts / 60.0)
        base = obj.negative_log_likelihood(mle)
        rng = np.random.default_rng(0)
        for _ in range(10):
            perturbed = mle + rng.normal(scale=0.1, size=mle.size)
            assert obj.negative_log_likelihood(perturbed) >= base - 1e-9

    def test_penalty_zero_for_linear_log_intensity_without_period(self):
        obj = self._objective(beta_period=0.0)
        r = 0.1 * np.arange(obj.n_bins) + 1.0
        assert obj.penalty(r) == pytest.approx(0.0, abs=1e-10)

    def test_penalty_includes_seasonal_term(self):
        obj = self._objective(period=2)
        assert obj.has_period_penalty
        r = np.array([0.0, 1.0, 0.0, 1.0, 0.0, 1.0])
        # Periodic with period 2 -> seasonal penalty 0; curvature penalty > 0.
        seasonal_only = self._objective(period=2, beta_smooth=0.0)
        assert seasonal_only.penalty(r) == pytest.approx(0.0, abs=1e-10)

    def test_period_longer_than_series_dropped(self):
        obj = self._objective(period=10)
        assert not obj.has_period_penalty

    def test_wrong_length_rejected(self):
        obj = self._objective()
        with pytest.raises(ValidationError):
            obj.negative_log_likelihood(np.zeros(3))

    def test_too_few_bins_rejected(self):
        with pytest.raises(ValidationError):
            RegularizedNHPPObjective(np.array([1.0, 2.0]), 60.0, 1.0, 1.0)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValidationError):
            RegularizedNHPPObjective(np.array([1.0, -2.0, 3.0]), 60.0, 1.0, 1.0)

    def test_initial_guess_finite_with_empty_bins(self):
        obj = self._objective(counts=np.array([0.0, 0.0, 5.0, 0.0]))
        guess = obj.initial_guess()
        assert np.all(np.isfinite(guess))

    def test_value_is_nll_plus_penalty(self):
        obj = self._objective(period=3)
        r = obj.initial_guess()
        assert obj.value(r) == pytest.approx(
            obj.negative_log_likelihood(r) + obj.penalty(r)
        )
