"""Tests for the ASCII plotting helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.metrics.asciiplot import ascii_scatter, ascii_series


class TestAsciiScatter:
    def test_renders_all_groups_with_distinct_markers(self):
        plot = ascii_scatter(
            {
                "BP": ([1.0, 2.0, 3.0], [0.1, 0.5, 0.8]),
                "RobustScaler": ([1.0, 1.5, 2.0], [0.3, 0.7, 0.9]),
            },
            title="hit rate vs cost",
        )
        assert "hit rate vs cost" in plot
        assert "o BP" in plot
        assert "x RobustScaler" in plot
        assert "o" in plot.splitlines()[1] or any("o" in line for line in plot.splitlines())

    def test_axis_extremes_labelled(self):
        plot = ascii_scatter({"a": ([0.0, 10.0], [1.0, 5.0])}, x_label="cost", y_label="hit")
        assert "5" in plot
        assert "cost" in plot
        assert "hit" in plot

    def test_single_point_group(self):
        plot = ascii_scatter({"only": ([1.0], [1.0])})
        assert "only" in plot

    def test_empty_groups_rejected(self):
        with pytest.raises(ValidationError):
            ascii_scatter({})
        with pytest.raises(ValidationError):
            ascii_scatter({"a": ([], [])})

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValidationError):
            ascii_scatter({"a": ([1.0, 2.0], [1.0])})

    def test_size_validation(self):
        with pytest.raises(ValidationError):
            ascii_scatter({"a": ([1.0], [1.0])}, width=2)


class TestAsciiSeries:
    def test_renders_peak(self):
        values = np.concatenate([np.zeros(20), [10.0], np.zeros(20)])
        plot = ascii_series(values, title="spike")
        assert "spike" in plot
        assert "█" in plot

    def test_long_series_downsampled_to_width(self):
        values = np.sin(np.linspace(0, 20 * np.pi, 5000)) + 1.0
        plot = ascii_series(values, width=60)
        longest = max(len(line) for line in plot.splitlines())
        assert longest <= 60 + 15

    def test_constant_series(self):
        plot = ascii_series(np.full(30, 2.0))
        assert "█" in plot

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            ascii_series([])
