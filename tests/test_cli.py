"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_traces_command_parses(self):
        args = build_parser().parse_args(["traces"])
        assert args.command == "traces"

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.trace == "crs"
        assert args.scaler == "rs-hp"

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "table3"])
        assert args.name == "table3"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "not-an-experiment"])


class TestMain:
    def test_traces_listing(self, capsys):
        assert main(["traces"]) == 0
        output = capsys.readouterr().out
        for name in ("crs", "google", "alibaba"):
            assert name in output

    def test_experiment_table3(self, capsys):
        assert main(["experiment", "table3"]) == 0
        output = capsys.readouterr().out
        assert "improvement" in output

    def test_simulate_small_run(self, capsys):
        code = main(
            [
                "simulate",
                "--trace",
                "google",
                "--scale",
                "0.13",
                "--scaler",
                "bp",
                "--target",
                "2",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "hit_rate" in output

    def test_simulate_robustscaler(self, capsys):
        code = main(
            [
                "simulate",
                "--trace",
                "google",
                "--scale",
                "0.13",
                "--scaler",
                "rs-hp",
                "--target",
                "0.8",
                "--planning-interval",
                "10",
                "--mc-samples",
                "100",
            ]
        )
        assert code == 0
        assert "hit_rate" in capsys.readouterr().out
