"""Tests for the parallel evaluation runtime (specs, cache, executors).

The load-bearing guarantees: (1) the serial and process-pool executors
produce bit-identical result rows for the same task list and base seed;
(2) the workload cache prepares — and therefore fits the NHPP model —
exactly once per (workload identity, prep-config) key; (3) per-task seeds
derive deterministically via ``SeedSequence.spawn``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.nhpp.model import NHPPModel
from repro.runtime import (
    EvalTask,
    PrepSpec,
    ScalerSpec,
    WorkloadCache,
    WorkloadSpec,
    derive_task_seeds,
    execute_task,
    resolve_workers,
    run_task_rows,
    run_tasks,
    strip_timing,
)
from repro.workloads import get_scenario


def small_tasks() -> list[EvalTask]:
    """A tiny two-scenario batch covering baselines and RobustScaler."""
    tasks: list[EvalTask] = []
    for name in ("steady-state", "flash-crowd"):
        workload = WorkloadSpec(scenario=name, scale=0.05, seed=7)
        specs = [
            ScalerSpec("reactive"),
            ScalerSpec("bp", 2),
            ScalerSpec("rs-hp", 0.7, planning_interval=20.0, monte_carlo_samples=60),
        ]
        tasks += [
            EvalTask(workload, spec, extra=(("scenario", name),)) for spec in specs
        ]
    return tasks


class TestSpecs:
    def test_workload_spec_requires_exactly_one_source(self):
        with pytest.raises(ValidationError):
            WorkloadSpec()
        trace = get_scenario("steady-state").build_trace(scale=0.03, seed=1)
        with pytest.raises(ValidationError):
            WorkloadSpec(scenario="steady-state", trace=trace)

    def test_scaler_spec_validation(self):
        with pytest.raises(ValidationError):
            ScalerSpec("warp-drive", 1.0)
        with pytest.raises(ValidationError):
            ScalerSpec("bp")  # parameter required
        with pytest.raises(ValidationError):
            ScalerSpec("rs-hp", 0.9, monte_carlo_samples=0)

    def test_parameter_name_defaults_per_kind(self):
        assert ScalerSpec("bp", 2).resolved_parameter_name == "pool_size"
        assert ScalerSpec("rs-hp", 0.9).resolved_parameter_name == "target_hp"
        assert ScalerSpec("reactive").resolved_parameter_name is None
        assert (
            ScalerSpec("bp", 2, parameter_name="parameter").resolved_parameter_name
            == "parameter"
        )

    def test_cache_key_distinguishes_prep_configs(self):
        base = WorkloadSpec(scenario="steady-state", scale=0.05, seed=7)
        other_prep = WorkloadSpec(
            scenario="steady-state",
            scale=0.05,
            seed=7,
            prep=PrepSpec(bin_seconds=120.0),
        )
        other_seed = WorkloadSpec(scenario="steady-state", scale=0.05, seed=8)
        assert base.cache_key() == base.cache_key()
        assert base.cache_key() != other_prep.cache_key()
        assert base.cache_key() != other_seed.cache_key()

    def test_trace_backed_key_uses_content_fingerprint(self):
        scenario = get_scenario("steady-state")
        trace_a = scenario.build_trace(scale=0.03, seed=1)
        trace_a_again = scenario.build_trace(scale=0.03, seed=1)
        trace_b = scenario.build_trace(scale=0.03, seed=2)
        assert (
            WorkloadSpec(trace=trace_a).cache_key()
            == WorkloadSpec(trace=trace_a_again).cache_key()
        )
        assert (
            WorkloadSpec(trace=trace_a).cache_key()
            != WorkloadSpec(trace=trace_b).cache_key()
        )

    def test_derive_task_seeds_deterministic_and_independent(self):
        first = derive_task_seeds(7, 5)
        second = derive_task_seeds(7, 5)
        assert len(first) == 5
        for a, b in zip(first, second):
            assert a.spawn_key == b.spawn_key
            np.testing.assert_array_equal(
                np.random.default_rng(a).integers(0, 2**31, 8),
                np.random.default_rng(b).integers(0, 2**31, 8),
            )
        streams = {
            tuple(np.random.default_rng(seed).integers(0, 2**31, 8)) for seed in first
        }
        assert len(streams) == 5


class TestResolveWorkers:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "8")
        assert resolve_workers(3) == 3

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert resolve_workers(None) == 4

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 1

    def test_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValidationError):
            resolve_workers(None)
        with pytest.raises(ValidationError):
            resolve_workers(0)


class TestWorkloadCache:
    def test_one_model_fit_per_key(self, monkeypatch):
        """The cache guarantee: one NHPP fit per prepared-workload key."""
        fits = []
        original_fit = NHPPModel.fit

        def counting_fit(self, *args, **kwargs):
            fits.append(1)
            return original_fit(self, *args, **kwargs)

        monkeypatch.setattr(NHPPModel, "fit", counting_fit)
        tasks = small_tasks()
        cache = WorkloadCache()
        run_tasks(tasks, base_seed=7, cache=cache)
        unique_keys = {task.workload.cache_key() for task in tasks}
        assert len(fits) == len(unique_keys) == 2
        assert cache.stats().misses == len(unique_keys)
        assert cache.stats().hits == len(tasks) - len(unique_keys)

    def test_cache_shared_across_batches(self):
        tasks = small_tasks()
        cache = WorkloadCache()
        run_tasks(tasks, base_seed=7, cache=cache)
        misses_before = cache.stats().misses
        run_tasks(tasks, base_seed=7, cache=cache)
        assert cache.stats().misses == misses_before  # second batch: all hits

    def test_execute_task_reports_cache_hit(self):
        task = small_tasks()[0]
        cache = WorkloadCache()
        first = execute_task(task, seed=0, cache=cache)
        second = execute_task(task, seed=0, cache=cache)
        assert first.cache_hit is False
        assert second.cache_hit is True


class TestDeterminism:
    @pytest.fixture(scope="class")
    def serial_rows(self) -> list[dict]:
        return run_task_rows(small_tasks(), base_seed=7, workers=1)

    def test_serial_and_parallel_rows_identical(self, serial_rows):
        """The acceptance guarantee: executors agree bit-for-bit."""
        parallel_rows = run_task_rows(small_tasks(), base_seed=7, workers=2)
        assert strip_timing(parallel_rows) == strip_timing(serial_rows)

    def test_same_base_seed_reproduces(self, serial_rows):
        again = run_task_rows(small_tasks(), base_seed=7)
        assert strip_timing(again) == strip_timing(serial_rows)

    def test_different_base_seed_changes_mc_rows(self, serial_rows):
        other = run_task_rows(small_tasks(), base_seed=8)
        stripped_a, stripped_b = strip_timing(serial_rows), strip_timing(other)
        # Deterministic scalers (reactive, BP) are seed-independent...
        for a, b in zip(stripped_a, stripped_b):
            if not a["scaler"].startswith("RobustScaler"):
                assert a == b
        # ...while the Monte Carlo rows must actually use the derived seeds.
        assert stripped_a != stripped_b

    def test_rows_returned_in_task_order(self, serial_rows):
        expected = [
            ("steady-state", "Reactive"),
            ("steady-state", "BP(B=2)"),
            ("steady-state", "RobustScaler-HP(target=0.7)"),
            ("flash-crowd", "Reactive"),
            ("flash-crowd", "BP(B=2)"),
            ("flash-crowd", "RobustScaler-HP(target=0.7)"),
        ]
        assert [(row["scenario"], row["scaler"]) for row in serial_rows] == expected

    def test_variance_window_rows(self):
        task = EvalTask(
            WorkloadSpec(scenario="steady-state", scale=0.05, seed=7),
            ScalerSpec("bp", 2),
            variance_window=25,
        )
        row = run_task_rows([task], base_seed=7)[0]
        for column in ("hit_rate_mean", "hit_rate_variance", "rt_mean", "rt_variance"):
            assert column in row
        assert row["hit_rate_variance"] >= 0.0
        assert row["rt_variance"] >= 0.0

    def test_direct_trace_tasks_match_scenario_tasks(self):
        """A trace-backed spec evaluates exactly like its scenario spec."""
        scenario = get_scenario("steady-state")
        trace = scenario.build_trace(scale=0.05, seed=7)
        prep = PrepSpec(
            train_fraction=scenario.train_fraction,
            bin_seconds=scenario.bin_seconds,
            pending_time=scenario.pending_time,
        )
        by_name = EvalTask(
            WorkloadSpec(scenario="steady-state", scale=0.05, seed=7, prep=prep),
            ScalerSpec("rs-hp", 0.7, planning_interval=20.0, monte_carlo_samples=60),
        )
        by_trace = EvalTask(
            WorkloadSpec(trace=trace, prep=prep),
            ScalerSpec("rs-hp", 0.7, planning_interval=20.0, monte_carlo_samples=60),
        )
        rows_name = strip_timing(run_task_rows([by_name], base_seed=3))
        rows_trace = strip_timing(run_task_rows([by_trace], base_seed=3))
        assert rows_name == rows_trace
