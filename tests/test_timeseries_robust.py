"""Tests for robust statistics and filtering."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.timeseries.robust import (
    huber_weights,
    mad,
    median_filter,
    robust_zscore,
    winsorize,
)


class TestMad:
    def test_gaussian_consistency(self):
        rng = np.random.default_rng(0)
        x = rng.normal(scale=2.0, size=50_000)
        assert mad(x) == pytest.approx(2.0, rel=0.05)

    def test_unscaled(self):
        x = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        assert mad(x, scale_to_sigma=False) == pytest.approx(1.0)

    def test_resistant_to_outlier(self):
        x = np.concatenate([np.ones(99), [1e6]])
        assert mad(x) == pytest.approx(0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            mad(np.array([]))


class TestRobustZscore:
    def test_constant_series_zero(self):
        np.testing.assert_allclose(robust_zscore(np.full(10, 3.0)), 0.0)

    def test_outlier_gets_large_score(self):
        x = np.concatenate([np.random.default_rng(1).normal(size=200), [50.0]])
        scores = robust_zscore(x)
        assert scores[-1] > 10.0


class TestWinsorize:
    def test_clips_outliers(self):
        x = np.concatenate([np.random.default_rng(2).normal(size=200), [100.0, -100.0]])
        clipped = winsorize(x, z_limit=5.0)
        assert clipped.max() < 100.0
        assert clipped.min() > -100.0

    def test_preserves_inliers(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=100)
        clipped = winsorize(x, z_limit=10.0)
        np.testing.assert_allclose(clipped, x)

    def test_constant_series_untouched(self):
        x = np.full(20, 4.0)
        np.testing.assert_allclose(winsorize(x), x)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_output_within_original_range(self, values):
        x = np.asarray(values)
        clipped = winsorize(x)
        assert clipped.min() >= x.min() - 1e-9
        assert clipped.max() <= x.max() + 1e-9


class TestHuberWeights:
    def test_small_residuals_weight_one(self):
        weights = huber_weights(np.array([0.0, 0.5, -1.0]), delta=1.345)
        np.testing.assert_allclose(weights, 1.0)

    def test_large_residuals_downweighted(self):
        weights = huber_weights(np.array([10.0, -20.0]), delta=1.0)
        np.testing.assert_allclose(weights, [0.1, 0.05])

    def test_weights_in_unit_interval(self):
        rng = np.random.default_rng(4)
        weights = huber_weights(rng.normal(scale=5.0, size=100))
        assert np.all((weights > 0) & (weights <= 1.0))


class TestMedianFilter:
    def test_window_one_identity(self):
        x = np.array([3.0, 1.0, 2.0])
        np.testing.assert_allclose(median_filter(x, 1), x)

    def test_removes_isolated_spike(self):
        x = np.ones(11)
        x[5] = 100.0
        filtered = median_filter(x, 3)
        assert filtered[5] == 1.0

    def test_monotone_series_roughly_preserved(self):
        x = np.arange(20, dtype=float)
        filtered = median_filter(x, 5)
        np.testing.assert_allclose(filtered[2:-2], x[2:-2])
