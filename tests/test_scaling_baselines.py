"""Tests for the Backup Pool and Adaptive Backup Pool baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.scaling.adaptive_backup_pool import AdaptiveBackupPoolScaler
from repro.scaling.backup_pool import BackupPoolScaler, ReactiveScaler
from repro.scaling.base import PlanningContext, ScalingResponse
from repro.simulation.engine import ScalingPerQuerySimulator
from repro.types import ArrivalTrace


def _context(time: float, arrivals: np.ndarray, created: int, scheduled: int = 0):
    return PlanningContext(
        time=time,
        n_arrivals=arrivals.size,
        arrival_history=arrivals,
        created_unassigned=created,
        ready_unassigned=created,
        scheduled_creations=scheduled,
    )


class TestBackupPoolScaler:
    def test_initialize_fills_pool(self):
        scaler = BackupPoolScaler(3)
        response = scaler.initialize(_context(0.0, np.array([]), created=0))
        assert len(response.actions) == 3
        assert all(a.creation_time == 0.0 for a in response.actions)

    def test_replenishes_after_arrival(self):
        scaler = BackupPoolScaler(2)
        response = scaler.on_query_arrival(_context(10.0, np.array([10.0]), created=1))
        assert len(response.actions) == 1

    def test_does_not_overfill(self):
        scaler = BackupPoolScaler(2)
        response = scaler.on_query_arrival(_context(10.0, np.array([10.0]), created=2))
        assert len(response.actions) == 0

    def test_zero_pool_never_creates(self):
        scaler = BackupPoolScaler(0)
        assert len(scaler.initialize(_context(0.0, np.array([]), 0)).actions) == 0
        assert len(scaler.on_query_arrival(_context(5.0, np.array([5.0]), 0)).actions) == 0

    def test_negative_pool_rejected(self):
        with pytest.raises(ValidationError):
            BackupPoolScaler(-1)

    def test_reactive_scaler_is_bp_zero(self):
        scaler = ReactiveScaler()
        assert scaler.pool_size == 0
        assert scaler.name == "Reactive"


class TestBackupPoolEndToEnd:
    def test_pool_guarantees_hits_for_sparse_arrivals(self, sim_config):
        # Arrivals far apart relative to pending time: with a pool of one the
        # replenished instance is always ready before the next arrival.
        arrivals = np.arange(1, 11) * 100.0
        trace = ArrivalTrace(arrivals, 5.0, horizon=1100.0)
        simulator = ScalingPerQuerySimulator(sim_config)
        result = simulator.replay(trace, BackupPoolScaler(1))
        # First query arrives at t=100 with the instance created at t=0: hit.
        assert result.hit_rate == 1.0

    def test_reactive_never_hits(self, sim_config, small_poisson_trace):
        simulator = ScalingPerQuerySimulator(sim_config)
        result = simulator.replay(small_poisson_trace, ReactiveScaler())
        assert result.hit_rate == 0.0
        # Every response time is pending + processing.
        np.testing.assert_allclose(
            result.response_times,
            sim_config.pending_time + small_poisson_trace.processing_times,
        )

    def test_larger_pool_more_hits_more_cost(self, sim_config, small_poisson_trace):
        simulator = ScalingPerQuerySimulator(sim_config)
        small = simulator.replay(small_poisson_trace, BackupPoolScaler(1))
        large = simulator.replay(small_poisson_trace, BackupPoolScaler(5))
        assert large.hit_rate >= small.hit_rate
        assert large.total_cost >= small.total_cost


class TestAdaptiveBackupPool:
    def test_planning_interval_exposed(self):
        scaler = AdaptiveBackupPoolScaler(10.0, update_interval=600.0)
        assert scaler.planning_interval == 600.0

    def test_target_tracks_recent_rate(self):
        scaler = AdaptiveBackupPoolScaler(10.0, rate_window=100.0)
        arrivals = np.linspace(900.0, 1000.0, 20)  # 0.2 queries/second recently
        response = scaler.on_planning_tick(_context(1000.0, arrivals, created=0))
        assert scaler.current_target == int(np.ceil(0.2 * 10.0))
        assert len(response.actions) == scaler.current_target

    def test_scales_in_when_target_drops(self):
        scaler = AdaptiveBackupPoolScaler(10.0, rate_window=100.0)
        # No recent arrivals: target drops to zero, existing pool scaled in.
        response = scaler.on_planning_tick(_context(5000.0, np.array([100.0]), created=3))
        assert scaler.current_target == 0
        assert response.scale_in == 3

    def test_arrival_replenishes_to_target(self):
        scaler = AdaptiveBackupPoolScaler(20.0, rate_window=100.0)
        arrivals = np.linspace(900.0, 1000.0, 10)
        scaler.on_planning_tick(_context(1000.0, arrivals, created=0))
        target = scaler.current_target
        assert target >= 1
        response = scaler.on_query_arrival(
            _context(1001.0, np.append(arrivals, 1001.0), created=target - 1)
        )
        assert len(response.actions) == 1

    def test_arrival_does_not_scale_in(self):
        scaler = AdaptiveBackupPoolScaler(1.0, rate_window=100.0)
        response = scaler.on_query_arrival(_context(1000.0, np.array([999.0]), created=5))
        assert response.scale_in == 0

    def test_reset_clears_target(self):
        scaler = AdaptiveBackupPoolScaler(10.0)
        scaler._target = 7
        scaler.reset()
        assert scaler.current_target == 0

    def test_negative_factor_rejected(self):
        with pytest.raises(ValidationError):
            AdaptiveBackupPoolScaler(-1.0)

    def test_end_to_end_cost_scales_with_factor(self, sim_config, small_poisson_trace):
        simulator = ScalingPerQuerySimulator(sim_config)
        low = simulator.replay(small_poisson_trace, AdaptiveBackupPoolScaler(2.0))
        high = simulator.replay(small_poisson_trace, AdaptiveBackupPoolScaler(20.0))
        assert high.total_cost >= low.total_cost
        assert high.hit_rate >= low.hit_rate


class TestScalingResponseHelpers:
    def test_empty(self):
        response = ScalingResponse.empty()
        assert not response.actions
        assert response.scale_in == 0

    def test_create_now(self):
        response = ScalingResponse.create_now(5.0, 3)
        assert len(response.actions) == 3
        assert all(a.creation_time == 5.0 for a in response.actions)

    def test_recent_arrival_rate(self):
        context = _context(100.0, np.array([10.0, 95.0, 99.0]), created=0)
        assert context.recent_arrival_rate(10.0) == pytest.approx(0.2)
        assert context.recent_arrival_rate(0.0) == 0.0
