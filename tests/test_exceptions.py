"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import exceptions


@pytest.mark.parametrize(
    "exc_class",
    [
        exceptions.ConfigurationError,
        exceptions.ValidationError,
        exceptions.TraceError,
        exceptions.TraceFormatError,
        exceptions.PeriodicityDetectionError,
        exceptions.ModelNotFittedError,
        exceptions.ConvergenceError,
        exceptions.InfeasibleConstraintError,
        exceptions.SimulationError,
        exceptions.PlanningError,
        exceptions.ExperimentError,
    ],
)
def test_all_derive_from_base(exc_class):
    assert issubclass(exc_class, exceptions.RobustScalerError)


def test_trace_format_error_is_trace_error():
    assert issubclass(exceptions.TraceFormatError, exceptions.TraceError)


def test_catching_base_catches_subclass():
    with pytest.raises(exceptions.RobustScalerError):
        raise exceptions.InfeasibleConstraintError("cannot meet QoS")
