"""Tests for the sort-and-search stochastic root-finding solvers (Algorithm 3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InfeasibleConstraintError, ValidationError
from repro.optimization.sort_and_search import (
    expected_idle_time,
    expected_waiting_time,
    solve_idle_time_budget,
    solve_waiting_time_budget,
)


def _samples(seed: int, n: int = 400, rate: float = 0.5, pending: float = 4.0):
    rng = np.random.default_rng(seed)
    xi = rng.exponential(1.0 / rate, size=n)
    tau = np.full(n, pending)
    return xi, tau


class TestEmpiricalExpectations:
    def test_waiting_time_limits(self):
        xi, tau = _samples(0)
        # Creating infinitely early -> no waiting; creating at the last
        # possible moment (x = max arrival) -> full pending wait.
        assert expected_waiting_time(-1e9, xi, tau) == pytest.approx(0.0)
        assert expected_waiting_time(float(xi.max()), xi, tau) == pytest.approx(tau.mean())

    def test_waiting_time_monotone_in_x(self):
        xi, tau = _samples(1)
        values = [expected_waiting_time(x, xi, tau) for x in np.linspace(-10, 30, 50)]
        assert np.all(np.diff(values) >= -1e-12)

    def test_idle_time_limits(self):
        xi, tau = _samples(2)
        assert expected_idle_time(1e9, xi, tau) == pytest.approx(0.0)
        expected_at_zero = np.maximum(xi - tau, 0.0).mean()
        assert expected_idle_time(0.0, xi, tau) == pytest.approx(expected_at_zero)

    def test_idle_time_monotone_decreasing(self):
        xi, tau = _samples(3)
        values = [expected_idle_time(x, xi, tau) for x in np.linspace(-10, 30, 50)]
        assert np.all(np.diff(values) <= 1e-12)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            expected_waiting_time(0.0, np.array([1.0]), np.array([1.0, 2.0]))


class TestSolveWaitingTimeBudget:
    def test_root_property(self):
        xi, tau = _samples(4)
        budget = 1.5
        x_star = solve_waiting_time_budget(xi, tau, budget)
        assert expected_waiting_time(x_star, xi, tau) == pytest.approx(budget, abs=1e-6)

    def test_budget_zero_gives_no_waiting(self):
        xi, tau = _samples(5)
        x_star = solve_waiting_time_budget(xi, tau, 0.0)
        assert expected_waiting_time(x_star, xi, tau) == pytest.approx(0.0, abs=1e-9)

    def test_budget_above_mean_pending_returns_latest_arrival(self):
        xi, tau = _samples(6)
        x_star = solve_waiting_time_budget(xi, tau, float(tau.mean()) + 1.0)
        assert x_star == pytest.approx(float(xi.max()))

    def test_matches_brute_force_bisection(self):
        xi, tau = _samples(7, n=300)
        budget = 2.0
        x_star = solve_waiting_time_budget(xi, tau, budget)
        # Brute force: bisect on the monotone empirical function.
        lo, hi = float((xi - tau).min()) - 1.0, float(xi.max()) + 1.0
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if expected_waiting_time(mid, xi, tau) < budget:
                lo = mid
            else:
                hi = mid
        assert x_star == pytest.approx(0.5 * (lo + hi), abs=1e-3)

    def test_single_sample(self):
        x_star = solve_waiting_time_budget(np.array([10.0]), np.array([4.0]), 1.0)
        # E(x) = (4 - (10 - x)+)+ ; equals 1 at x = 7.
        assert x_star == pytest.approx(7.0)

    def test_empty_samples_rejected(self):
        with pytest.raises(ValidationError):
            solve_waiting_time_budget(np.array([]), np.array([]), 1.0)

    @given(
        st.integers(min_value=1, max_value=200),
        st.floats(min_value=0.0, max_value=10.0),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_root_property_random(self, n, budget, seed):
        rng = np.random.default_rng(seed)
        xi = rng.exponential(5.0, size=n)
        tau = rng.uniform(0.0, 6.0, size=n)
        x_star = solve_waiting_time_budget(xi, tau, budget)
        achieved = expected_waiting_time(x_star, xi, tau)
        if budget >= tau.mean():
            assert achieved <= budget + 1e-9
        else:
            assert achieved == pytest.approx(budget, abs=1e-6)


class TestSolveIdleTimeBudget:
    def test_budget_already_met_at_zero(self):
        xi = np.array([1.0, 2.0, 3.0])
        tau = np.array([5.0, 5.0, 5.0])
        assert solve_idle_time_budget(xi, tau, 0.5) == 0.0

    def test_root_property(self):
        xi, tau = _samples(8, rate=0.2, pending=2.0)
        budget = 0.5
        x_star = solve_idle_time_budget(xi, tau, budget)
        assert expected_idle_time(x_star, xi, tau) == pytest.approx(budget, abs=1e-6)

    def test_negative_budget_rejected(self):
        xi, tau = _samples(9)
        with pytest.raises(InfeasibleConstraintError):
            solve_idle_time_budget(xi, tau, -1.0)

    def test_result_non_negative(self):
        xi, tau = _samples(10)
        assert solve_idle_time_budget(xi, tau, 0.0) >= 0.0

    @given(
        st.integers(min_value=1, max_value=200),
        st.floats(min_value=0.0, max_value=20.0),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_budget_respected_random(self, n, budget, seed):
        rng = np.random.default_rng(seed)
        xi = rng.exponential(8.0, size=n)
        tau = rng.uniform(0.0, 4.0, size=n)
        x_star = solve_idle_time_budget(xi, tau, budget)
        assert x_star >= 0.0
        assert expected_idle_time(x_star, xi, tau) <= budget + 1e-6
