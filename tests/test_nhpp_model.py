"""Tests for the high-level NHPP workload model and its extrapolation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import NHPPConfig
from repro.exceptions import ModelNotFittedError, ValidationError
from repro.nhpp.extrapolation import extrapolate_intensity
from repro.nhpp.intensity import PiecewiseConstantIntensity
from repro.nhpp.model import NHPPModel
from repro.nhpp.sampling import sample_arrival_times, sample_counts
from repro.nhpp.validation import ks_statistic_time_rescaling, rescaled_interarrival_times
from repro.traces.synthetic import beta_bump_intensity
from repro.types import QPSSeries


def _periodic_series(period_bins: int, n_periods: int, seed: int) -> tuple[QPSSeries, np.ndarray]:
    bin_seconds = 60.0
    n_bins = period_bins * n_periods
    times = (np.arange(n_bins) + 0.5) * bin_seconds
    truth = beta_bump_intensity(
        times, peak=0.5, period_seconds=period_bins * bin_seconds, exponent=6.0, base=0.02
    )
    intensity = PiecewiseConstantIntensity(truth, bin_seconds, extrapolation="periodic")
    counts = sample_counts(intensity, n_bins * bin_seconds, seed)
    return QPSSeries(counts, bin_seconds, name="periodic"), truth


class TestNHPPModelFit:
    def test_unfitted_model_raises(self):
        model = NHPPModel()
        with pytest.raises(ModelNotFittedError):
            _ = model.fit_result
        with pytest.raises(ModelNotFittedError):
            model.forecast()

    def test_fit_on_series_recovers_intensity(self, fast_nhpp):
        series, truth = _periodic_series(60, 6, seed=0)
        model = NHPPModel(fast_nhpp).fit(series, period_bins=60)
        estimate = model.fit_result.intensity
        mae = np.mean(np.abs(estimate - truth))
        assert mae < 0.05
        assert model.period_bins == 60
        assert model.period_seconds == 3600.0

    def test_fit_detects_period_automatically(self, fast_nhpp):
        series, _ = _periodic_series(60, 8, seed=1)
        model = NHPPModel(fast_nhpp).fit(series)
        assert model.is_fitted
        assert abs(model.period_bins - 60) <= 3

    def test_fit_on_trace_aggregates_internally(self, fast_nhpp, small_poisson_trace):
        model = NHPPModel(fast_nhpp, bin_seconds=120.0).fit(
            small_poisson_trace, detect_periodicity=False
        )
        assert model.fit_result.bin_seconds == 120.0
        # The homogeneous rate should be recovered approximately.
        assert float(np.median(model.fit_result.intensity)) == pytest.approx(0.3, rel=0.3)

    def test_fit_with_period_zero_disables_penalty(self, fast_nhpp):
        series, _ = _periodic_series(40, 4, seed=2)
        model = NHPPModel(fast_nhpp).fit(series, period_bins=0)
        assert model.period_bins == 0

    def test_invalid_data_type_rejected(self, fast_nhpp):
        with pytest.raises(ValidationError):
            NHPPModel(fast_nhpp).fit([1, 2, 3])

    def test_intensity_at_matches_fitted(self, fast_nhpp):
        series, _ = _periodic_series(30, 4, seed=3)
        model = NHPPModel(fast_nhpp).fit(series, period_bins=30)
        values = model.fit_result.intensity
        assert model.intensity_at(30.0) == pytest.approx(values[0])
        assert model.intensity_at(90.0) == pytest.approx(values[1])

    def test_expected_count(self, fast_nhpp):
        series, _ = _periodic_series(30, 4, seed=4)
        model = NHPPModel(fast_nhpp).fit(series, period_bins=30)
        total = model.expected_count(0.0, series.duration)
        assert total == pytest.approx(float(series.counts.sum()), rel=0.25)
        with pytest.raises(ValidationError):
            model.expected_count(10.0, 5.0)

    def test_min_intensity_floor_applied(self):
        series = QPSSeries(np.zeros(50) + 0.0, 60.0)
        config = NHPPConfig(min_intensity=1e-6)
        model = NHPPModel(config).fit(series, period_bins=0, detect_periodicity=False)
        assert np.all(model.fit_result.intensity >= 1e-6)


class TestForecast:
    def test_periodic_forecast_repeats_pattern(self, fast_nhpp):
        series, truth = _periodic_series(60, 6, seed=5)
        model = NHPPModel(fast_nhpp).fit(series, period_bins=60)
        forecast = model.forecast()
        # The forecast at phase p should roughly match the truth at phase p.
        future_times = (np.arange(60) + 0.5) * 60.0
        predicted = np.asarray(forecast.value(future_times))
        expected = truth[:60]  # truth is periodic, forecast starts at phase 0
        assert np.corrcoef(predicted, expected)[0, 1] > 0.9

    def test_aperiodic_forecast_holds_recent_level(self, fast_nhpp):
        rng = np.random.default_rng(6)
        counts = rng.poisson(12.0, size=100)
        series = QPSSeries(counts, 60.0)
        model = NHPPModel(fast_nhpp).fit(series, period_bins=0)
        forecast = model.forecast()
        assert forecast.value(10_000.0) == pytest.approx(0.2, rel=0.3)

    def test_forecast_horizon_materialized(self, fast_nhpp):
        series, _ = _periodic_series(30, 4, seed=7)
        model = NHPPModel(fast_nhpp).fit(series, period_bins=30)
        forecast = model.forecast(horizon_seconds=7200.0)
        assert forecast.duration >= 7200.0


class TestExtrapolateIntensity:
    def test_periodic_template_uses_median_of_cycles(self):
        period = 4
        values = np.array([1.0, 2.0, 3.0, 4.0] * 3, dtype=float)
        values[0:4] = [100.0, 200.0, 300.0, 400.0]  # one anomalous cycle
        forecast = extrapolate_intensity(values, 10.0, period_bins=period)
        np.testing.assert_allclose(forecast.values, [1.0, 2.0, 3.0, 4.0])

    def test_phase_alignment(self):
        """The forecast's first bin must continue the cycle where training ended."""
        period = 5
        pattern = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        # Training data: 3 complete cycles plus 2 extra bins -> ends mid-cycle.
        values = np.concatenate([np.tile(pattern, 3), pattern[:2]])
        forecast = extrapolate_intensity(values, 10.0, period_bins=period)
        # Next phase after the last training bin (pattern[1]) is pattern[2].
        assert forecast.value(0.0) == pytest.approx(3.0)
        assert forecast.value(10.0) == pytest.approx(4.0)

    def test_aperiodic_uses_trailing_median(self):
        values = np.concatenate([np.full(50, 10.0), np.full(30, 2.0)])
        forecast = extrapolate_intensity(values, 60.0, period_bins=None)
        assert forecast.value(0.0) == pytest.approx(2.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValidationError):
            extrapolate_intensity(np.array([]), 60.0)
        with pytest.raises(ValidationError):
            extrapolate_intensity(np.array([-1.0]), 60.0)


class TestGoodnessOfFit:
    def test_rescaled_interarrivals_exponential_under_true_model(self):
        intensity = PiecewiseConstantIntensity(
            np.array([0.2, 1.0, 0.5, 2.0]), 500.0, extrapolation="periodic"
        )
        arrivals = sample_arrival_times(intensity, 8000.0, 8)
        statistic, p_value = ks_statistic_time_rescaling(arrivals, intensity)
        assert p_value > 0.01

    def test_wrong_model_rejected(self):
        true_intensity = PiecewiseConstantIntensity(
            np.array([0.05, 2.0]), 1000.0, extrapolation="periodic"
        )
        wrong_intensity = PiecewiseConstantIntensity(
            np.array([1.0]), 1000.0, extrapolation="hold"
        )
        arrivals = sample_arrival_times(true_intensity, 8000.0, 9)
        _, p_true = ks_statistic_time_rescaling(arrivals, true_intensity)
        _, p_wrong = ks_statistic_time_rescaling(arrivals, wrong_intensity)
        assert p_wrong < p_true

    def test_rescaled_interarrivals_positive(self):
        intensity = PiecewiseConstantIntensity(np.array([0.5]), 60.0, extrapolation="hold")
        arrivals = sample_arrival_times(intensity, 2000.0, 10)
        rescaled = rescaled_interarrival_times(arrivals, intensity)
        assert rescaled.size == arrivals.size
        assert np.all(rescaled >= 0)

    def test_requires_two_arrivals(self):
        intensity = PiecewiseConstantIntensity(np.array([0.5]), 60.0)
        with pytest.raises(ValidationError):
            rescaled_interarrival_times(np.array([1.0]), intensity)
