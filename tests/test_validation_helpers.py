"""Tests for the shared input-validation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro._validation import (
    as_1d_float_array,
    as_1d_int_array,
    check_in_range,
    check_integer,
    check_non_negative,
    check_positive,
    check_probability,
    check_same_length,
    check_sorted,
)
from repro.exceptions import ValidationError


class TestAs1dFloatArray:
    def test_converts_list(self):
        out = as_1d_float_array([1, 2, 3])
        assert out.dtype == np.float64
        assert out.tolist() == [1.0, 2.0, 3.0]

    def test_copies_input_array(self):
        original = np.array([1.0, 2.0])
        out = as_1d_float_array(original)
        out[0] = 99.0
        assert original[0] == 1.0

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            as_1d_float_array(np.zeros((2, 2)))

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            as_1d_float_array([1.0, float("nan")])

    def test_rejects_inf(self):
        with pytest.raises(ValidationError):
            as_1d_float_array([1.0, float("inf")])

    def test_empty_ok(self):
        assert as_1d_float_array([]).size == 0


class TestAs1dIntArray:
    def test_accepts_integers(self):
        out = as_1d_int_array([1, 2, 3])
        assert out.dtype == np.int64

    def test_accepts_integral_floats(self):
        out = as_1d_int_array([1.0, 2.0])
        assert out.tolist() == [1, 2]

    def test_rejects_fractional(self):
        with pytest.raises(ValidationError):
            as_1d_int_array([1.5])

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            as_1d_int_array(np.zeros((2, 2), dtype=int))


class TestScalarChecks:
    def test_check_positive_accepts(self):
        assert check_positive(0.5, "x") == 0.5

    @pytest.mark.parametrize("value", [0.0, -1.0, float("nan"), float("inf")])
    def test_check_positive_rejects(self, value):
        with pytest.raises(ValidationError):
            check_positive(value, "x")

    def test_check_non_negative_accepts_zero(self):
        assert check_non_negative(0.0, "x") == 0.0

    def test_check_non_negative_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_non_negative(-0.1, "x")

    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_check_probability_inclusive(self, value):
        assert check_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.1, 1.1])
    def test_check_probability_rejects_out_of_range(self, value):
        with pytest.raises(ValidationError):
            check_probability(value, "p")

    def test_check_probability_exclusive(self):
        with pytest.raises(ValidationError):
            check_probability(0.0, "p", inclusive=False)

    def test_check_in_range(self):
        assert check_in_range(5.0, "x", 0.0, 10.0) == 5.0
        with pytest.raises(ValidationError):
            check_in_range(11.0, "x", 0.0, 10.0)

    def test_check_integer(self):
        assert check_integer(3, "n") == 3
        with pytest.raises(ValidationError):
            check_integer(3.5, "n")
        with pytest.raises(ValidationError):
            check_integer(True, "n")
        with pytest.raises(ValidationError):
            check_integer(0, "n", minimum=1)


class TestSequenceChecks:
    def test_check_sorted_accepts_ties(self):
        check_sorted(np.array([1.0, 1.0, 2.0]), "x")

    def test_check_sorted_strict_rejects_ties(self):
        with pytest.raises(ValidationError):
            check_sorted(np.array([1.0, 1.0]), "x", strict=True)

    def test_check_sorted_rejects_descending(self):
        with pytest.raises(ValidationError):
            check_sorted(np.array([2.0, 1.0]), "x")

    def test_check_same_length(self):
        check_same_length("a", [1, 2], "b", [3, 4])
        with pytest.raises(ValidationError):
            check_same_length("a", [1], "b", [1, 2])
