"""Unit tests for the arrival-kernel machinery (repro.simulation.kernels).

The differential suites (``test_engine_parity.py`` /
``test_engine_properties.py``) prove the kernel engine end to end; these
tests pin the module's internals directly — the closed-form draw plan, the
equivalence of the vectorized FIFO branch and the scalar sorted-pool core,
the backend gating, and the policy declarations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.scaling.adaptive_backup_pool import AdaptiveBackupPoolScaler
from repro.scaling.backup_pool import BackupPoolScaler, ReactiveScaler
from repro.scaling.base import Autoscaler
from repro.simulation.kernels import (
    JIT_BACKEND,
    NUMBA_AVAILABLE,
    KernelState,
    PoolTopUpKernel,
    plan_pool_topup,
    scalar_backend,
)


def _brute_force_plan(pool_size: int, n_arrivals: int, target: int):
    """Replay the reference engine's size recurrence one arrival at a time."""
    draws = created = 0
    size = pool_size
    for _ in range(n_arrivals):
        if size > 0:
            size -= 1
        else:
            draws += 1  # cold start
        deficit = target - size
        if deficit > 0:
            draws += deficit
            created += deficit
            size += deficit
    return draws, created


class TestPlanPoolTopUp:
    def test_matches_brute_force_on_full_grid(self):
        for s0 in range(7):
            for m in range(9):
                for target in range(6):
                    assert plan_pool_topup(s0, m, target) == _brute_force_plan(
                        s0, m, target
                    ), f"plan diverged at s0={s0}, m={m}, target={target}"

    def test_empty_chunk_plans_nothing(self):
        assert plan_pool_topup(5, 0, 3) == (0, 0)

    def test_zero_target_only_cold_starts(self):
        n_draws, n_created = plan_pool_topup(2, 10, 0)
        assert (n_draws, n_created) == (8, 0)


def _make_state(pool_creation, latency, pending_value, m):
    """A KernelState over a deterministic-pending pool plus blank outputs."""
    pool_creation = np.asarray(pool_creation, dtype=float)
    pool_pending = np.full(pool_creation.size, float(pending_value))
    pool_ready = pool_creation + latency + pool_pending
    return KernelState(
        pool_ready=pool_ready,
        pool_creation=pool_creation,
        pool_pending=pool_pending,
        latency=latency,
        fifo_pool=True,
        begin=0,
        hit=np.zeros(m, dtype=bool),
        waiting=np.zeros(m, dtype=float),
        creation=np.zeros(m, dtype=float),
        ready=np.zeros(m, dtype=float),
        start=np.zeros(m, dtype=float),
        pending=np.zeros(m, dtype=float),
        proactive=np.zeros(m, dtype=bool),
    )


_OUTPUT_FIELDS = ("hit", "waiting", "creation", "ready", "start", "pending", "proactive")


class TestFifoScalarEquivalence:
    """With deterministic pending the FIFO branch and the scalar core must
    produce identical outputs and identical surviving pools."""

    @pytest.mark.parametrize("s0", [0, 1, 3, 6])
    @pytest.mark.parametrize("target", [0, 1, 2, 5])
    @pytest.mark.parametrize("m", [1, 4, 17])
    def test_branches_agree(self, s0, target, m):
        rng = np.random.default_rng(100 * s0 + 10 * target + m)
        latency, pending_value = 0.25, 2.0
        arrivals = np.cumsum(rng.exponential(1.0, m)) + 5.0
        pool_creation = np.sort(rng.uniform(0.0, 4.0, s0))
        n_draws, _ = plan_pool_topup(s0, m, target)
        draws = np.full(n_draws, pending_value)
        kernel = PoolTopUpKernel(lambda: target)

        fifo_state = _make_state(pool_creation, latency, pending_value, m)
        fifo = kernel._run_fifo(fifo_state, arrivals, draws, target)
        scalar_state = _make_state(pool_creation, latency, pending_value, m)
        scalar = kernel._run_scalar(scalar_state, arrivals, draws, target)

        for field in _OUTPUT_FIELDS:
            np.testing.assert_array_equal(
                getattr(fifo_state, field),
                getattr(scalar_state, field),
                err_msg=f"output column {field!r} diverged",
            )
        for fifo_arr, scalar_arr, label in zip(
            fifo, scalar, ("ready", "creation", "pending", "order")
        ):
            np.testing.assert_array_equal(
                fifo_arr, scalar_arr, err_msg=f"survivor column {label!r} diverged"
            )

    def test_scalar_core_handles_jittered_draws(self):
        """The scalar core must keep the pool sorted under non-FIFO draws."""
        rng = np.random.default_rng(9)
        m, target, s0 = 25, 3, 2
        arrivals = np.cumsum(rng.exponential(1.0, m))
        pool_creation = np.array([0.1, 0.2])
        n_draws, _ = plan_pool_topup(s0, m, target)
        draws = rng.uniform(0.5, 6.0, n_draws)  # jitter breaks FIFO ordering
        kernel = PoolTopUpKernel(lambda: target)
        state = _make_state(pool_creation, 0.0, 1.0, m)
        surv_ready, _, _, surv_order = kernel._run_scalar(
            state, arrivals, draws, target
        )
        assert np.all(np.diff(surv_ready) >= 0.0)
        assert surv_ready.size == target
        assert len(set(surv_order.tolist())) == surv_order.size
        # Every served query got a consistent lifecycle.
        assert np.all(state.start >= state.ready - 1e-12)
        assert np.all(state.waiting >= 0.0)


class TestBackendGating:
    def test_backend_matches_availability(self):
        assert JIT_BACKEND in ("numba", "numpy")
        assert scalar_backend() == JIT_BACKEND
        assert (JIT_BACKEND == "numba") == NUMBA_AVAILABLE

    def test_repro_jit_zero_forces_numpy(self):
        """REPRO_JIT=0 must disable the numba backend even when installed."""
        import os
        import subprocess
        import sys
        from pathlib import Path

        src = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ)
        env["REPRO_JIT"] = "0"
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.simulation.kernels import scalar_backend;"
                "print(scalar_backend())",
            ],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        assert out.stdout.strip() == "numpy"


class TestPolicyDeclarations:
    def test_base_policy_has_no_kernel(self):
        class Plain(Autoscaler):
            pass

        assert Plain().arrival_kernel() is None

    @pytest.mark.parametrize(
        "factory",
        [lambda: BackupPoolScaler(3), lambda: AdaptiveBackupPoolScaler(2.0)],
        ids=["bp", "adapbp"],
    )
    def test_top_up_policies_declare_the_kernel(self, factory):
        kernel = factory().arrival_kernel()
        assert isinstance(kernel, PoolTopUpKernel)

    def test_bp_kernel_reads_the_pool_size(self):
        scaler = BackupPoolScaler(4)
        assert scaler.arrival_kernel().begin_chunk() == 4

    def test_adapbp_kernel_tracks_the_live_target(self):
        scaler = AdaptiveBackupPoolScaler(2.0)
        kernel = scaler.arrival_kernel()
        assert kernel.begin_chunk() == 0
        scaler._target = 7
        assert kernel.begin_chunk() == 7

    def test_reactive_inherits_but_stays_passive(self):
        scaler = ReactiveScaler()
        assert isinstance(scaler.arrival_kernel(), PoolTopUpKernel)
        assert scaler.arrival_hook_is_passive

    def test_negative_target_declines_the_chunk(self):
        assert PoolTopUpKernel(lambda: -1).begin_chunk() is None
        assert PoolTopUpKernel(lambda: None).begin_chunk() is None
