"""Integration guards for the telemetry layer.

Three properties must hold end to end:

* **parity** — enabling telemetry changes nothing about the simulated
  rows, on either engine (the recorders observe, never perturb);
* **zero overhead when off** — the no-op recorder path performs no
  recorder calls in the batched engine's hot loop, so its cost cannot
  grow with trace size;
* **completeness** — a telemetry-enabled Session run produces one
  snapshot artifact carrying engine, runtime, cache and store metrics
  plus spans, retrievable via the ``repro telemetry`` CLI.
"""

from __future__ import annotations

import csv
import io
from contextlib import redirect_stderr, redirect_stdout

import numpy as np
import pytest

from repro.api import Session
from repro.cli import main
from repro.config import SimulationConfig
from repro.nhpp.sampling import sample_homogeneous_arrivals
from repro.scaling.backup_pool import BackupPoolScaler, ReactiveScaler
from repro.simulation import create_simulator
from repro.store import resolve_store
from repro.telemetry import NullRecorder, Recorder, load_snapshot, use
from repro.types import ArrivalTrace

#: SimulationResult columns compared bit-for-bit in the parity guard.
_COLUMNS = (
    "hits",
    "waiting_times",
    "response_times",
    "creation_times",
    "ready_times",
    "start_times",
    "deletion_times",
    "pending_times",
    "proactive_flags",
    "lifecycle_costs",
)


def _trace(n_seconds: float = 1200.0, seed: int = 5) -> ArrivalTrace:
    arrivals = sample_homogeneous_arrivals(0.4, n_seconds, seed)
    return ArrivalTrace(arrivals, 12.0, name="telemetry-guard", horizon=n_seconds)


def _replay(engine: str, trace: ArrivalTrace, scaler_factory):
    simulator = create_simulator(SimulationConfig(pending_time=9.0, engine=engine))
    return simulator.replay(trace, scaler_factory())


class TestParityGuard:
    @pytest.mark.parametrize("engine", ["reference", "batched"])
    @pytest.mark.parametrize(
        "scaler_factory", [ReactiveScaler, lambda: BackupPoolScaler(2)]
    )
    def test_rows_identical_with_telemetry_on_and_off(self, engine, scaler_factory):
        trace = _trace()
        off = _replay(engine, trace, scaler_factory)
        with use(Recorder()):
            on = _replay(engine, trace, scaler_factory)
        for column in _COLUMNS:
            np.testing.assert_array_equal(
                getattr(off, column),
                getattr(on, column),
                err_msg=f"telemetry perturbed column {column!r} on {engine}",
            )
        assert off.unused_instance_cost == on.unused_instance_cost
        assert off.total_cost == on.total_cost


class _CountingNull(NullRecorder):
    """A disabled recorder that counts every method call it receives."""

    def __init__(self) -> None:
        self.calls = 0

    def counter(self, name):
        self.calls += 1
        return super().counter(name)

    def gauge(self, name):
        self.calls += 1
        return super().gauge(name)

    def histogram(self, name, buckets=None):
        self.calls += 1
        return super().histogram(name, buckets)

    def inc(self, name, amount=1):
        self.calls += 1

    def set_gauge(self, name, value):
        self.calls += 1

    def observe(self, name, value):
        self.calls += 1

    def span(self, name):
        self.calls += 1
        return super().span(name)


class TestOverheadGuard:
    def test_disabled_recorder_calls_independent_of_trace_size(self):
        """The no-op path must not scale with queries: same (zero) calls at 4x."""
        counts = {}
        for label, seconds in (("small", 600.0), ("large", 2400.0)):
            counting = _CountingNull()
            with use(counting):
                _replay("batched", _trace(seconds), ReactiveScaler)
            counts[label] = counting.calls
        assert counts["small"] == counts["large"] == 0

    def test_disabled_recorder_calls_reference_engine(self):
        counting = _CountingNull()
        with use(counting):
            _replay("reference", _trace(600.0), ReactiveScaler)
        assert counting.calls == 0


def _run_session(run_id: str, workers: int | None = None, **params):
    session = Session(
        store="auto", telemetry=True, run_id=run_id, workers=workers
    )
    result = (
        session.experiment("scenario-sweep")
        .scenario("steady-state")
        .run(scale=0.05, monte_carlo_samples=50, planning_interval=20.0, **params)
    )
    return session, result


class TestSessionTelemetry:
    def test_snapshot_covers_every_layer_and_persists(self):
        session, result = _run_session("itg-run")
        snapshot = result.telemetry
        assert snapshot is not None
        counters = snapshot["counters"]
        # Engine, runtime, cache and store layers all report.
        assert counters["engine.batched.replays"] >= 1
        assert counters["runtime.tasks"] == len(result.rows)
        assert counters["cache.misses"] >= 1
        assert counters["store.writes"] >= 1
        assert snapshot["gauges"]["runtime.workers"] == 1
        assert "runtime.task_seconds" in snapshot["histograms"]
        span_names = {record["name"] for record in snapshot["spans"]}
        assert "experiment.scenario-sweep" in span_names
        assert "fit.admm" in span_names
        assert "task.execute" in span_names
        assert snapshot["provenance"]["experiment"] == "scenario-sweep"
        # And the same payload is addressable by run id in the store.
        loaded = load_snapshot(session.store, "itg-run")
        assert loaded is not None
        assert loaded["counters"]["runtime.tasks"] == counters["runtime.tasks"]

    def test_disabled_by_default(self):
        session = Session(store=None)
        result = (
            session.experiment("scenario-sweep")
            .scenario("steady-state")
            .run(scale=0.05, monte_carlo_samples=50, planning_interval=20.0)
        )
        assert result.telemetry is None

    def test_pool_snapshots_merge(self):
        session, result = _run_session("itg-pool", workers=2)
        snapshot = result.telemetry
        assert snapshot["counters"]["runtime.tasks"] == len(result.rows)
        assert snapshot["gauges"]["runtime.workers"] == 2
        assert snapshot["histograms"]["runtime.queue_wait_seconds"]["count"] >= 1
        ids = [record["id"] for record in snapshot["spans"]]
        assert len(set(ids)) == len(ids)

    def test_telemetry_rows_match_untelemetered_rows(self):
        from repro.runtime import strip_timing

        _, with_telemetry = _run_session("itg-parity")
        session = Session(store=None, telemetry=False)
        without = (
            session.experiment("scenario-sweep")
            .scenario("steady-state")
            .run(scale=0.05, monte_carlo_samples=50, planning_interval=20.0)
        )
        assert strip_timing(with_telemetry.rows) == strip_timing(without.rows)


class TestResultSetExport:
    def test_to_csv_round_trip(self, tmp_path):
        session = Session(store=None)
        result = (
            session.experiment("scenario-sweep")
            .scenario("steady-state")
            .run(scale=0.05, monte_carlo_samples=50, planning_interval=20.0)
        )
        path = result.to_csv(tmp_path / "rows.csv")
        with open(path, newline="") as handle:
            loaded = list(csv.DictReader(handle))
        assert len(loaded) == len(result.rows)
        assert set(loaded[0]) == set(result.columns)
        for original, reloaded in zip(result.rows, loaded):
            for key, value in original.items():
                assert reloaded[key] == str(value)

    def test_to_dicts_returns_copies(self):
        session = Session(store=None)
        result = (
            session.experiment("scenario-sweep")
            .scenario("steady-state")
            .run(scale=0.05, monte_carlo_samples=50, planning_interval=20.0)
        )
        copies = result.to_dicts()
        assert copies == result.rows
        copies[0]["scenario"] = "mutated"
        assert result.rows[0]["scenario"] != "mutated"


def _invoke(argv) -> tuple[int, str, str]:
    out, err = io.StringIO(), io.StringIO()
    with redirect_stdout(out), redirect_stderr(err):
        code = main(argv)
    return code, out.getvalue(), err.getvalue()


_SWEEP_ARGS = [
    "experiment",
    "scenario-sweep",
    "--scenario",
    "steady-state",
    "--scale",
    "0.05",
    "--mc-samples",
    "50",
    "--planning-interval",
    "20.0",
]


class TestTelemetryCLI:
    def test_show_and_diff(self):
        for run_id in ("cli-a", "cli-b"):
            code, _, _ = _invoke(
                _SWEEP_ARGS + ["--telemetry", "--run-id", run_id, "--quiet"]
            )
            assert code == 0
        code, out, _ = _invoke(["telemetry", "show", "cli-a"])
        assert code == 0
        assert "runtime.tasks" in out
        assert "slowest spans" in out
        code, out, _ = _invoke(["telemetry", "diff", "cli-a", "cli-b"])
        assert code == 0
        assert "ratio" in out
        assert "engine.batched.queries" in out

    def test_show_surfaces_kernel_counters(self):
        """A kernel-engine run records the kernel-tier counters and the
        chunk-size histogram, and ``telemetry show`` renders them so
        ``telemetry diff`` can attribute engine speedups."""
        code, _, _ = _invoke(
            _SWEEP_ARGS
            + ["--engine", "kernel", "--telemetry", "--run-id", "cli-kernel", "--quiet"]
        )
        assert code == 0
        code, out, _ = _invoke(["telemetry", "show", "cli-kernel"])
        assert code == 0
        assert "engine.kernel.chunks" in out
        assert "engine.kernel.arrivals" in out
        assert "engine.kernel.chunk_size" in out

    def test_show_missing_run_errors(self):
        code, _, err = _invoke(["telemetry", "show", "no-such-run"])
        assert code == 2
        assert "no telemetry snapshot" in err

    def test_store_info_reports_telemetry_namespace(self):
        code, _, _ = _invoke(
            _SWEEP_ARGS + ["--telemetry", "--run-id", "ns-run", "--quiet"]
        )
        assert code == 0
        code, out, _ = _invoke(["store", "info"])
        assert code == 0
        assert "telemetry" in out

    def test_store_gc_reaps_orphan_snapshots(self):
        from repro.telemetry import Recorder as _Recorder
        from repro.telemetry import build_snapshot, persist_snapshot

        store = resolve_store(None)
        recorder = _Recorder()
        recorder.inc("n")
        persist_snapshot(store, build_snapshot(recorder, run_id="orphan-run"))
        code, out, _ = _invoke(["store", "gc"])
        assert code == 0
        assert "reaped 1 orphaned telemetry snapshots" in out
        assert load_snapshot(store, "orphan-run") is None


class TestQuietUniformity:
    def test_quiet_silences_progress_and_store_lines(self):
        code, _, err = _invoke(_SWEEP_ARGS + ["--quiet"])
        assert code == 0
        assert "[progress]" not in err
        assert "[store]" not in err

    def test_loud_run_prints_store_summary(self):
        code, _, err = _invoke(_SWEEP_ARGS)
        assert code == 0
        assert "[store]" in err

    def test_simulate_quiet_silences_store_line(self):
        base = [
            "simulate",
            "--trace",
            "steady-state",
            "--scaler",
            "reactive",
            "--scale",
            "0.05",
        ]
        code, _, err = _invoke(base)
        assert code == 0
        assert "[store]" in err
        code, _, err = _invoke(base + ["--quiet"])
        assert code == 0
        assert "[store]" not in err
