"""Tests for the robust seasonal-trend decomposition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.timeseries.decomposition import robust_stl


def _seasonal_signal(n: int, period: int, rng: np.random.Generator) -> np.ndarray:
    t = np.arange(n)
    seasonal = 2.0 * np.sin(2 * np.pi * t / period)
    trend = 0.01 * t
    noise = rng.normal(scale=0.2, size=n)
    return 5.0 + trend + seasonal + noise


class TestRobustStl:
    def test_reconstruction_is_exact(self, rng):
        x = _seasonal_signal(240, 24, rng)
        decomposition = robust_stl(x, 24)
        np.testing.assert_allclose(decomposition.reconstructed, x, atol=1e-9)

    def test_seasonal_component_has_period(self, rng):
        period = 24
        x = _seasonal_signal(480, period, rng)
        decomposition = robust_stl(x, period)
        seasonal = decomposition.seasonal
        np.testing.assert_allclose(seasonal[:period], seasonal[period: 2 * period], atol=1e-9)

    def test_strong_seasonality_detected(self, rng):
        x = _seasonal_signal(480, 24, rng)
        decomposition = robust_stl(x, 24)
        assert decomposition.seasonal_strength > 0.7

    def test_noise_only_low_strength(self, rng):
        x = rng.normal(size=400)
        decomposition = robust_stl(x, 24)
        assert decomposition.seasonal_strength < 0.5

    def test_outliers_do_not_corrupt_seasonal(self, rng):
        period = 24
        x = _seasonal_signal(480, period, rng)
        corrupted = x.copy()
        corrupted[100] += 500.0
        clean = robust_stl(x, period).seasonal
        with_outlier = robust_stl(corrupted, period).seasonal
        assert np.max(np.abs(clean - with_outlier)) < 1.0

    def test_missing_values_interpolated(self, rng):
        x = _seasonal_signal(240, 24, rng)
        x[50:55] = np.nan
        decomposition = robust_stl(x, 24)
        assert np.all(np.isfinite(decomposition.trend))
        assert np.all(np.isfinite(decomposition.seasonal))

    def test_period_zero_disables_seasonal(self, rng):
        x = rng.normal(size=100)
        decomposition = robust_stl(x, 0)
        np.testing.assert_allclose(decomposition.seasonal, 0.0)
        assert decomposition.period == 0

    def test_too_short_rejected(self):
        with pytest.raises(ValidationError):
            robust_stl(np.array([1.0, 2.0]), 2)

    def test_all_nan_rejected(self):
        with pytest.raises(ValidationError):
            robust_stl(np.full(10, np.nan), 2)
