"""The adversarial scenario suite and its search experiment.

The suite's contract: every scaler family has at least two recipes that
name the mechanism they attack, the recipes are ordinary registry citizens
under ``adversarial/``, their parameter boxes validate, and the search
experiment demonstrates the point of the exercise — on the worst-case
candidate the *targeted* policy buys strictly more QoS violations per
dollar than at least one panel alternative on the same trace.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.api import Session, run_experiment
from repro.exceptions import WorkloadError
from repro.store import ArtifactStore
from repro.experiments import summarize_adversarial, violation_per_dollar
from repro.runtime import strip_timing
from repro.workloads import (
    ADVERSARIAL_RECIPES,
    DEFAULT_REGISTRY,
    AdversarialRecipe,
    get_recipe,
    recipes_for_target,
    register_adversarial_scenarios,
)
from repro.workloads.adversarial import ADVERSARIAL_PREFIX, TARGET_KINDS
from repro.workloads.registry import ScenarioRegistry


class TestSuiteShape:
    def test_every_family_has_at_least_two_recipes(self):
        for target in TARGET_KINDS:
            assert len(recipes_for_target(target)) >= 2, target

    def test_recipes_registered_under_prefix(self):
        for recipe in ADVERSARIAL_RECIPES.values():
            name = f"{ADVERSARIAL_PREFIX}{recipe.name}"
            assert name in DEFAULT_REGISTRY
            scenario = DEFAULT_REGISTRY.get(name)
            assert "adversarial" in scenario.tags
            assert f"target:{recipe.target}" in scenario.tags

    def test_every_recipe_names_its_mechanism(self):
        for recipe in ADVERSARIAL_RECIPES.values():
            assert recipe.mechanism, recipe.name
            assert recipe.builder.__doc__, recipe.name

    def test_unknown_target_rejected(self):
        with pytest.raises(WorkloadError):
            recipes_for_target("rs-quantum")

    def test_get_recipe_accepts_prefix_and_case(self):
        recipe = next(iter(ADVERSARIAL_RECIPES.values()))
        assert get_recipe(recipe.name) is recipe
        assert get_recipe(f"{ADVERSARIAL_PREFIX}{recipe.name}") is recipe
        assert get_recipe(recipe.name.upper()) is recipe
        with pytest.raises(WorkloadError, match="unknown adversarial recipe"):
            get_recipe("no-such-recipe")

    def test_reregistration_requires_overwrite(self):
        with pytest.raises(WorkloadError, match="already registered"):
            register_adversarial_scenarios()
        # Explicit overwrite into a fresh registry works.
        registry = ScenarioRegistry()
        register_adversarial_scenarios(registry=registry)
        assert len(registry) == len(ADVERSARIAL_RECIPES)

    def test_invalid_recipe_construction_rejected(self):
        recipe = next(iter(ADVERSARIAL_RECIPES.values()))
        with pytest.raises(WorkloadError, match="target"):
            AdversarialRecipe(
                name="x",
                target="not-a-policy",
                mechanism="m",
                builder=recipe.builder,
                bounds=recipe.bounds,
            )
        with pytest.raises(WorkloadError):
            AdversarialRecipe(
                name="x",
                target=recipe.target,
                mechanism="m",
                builder=recipe.builder,
                bounds={"no_such_param": (0.0, 1.0)},
            )


class TestRecipeParameters:
    @pytest.mark.parametrize("name", sorted(ADVERSARIAL_RECIPES))
    def test_defaults_build_a_nonempty_deterministic_trace(self, name):
        recipe = ADVERSARIAL_RECIPES[name]
        scenario = recipe.scenario()
        a = scenario.build_trace(scale=0.03, seed=5)
        b = scenario.build_trace(scale=0.03, seed=5)
        assert a.n_queries > 0
        np.testing.assert_array_equal(a.arrival_times, b.arrival_times)

    def test_unknown_param_rejected(self):
        recipe = next(iter(ADVERSARIAL_RECIPES.values()))
        with pytest.raises(WorkloadError, match="has no parameters"):
            recipe.resolve_params({"definitely_not_a_knob": 1.0})

    def test_sampled_params_stay_in_bounds_and_are_seeded(self):
        for recipe in ADVERSARIAL_RECIPES.values():
            sampled = recipe.sample_params(np.random.default_rng(3))
            again = recipe.sample_params(np.random.default_rng(3))
            assert sampled == again
            for key, (low, high) in recipe.bounds.items():
                assert low <= sampled[key] <= high, (recipe.name, key)

    def test_grid_params_cover_axis_ladders(self):
        recipe = next(iter(ADVERSARIAL_RECIPES.values()))
        grid = recipe.grid_params(3)
        assert len(grid) == 3 * len(recipe.bounds)
        defaults = recipe.defaults()
        for point in grid:
            # Each grid point perturbs exactly one searched axis.
            moved = [k for k in recipe.bounds if point[k] != defaults[k]]
            assert len(moved) <= 1

    def test_variant_scenario_pickles(self):
        recipe = next(iter(ADVERSARIAL_RECIPES.values()))
        values = recipe.sample_params(np.random.default_rng(1))
        scenario = recipe.scenario(values, name="adversarial/pickle-me")
        clone = pickle.loads(pickle.dumps(scenario))
        np.testing.assert_array_equal(
            clone.build_trace(scale=0.02, seed=2).arrival_times,
            scenario.build_trace(scale=0.02, seed=2).arrival_times,
        )


class TestAdversarialExperiment:
    PARAMS = {
        "scenario_names": ["reactive-predictable-cron"],
        "n_candidates": 2,
        "scale": 0.08,
        "seed": 7,
        "monte_carlo_samples": 40,
    }

    @pytest.fixture(scope="class")
    def result_rows(self):
        return run_experiment("adversarial", dict(self.PARAMS), store=None)

    def test_one_row_per_candidate_and_panel_scaler(self, result_rows):
        rows = [r for r in result_rows if "hit_rate" in r]
        assert {r["candidate"] for r in rows} == {0, 1}
        for candidate in (0, 1):
            panel = [r for r in rows if r["candidate"] == candidate]
            assert len(panel) == 6
            assert sum(r["role"] == "target" for r in panel) == 1

    def test_worst_case_marks_exactly_one_candidate(self, result_rows):
        rows = [r for r in result_rows if "hit_rate" in r]
        worst = {r["candidate"] for r in rows if r["worst_case"]}
        assert len(worst) == 1
        for row in rows:
            assert row["violation_per_dollar"] == pytest.approx(
                violation_per_dollar(row)
            )

    def test_target_is_defeated_on_worst_case(self, result_rows):
        summary = summarize_adversarial(result_rows)
        assert len(summary) == 1
        entry = summary[0]
        assert entry["recipe"] == "reactive-predictable-cron"
        assert entry["target"] == "reactive"
        assert entry["defeated"]
        assert entry["target_vpd"] > entry["best_panel_vpd"]

    def test_unknown_recipe_rejected(self):
        with pytest.raises(WorkloadError, match="unknown adversarial recipe"):
            run_experiment(
                "adversarial",
                {**self.PARAMS, "scenario_names": ["nope"]},
                store=None,
            )

    def test_journaled_rerun_resumes_bit_identically(self, tmp_path, result_rows):
        store = ArtifactStore(tmp_path / "store")
        session = Session(store=store, run_id="adv-resume")
        first = session.experiment("adversarial").run(**self.PARAMS)
        assert first.provenance.n_resumed == 0
        second = session.experiment("adversarial").run(**self.PARAMS)
        assert second.provenance.n_resumed == len(
            [r for r in first.rows if "hit_rate" in r]
        )
        assert strip_timing(second.rows) == strip_timing(first.rows)
        # And the journaled rows agree with the store-less run.
        assert strip_timing(first.rows) == strip_timing(result_rows)
