"""Tests for the core data types (queries, traces, QPS series, plans, results)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import TraceError, ValidationError
from repro.types import (
    ArrivalTrace,
    InstanceRecord,
    QPSSeries,
    Query,
    QueryOutcome,
    ScalingAction,
    ScalingPlan,
    SimulationResult,
)


class TestQuery:
    def test_valid(self):
        q = Query(index=0, arrival_time=1.5, processing_time=2.0)
        assert q.arrival_time == 1.5

    def test_negative_index_rejected(self):
        with pytest.raises(ValidationError):
            Query(index=-1, arrival_time=0.0, processing_time=0.0)

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValidationError):
            Query(index=0, arrival_time=-1.0, processing_time=0.0)

    def test_nan_processing_rejected(self):
        with pytest.raises(ValidationError):
            Query(index=0, arrival_time=0.0, processing_time=float("nan"))


class TestInstanceRecord:
    def test_lifecycle_and_idle(self):
        record = InstanceRecord(
            query_index=0,
            creation_time=10.0,
            ready_time=23.0,
            start_processing_time=30.0,
            deletion_time=50.0,
            pending_time=13.0,
            proactive=True,
        )
        assert record.lifecycle_length == pytest.approx(40.0)
        assert record.idle_time == pytest.approx(7.0)

    def test_idle_time_never_negative(self):
        record = InstanceRecord(
            query_index=0,
            creation_time=0.0,
            ready_time=13.0,
            start_processing_time=13.0,
            deletion_time=20.0,
            pending_time=13.0,
            proactive=False,
        )
        assert record.idle_time == 0.0


class TestArrivalTrace:
    def test_basic_properties(self):
        trace = ArrivalTrace([1.0, 2.0, 4.0], 3.0, name="t", horizon=10.0)
        assert trace.n_queries == 3
        assert len(trace) == 3
        assert trace.duration == 10.0
        assert trace.mean_qps == pytest.approx(0.3)

    def test_scalar_processing_broadcast(self):
        trace = ArrivalTrace([1.0, 2.0], 5.0)
        np.testing.assert_allclose(trace.processing_times, [5.0, 5.0])

    def test_rejects_unsorted(self):
        with pytest.raises(TraceError):
            ArrivalTrace([2.0, 1.0], 1.0)

    def test_rejects_negative_arrival(self):
        with pytest.raises(TraceError):
            ArrivalTrace([-1.0, 1.0], 1.0)

    def test_rejects_processing_length_mismatch(self):
        with pytest.raises(TraceError):
            ArrivalTrace([1.0, 2.0], [1.0])

    def test_rejects_horizon_before_last_arrival(self):
        with pytest.raises(TraceError):
            ArrivalTrace([1.0, 5.0], 1.0, horizon=4.0)

    def test_iteration_and_indexing(self):
        trace = ArrivalTrace([1.0, 2.0], [3.0, 4.0])
        queries = list(trace)
        assert [q.index for q in queries] == [0, 1]
        assert trace[1].processing_time == 4.0
        assert trace[-1].arrival_time == 2.0
        with pytest.raises(IndexError):
            trace[2]

    def test_views_are_read_only(self):
        trace = ArrivalTrace([1.0, 2.0], 1.0)
        with pytest.raises(ValueError):
            trace.arrival_times[0] = 5.0

    def test_slice_time_rebases(self):
        trace = ArrivalTrace([1.0, 5.0, 9.0], 1.0, horizon=10.0)
        sub = trace.slice_time(4.0, 10.0)
        np.testing.assert_allclose(sub.arrival_times, [1.0, 5.0])
        assert sub.horizon == pytest.approx(6.0)

    def test_split_partitions_all_queries(self):
        arrivals = np.linspace(0.5, 99.5, 50)
        trace = ArrivalTrace(arrivals, 1.0, horizon=100.0)
        train, test = trace.split(0.6)
        assert train.n_queries + test.n_queries == trace.n_queries
        assert train.horizon == pytest.approx(60.0)
        assert test.horizon == pytest.approx(40.0)
        # Test trace is rebased to its own origin.
        assert test.arrival_times[0] == pytest.approx(arrivals[train.n_queries] - 60.0)

    def test_split_rejects_bad_fraction(self):
        trace = ArrivalTrace([1.0], 1.0, horizon=2.0)
        with pytest.raises(ValidationError):
            trace.split(1.0)

    def test_to_qps_series_counts_every_query(self):
        trace = ArrivalTrace([0.5, 30.0, 59.9, 61.0], 1.0, horizon=120.0)
        series = trace.to_qps_series(60.0)
        assert series.counts.sum() == 4
        assert series.counts[0] == 3
        assert series.counts[1] == 1

    def test_with_processing_times(self):
        trace = ArrivalTrace([1.0, 2.0], 1.0, horizon=5.0)
        new = trace.with_processing_times(9.0)
        np.testing.assert_allclose(new.processing_times, [9.0, 9.0])
        assert new.horizon == trace.horizon

    @given(
        st.lists(st.floats(min_value=0.0, max_value=1000.0), min_size=1, max_size=50),
        st.floats(min_value=1.0, max_value=120.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_qps_aggregation_preserves_total_count(self, raw_arrivals, bin_seconds):
        arrivals = np.sort(np.asarray(raw_arrivals))
        trace = ArrivalTrace(arrivals, 1.0, horizon=1000.0)
        series = trace.to_qps_series(bin_seconds)
        assert series.counts.sum() == trace.n_queries


class TestQPSSeries:
    def test_basic_properties(self):
        series = QPSSeries([2, 0, 4], 60.0, name="s")
        assert series.n_bins == 3
        assert series.duration == 180.0
        np.testing.assert_allclose(series.qps, [2 / 60, 0, 4 / 60])
        np.testing.assert_allclose(series.times, [0.0, 60.0, 120.0])

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            QPSSeries([], 60.0)

    def test_rejects_negative_counts(self):
        with pytest.raises(ValidationError):
            QPSSeries([1, -1], 60.0)

    def test_aggregate_sums_counts(self):
        series = QPSSeries([1, 2, 3, 4, 5], 60.0)
        merged = series.aggregate(2)
        np.testing.assert_allclose(merged.counts, [3, 7])
        assert merged.bin_seconds == 120.0

    def test_aggregate_rejects_too_large_factor(self):
        series = QPSSeries([1, 2], 60.0)
        with pytest.raises(ValidationError):
            series.aggregate(3)


class TestScalingPlan:
    def test_actions_sorted_by_time(self):
        plan = ScalingPlan(
            actions=[ScalingAction(creation_time=5.0), ScalingAction(creation_time=1.0)]
        )
        np.testing.assert_allclose(plan.creation_times, [1.0, 5.0])
        assert len(plan) == 2

    def test_merge(self):
        a = ScalingPlan(actions=[ScalingAction(creation_time=1.0)])
        b = ScalingPlan(actions=[ScalingAction(creation_time=0.5)])
        merged = a.merge(b)
        assert len(merged) == 2
        assert merged.creation_times[0] == 0.5

    def test_action_rejects_nan(self):
        with pytest.raises(ValidationError):
            ScalingAction(creation_time=float("nan"))


def _make_outcome(index: int, hit: bool, waiting: float, processing: float) -> QueryOutcome:
    query = Query(index=index, arrival_time=float(index), processing_time=processing)
    record = InstanceRecord(
        query_index=index,
        creation_time=0.0,
        ready_time=1.0,
        start_processing_time=float(index) + waiting,
        deletion_time=float(index) + waiting + processing,
        pending_time=1.0,
        proactive=hit,
    )
    return QueryOutcome(
        query=query,
        hit=hit,
        waiting_time=waiting,
        response_time=waiting + processing,
        instance=record,
    )


class TestSimulationResult:
    def test_aggregates(self):
        outcomes = [
            _make_outcome(0, True, 0.0, 10.0),
            _make_outcome(1, False, 5.0, 10.0),
        ]
        result = SimulationResult(
            scaler_name="x", trace_name="t", outcomes=outcomes, unused_instance_cost=3.0
        )
        assert result.n_queries == 2
        assert result.hit_rate == pytest.approx(0.5)
        assert result.mean_response_time == pytest.approx(12.5)
        assert result.total_cost == pytest.approx(sum(result.lifecycle_costs) + 3.0)

    def test_empty_result(self):
        result = SimulationResult(scaler_name="x", trace_name="t", outcomes=[])
        assert np.isnan(result.hit_rate)
        assert np.isnan(result.mean_response_time)
        assert result.total_cost == 0.0
