"""Tests for the sparse difference operators used by the NHPP objective."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.timeseries.differencing import (
    first_difference_matrix,
    second_difference_matrix,
    seasonal_difference_matrix,
)


class TestFirstDifference:
    def test_shape(self):
        assert first_difference_matrix(5).shape == (4, 5)

    def test_values(self):
        x = np.array([1.0, 4.0, 9.0])
        np.testing.assert_allclose(first_difference_matrix(3) @ x, [3.0, 5.0])

    def test_constant_in_null_space(self):
        d1 = first_difference_matrix(10)
        np.testing.assert_allclose(d1 @ np.full(10, 7.0), 0.0, atol=1e-12)


class TestSecondDifference:
    def test_shape(self):
        assert second_difference_matrix(6).shape == (4, 6)

    def test_linear_in_null_space(self):
        d2 = second_difference_matrix(12)
        x = 3.0 * np.arange(12) + 5.0
        np.testing.assert_allclose(d2 @ x, 0.0, atol=1e-10)

    def test_quadratic_constant_curvature(self):
        d2 = second_difference_matrix(8)
        x = np.arange(8, dtype=float) ** 2
        np.testing.assert_allclose(d2 @ x, 2.0)

    def test_minimum_size(self):
        with pytest.raises(ValidationError):
            second_difference_matrix(2)

    @given(st.integers(min_value=3, max_value=50))
    @settings(max_examples=20, deadline=None)
    def test_matches_numpy_diff(self, n):
        rng = np.random.default_rng(n)
        x = rng.normal(size=n)
        np.testing.assert_allclose(second_difference_matrix(n) @ x, np.diff(x, n=2), atol=1e-10)


class TestSeasonalDifference:
    def test_shape(self):
        assert seasonal_difference_matrix(10, 3).shape == (7, 10)

    def test_periodic_signal_in_null_space(self):
        period = 4
        n = 16
        dl = seasonal_difference_matrix(n, period)
        pattern = np.array([1.0, 5.0, -2.0, 0.5])
        x = np.tile(pattern, n // period)
        np.testing.assert_allclose(dl @ x, 0.0, atol=1e-12)

    def test_values(self):
        dl = seasonal_difference_matrix(5, 2)
        x = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        np.testing.assert_allclose(dl @ x, x[:3] - x[2:])

    def test_period_must_be_smaller_than_length(self):
        with pytest.raises(ValidationError):
            seasonal_difference_matrix(5, 5)

    @given(st.integers(min_value=4, max_value=40), st.integers(min_value=1, max_value=10))
    @settings(max_examples=30, deadline=None)
    def test_matches_direct_definition(self, n, period):
        if period >= n:
            return
        rng = np.random.default_rng(n * 100 + period)
        x = rng.normal(size=n)
        dl = seasonal_difference_matrix(n, period)
        np.testing.assert_allclose(dl @ x, x[: n - period] - x[period:], atol=1e-12)
