"""Tests for the sequential Algorithm 4 scaler and the HP calibration utility."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import PlannerConfig, SimulationConfig
from repro.exceptions import ValidationError
from repro.nhpp.intensity import PiecewiseConstantIntensity
from repro.nhpp.sampling import sample_homogeneous_arrivals
from repro.pending import DeterministicPendingTime
from repro.scaling.calibration import CalibrationResult, calibrate_hit_probability
from repro.scaling.sequential import SequentialHPScaler
from repro.simulation.engine import ScalingPerQuerySimulator
from repro.types import ArrivalTrace


def _constant_forecast(rate: float) -> PiecewiseConstantIntensity:
    return PiecewiseConstantIntensity(np.array([rate]), 60.0, extrapolation="hold")


@pytest.fixture
def hpp_trace() -> ArrivalTrace:
    arrivals = sample_homogeneous_arrivals(0.2, 2 * 3600.0, 99)
    return ArrivalTrace(arrivals, 20.0, name="hpp", horizon=2 * 3600.0)


class TestSequentialHPScaler:
    def test_kappa_computed_from_upper_bound(self):
        scaler = SequentialHPScaler(
            _constant_forecast(0.2),
            DeterministicPendingTime(13.0),
            target_hit_probability=0.9,
        )
        assert scaler.kappa >= 1

    def test_explicit_upper_bound_zero_gives_no_lookahead(self):
        scaler = SequentialHPScaler(
            _constant_forecast(0.2),
            DeterministicPendingTime(13.0),
            target_hit_probability=0.9,
            intensity_upper_bound=0.0,
        )
        assert scaler.kappa == 0

    def test_proposition1_hit_rate_matches_target(self, hpp_trace):
        """Proposition 1: with the true intensity the hit rate equals 1 - alpha."""
        target = 0.9
        scaler = SequentialHPScaler(
            _constant_forecast(0.2),
            DeterministicPendingTime(13.0),
            target_hit_probability=target,
            planning_every=1,
            planner=PlannerConfig(monte_carlo_samples=1000),
            random_state=0,
        )
        simulator = ScalingPerQuerySimulator(SimulationConfig(pending_time=13.0))
        result = simulator.replay(hpp_trace, scaler)
        assert result.hit_rate == pytest.approx(target, abs=0.06)

    def test_lookahead_outperforms_naive(self, hpp_trace):
        """Removing the kappa look-ahead collapses the hit rate (motivation for eq. 8)."""
        pending = DeterministicPendingTime(13.0)
        simulator = ScalingPerQuerySimulator(SimulationConfig(pending_time=13.0))
        planner = PlannerConfig(monte_carlo_samples=500)
        with_kappa = simulator.replay(
            hpp_trace,
            SequentialHPScaler(
                _constant_forecast(0.2), pending, target_hit_probability=0.9,
                planner=planner, random_state=1,
            ),
        )
        without_kappa = simulator.replay(
            hpp_trace,
            SequentialHPScaler(
                _constant_forecast(0.2), pending, target_hit_probability=0.9,
                intensity_upper_bound=0.0, planner=planner, random_state=1,
            ),
        )
        assert with_kappa.hit_rate > without_kappa.hit_rate + 0.3

    def test_planning_every_m(self, hpp_trace):
        scaler = SequentialHPScaler(
            _constant_forecast(0.2),
            DeterministicPendingTime(13.0),
            target_hit_probability=0.8,
            planning_every=5,
            planner=PlannerConfig(monte_carlo_samples=300),
            random_state=2,
        )
        simulator = ScalingPerQuerySimulator(SimulationConfig(pending_time=13.0))
        result = simulator.replay(hpp_trace, scaler)
        assert result.hit_rate == pytest.approx(0.8, abs=0.1)


class TestCalibration:
    def test_calibration_curve_monotone_and_usable(self, hpp_trace):
        pending = DeterministicPendingTime(13.0)
        forecast = _constant_forecast(0.2)

        def factory(nominal: float) -> SequentialHPScaler:
            return SequentialHPScaler(
                forecast,
                pending,
                target_hit_probability=nominal,
                planner=PlannerConfig(monte_carlo_samples=300),
                random_state=0,
            )

        calibration = calibrate_hit_probability(
            factory,
            hpp_trace,
            nominal_levels=(0.3, 0.6, 0.9),
            simulation_config=SimulationConfig(pending_time=13.0),
        )
        assert calibration.nominal_levels.tolist() == [0.3, 0.6, 0.9]
        # Achieved hit rates should increase with the nominal level.
        assert np.all(np.diff(calibration.achieved_levels) >= -0.05)
        # Inverting the curve lands inside the nominal range.
        nominal = calibration.nominal_for(float(calibration.achieved_levels[1]))
        assert 0.3 - 1e-9 <= nominal <= 0.9 + 1e-9

    def test_nominal_for_rejects_invalid(self):
        calibration = CalibrationResult(
            nominal_levels=np.array([0.2, 0.8]), achieved_levels=np.array([0.1, 0.7])
        )
        with pytest.raises(ValidationError):
            calibration.nominal_for(1.5)

    def test_achieved_for_interpolates(self):
        calibration = CalibrationResult(
            nominal_levels=np.array([0.2, 0.8]), achieved_levels=np.array([0.1, 0.7])
        )
        assert calibration.achieved_for(0.5) == pytest.approx(0.4)

    def test_invalid_levels_rejected(self, hpp_trace):
        with pytest.raises(ValidationError):
            calibrate_hit_probability(lambda p: None, hpp_trace, nominal_levels=[])
        with pytest.raises(ValidationError):
            calibrate_hit_probability(lambda p: None, hpp_trace, nominal_levels=[0.0, 0.5])
