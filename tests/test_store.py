"""Tests for the persistent artifact store (`repro.store`).

The load-bearing guarantees: (1) writes are atomic and verified — a
truncated, bit-flipped or foreign file reads as a miss, never a crash, and
concurrent writers never leave a partial entry; (2) ``gc`` honors its
size/age bounds and evicts oldest-first; (3) the two-tier
:class:`~repro.runtime.WorkloadCache` recovers preparations from disk
across cache instances (zero model fits on a warm store) and reports the
tiers separately in :class:`~repro.runtime.CacheStats`.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import pytest

from repro.exceptions import ValidationError
from repro.runtime import WorkloadCache, WorkloadSpec
from repro.store import (
    ArtifactStore,
    STORE_DIR_ENV_VAR,
    default_store_dir,
    get_or_build_trace,
    key_digest,
    resolve_store,
)
from repro.workloads import get_scenario


@pytest.fixture
def store(tmp_path) -> ArtifactStore:
    return ArtifactStore(tmp_path / "store")


class TestArtifactStoreBasics:
    def test_put_get_roundtrip_across_instances(self, store, tmp_path):
        payload = {"rows": [1.0, 2.5], "label": "x"}
        store.put("results", ("a", 1), payload)
        fresh = ArtifactStore(store.root)
        assert fresh.get("results", ("a", 1)) == payload
        assert fresh.stats().hits == 1

    def test_missing_key_returns_default(self, store):
        sentinel = object()
        assert store.get("workloads", ("nope",), sentinel) is sentinel
        assert store.stats().misses == 1

    def test_key_digest_is_stable_and_key_sensitive(self):
        key = ("scenario", "crs", 0.25, 7)
        assert key_digest(key) == key_digest(("scenario", "crs", 0.25, 7))
        assert key_digest(key) != key_digest(("scenario", "crs", 0.25, 8))

    def test_contains(self, store):
        assert not store.contains("traces", ("k",))
        store.put("traces", ("k",), [1, 2])
        assert store.contains("traces", ("k",))

    def test_invalid_namespace_rejected(self, store):
        for bad in ("", "a/b", "..", " padded"):
            with pytest.raises(ValidationError):
                store.put(bad, ("k",), 1)

    def test_store_handle_pickles_as_path_only(self, store):
        store.put("results", ("k",), 1)
        assert store.stats().writes == 1
        clone = pickle.loads(pickle.dumps(store))
        assert clone.root == store.root
        assert clone.stats().writes == 0  # counters are per-handle
        assert clone.get("results", ("k",)) == 1


class TestCorruption:
    def _single_artifact(self, store) -> Path:
        store.put("workloads", ("k",), {"value": 42})
        [entry] = store.entries("workloads")
        return entry.path

    def test_truncated_file_is_a_miss_and_removed(self, store):
        path = self._single_artifact(store)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        assert store.get("workloads", ("k",)) is None
        assert store.stats().corrupt == 1
        assert not path.exists()

    def test_bit_flip_is_a_miss(self, store):
        path = self._single_artifact(store)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        assert store.get("workloads", ("k",)) is None
        assert store.stats().corrupt == 1

    def test_foreign_file_is_a_miss(self, store):
        path = self._single_artifact(store)
        path.write_bytes(b"this is not an artifact at all")
        assert store.get("workloads", ("k",)) is None
        assert store.stats().corrupt == 1

    def test_rewrite_after_corruption_recovers(self, store):
        path = self._single_artifact(store)
        path.write_bytes(b"garbage")
        assert store.get("workloads", ("k",)) is None
        store.put("workloads", ("k",), {"value": 43})
        assert store.get("workloads", ("k",)) == {"value": 43}


class TestCompression:
    """Opt-in artifact compression (``REPRO_STORE_COMPRESS``)."""

    # Comfortably past the compression size threshold, and compressible.
    BIG = {"rows": [{"i": i, "pad": "x" * 64} for i in range(500)]}

    def _header(self, path: Path) -> list[str]:
        data = path.read_bytes()
        return data[: data.index(b"\n")].decode("ascii").split(" ")

    def test_codec_resolution(self, monkeypatch):
        from repro.store.artifacts import _zstd_module, active_codec

        for off in ("", "0", "false", "off", "no"):
            monkeypatch.setenv("REPRO_STORE_COMPRESS", off)
            assert active_codec() is None
        monkeypatch.delenv("REPRO_STORE_COMPRESS")
        assert active_codec() is None
        monkeypatch.setenv("REPRO_STORE_COMPRESS", "zlib")
        assert active_codec() == "zlib"
        monkeypatch.setenv("REPRO_STORE_COMPRESS", "zstd")
        expected = "zstd" if _zstd_module() is not None else "zlib"
        assert active_codec() == expected
        monkeypatch.setenv("REPRO_STORE_COMPRESS", "1")
        assert active_codec() == expected

    def test_large_artifact_compressed_and_transparent(self, store, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_COMPRESS", "zlib")
        path = store.put("results", ("big",), self.BIG)
        tokens = self._header(path)
        assert len(tokens) == 6 and tokens[5] == "zlib"
        assert path.stat().st_size < len(pickle.dumps(self.BIG))
        # Transparent on read — with or without the env var set.
        assert store.get("results", ("big",)) == self.BIG
        monkeypatch.delenv("REPRO_STORE_COMPRESS")
        assert ArtifactStore(store.root).get("results", ("big",)) == self.BIG

    def test_small_artifact_stays_raw(self, store, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_COMPRESS", "zlib")
        path = store.put("results", ("small",), {"k": 1})
        assert len(self._header(path)) == 5

    def test_uncompressed_entries_readable_with_compression_on(
        self, store, monkeypatch
    ):
        store.put("results", ("old",), self.BIG)
        monkeypatch.setenv("REPRO_STORE_COMPRESS", "zlib")
        assert ArtifactStore(store.root).get("results", ("old",)) == self.BIG

    def test_corrupt_compressed_payload_degrades_to_miss(self, store, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_COMPRESS", "zlib")
        path = store.put("results", ("big",), self.BIG)
        data = bytearray(path.read_bytes())
        data[-5] ^= 0xFF  # breaks the integrity digest
        path.write_bytes(bytes(data))
        assert store.get("results", ("big",)) is None
        assert store.stats().corrupt == 1
        assert not path.exists()

    def test_undecompressible_payload_degrades_to_miss(self, store):
        # A header that *claims* compression over a raw pickled payload:
        # the digest verifies, the decompression fails, the entry is a miss.
        import hashlib

        payload = pickle.dumps({"value": 1})
        digest = hashlib.blake2b(payload, digest_size=20).hexdigest()
        path = store.path_for("results", ("fake",))
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(
            f"repro-store v1 results {digest} {len(payload)} zlib\n".encode("ascii")
            + payload
        )
        assert store.get("results", ("fake",)) is None
        assert store.stats().corrupt == 1
        assert not path.exists()

    def test_unknown_codec_degrades_to_miss(self, store):
        import hashlib

        payload = pickle.dumps({"value": 1})
        digest = hashlib.blake2b(payload, digest_size=20).hexdigest()
        path = store.path_for("results", ("alien",))
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(
            f"repro-store v1 results {digest} {len(payload)} lzma9\n".encode("ascii")
            + payload
        )
        assert store.get("results", ("alien",)) is None
        assert store.stats().corrupt == 1


class TestGC:
    def _put_aged(self, store, namespace, key, obj, age_seconds, now):
        path = store.put(namespace, key, obj)
        os.utime(path, (now - age_seconds, now - age_seconds))
        return path

    def test_age_bound(self, store):
        now = 1_000_000.0
        old = self._put_aged(store, "traces", ("old",), "x" * 100, 7200, now)
        young = self._put_aged(store, "traces", ("young",), "y" * 100, 60, now)
        report = store.gc(max_age_seconds=3600, now=now)
        assert report.removed == 1
        assert not old.exists() and young.exists()

    def test_size_bound_evicts_oldest_first(self, store):
        now = 1_000_000.0
        oldest = self._put_aged(store, "results", ("a",), "x" * 1000, 300, now)
        self._put_aged(store, "results", ("b",), "y" * 1000, 200, now)
        newest = self._put_aged(store, "results", ("c",), "z" * 1000, 100, now)
        total = store.total_bytes()
        [entry] = [e for e in store.entries() if e.path == oldest]
        report = store.gc(max_bytes=total - entry.size_bytes, now=now)
        assert report.removed >= 1
        assert not oldest.exists()
        assert newest.exists()
        assert store.total_bytes() <= total - entry.size_bytes

    def test_no_bounds_is_a_noop(self, store):
        store.put("results", ("a",), 1)
        report = store.gc()
        assert report.removed == 0
        assert report.kept == 1

    def test_bounds_validated(self, store):
        with pytest.raises(ValidationError):
            store.gc(max_bytes=-1)
        with pytest.raises(ValidationError):
            store.gc(max_age_seconds=-1.0)

    def test_gc_and_clear_reap_abandoned_tmp_files(self, store):
        store.put("results", ("a",), 1)
        # Simulate a writer killed between mkstemp and os.replace.
        orphan = store.base / "results" / ".tmp-dead.art"
        orphan.write_bytes(b"partial")
        os.utime(orphan, (1.0, 1.0))  # ancient: no live writer owns it
        store.gc()
        assert not orphan.exists()
        orphan.write_bytes(b"partial")
        os.utime(orphan, (1.0, 1.0))
        store.clear()
        assert not orphan.exists()

    def test_clear_and_info(self, store):
        store.put("traces", ("a",), 1)
        store.put("workloads", ("b",), 2)
        info = store.info()
        assert info["total_entries"] == 2
        assert set(info["namespaces"]) == {"traces", "workloads"}
        assert store.clear() == 2
        assert store.info()["total_entries"] == 0

    def test_pinned_namespace_survives_size_eviction(self, store):
        now = 1_000_000.0
        golden = self._put_aged(store, "workloads", ("golden",), "g" * 500, 900, now)
        other = self._put_aged(store, "traces", ("t",), "x" * 500, 100, now)
        report = store.gc(max_bytes=0, now=now, pins=("workloads/",))
        assert golden.exists() and not other.exists()
        assert report.pinned == 1
        assert report.kept == 1
        assert report.removed == 1

    def test_pinned_digest_prefix_survives_age_eviction(self, store):
        now = 1_000_000.0
        pinned_path = self._put_aged(store, "traces", ("keep",), "k" * 100, 7200, now)
        doomed = self._put_aged(store, "traces", ("drop",), "d" * 100, 7200, now)
        digest = key_digest(("keep",))
        report = store.gc(max_age_seconds=3600, now=now, pins=(digest[:12],))
        assert pinned_path.exists() and not doomed.exists()
        assert report.pinned == 1 and report.removed == 1

    def test_cli_gc_pin_flag(self, store, capsys):
        from repro.cli import main

        now = 1_000_000.0
        golden = self._put_aged(store, "workloads", ("golden",), "g" * 500, 900, now)
        self._put_aged(store, "traces", ("t",), "x" * 500, 100, now)
        code = main(
            [
                "store",
                "gc",
                "--max-bytes",
                "0",
                "--pin",
                "workloads/",
                "--store-dir",
                str(store.root),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1 pinned" in out
        assert golden.exists()


def _hammer_store(args: tuple) -> bool:
    """Concurrently write and read back one shared key (pool worker)."""
    root, worker_id, n_rounds = args
    store = ArtifactStore(root)
    payload = {"worker": worker_id, "blob": list(range(2000))}
    ok = True
    for _ in range(n_rounds):
        store.put("results", ("shared",), payload)
        seen = store.get("results", ("shared",))
        # Any fully written artifact is acceptable; a partial one would fail
        # decoding and read as None here.
        ok = ok and seen is not None and isinstance(seen, dict) and "blob" in seen
    return ok


class TestConcurrency:
    def test_concurrent_writers_never_leave_partial_entries(self, store):
        n_workers = 4
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            results = list(
                pool.map(
                    _hammer_store,
                    [(str(store.root), i, 25) for i in range(n_workers)],
                )
            )
        assert all(results)
        final = store.get("results", ("shared",))
        assert isinstance(final, dict) and len(final["blob"]) == 2000
        # No temporary files may survive the writers.
        leftovers = [
            p for p in store.base.rglob("*") if p.is_file() and p.name.startswith(".tmp-")
        ]
        assert leftovers == []
        assert store.stats().corrupt == 0


class TestResolveStore:
    def test_disabled_returns_none(self):
        assert resolve_store(enabled=False) is None

    def test_explicit_dir_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_DIR_ENV_VAR, str(tmp_path / "env"))
        store = resolve_store(tmp_path / "explicit")
        assert store.root == tmp_path / "explicit"

    def test_env_var_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_DIR_ENV_VAR, str(tmp_path / "env"))
        assert resolve_store().root == tmp_path / "env"

    def test_default_dir(self, monkeypatch, tmp_path):
        monkeypatch.delenv(STORE_DIR_ENV_VAR, raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_store_dir() == tmp_path / "xdg" / "repro" / "store"
        assert resolve_store().root == default_store_dir()


class TestTwoTierWorkloadCache:
    def test_warm_store_means_zero_fits(self, store):
        spec = WorkloadSpec(scenario="steady-state", scale=0.05, seed=3)
        cold = WorkloadCache(store=store)
        workload, hit = cold.get_or_prepare(spec)
        assert not hit
        assert cold.stats().misses == 1

        warm = WorkloadCache(store=store)  # fresh process, same store
        recovered, hit = warm.get_or_prepare(spec)
        stats = warm.stats()
        assert hit
        assert (stats.misses, stats.disk_hits, stats.hits) == (0, 1, 0)
        assert recovered.reference_cost == workload.reference_cost
        # Second access comes from the memory tier.
        warm.get_or_prepare(spec)
        assert warm.stats().hits == 1
        assert warm.stats().total == 2

    def test_corrupt_workload_artifact_refits(self, store):
        spec = WorkloadSpec(scenario="steady-state", scale=0.05, seed=3)
        WorkloadCache(store=store).get_or_prepare(spec)
        [entry] = store.entries("workloads")
        entry.path.write_bytes(b"garbage")
        cache = WorkloadCache(store=store)
        workload, hit = cache.get_or_prepare(spec)
        assert not hit
        assert cache.stats().misses == 1
        assert workload.test.n_queries >= 0  # fully usable object

    def test_engine_default_and_explicit_batched_share_one_entry(self, store):
        """Callers that pass engine=None (deferring to the default) and
        callers that pass engine="batched" explicitly must address the same
        prepared-workload artifact; only "reference" is a separate entry."""
        from repro.runtime import PrepSpec

        explicit = WorkloadSpec(
            scenario="steady-state",
            scale=0.05,
            seed=3,
            prep=PrepSpec(engine="batched"),
        )
        deferred = WorkloadSpec(scenario="steady-state", scale=0.05, seed=3)
        reference = WorkloadSpec(
            scenario="steady-state",
            scale=0.05,
            seed=3,
            prep=PrepSpec(engine="reference"),
        )
        assert explicit.cache_key() == deferred.cache_key()
        assert explicit.cache_key() != reference.cache_key()
        WorkloadCache(store=store).get_or_prepare(explicit)
        warm = WorkloadCache(store=store)
        _, hit = warm.get_or_prepare(deferred)
        assert hit and warm.stats().disk_hits == 1

    def test_storeless_cache_unchanged(self):
        spec = WorkloadSpec(scenario="steady-state", scale=0.05, seed=3)
        cache = WorkloadCache()
        cache.get_or_prepare(spec)
        _, hit = cache.get_or_prepare(spec)
        stats = cache.stats()
        assert hit and stats.disk_hits == 0 and stats.total == 2


class TestTraceCache:
    def test_get_or_build_trace_roundtrip(self, store):
        scenario = get_scenario("steady-state")
        first = get_or_build_trace(scenario, scale=0.05, seed=3, store=store)
        assert len(store.entries("traces")) == 1
        again = get_or_build_trace(scenario, scale=0.05, seed=3, store=store)
        assert again.n_queries == first.n_queries
        assert (again.arrival_times == first.arrival_times).all()
        # Cache key distinguishes seeds.
        other = get_or_build_trace(scenario, scale=0.05, seed=4, store=store)
        assert len(store.entries("traces")) == 2
        assert other.n_queries != first.n_queries or (
            other.arrival_times != first.arrival_times
        ).any()

    def test_without_store_is_plain_generation(self):
        scenario = get_scenario("steady-state")
        direct = scenario.build_trace(scale=0.05, seed=3)
        built = get_or_build_trace(scenario, scale=0.05, seed=3, store=None)
        assert (built.arrival_times == direct.arrival_times).all()
