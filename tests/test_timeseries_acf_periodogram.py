"""Tests for autocorrelation and periodogram estimators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.timeseries.acf import autocorrelation, autocovariance
from repro.timeseries.periodogram import dominant_frequencies, periodogram


class TestAutocovariance:
    def test_lag_zero_is_variance(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=500)
        acov = autocovariance(x, 5)
        assert acov[0] == pytest.approx(x.var(), rel=1e-6)

    def test_matches_direct_computation(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=64)
        acov = autocovariance(x, 10)
        centered = x - x.mean()
        for lag in range(11):
            direct = np.sum(centered[: x.size - lag] * centered[lag:]) / x.size
            assert acov[lag] == pytest.approx(direct, abs=1e-9)

    def test_requires_two_observations(self):
        with pytest.raises(ValidationError):
            autocovariance(np.array([1.0]))


class TestAutocorrelation:
    def test_lag_zero_is_one(self):
        rng = np.random.default_rng(2)
        acf = autocorrelation(rng.normal(size=100), 10)
        assert acf[0] == pytest.approx(1.0)

    def test_bounded_by_one(self):
        rng = np.random.default_rng(3)
        acf = autocorrelation(rng.normal(size=256))
        assert np.all(np.abs(acf) <= 1.0 + 1e-9)

    def test_periodic_signal_peaks_at_period(self):
        n, period = 600, 24
        t = np.arange(n)
        x = np.sin(2 * np.pi * t / period)
        acf = autocorrelation(x, 3 * period)
        assert acf[period] > 0.9

    def test_constant_series_zero_acf(self):
        acf = autocorrelation(np.full(50, 2.0), 5)
        assert acf[0] == 1.0
        np.testing.assert_allclose(acf[1:], 0.0)


class TestPeriodogram:
    def test_detects_sinusoid_frequency(self):
        n, period = 512, 16
        t = np.arange(n)
        x = np.sin(2 * np.pi * t / period)
        freqs, power = periodogram(x)
        peak_freq = freqs[np.argmax(power)]
        assert peak_freq == pytest.approx(1.0 / period, rel=0.05)

    def test_requires_minimum_length(self):
        with pytest.raises(ValidationError):
            periodogram(np.array([1.0, 2.0]))

    def test_zero_frequency_excluded(self):
        freqs, _ = periodogram(np.arange(32, dtype=float))
        assert freqs[0] > 0


class TestDominantFrequencies:
    def test_finds_planted_period(self):
        rng = np.random.default_rng(4)
        n, period = 480, 24
        t = np.arange(n)
        x = 3.0 * np.sin(2 * np.pi * t / period) + rng.normal(scale=0.5, size=n)
        candidates = dominant_frequencies(x, power_threshold=4.0)
        assert candidates, "expected at least one candidate"
        assert any(abs(c.period - period) <= 1 for c in candidates)

    def test_pure_noise_has_few_candidates(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=512)
        candidates = dominant_frequencies(x, power_threshold=10.0)
        assert len(candidates) <= 2

    def test_respects_period_bounds(self):
        rng = np.random.default_rng(6)
        n, period = 480, 24
        x = np.sin(2 * np.pi * np.arange(n) / period) + rng.normal(scale=0.1, size=n)
        candidates = dominant_frequencies(x, min_period=30)
        assert all(c.period >= 30 for c in candidates)

    def test_candidates_sorted_by_power(self):
        rng = np.random.default_rng(7)
        n = 512
        t = np.arange(n)
        x = (
            4.0 * np.sin(2 * np.pi * t / 16)
            + 2.0 * np.sin(2 * np.pi * t / 50)
            + rng.normal(scale=0.3, size=n)
        )
        candidates = dominant_frequencies(x, power_threshold=3.0)
        powers = [c.power for c in candidates]
        assert powers == sorted(powers, reverse=True)
