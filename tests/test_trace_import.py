"""Trace-I/O validation and real-trace registry import.

Two halves, matching the two halves of the hardened import path:

* the :mod:`repro.traces.io` loaders must reject every malformed file in
  the corpus below with :class:`~repro.exceptions.TraceFormatError` naming
  the offending row, and must round-trip every well-formed trace/series
  through save → load within the CSV format's 1e-6 precision;
* :func:`repro.workloads.register_trace_csv` must make a trace CSV a
  first-class registry citizen — buildable, picklable, store-cacheable,
  and invalidated (not silently replayed) when the underlying file changes.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.exceptions import TraceFormatError, WorkloadError
from repro.store import ArtifactStore
from repro.store.traces import get_or_build_trace, trace_cache_key
from repro.traces.io import load_qps_csv, load_trace_csv, save_qps_csv, save_trace_csv
from repro.types import ArrivalTrace, QPSSeries
from repro.workloads import (
    CSVTraceGenerator,
    ScenarioRegistry,
    register_trace_csv,
    scenario_from_trace_csv,
)


def _write_trace_csv(tmp_path, body: str, name: str = "bad.csv"):
    path = tmp_path / name
    path.write_text(body)
    return path


class TestTraceCsvRoundTrip:
    @pytest.mark.parametrize("n_queries", [1, 17, 400])
    def test_random_trace_round_trips(self, tmp_path, n_queries):
        rng = np.random.default_rng(n_queries)
        arrivals = np.sort(rng.uniform(0.0, 3600.0, n_queries))
        processing = rng.exponential(5.0, n_queries)
        trace = ArrivalTrace(arrivals, processing, name="rt", horizon=4000.0)
        loaded = load_trace_csv(save_trace_csv(trace, tmp_path / "rt.csv"))
        # The writer formats with 6 decimal places, so round-trip is exact
        # to the written precision, not to float64.
        np.testing.assert_allclose(loaded.arrival_times, arrivals, atol=1e-6)
        np.testing.assert_allclose(loaded.processing_times, processing, atol=1e-6)
        assert loaded.horizon == pytest.approx(4000.0)
        assert loaded.name == "rt"

    def test_qps_round_trips(self, tmp_path):
        rng = np.random.default_rng(5)
        counts = rng.integers(0, 50, 48).astype(float)
        series = QPSSeries(counts, 300.0, name="qps-rt")
        loaded = load_qps_csv(save_qps_csv(series, tmp_path / "qps.csv"))
        np.testing.assert_allclose(loaded.counts, counts)
        assert loaded.bin_seconds == pytest.approx(300.0)
        assert loaded.name == "qps-rt"

    def test_load_after_double_round_trip_is_stable(self, tmp_path):
        trace = ArrivalTrace([0.25, 1.5, 9.0], [1.0, 2.0, 3.0], horizon=10.0)
        once = load_trace_csv(save_trace_csv(trace, tmp_path / "a.csv"))
        twice = load_trace_csv(save_trace_csv(once, tmp_path / "b.csv"))
        np.testing.assert_array_equal(once.arrival_times, twice.arrival_times)
        np.testing.assert_array_equal(once.processing_times, twice.processing_times)


class TestTraceCsvCorpus:
    """Every malformed trace file is rejected, naming the offending row."""

    HEADER = "arrival_time,processing_time\n"

    @pytest.mark.parametrize(
        "body, fragment",
        [
            (HEADER + "1.0,1.0\n0.5,1.0\n", "unsorted arrival_time"),
            (HEADER + "-3.0,1.0\n", "invalid arrival_time"),
            (HEADER + "nan,1.0\n", "invalid arrival_time"),
            (HEADER + "inf,1.0\n", "invalid arrival_time"),
            (HEADER + "1.0,-2.0\n", "invalid processing_time"),
            (HEADER + "1.0,nan\n", "invalid processing_time"),
            (HEADER + "not-a-number,1.0\n", "malformed row"),
            ("# horizon,banana,x\n" + HEADER, "invalid horizon"),
            ("# horizon,inf,x\n" + HEADER, "invalid horizon"),
            ("# horizon,5.0,x\n" + HEADER + "9.0,1.0\n", "invalid horizon"),
        ],
    )
    def test_rejected_with_message(self, tmp_path, body, fragment):
        path = _write_trace_csv(tmp_path, body)
        with pytest.raises(TraceFormatError, match=fragment):
            load_trace_csv(path)

    def test_offending_row_is_named(self, tmp_path):
        path = _write_trace_csv(
            tmp_path, self.HEADER + "1.0,1.0\n2.0,1.0\n1.5,1.0\n"
        )
        with pytest.raises(TraceFormatError, match="row 3"):
            load_trace_csv(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceFormatError, match="not found"):
            load_trace_csv(tmp_path / "nope.csv")


class TestQpsCsvCorpus:
    """Every malformed QPS file is rejected instead of silently misread."""

    def _qps(self, rows: str, header: str = "# bin_seconds=60.0,q\n") -> str:
        return header + "bin_start,count\n" + rows

    @pytest.mark.parametrize(
        "body, fragment",
        [
            ("bin_start,count\n0.0,1\n", "missing '# bin_seconds='"),
            ("# bin_seconds=banana,q\nbin_start,count\n", "invalid bin_seconds"),
            ("# bin_seconds=0.0,q\nbin_start,count\n", "invalid bin_seconds"),
            ("# bin_seconds=-60,q\nbin_start,count\n", "invalid bin_seconds"),
            ("# bin_seconds=inf,q\nbin_start,count\n", "invalid bin_seconds"),
        ],
    )
    def test_bad_header(self, tmp_path, body, fragment):
        path = _write_trace_csv(tmp_path, body)
        with pytest.raises(TraceFormatError, match=fragment):
            load_qps_csv(path)

    def test_offset_origin_rejected(self, tmp_path):
        # Bins that start at 30 instead of 0 shift the fitted intensity.
        path = _write_trace_csv(tmp_path, self._qps("30.0,1\n90.0,2\n150.0,3\n"))
        with pytest.raises(TraceFormatError, match="non-uniform bin_start.*row 1"):
            load_qps_csv(path)

    def test_shuffled_rows_rejected(self, tmp_path):
        path = _write_trace_csv(tmp_path, self._qps("0.0,1\n120.0,3\n60.0,2\n"))
        with pytest.raises(TraceFormatError, match="non-uniform bin_start.*row 2"):
            load_qps_csv(path)

    def test_skipped_bin_rejected(self, tmp_path):
        path = _write_trace_csv(tmp_path, self._qps("0.0,1\n60.0,2\n180.0,4\n"))
        with pytest.raises(TraceFormatError, match="non-uniform bin_start.*row 3"):
            load_qps_csv(path)

    def test_malformed_count_rejected(self, tmp_path):
        path = _write_trace_csv(tmp_path, self._qps("0.0,banana\n"))
        with pytest.raises(TraceFormatError, match="malformed row"):
            load_qps_csv(path)

    def test_written_precision_passes_grid_check(self, tmp_path):
        # The saver writes bin_start with 6 decimals; an awkward bin width
        # must still round-trip through the uniform-grid validation.
        series = QPSSeries([1.0, 2.0, 3.0, 4.0], 0.3333333, name="tight")
        loaded = load_qps_csv(save_qps_csv(series, tmp_path / "tight.csv"))
        np.testing.assert_allclose(loaded.counts, series.counts)


@pytest.fixture
def trace_csv(tmp_path):
    rng = np.random.default_rng(11)
    arrivals = np.sort(rng.uniform(0.0, 1800.0, 120))
    trace = ArrivalTrace(
        arrivals, rng.exponential(4.0, 120), name="recorded", horizon=1800.0
    )
    return save_trace_csv(trace, tmp_path / "recorded.csv")


class TestCsvTraceScenario:
    def test_registered_scenario_builds_the_recording(self, trace_csv):
        registry = ScenarioRegistry()
        scenario = register_trace_csv(trace_csv, registry=registry)
        assert "recorded" in registry
        assert scenario.horizon_seconds == pytest.approx(1800.0)
        assert "trace-import" in scenario.tags
        built = registry.get("recorded").build_trace(seed=3)
        reference = load_trace_csv(trace_csv)
        np.testing.assert_array_equal(built.arrival_times, reference.arrival_times)

    def test_seed_is_ignored_for_recordings(self, trace_csv):
        scenario = scenario_from_trace_csv(trace_csv)
        a = scenario.build_trace(seed=1)
        b = scenario.build_trace(seed=999)
        np.testing.assert_array_equal(a.arrival_times, b.arrival_times)

    def test_scale_truncates_the_recording(self, trace_csv):
        scenario = scenario_from_trace_csv(trace_csv)
        full = scenario.build_trace(seed=0)
        half = scenario.build_trace(seed=0, scale=0.5)
        assert half.horizon == pytest.approx(full.horizon * 0.5)
        assert 0 < half.n_queries < full.n_queries
        assert half.arrival_times.max() <= half.horizon

    def test_scale_up_rejected(self, trace_csv):
        scenario = scenario_from_trace_csv(trace_csv)
        with pytest.raises(WorkloadError, match="cannot be scaled up"):
            scenario.build_trace(seed=0, scale=2.0)

    def test_generator_pickles(self, trace_csv):
        scenario = scenario_from_trace_csv(trace_csv)
        clone = pickle.loads(pickle.dumps(scenario))
        np.testing.assert_array_equal(
            clone.build_trace(seed=0).arrival_times,
            scenario.build_trace(seed=0).arrival_times,
        )

    def test_empty_file_rejected_at_registration(self, tmp_path):
        path = _write_trace_csv(
            tmp_path, "arrival_time,processing_time\n", name="empty.csv"
        )
        with pytest.raises(TraceFormatError, match="no queries"):
            scenario_from_trace_csv(path)

    def test_malformed_file_rejected_at_registration(self, tmp_path):
        path = _write_trace_csv(
            tmp_path, "arrival_time,processing_time\n2.0,1.0\n1.0,1.0\n"
        )
        with pytest.raises(TraceFormatError):
            scenario_from_trace_csv(path)

    def test_deleted_file_fails_on_next_build(self, trace_csv):
        scenario = scenario_from_trace_csv(trace_csv)
        trace_csv.unlink()
        with pytest.raises(TraceFormatError, match="not found"):
            scenario.build_trace(seed=0)


class TestStoreCachedTraces:
    def test_realization_is_cached_and_reused(self, trace_csv, tmp_path):
        scenario = scenario_from_trace_csv(trace_csv)
        store = ArtifactStore(tmp_path / "store")
        first = get_or_build_trace(scenario, scale=0.5, seed=7, store=store)
        key = trace_cache_key(scenario, scale=0.5, seed=7)
        assert isinstance(store.get("traces", key), ArrivalTrace)
        second = get_or_build_trace(scenario, scale=0.5, seed=7, store=store)
        np.testing.assert_array_equal(first.arrival_times, second.arrival_times)

    def test_cache_token_tracks_file_content(self, trace_csv):
        generator = CSVTraceGenerator(str(trace_csv))
        before = generator.cache_token
        trace = load_trace_csv(trace_csv)
        save_trace_csv(
            ArrivalTrace(
                trace.arrival_times[:-1],
                trace.processing_times[:-1],
                name=trace.name,
                horizon=trace.horizon,
            ),
            trace_csv,
        )
        assert generator.cache_token != before

    def test_edited_file_misses_the_old_cache_entry(self, trace_csv, tmp_path):
        scenario = scenario_from_trace_csv(trace_csv)
        store = ArtifactStore(tmp_path / "store")
        stale = get_or_build_trace(scenario, scale=1.0, seed=7, store=store)
        trace = load_trace_csv(trace_csv)
        save_trace_csv(
            ArrivalTrace(
                trace.arrival_times[: trace.n_queries // 2],
                trace.processing_times[: trace.n_queries // 2],
                name=trace.name,
                horizon=trace.horizon,
            ),
            trace_csv,
        )
        fresh = get_or_build_trace(scenario, scale=1.0, seed=7, store=store)
        # The content digest is part of the key, so the edit cannot serve
        # the stale realization.
        assert fresh.n_queries == trace.n_queries // 2
        assert stale.n_queries == trace.n_queries
