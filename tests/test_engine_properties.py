"""Property-based invariants of the replay engines (reference/batched/kernel).

Each property is checked on every engine: the reference engine because it
defines the semantics, the batched and kernel engines because they must
uphold them under every input hypothesis can dream up — not just the seeded
configurations of the differential suite.  The BP/AdapBP properties run the
kernel engine's chunk dispatch through both kernel backends' paths (the
jittered configs exercise the scalar sorted-pool core, the deterministic
ones the vectorized FIFO branch).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SimulationConfig
from repro.scaling.adaptive_backup_pool import AdaptiveBackupPoolScaler
from repro.scaling.backup_pool import BackupPoolScaler, ReactiveScaler
from repro.scaling.base import Autoscaler, ScalingResponse
from repro.simulation import (
    BatchedEventSimulator,
    KernelEventSimulator,
    ScalingPerQuerySimulator,
)
from repro.types import ArrivalTrace, ScalingAction


ENGINES = [ScalingPerQuerySimulator, BatchedEventSimulator, KernelEventSimulator]
ENGINE_IDS = ["reference", "batched", "kernel"]


class InitialFleetScaler(Autoscaler):
    """Creates ``count`` instances immediately at time zero, then stays idle."""

    name = "InitialFleet"
    reacts_to_arrivals = False

    def __init__(self, count: int) -> None:
        self._count = count

    def initialize(self, context) -> ScalingResponse:
        return ScalingResponse.create_now(0.0, self._count)


class FutureFleetScaler(Autoscaler):
    """Schedules ``count`` future creations spread over the given window."""

    name = "FutureFleet"
    reacts_to_arrivals = False

    def __init__(self, count: int, window: float) -> None:
        self._count = count
        self._window = window

    def initialize(self, context) -> ScalingResponse:
        actions = [
            ScalingAction(
                creation_time=self._window * (k + 1) / (self._count + 1),
                planned_at=0.0,
            )
            for k in range(self._count)
        ]
        return ScalingResponse(actions=actions)


def _trace(raw_arrivals, processing=3.0, horizon_pad=100.0):
    arrivals = np.sort(np.asarray(raw_arrivals, dtype=float))
    horizon = float(arrivals[-1]) + horizon_pad if arrivals.size else horizon_pad
    return ArrivalTrace(arrivals, processing, horizon=horizon)


arrival_lists = st.lists(
    st.floats(min_value=0.0, max_value=2000.0, allow_nan=False), min_size=1, max_size=80
)


@pytest.mark.parametrize("engine_cls", ENGINES, ids=ENGINE_IDS)
class TestEngineInvariants:
    @given(raw=arrival_lists, pool=st.integers(min_value=0, max_value=5))
    @settings(max_examples=25, deadline=None)
    def test_waiting_times_non_negative(self, engine_cls, raw, pool):
        config = SimulationConfig(pending_time=6.0, pending_time_jitter=2.0, seed=1)
        result = engine_cls(config).replay(_trace(raw), BackupPoolScaler(pool))
        assert np.all(result.waiting_times >= 0.0)
        assert np.all(result.response_times >= result.waiting_times)

    @given(raw=arrival_lists, pool=st.integers(min_value=0, max_value=5))
    @settings(max_examples=25, deadline=None)
    def test_hit_implies_ready_before_arrival(self, engine_cls, raw, pool):
        config = SimulationConfig(pending_time=5.0, seed=2)
        result = engine_cls(config).replay(_trace(raw), BackupPoolScaler(pool))
        hits = result.hits
        assert np.all(result.ready_times[hits] <= result.arrival_times[hits])
        misses = ~hits
        assert np.all(result.ready_times[misses] > result.arrival_times[misses])

    @given(raw=arrival_lists, factor=st.floats(min_value=0.0, max_value=40.0))
    @settings(max_examples=25, deadline=None)
    def test_deletion_is_start_plus_processing(self, engine_cls, raw, factor):
        config = SimulationConfig(pending_time=4.0, pending_time_jitter=1.0, seed=3)
        scaler = AdaptiveBackupPoolScaler(factor, update_interval=300.0)
        result = engine_cls(config).replay(_trace(raw, processing=7.0), scaler)
        np.testing.assert_allclose(
            result.deletion_times, result.start_times + result.processing_times
        )
        # Instances become ready only after their creation.
        assert np.all(result.ready_times >= result.creation_times)
        assert np.all(result.start_times >= result.ready_times - 1e-12)

    @given(
        raw=arrival_lists,
        fleet=st.integers(min_value=1, max_value=8),
        pad_a=st.floats(min_value=0.0, max_value=300.0),
        pad_b=st.floats(min_value=1.0, max_value=300.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_unused_cost_monotone_in_horizon(
        self, engine_cls, raw, fleet, pad_a, pad_b
    ):
        """Extending the horizon never decreases the idle-instance cost."""
        arrivals = np.sort(np.asarray(raw, dtype=float))
        last = float(arrivals[-1])
        config = SimulationConfig(pending_time=5.0, seed=4)
        costs = []
        for pad in sorted((pad_a, pad_a + pad_b)):
            trace = ArrivalTrace(arrivals, 2.0, horizon=last + pad)
            result = engine_cls(config).replay(trace, InitialFleetScaler(fleet))
            costs.append(result.unused_instance_cost)
        assert costs[1] >= costs[0] - 1e-9

    @given(raw=arrival_lists, fleet=st.integers(min_value=0, max_value=10))
    @settings(max_examples=25, deadline=None)
    def test_immediate_creation_conservation(self, engine_cls, raw, fleet):
        """Instances created at t=0 are either consumed by queries or idle at
        the end: ``fleet == proactive_served + n_unused_instances``."""
        config = SimulationConfig(pending_time=3.0, seed=5)
        result = engine_cls(config).replay(_trace(raw), InitialFleetScaler(fleet))
        proactive_served = int(result.proactive_flags.sum())
        assert proactive_served + result.n_unused_instances == fleet
        # Every query not served proactively was a reactive cold start.
        assert (result.n_queries - proactive_served) == int(
            (~result.proactive_flags).sum()
        )

    @given(
        raw=arrival_lists,
        fleet=st.integers(min_value=1, max_value=10),
        window=st.floats(min_value=10.0, max_value=1500.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_scheduled_creation_conservation(self, engine_cls, raw, fleet, window):
        """Scheduled creations split into materialized (served or idle) and
        cancelled/abandoned ones; nothing is double-counted."""
        config = SimulationConfig(pending_time=3.0, seed=6)
        result = engine_cls(config).replay(
            _trace(raw), FutureFleetScaler(fleet, window)
        )
        materialized = int(result.proactive_flags.sum()) + result.n_unused_instances
        assert 0 <= materialized <= fleet
        # When the last arrival lies beyond every scheduled creation time,
        # each creation was either materialized (served or left idle) or
        # cancelled by a reactive cold start — and each cold start cancels at
        # most one creation, so the two observable counts cover the fleet.
        reactive_count = int((~result.proactive_flags).sum())
        if result.n_queries and float(result.arrival_times[-1]) >= window:
            assert materialized + reactive_count >= fleet

    @given(raw=arrival_lists)
    @settings(max_examples=15, deadline=None)
    def test_reactive_serves_every_query_exactly_once(self, engine_cls, raw):
        config = SimulationConfig(pending_time=2.0, seed=7)
        trace = _trace(raw)
        result = engine_cls(config).replay(trace, ReactiveScaler())
        assert result.n_queries == trace.n_queries
        assert not result.hits.any()
        np.testing.assert_array_equal(result.creation_times, result.arrival_times)
