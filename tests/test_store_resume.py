"""Tests for resumable experiment runs (`run_tasks(..., run_id=...)`).

The headline guarantee: a run that is killed mid-way and restarted with the
same task list, base seed, store and ``run_id`` produces rows bit-identical
to an uninterrupted run — journaled tasks are recovered verbatim (pickle
preserves floats exactly) and the per-task ``SeedSequence.spawn`` seeding
makes the remaining tasks independent of what ran before the interruption.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.runtime import (
    EvalResult,
    EvalTask,
    FunctionTask,
    ScalerSpec,
    WorkloadSpec,
    run_task_rows,
    run_tasks,
    strip_timing,
)
from repro.store import ArtifactStore, list_runs


@pytest.fixture
def store(tmp_path) -> ArtifactStore:
    return ArtifactStore(tmp_path / "store")


def small_tasks() -> list[EvalTask]:
    tasks: list[EvalTask] = []
    for name in ("steady-state", "flash-crowd"):
        workload = WorkloadSpec(scenario=name, scale=0.05, seed=7)
        specs = [
            ScalerSpec("reactive"),
            ScalerSpec("bp", 2),
            ScalerSpec("rs-hp", 0.7, planning_interval=20.0, monte_carlo_samples=60),
        ]
        tasks += [
            EvalTask(workload, spec, extra=(("scenario", name),)) for spec in specs
        ]
    return tasks


def multiply_point(*, a: float, b: float) -> dict:
    """Deterministic FunctionTask target used by the tests below."""
    return {"a": a, "b": b, "product": a * b}


class _InterruptAfter:
    """on_result hook that simulates a crash after ``limit`` completions."""

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.seen: list[EvalResult] = []

    def __call__(self, result: EvalResult) -> None:
        self.seen.append(result)
        if len(self.seen) >= self.limit:
            raise KeyboardInterrupt


class TestResume:
    def test_run_id_requires_store(self):
        with pytest.raises(ValidationError):
            run_tasks(small_tasks()[:1], run_id="r")

    def test_interrupted_run_resumes_bit_identical(self, store):
        tasks = small_tasks()
        baseline = run_task_rows(tasks, base_seed=7)

        interrupt = _InterruptAfter(2)
        with pytest.raises(KeyboardInterrupt):
            run_tasks(
                tasks, base_seed=7, store=store, run_id="r1", on_result=interrupt
            )
        # The results namespace holds the per-task records plus the run
        # index (meta + catalog); the index's completion count is the
        # number of journaled task records.
        [run] = list_runs(store)
        journaled = run["completed"]
        assert run["run_id"] == "r1" and run["total"] == len(tasks)
        assert 0 < journaled < len(tasks)

        resumed = run_tasks(tasks, base_seed=7, store=store, run_id="r1")
        n_recovered = sum(result.resumed for result in resumed)
        assert n_recovered == journaled
        [run] = list_runs(store)
        assert run["completed"] == run["total"] == len(tasks)
        assert [r.row for r in resumed] and strip_timing(
            [r.row for r in resumed]
        ) == strip_timing(baseline)

    def test_completed_run_resumes_everything_verbatim(self, store):
        tasks = small_tasks()[:3]
        first = run_tasks(tasks, base_seed=7, store=store, run_id="done")
        second = run_tasks(tasks, base_seed=7, store=store, run_id="done")
        assert all(result.resumed for result in second)
        # Verbatim recovery: even the timing columns match the first run.
        assert [r.row for r in second] == [r.row for r in first]

    def test_journal_ignored_when_tasks_change(self, store):
        tasks = small_tasks()[:2]
        run_tasks(tasks, base_seed=7, store=store, run_id="r2")
        changed = [
            EvalTask(task.workload, ScalerSpec("bp", 3), extra=task.extra)
            for task in tasks
        ]
        rerun = run_tasks(changed, base_seed=7, store=store, run_id="r2")
        assert not any(result.resumed for result in rerun)

    def test_journal_keyed_by_base_seed(self, store):
        tasks = small_tasks()[:2]
        run_tasks(tasks, base_seed=7, store=store, run_id="r3")
        other_seed = run_tasks(tasks, base_seed=8, store=store, run_id="r3")
        assert not any(result.resumed for result in other_seed)

    def test_parallel_resume_matches_serial(self, store):
        tasks = small_tasks()
        baseline = run_task_rows(tasks, base_seed=7)
        interrupt = _InterruptAfter(1)
        with pytest.raises(KeyboardInterrupt):
            run_tasks(
                tasks, base_seed=7, store=store, run_id="r4", on_result=interrupt
            )
        resumed = run_task_rows(
            tasks, base_seed=7, workers=2, store=store, run_id="r4"
        )
        assert strip_timing(resumed) == strip_timing(baseline)


class TestStreaming:
    def test_on_result_sees_every_task_in_completion_order(self, store):
        tasks = small_tasks()[:4]
        seen: list[int] = []
        results = run_tasks(tasks, base_seed=7, on_result=lambda r: seen.append(r.index))
        assert sorted(seen) == list(range(len(tasks)))
        assert [result.index for result in results] == list(range(len(tasks)))

    def test_recovered_results_stream_first(self, store):
        tasks = small_tasks()[:3]
        run_tasks(tasks, base_seed=7, store=store, run_id="r5")
        seen: list[bool] = []
        run_tasks(
            tasks,
            base_seed=7,
            store=store,
            run_id="r5",
            on_result=lambda r: seen.append(r.resumed),
        )
        assert seen == [True, True, True]


class TestFunctionTasks:
    def _grid(self) -> list[FunctionTask]:
        return [
            FunctionTask(
                fn=f"{__name__}.multiply_point",
                kwargs=(("a", float(a)), ("b", 3.0)),
                extra=(("grid", "demo"),),
            )
            for a in range(4)
        ]

    def test_rows_and_annotations(self):
        rows = run_task_rows(self._grid(), base_seed=0)
        assert [row["product"] for row in rows] == [0.0, 3.0, 6.0, 9.0]
        assert all(row["grid"] == "demo" for row in rows)

    def test_parallel_matches_serial(self):
        serial = run_task_rows(self._grid(), base_seed=0)
        parallel = run_task_rows(self._grid(), base_seed=0, workers=2)
        assert serial == parallel

    def test_resumable(self, store):
        grid = self._grid()
        first = run_task_rows(grid, base_seed=0, store=store, run_id="fn")
        rerun = run_tasks(grid, base_seed=0, store=store, run_id="fn")
        assert all(result.resumed for result in rerun)
        assert [result.row for result in rerun] == first

    def test_digest_distinguishes_kwargs(self):
        a, b, *_ = self._grid()
        assert a.digest() != b.digest()
        assert a.digest() == self._grid()[0].digest()

    def test_fn_path_validated(self):
        with pytest.raises(ValidationError):
            FunctionTask(fn="notdotted")
