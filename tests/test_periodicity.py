"""Tests for the robust periodicity detector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import PeriodicityConfig
from repro.exceptions import PeriodicityDetectionError
from repro.nhpp.intensity import PiecewiseConstantIntensity
from repro.nhpp.sampling import sample_counts
from repro.periodicity import PeriodicityDetector, detect_period
from repro.traces.synthetic import beta_bump_intensity
from repro.types import QPSSeries


def _periodic_counts(
    period_bins: int, n_periods: int, bin_seconds: float, peak: float, seed: int
) -> QPSSeries:
    n_bins = period_bins * n_periods
    times = (np.arange(n_bins) + 0.5) * bin_seconds
    values = beta_bump_intensity(
        times,
        peak=peak,
        period_seconds=period_bins * bin_seconds,
        exponent=6.0,
        base=0.02,
    )
    intensity = PiecewiseConstantIntensity(values, bin_seconds, extrapolation="periodic")
    counts = sample_counts(intensity, n_bins * bin_seconds, seed)
    return QPSSeries(counts, bin_seconds, name="periodic")


class TestPeriodicityDetector:
    def test_detects_planted_period(self):
        series = _periodic_counts(period_bins=120, n_periods=8, bin_seconds=60.0, peak=2.0, seed=0)
        result = detect_period(series)
        assert result.detected
        assert abs(result.period_bins - 120) <= 6
        assert result.period_seconds == result.period_bins * 60.0

    def test_no_period_in_constant_traffic(self):
        rng = np.random.default_rng(1)
        counts = rng.poisson(5.0, size=800)
        series = QPSSeries(counts, 60.0)
        result = detect_period(series)
        assert not result.detected
        assert result.period_bins == 0

    def test_detection_robust_to_outliers(self):
        series = _periodic_counts(period_bins=96, n_periods=8, bin_seconds=60.0, peak=2.0, seed=2)
        counts = np.asarray(series.counts).copy()
        counts[50] += 500  # a single huge burst
        corrupted = QPSSeries(counts, 60.0)
        result = detect_period(corrupted)
        assert result.detected
        assert abs(result.period_bins - 96) <= 5

    def test_short_series_raises(self):
        series = QPSSeries(np.ones(10), 60.0)
        with pytest.raises(PeriodicityDetectionError):
            PeriodicityDetector(PeriodicityConfig(aggregation_factor=1)).detect(series)

    def test_aggregation_factor_shrinks_for_short_series(self):
        series = _periodic_counts(period_bins=24, n_periods=6, bin_seconds=60.0, peak=3.0, seed=3)
        detector = PeriodicityDetector(PeriodicityConfig(aggregation_factor=10))
        result = detector.detect(series)
        # 144 bins / 10 would leave too few aggregated bins; the detector must
        # shrink the factor rather than fail.
        assert result.aggregation_factor < 10

    def test_result_contains_candidates(self):
        series = _periodic_counts(period_bins=120, n_periods=8, bin_seconds=60.0, peak=2.0, seed=4)
        result = detect_period(series)
        assert result.candidates, "periodogram candidates should be reported"

    def test_detection_is_deterministic(self):
        series = _periodic_counts(period_bins=120, n_periods=6, bin_seconds=60.0, peak=2.0, seed=5)
        first = detect_period(series)
        second = detect_period(series)
        assert first.period_bins == second.period_bins
        assert first.detected == second.detected
