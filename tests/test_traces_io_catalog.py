"""Tests for trace CSV IO and the trace catalog."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import TraceError, TraceFormatError
from repro.traces.catalog import get_trace, list_traces
from repro.traces.io import load_qps_csv, load_trace_csv, save_qps_csv, save_trace_csv
from repro.types import ArrivalTrace, QPSSeries


class TestTraceCsv:
    def test_round_trip(self, tmp_path):
        trace = ArrivalTrace([1.5, 2.25, 10.0], [3.0, 4.0, 5.0], name="demo", horizon=20.0)
        path = save_trace_csv(trace, tmp_path / "demo.csv")
        loaded = load_trace_csv(path)
        np.testing.assert_allclose(loaded.arrival_times, trace.arrival_times)
        np.testing.assert_allclose(loaded.processing_times, trace.processing_times)
        assert loaded.horizon == pytest.approx(20.0)
        assert loaded.name == "demo"

    def test_round_trip_empty_trace(self, tmp_path):
        trace = ArrivalTrace([], [], name="empty", horizon=0.0)
        loaded = load_trace_csv(save_trace_csv(trace, tmp_path / "empty.csv"))
        assert loaded.n_queries == 0

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(TraceFormatError):
            load_trace_csv(tmp_path / "does-not-exist.csv")

    def test_malformed_row_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("arrival_time,processing_time\nnot-a-number,1.0\n")
        with pytest.raises(TraceFormatError):
            load_trace_csv(path)

    def test_name_override(self, tmp_path):
        trace = ArrivalTrace([1.0], [2.0], name="original", horizon=5.0)
        path = save_trace_csv(trace, tmp_path / "x.csv")
        loaded = load_trace_csv(path, name="override")
        assert loaded.name == "override"


class TestQpsCsv:
    def test_round_trip(self, tmp_path):
        series = QPSSeries([1, 0, 5, 2], 300.0, name="qps-demo")
        loaded = load_qps_csv(save_qps_csv(series, tmp_path / "qps.csv"))
        np.testing.assert_allclose(loaded.counts, series.counts)
        assert loaded.bin_seconds == 300.0

    def test_missing_bin_seconds_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("bin_start,count\n0.0,1\n")
        with pytest.raises(TraceFormatError):
            load_qps_csv(path)


class TestCatalog:
    def test_lists_three_traces(self):
        names = [spec.name for spec in list_traces()]
        assert names == ["alibaba", "crs", "google"]

    def test_get_trace_case_insensitive(self):
        assert get_trace("CRS").name == "crs"

    def test_unknown_trace_raises(self):
        with pytest.raises(TraceError):
            get_trace("azure")

    def test_spec_metadata(self):
        spec = get_trace("google")
        assert 0.0 < spec.train_fraction < 1.0
        assert spec.pending_time > 0
        assert spec.description

    def test_build_seed_deterministic(self):
        spec = get_trace("google")
        first = spec.build(seed=3)
        second = spec.build(seed=3)
        np.testing.assert_array_equal(first.arrival_times, second.arrival_times)
        np.testing.assert_array_equal(first.processing_times, second.processing_times)

    def test_build_different_seeds_differ(self):
        spec = get_trace("google")
        a = spec.build(seed=3)
        b = spec.build(seed=4)
        assert a.n_queries != b.n_queries or not np.array_equal(
            a.arrival_times, b.arrival_times
        )

    def test_build_default_seed_matches_explicit(self):
        spec = get_trace("alibaba")
        default = spec.build()
        explicit = spec.build(seed=spec.default_seed)
        np.testing.assert_array_equal(default.arrival_times, explicit.arrival_times)

    def test_build_split_accepts_seed(self):
        spec = get_trace("google")
        train, test = spec.build_split(seed=3)
        full = spec.build(seed=3)
        assert train.n_queries + test.n_queries == full.n_queries
