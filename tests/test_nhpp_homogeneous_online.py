"""Tests for the homogeneous baseline, model comparison, and rolling forecaster."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ADMMConfig, NHPPConfig
from repro.exceptions import ModelNotFittedError, ValidationError
from repro.nhpp.homogeneous import (
    HomogeneousPoissonModel,
    compare_aic,
    effective_degrees_of_freedom,
    poisson_log_likelihood,
)
from repro.nhpp.intensity import PiecewiseConstantIntensity
from repro.nhpp.model import NHPPModel
from repro.nhpp.online import RollingNHPPForecaster
from repro.nhpp.sampling import sample_arrival_times, sample_counts
from repro.traces.synthetic import beta_bump_intensity
from repro.types import ArrivalTrace, QPSSeries


class TestHomogeneousPoissonModel:
    def test_fit_from_series(self):
        series = QPSSeries([6, 6, 6, 6], 60.0)
        model = HomogeneousPoissonModel().fit(series)
        assert model.rate == pytest.approx(0.1)

    def test_fit_from_trace(self):
        trace = ArrivalTrace(np.linspace(1, 99, 50), 1.0, horizon=100.0)
        model = HomogeneousPoissonModel().fit(trace)
        assert model.rate == pytest.approx(0.5)

    def test_unfitted_raises(self):
        with pytest.raises(ModelNotFittedError):
            _ = HomogeneousPoissonModel().rate

    def test_forecast_constant(self):
        series = QPSSeries([3, 3, 3, 3, 3], 60.0)
        forecast = HomogeneousPoissonModel().fit(series).forecast()
        assert forecast.value(10.0) == pytest.approx(0.05)
        assert forecast.value(100_000.0) == pytest.approx(0.05)

    def test_expected_count(self):
        series = QPSSeries([6, 6], 60.0)
        model = HomogeneousPoissonModel().fit(series)
        assert model.expected_count(0.0, 600.0) == pytest.approx(60.0)
        with pytest.raises(ValidationError):
            model.expected_count(10.0, 0.0)

    def test_invalid_data_rejected(self):
        with pytest.raises(ValidationError):
            HomogeneousPoissonModel().fit([1, 2, 3])


class TestPoissonLogLikelihood:
    def test_matches_scipy(self):
        from scipy import stats

        counts = np.array([0.0, 2.0, 5.0])
        values = np.array([0.01, 0.05, 0.08])
        ll = poisson_log_likelihood(counts, values, 60.0)
        expected = float(np.sum(stats.poisson.logpmf(counts, values * 60.0)))
        assert ll == pytest.approx(expected)

    def test_zero_intensity_with_count_is_minus_inf(self):
        ll = poisson_log_likelihood(np.array([1.0]), np.array([0.0]), 60.0)
        assert ll == float("-inf")

    def test_zero_intensity_zero_count_ok(self):
        ll = poisson_log_likelihood(np.array([0.0]), np.array([0.0]), 60.0)
        assert ll == pytest.approx(0.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            poisson_log_likelihood(np.array([1.0]), np.array([1.0, 2.0]), 60.0)


class TestDegreesOfFreedomAndAIC:
    def test_constant_log_intensity_single_piece(self):
        assert effective_degrees_of_freedom(np.zeros(50)) == 2

    def test_piecewise_linear_counts_knots(self):
        r = np.concatenate([np.linspace(0, 1, 25), np.linspace(1, 0, 25)])
        assert effective_degrees_of_freedom(r) >= 3

    def test_nhpp_preferred_over_constant_on_periodic_workload(self, fast_nhpp):
        bin_seconds = 60.0
        period_bins = 60
        times = (np.arange(period_bins * 6) + 0.5) * bin_seconds
        truth = beta_bump_intensity(
            times, peak=0.5, period_seconds=period_bins * bin_seconds, exponent=6.0, base=0.02
        )
        counts = sample_counts(
            PiecewiseConstantIntensity(truth, bin_seconds, extrapolation="periodic"),
            times.size * bin_seconds,
            0,
        )
        series = QPSSeries(counts, bin_seconds)
        nhpp = NHPPModel(fast_nhpp).fit(series, period_bins=period_bins)
        constant = HomogeneousPoissonModel().fit(series)
        comparison = compare_aic(
            counts,
            bin_seconds,
            nhpp.fit_result.intensity,
            np.full(counts.size, constant.rate),
            dof_b=1,
        )
        assert comparison.preferred == "a"
        assert comparison.log_likelihood_a > comparison.log_likelihood_b

    def test_constant_preferred_on_constant_workload(self):
        rng = np.random.default_rng(1)
        counts = rng.poisson(6.0, size=200).astype(float)
        rate = counts.sum() / (200 * 60.0)
        # A wiggly overfitted estimate: the raw per-bin rates.
        overfit = np.maximum(counts, 0.5) / 60.0
        comparison = compare_aic(
            counts, 60.0, overfit, np.full(200, rate), dof_a=200, dof_b=1
        )
        assert comparison.preferred == "b"


class TestRollingNHPPForecaster:
    def _bump(self) -> PiecewiseConstantIntensity:
        bin_seconds = 30.0
        times = (np.arange(120) + 0.5) * bin_seconds
        values = beta_bump_intensity(
            times, peak=0.8, period_seconds=1800.0, exponent=8.0, base=0.05
        )
        return PiecewiseConstantIntensity(values, bin_seconds, extrapolation="periodic")

    def test_not_ready_before_first_refit(self):
        forecaster = RollingNHPPForecaster()
        assert not forecaster.is_ready
        with pytest.raises(ModelNotFittedError):
            forecaster.forecast_at(0.0)

    def test_refit_and_forecast(self):
        intensity = self._bump()
        arrivals = sample_arrival_times(intensity, 5400.0, 2)
        forecaster = RollingNHPPForecaster(
            bin_seconds=30.0,
            window_seconds=5400.0,
            refresh_seconds=600.0,
            config=NHPPConfig(admm=ADMMConfig(max_iterations=120)),
            min_observations=20,
        )
        forecaster.observe(arrivals)
        assert forecaster.maybe_refit(5400.0)
        assert forecaster.is_ready
        forecast = forecaster.forecast_at(5400.0)
        # The forecast should predict roughly the right volume for the next cycle.
        predicted = forecast.cumulative(1800.0)
        expected = intensity.cumulative(7200.0) - intensity.cumulative(5400.0)
        assert predicted == pytest.approx(expected, rel=0.5)

    def test_refresh_interval_respected(self):
        forecaster = RollingNHPPForecaster(
            bin_seconds=30.0, window_seconds=3600.0, refresh_seconds=600.0, min_observations=5
        )
        forecaster.observe(np.linspace(0.0, 900.0, 40))
        assert forecaster.maybe_refit(900.0)
        # Too soon: no refit.
        forecaster.observe(np.linspace(901.0, 1000.0, 10))
        assert not forecaster.maybe_refit(1000.0)
        # Force works regardless.
        assert forecaster.maybe_refit(1000.0, force=True)
        assert len(forecaster.refit_history) == 2

    def test_too_few_observations_skips_refit(self):
        forecaster = RollingNHPPForecaster(min_observations=100)
        forecaster.observe(np.linspace(0, 100, 10))
        assert not forecaster.maybe_refit(100.0)

    def test_out_of_order_observations_rejected(self):
        forecaster = RollingNHPPForecaster()
        forecaster.observe([10.0, 20.0])
        with pytest.raises(ValidationError):
            forecaster.observe(5.0)

    def test_window_trimming(self):
        forecaster = RollingNHPPForecaster(
            bin_seconds=30.0, window_seconds=600.0, refresh_seconds=60.0, min_observations=5
        )
        forecaster.observe(np.linspace(0.0, 2000.0, 300))
        forecaster.maybe_refit(2000.0)
        # Only arrivals within the trailing 600-second window are retained.
        assert forecaster.n_observations <= 300
        assert forecaster.n_observations > 0
        history = forecaster.refit_history
        assert history[-1].n_observations == forecaster.n_observations
