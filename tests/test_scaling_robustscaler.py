"""Tests for the RobustScaler policy (time-based planning) and its variants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import PlannerConfig, SimulationConfig
from repro.exceptions import PlanningError
from repro.nhpp.intensity import PiecewiseConstantIntensity
from repro.nhpp.model import NHPPModel
from repro.nhpp.sampling import sample_homogeneous_arrivals
from repro.pending import DeterministicPendingTime
from repro.scaling.base import PlanningContext
from repro.scaling.robustscaler import RobustScaler, RobustScalerObjective
from repro.simulation.engine import ScalingPerQuerySimulator
from repro.types import ArrivalTrace


def _constant_forecast(rate: float) -> PiecewiseConstantIntensity:
    return PiecewiseConstantIntensity(np.array([rate]), 60.0, extrapolation="hold")


def _context(time: float, n_arrivals: int, outstanding: int) -> PlanningContext:
    history = np.linspace(0.0, max(time, 1.0), n_arrivals) if n_arrivals else np.array([])
    return PlanningContext(
        time=time,
        n_arrivals=n_arrivals,
        arrival_history=history,
        created_unassigned=outstanding,
        ready_unassigned=outstanding,
        scheduled_creations=0,
    )


@pytest.fixture
def hpp_trace() -> ArrivalTrace:
    arrivals = sample_homogeneous_arrivals(0.2, 3 * 3600.0, 21)
    return ArrivalTrace(arrivals, 20.0, name="hpp", horizon=3 * 3600.0)


class TestConstruction:
    def test_invalid_forecast_rejected(self, pending_model):
        with pytest.raises(PlanningError):
            RobustScaler("not-an-intensity", pending_model)

    def test_invalid_hp_target_rejected(self, pending_model):
        with pytest.raises(PlanningError):
            RobustScaler(_constant_forecast(1.0), pending_model, target=1.5)

    def test_name_reflects_objective(self, pending_model):
        scaler = RobustScaler(
            _constant_forecast(1.0),
            pending_model,
            objective=RobustScalerObjective.COST,
            target=2.0,
        )
        assert "COST" in scaler.name

    def test_from_model(self, fast_nhpp, periodic_trace, pending_model):
        model = NHPPModel(fast_nhpp, bin_seconds=30.0).fit(
            periodic_trace, detect_periodicity=False
        )
        scaler = RobustScaler.from_model(model, pending_model, target=0.8)
        assert scaler.planning_interval > 0


class TestPlanningBehaviour:
    def test_planning_commits_for_upcoming_queries(self, fast_planner, pending_model):
        scaler = RobustScaler(
            _constant_forecast(0.5),
            pending_model,
            target=0.9,
            planner=fast_planner,
            random_state=0,
        )
        response = scaler.initialize(_context(0.0, 0, outstanding=0))
        assert len(response.actions) >= 1
        assert all(a.creation_time >= 0.0 for a in response.actions)

    def test_outstanding_coverage_suppresses_new_actions(self, fast_planner, pending_model):
        scaler = RobustScaler(
            _constant_forecast(0.01),
            pending_model,
            target=0.5,
            planner=fast_planner,
            random_state=0,
        )
        response = scaler.on_planning_tick(_context(100.0, 2, outstanding=50))
        assert len(response.actions) == 0

    def test_actions_absolute_times_after_now(self, fast_planner, pending_model):
        scaler = RobustScaler(
            _constant_forecast(0.2),
            pending_model,
            target=0.3,
            planner=fast_planner,
            random_state=1,
        )
        now = 500.0
        response = scaler.on_planning_tick(_context(now, 3, outstanding=0))
        assert all(a.creation_time >= now for a in response.actions)
        assert all(a.planned_at == now for a in response.actions)

    def test_higher_target_creates_earlier(self, fast_planner, pending_model):
        def first_creation(target: float) -> float:
            scaler = RobustScaler(
                _constant_forecast(0.05),
                pending_model,
                target=target,
                planner=fast_planner,
                random_state=3,
            )
            response = scaler.initialize(_context(0.0, 0, outstanding=0))
            return min(a.creation_time for a in response.actions)

        assert first_creation(0.95) <= first_creation(0.3)

    def test_reset_restores_random_stream(self, fast_planner, pending_model):
        scaler = RobustScaler(
            _constant_forecast(0.2),
            pending_model,
            target=0.7,
            planner=fast_planner,
            random_state=5,
        )
        first = scaler.initialize(_context(0.0, 0, outstanding=0))
        scaler.reset()
        second = scaler.initialize(_context(0.0, 0, outstanding=0))
        np.testing.assert_allclose(
            [a.creation_time for a in first.actions],
            [a.creation_time for a in second.actions],
        )


class TestEndToEndQoS:
    @pytest.mark.parametrize("target", [0.5, 0.9])
    def test_hit_rate_tracks_target_with_known_intensity(self, hpp_trace, target):
        forecast = _constant_forecast(0.2)
        pending = DeterministicPendingTime(13.0)
        scaler = RobustScaler(
            forecast,
            pending,
            target=target,
            planner=PlannerConfig(planning_interval=2.0, monte_carlo_samples=600),
            random_state=2,
        )
        simulator = ScalingPerQuerySimulator(SimulationConfig(pending_time=13.0))
        result = simulator.replay(hpp_trace, scaler)
        assert result.hit_rate == pytest.approx(target, abs=0.08)

    def test_rt_variant_meets_waiting_budget(self, hpp_trace):
        forecast = _constant_forecast(0.2)
        pending = DeterministicPendingTime(13.0)
        budget = 3.0
        scaler = RobustScaler(
            forecast,
            pending,
            objective=RobustScalerObjective.RESPONSE_TIME,
            target=budget,
            planner=PlannerConfig(planning_interval=2.0, monte_carlo_samples=600),
            random_state=3,
        )
        simulator = ScalingPerQuerySimulator(SimulationConfig(pending_time=13.0))
        result = simulator.replay(hpp_trace, scaler)
        assert float(result.waiting_times.mean()) <= budget + 1.5

    def test_cost_variant_respects_idle_budget(self, hpp_trace):
        forecast = _constant_forecast(0.2)
        pending = DeterministicPendingTime(13.0)
        budget = 1.0
        scaler = RobustScaler(
            forecast,
            pending,
            objective=RobustScalerObjective.COST,
            target=budget,
            planner=PlannerConfig(planning_interval=2.0, monte_carlo_samples=600),
            random_state=4,
        )
        simulator = ScalingPerQuerySimulator(SimulationConfig(pending_time=13.0))
        result = simulator.replay(hpp_trace, scaler)
        idle = np.array([o.instance.idle_time for o in result.outcomes])
        assert float(idle.mean()) <= budget + 1.0

    def test_beats_reactive_on_response_time(self, hpp_trace):
        from repro.scaling.backup_pool import ReactiveScaler

        forecast = _constant_forecast(0.2)
        pending = DeterministicPendingTime(13.0)
        simulator = ScalingPerQuerySimulator(SimulationConfig(pending_time=13.0))
        reactive = simulator.replay(hpp_trace, ReactiveScaler())
        robust = simulator.replay(
            hpp_trace,
            RobustScaler(
                forecast,
                pending,
                target=0.9,
                planner=PlannerConfig(planning_interval=2.0, monte_carlo_samples=400),
                random_state=5,
            ),
        )
        assert robust.mean_response_time < reactive.mean_response_time
        assert robust.hit_rate > 0.5
