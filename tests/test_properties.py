"""Cross-module property-based tests (hypothesis).

These properties tie several subsystems together and must hold for *any*
well-formed input, not just the fixtures used elsewhere:

* simulator conservation laws under arbitrary proactive plans;
* consistency between the decision solvers and the empirical objectives they
  optimize;
* agreement between the intensity object's integral and the Monte Carlo
  samplers built on top of it.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SimulationConfig
from repro.nhpp.intensity import PiecewiseConstantIntensity
from repro.nhpp.sampling import sample_next_arrivals
from repro.optimization.formulations import solve_cost_constrained, solve_hp_constrained
from repro.optimization.sort_and_search import expected_idle_time, expected_waiting_time
from repro.scaling.base import Autoscaler, PlanningContext, ScalingResponse
from repro.simulation.engine import ScalingPerQuerySimulator
from repro.types import ArrivalTrace, ScalingAction


class _PlannedScaler(Autoscaler):
    """Creates instances at a fixed set of absolute times (for property tests)."""

    name = "planned"

    def __init__(self, creation_times):
        self._times = list(creation_times)

    def initialize(self, context: PlanningContext) -> ScalingResponse:
        return ScalingResponse(
            actions=[ScalingAction(creation_time=float(t)) for t in self._times]
        )


arrival_lists = st.lists(
    st.floats(min_value=0.0, max_value=2000.0), min_size=1, max_size=40
)
creation_lists = st.lists(
    st.floats(min_value=0.0, max_value=2000.0), min_size=0, max_size=40
)


class TestSimulatorInvariants:
    @given(arrival_lists, creation_lists, st.floats(min_value=0.0, max_value=30.0))
    @settings(max_examples=60, deadline=None)
    def test_conservation_under_arbitrary_plans(self, arrivals, creations, pending):
        """Every query is served exactly once; all costs are non-negative;
        the total cost is at least the irreducible pending + processing time
        of the served queries."""
        arrivals = np.sort(np.asarray(arrivals))
        processing = 3.0
        trace = ArrivalTrace(arrivals, processing, horizon=2100.0)
        config = SimulationConfig(pending_time=pending)
        result = ScalingPerQuerySimulator(config).replay(trace, _PlannedScaler(creations))

        assert result.n_queries == trace.n_queries
        served = sorted(o.query.index for o in result.outcomes)
        assert served == list(range(trace.n_queries))
        assert np.all(result.waiting_times >= 0.0)
        assert np.all(result.response_times >= processing - 1e-9)
        assert result.unused_instance_cost >= 0.0
        irreducible = trace.n_queries * processing
        assert result.total_cost >= irreducible - 1e-6
        # Waiting never exceeds the pending time: an instance is at most
        # "pending" away from being ready once the query has arrived.
        assert np.all(result.waiting_times <= pending + 1e-9)

    @given(arrival_lists, st.floats(min_value=0.0, max_value=30.0))
    @settings(max_examples=40, deadline=None)
    def test_more_proactive_instances_never_hurt_qos(self, arrivals, pending):
        """Adding warm instances at time zero can only improve hit rate and RT."""
        arrivals = np.sort(np.asarray(arrivals))
        trace = ArrivalTrace(arrivals, 2.0, horizon=2100.0)
        config = SimulationConfig(pending_time=pending)
        simulator = ScalingPerQuerySimulator(config)
        none = simulator.replay(trace, _PlannedScaler([]))
        many = simulator.replay(trace, _PlannedScaler([0.0] * len(arrivals)))
        assert many.hit_rate >= none.hit_rate - 1e-9
        assert many.mean_response_time <= none.mean_response_time + 1e-9


class TestDecisionConsistency:
    @given(
        st.integers(min_value=5, max_value=300),
        st.floats(min_value=0.05, max_value=0.95),
        st.floats(min_value=0.0, max_value=20.0),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_hp_decision_satisfies_empirical_constraint(self, n, target, pending, seed):
        """The HP decision achieves at least the target on its own samples."""
        rng = np.random.default_rng(seed)
        xi = rng.exponential(10.0, size=n)
        tau = np.full(n, pending)
        decision = solve_hp_constrained(xi, tau, target)
        empirical_hp = np.mean(xi > decision.raw_creation_time + tau)
        assert empirical_hp >= target - 1.0 / n - 1e-9

    @given(
        st.integers(min_value=5, max_value=300),
        st.floats(min_value=0.0, max_value=30.0),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_cost_decision_never_exceeds_budget(self, n, budget, seed):
        rng = np.random.default_rng(seed)
        xi = rng.exponential(15.0, size=n)
        tau = rng.uniform(0.0, 5.0, size=n)
        decision = solve_cost_constrained(xi, tau, budget)
        assert expected_idle_time(decision.creation_time, xi, tau) <= budget + 1e-6

    @given(
        st.integers(min_value=5, max_value=200),
        st.floats(min_value=0.1, max_value=0.9),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_hp_decision_trades_cost_for_qos(self, n, target, seed):
        """A stricter HP target never has a later creation time (and never a
        lower expected idle cost) than a looser one on the same samples."""
        rng = np.random.default_rng(seed)
        xi = rng.exponential(10.0, size=n)
        tau = np.full(n, 3.0)
        loose = solve_hp_constrained(xi, tau, target)
        strict = solve_hp_constrained(xi, tau, min(target + 0.09, 0.99))
        assert strict.raw_creation_time <= loose.raw_creation_time + 1e-9
        assert (
            expected_waiting_time(strict.creation_time, xi, tau)
            <= expected_waiting_time(loose.creation_time, xi, tau) + 1e-9
        )


class TestSamplingConsistency:
    @given(
        st.lists(st.floats(min_value=0.0, max_value=3.0), min_size=1, max_size=8),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_next_arrival_samples_respect_cumulative_intensity(self, rates, k, seed):
        """Each sampled arrival time carries at least as much integrated
        intensity as the previous one, and the count of arrivals before any
        time t has the right mean (checked loosely via the first arrival)."""
        rates = np.asarray(rates)
        if rates.sum() <= 0:
            rates = rates + 0.1
        intensity = PiecewiseConstantIntensity(rates, 60.0, extrapolation="hold")
        samples = sample_next_arrivals(intensity, k, 200, seed)
        assert samples.shape == (200, k)
        assert np.all(np.diff(samples, axis=1) >= -1e-9)
        assert np.all(samples >= 0.0)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_first_arrival_mean_matches_rate(self, seed):
        rate = 0.5
        intensity = PiecewiseConstantIntensity(np.array([rate]), 60.0, extrapolation="hold")
        samples = sample_next_arrivals(intensity, 1, 3000, seed)[:, 0]
        assert samples.mean() == pytest.approx(1.0 / rate, rel=0.15)
