"""Tests for the piecewise-constant intensity object."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.nhpp.intensity import PiecewiseConstantIntensity


class TestConstruction:
    def test_basic(self):
        intensity = PiecewiseConstantIntensity(np.array([1.0, 2.0]), 10.0)
        assert intensity.n_bins == 2
        assert intensity.duration == 20.0
        assert intensity.total_mass == pytest.approx(30.0)

    def test_rejects_negative_values(self):
        with pytest.raises(ValidationError):
            PiecewiseConstantIntensity(np.array([-1.0]), 10.0)

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            PiecewiseConstantIntensity(np.array([]), 10.0)

    def test_rejects_unknown_extrapolation(self):
        with pytest.raises(ValidationError):
            PiecewiseConstantIntensity(np.array([1.0]), 10.0, extrapolation="linear")


class TestValue:
    def test_inside_window(self):
        intensity = PiecewiseConstantIntensity(np.array([1.0, 3.0]), 10.0)
        assert intensity.value(5.0) == 1.0
        assert intensity.value(15.0) == 3.0

    def test_negative_time_is_zero(self):
        intensity = PiecewiseConstantIntensity(np.array([1.0]), 10.0)
        assert intensity.value(-1.0) == 0.0

    def test_hold_extrapolation(self):
        intensity = PiecewiseConstantIntensity(np.array([1.0, 3.0]), 10.0, extrapolation="hold")
        assert intensity.value(100.0) == 3.0

    def test_zero_extrapolation(self):
        intensity = PiecewiseConstantIntensity(np.array([1.0]), 10.0, extrapolation="zero")
        assert intensity.value(100.0) == 0.0

    def test_periodic_extrapolation(self):
        intensity = PiecewiseConstantIntensity(
            np.array([1.0, 3.0]), 10.0, extrapolation="periodic"
        )
        assert intensity.value(25.0) == 1.0
        assert intensity.value(35.0) == 3.0

    def test_vectorized(self):
        intensity = PiecewiseConstantIntensity(np.array([1.0, 3.0]), 10.0)
        np.testing.assert_allclose(intensity.value(np.array([5.0, 15.0])), [1.0, 3.0])


class TestCumulative:
    def test_within_window(self):
        intensity = PiecewiseConstantIntensity(np.array([1.0, 3.0]), 10.0)
        assert intensity.cumulative(10.0) == pytest.approx(10.0)
        assert intensity.cumulative(15.0) == pytest.approx(25.0)

    def test_monotone(self):
        intensity = PiecewiseConstantIntensity(np.array([0.5, 0.0, 2.0]), 5.0)
        times = np.linspace(0.0, 30.0, 100)
        values = np.asarray(intensity.cumulative(times))
        assert np.all(np.diff(values) >= -1e-12)

    def test_hold_extrapolation(self):
        intensity = PiecewiseConstantIntensity(np.array([1.0]), 10.0, extrapolation="hold")
        assert intensity.cumulative(20.0) == pytest.approx(20.0)

    def test_periodic_extrapolation(self):
        intensity = PiecewiseConstantIntensity(
            np.array([1.0, 3.0]), 10.0, extrapolation="periodic"
        )
        assert intensity.cumulative(40.0) == pytest.approx(80.0)
        assert intensity.cumulative(45.0) == pytest.approx(85.0)

    def test_zero_extrapolation_saturates(self):
        intensity = PiecewiseConstantIntensity(np.array([2.0]), 10.0, extrapolation="zero")
        assert intensity.cumulative(100.0) == pytest.approx(20.0)


class TestInverseCumulative:
    def test_round_trip_within_window(self):
        intensity = PiecewiseConstantIntensity(np.array([1.0, 0.5, 2.0]), 10.0)
        for mass in [0.0, 3.0, 12.0, 30.0]:
            t = intensity.inverse_cumulative(mass)
            assert intensity.cumulative(t) == pytest.approx(mass, abs=1e-9)

    def test_round_trip_with_zero_bins(self):
        intensity = PiecewiseConstantIntensity(np.array([1.0, 0.0, 2.0]), 10.0)
        for mass in [5.0, 10.0, 15.0]:
            t = intensity.inverse_cumulative(mass)
            assert intensity.cumulative(t) == pytest.approx(mass, abs=1e-9)

    def test_beyond_window_hold(self):
        intensity = PiecewiseConstantIntensity(np.array([1.0]), 10.0, extrapolation="hold")
        assert intensity.inverse_cumulative(25.0) == pytest.approx(25.0)

    def test_beyond_window_periodic(self):
        intensity = PiecewiseConstantIntensity(
            np.array([1.0, 3.0]), 10.0, extrapolation="periodic"
        )
        mass = 100.0
        t = intensity.inverse_cumulative(mass)
        assert intensity.cumulative(t) == pytest.approx(mass, rel=1e-9)

    def test_beyond_window_zero_raises(self):
        intensity = PiecewiseConstantIntensity(np.array([1.0]), 10.0, extrapolation="zero")
        with pytest.raises(ValidationError):
            intensity.inverse_cumulative(11.0)

    def test_negative_mass_rejected(self):
        intensity = PiecewiseConstantIntensity(np.array([1.0]), 10.0)
        with pytest.raises(ValidationError):
            intensity.inverse_cumulative(-0.1)

    def test_tiny_held_rate_stays_finite_and_monotone(self):
        """Regression: a denormal-scale tail rate used to overflow the hold
        extrapolation to inf, making consecutive samples' diffs NaN."""
        tiny = 2.2250738585072014e-308
        intensity = PiecewiseConstantIntensity(
            np.array([tiny]), 60.0, extrapolation="hold"
        )
        masses = np.array([1.0, 2.0, 3.0, 1e30])
        times = intensity.inverse_cumulative(masses)
        assert np.all(np.isfinite(times))
        assert np.all(np.diff(times) >= 0.0)

    def test_tiny_periodic_mass_stays_finite_and_monotone(self):
        tiny = 2.2250738585072014e-308
        intensity = PiecewiseConstantIntensity(
            np.array([tiny]), 60.0, extrapolation="periodic"
        )
        masses = np.array([1.0, 2.0, 1e30])
        times = intensity.inverse_cumulative(masses)
        assert np.all(np.isfinite(times))
        assert np.all(np.diff(times) >= 0.0)

    @given(st.floats(min_value=0.0, max_value=500.0))
    @settings(max_examples=60, deadline=None)
    def test_inverse_is_generalized_inverse(self, mass):
        intensity = PiecewiseConstantIntensity(
            np.array([0.3, 0.0, 1.5, 0.7]), 8.0, extrapolation="hold"
        )
        t = intensity.inverse_cumulative(mass)
        assert intensity.cumulative(t) >= mass - 1e-8


class TestUpperBoundAndShift:
    def test_upper_bound_whole_profile(self):
        intensity = PiecewiseConstantIntensity(np.array([1.0, 5.0, 2.0]), 10.0)
        assert intensity.upper_bound() == 5.0

    def test_upper_bound_window(self):
        intensity = PiecewiseConstantIntensity(np.array([1.0, 5.0, 2.0]), 10.0)
        assert intensity.upper_bound(10.0) == 1.0
        assert intensity.upper_bound(15.0) == 5.0

    def test_shift_preserves_values(self):
        intensity = PiecewiseConstantIntensity(
            np.array([1.0, 2.0, 3.0, 4.0]), 10.0, extrapolation="periodic"
        )
        shifted = intensity.shift(20.0)
        assert shifted.value(0.0) == pytest.approx(intensity.value(20.0))
        assert shifted.value(10.0) == pytest.approx(intensity.value(30.0))

    def test_shift_beyond_hold_window(self):
        intensity = PiecewiseConstantIntensity(np.array([1.0, 2.0]), 10.0, extrapolation="hold")
        shifted = intensity.shift(100.0)
        assert shifted.value(0.0) == pytest.approx(2.0)

    def test_shift_zero_is_identity(self):
        intensity = PiecewiseConstantIntensity(np.array([1.0, 2.0]), 10.0)
        shifted = intensity.shift(0.0)
        np.testing.assert_allclose(shifted.values, intensity.values)
