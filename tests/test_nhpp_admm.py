"""Tests for the linearized ADMM solver (Algorithm 2)."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import optimize

from repro.config import ADMMConfig
from repro.exceptions import ConvergenceError
from repro.nhpp.admm import fit_log_intensity
from repro.nhpp.intensity import PiecewiseConstantIntensity
from repro.nhpp.objective import RegularizedNHPPObjective
from repro.nhpp.sampling import sample_counts
from repro.traces.synthetic import beta_bump_intensity


def _poisson_counts(rate_per_bin: np.ndarray, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.poisson(rate_per_bin).astype(float)


class TestFitLogIntensity:
    def test_objective_decreases_from_initial_guess(self):
        counts = _poisson_counts(np.full(50, 6.0), seed=1)
        obj = RegularizedNHPPObjective(counts, 60.0, beta_smooth=10.0, beta_period=0.0)
        result = fit_log_intensity(obj, ADMMConfig(max_iterations=100))
        assert result.objective_value <= obj.value(obj.initial_guess()) + 1e-6

    def test_smooth_fit_recovers_constant_rate(self):
        true_rate = 0.1  # per second => 6 per 60-second bin
        counts = _poisson_counts(np.full(80, true_rate * 60.0), seed=2)
        obj = RegularizedNHPPObjective(counts, 60.0, beta_smooth=50.0, beta_period=0.0)
        result = fit_log_intensity(obj, ADMMConfig(max_iterations=200))
        estimate = np.exp(result.log_intensity)
        assert np.mean(np.abs(estimate - true_rate)) < 0.03
        # The smoothness penalty should produce a nearly flat estimate.
        assert estimate.max() - estimate.min() < 0.08

    def test_matches_generic_solver_on_small_problem(self):
        """Cross-check the ADMM optimum against scipy's L-BFGS on a smoothed surrogate."""
        counts = _poisson_counts(np.array([4.0, 6.0, 9.0, 12.0, 9.0, 6.0, 4.0, 3.0]), seed=3)
        beta_smooth = 5.0
        obj = RegularizedNHPPObjective(counts, 30.0, beta_smooth=beta_smooth, beta_period=0.0)
        admm_result = fit_log_intensity(obj, ADMMConfig(max_iterations=2000, tolerance=1e-5))

        d2 = obj.d2.toarray()

        def smooth_objective(r):
            # Use a tight smooth approximation of |x| for the reference solver.
            eps = 1e-8
            diff = d2 @ r
            return (
                -counts @ r
                + 30.0 * np.exp(r).sum()
                + beta_smooth * np.sum(np.sqrt(diff**2 + eps))
            )

        reference = optimize.minimize(
            smooth_objective, obj.initial_guess(), method="L-BFGS-B"
        )
        assert admm_result.objective_value <= smooth_objective(reference.x) + 0.05 * abs(
            smooth_objective(reference.x)
        )

    def test_periodicity_penalty_ties_cycles_together(self):
        period_bins = 20
        times = (np.arange(period_bins * 6) + 0.5) * 60.0
        rates = beta_bump_intensity(
            times, peak=0.2, period_seconds=period_bins * 60.0, exponent=6.0, base=0.01
        )
        intensity = PiecewiseConstantIntensity(rates, 60.0, extrapolation="periodic")
        counts = sample_counts(intensity, times.size * 60.0, 5).astype(float)
        # Corrupt one cycle with an artificial dropout.
        corrupted = counts.copy()
        corrupted[40:60] = 0.0

        def fit(beta_period):
            obj = RegularizedNHPPObjective(
                corrupted, 60.0, beta_smooth=10.0, beta_period=beta_period,
                period_bins=period_bins,
            )
            return np.exp(fit_log_intensity(obj, ADMMConfig(max_iterations=200)).log_intensity)

        without = fit(0.0)
        with_reg = fit(50.0)
        truth = rates
        err_without = np.mean(np.abs(without[40:60] - truth[40:60]))
        err_with = np.mean(np.abs(with_reg[40:60] - truth[40:60]))
        assert err_with < err_without

    def test_converges_on_small_smooth_problem(self):
        counts = _poisson_counts(np.full(30, 10.0), seed=6)
        obj = RegularizedNHPPObjective(counts, 60.0, beta_smooth=5.0, beta_period=0.0)
        result = fit_log_intensity(obj, ADMMConfig(max_iterations=3000, tolerance=1e-2))
        assert result.converged

    def test_raise_on_no_convergence(self):
        counts = _poisson_counts(np.full(40, 8.0), seed=7)
        obj = RegularizedNHPPObjective(counts, 60.0, beta_smooth=20.0, beta_period=0.0)
        with pytest.raises(ConvergenceError):
            fit_log_intensity(
                obj,
                ADMMConfig(max_iterations=1, tolerance=1e-12),
                raise_on_no_convergence=True,
            )

    def test_initial_guess_shape_validated(self):
        counts = _poisson_counts(np.full(10, 5.0))
        obj = RegularizedNHPPObjective(counts, 60.0, 1.0, 0.0)
        with pytest.raises(ValueError):
            fit_log_intensity(obj, initial_guess=np.zeros(3))

    def test_verbose_records_history(self):
        counts = _poisson_counts(np.full(20, 5.0), seed=8)
        obj = RegularizedNHPPObjective(counts, 60.0, 5.0, 0.0)
        result = fit_log_intensity(obj, ADMMConfig(max_iterations=30, verbose=True))
        assert len(result.objective_history) == result.n_iterations
        assert len(result.primal_residuals) == result.n_iterations

    def test_deterministic(self):
        counts = _poisson_counts(np.full(25, 4.0), seed=9)
        obj = RegularizedNHPPObjective(counts, 60.0, 5.0, 0.0)
        a = fit_log_intensity(obj, ADMMConfig(max_iterations=50))
        b = fit_log_intensity(obj, ADMMConfig(max_iterations=50))
        np.testing.assert_array_equal(a.log_intensity, b.log_intensity)
