"""Tests for the unified declarative experiment API (``repro.api``).

Covers the registry (specs, parameter schemas, validation), the fluent
``Session`` facade (scenario mapping, seed override, typed ``ResultSet``
with provenance), the progress-streaming hook, and the property that the
``experiment`` / ``workloads sweep`` CLI subcommands are fully generated
from the registry (no orphaned argparse flags).
"""

from __future__ import annotations

import argparse

import pytest

from repro.api import (
    ExperimentSpec,
    ParamSpec,
    ProgressHook,
    Session,
    experiment_names,
    get_experiment,
    list_experiments,
    run_experiment,
)
from repro.api.cligen import (
    add_param_arguments,
    add_session_arguments,
    audit_parser,
)
from repro.cli import SWEEP_EXTRA_FLAGS, build_parser, main
from repro.exceptions import ValidationError
from repro.experiments.base import trace_defaults

#: A deliberately tiny parameterization used wherever a real run is needed.
_TINY_REG_GRID = dict(
    period_seconds=600.0,
    n_periods=2,
    bin_seconds=60.0,
    beta_smooth_values=(0.0,),
    beta_period_values=(0.0, 10.0),
    max_iterations=50,
)


class TestRegistry:
    def test_expected_experiments_registered(self):
        names = experiment_names()
        assert set(names) >= {
            "traces",
            "pareto",
            "variance",
            "perturbation",
            "scalability",
            "table1",
            "robustness",
            "control",
            "planning-frequency",
            "table3",
            "table4",
            "scenario-sweep",
            "kappa-ablation",
            "mc-sample-ablation",
            "regularization-sensitivity",
        }
        assert names == sorted(names)

    def test_unknown_experiment_fails_cleanly(self):
        with pytest.raises(ValidationError, match="unknown experiment"):
            get_experiment("not-an-experiment")

    def test_specs_are_well_formed(self):
        for spec in list_experiments():
            assert spec.title
            assert spec.description
            assert spec.result_columns
            assert any(param.name == "seed" for param in spec.params)
            if spec.runtime:
                # Runtime experiments replay or journal; they are the ones
                # the session's workers/store/run_id apply to.
                assert spec.run is not None

    def test_duplicate_registration_rejected(self):
        spec = get_experiment("traces")
        from repro.api.registry import register_experiment

        # Same spec re-registers idempotently ...
        register_experiment(spec)
        # ... a different runner under the same name does not.
        clone = ExperimentSpec(
            name="traces",
            title="x",
            params=(ParamSpec("seed", "int", 0),),
            run=lambda params, ctx: [],
            result_columns=("a",),
        )
        with pytest.raises(ValidationError, match="already registered"):
            register_experiment(clone)


class TestParamSpec:
    def test_scalar_coercion(self):
        param = ParamSpec("x", "float", 1.0)
        assert param.coerce("2.5") == 2.5
        with pytest.raises(ValidationError):
            param.coerce("not-a-number")

    def test_sequence_coercion_accepts_scalars_and_lists(self):
        param = ParamSpec("xs", "int", (1, 2), sequence=True)
        assert param.coerce([3, "4"]) == (3, 4)
        assert param.coerce(5) == (5,)

    def test_bool_coercion(self):
        param = ParamSpec("flag", "bool", True)
        assert param.coerce("false") is False
        assert param.coerce(1) is True
        with pytest.raises(ValidationError):
            param.coerce("maybe")

    def test_choices_enforced(self):
        param = ParamSpec("mode", "str", "a", choices=("a", "b"))
        assert param.coerce("b") == "b"
        with pytest.raises(ValidationError, match="must be one of"):
            param.coerce("c")

    def test_resolve_rejects_unknown_parameters(self):
        spec = get_experiment("variance")
        with pytest.raises(ValidationError, match="unknown parameter"):
            spec.resolve({"no_such_param": 1})

    def test_resolve_merges_defaults(self):
        spec = get_experiment("variance")
        params = spec.resolve({"scale": "0.5"})
        assert params["scale"] == 0.5
        assert params["trace_name"] == "crs"
        assert params["hp_targets"] == (0.3, 0.6, 0.9)


class TestSessionFluent:
    def test_scenario_maps_to_sequence_param(self):
        handle = Session(store=None).experiment("pareto").scenario("crs", "google")
        assert handle._params["trace_names"] == ("crs", "google")

    def test_scenario_maps_to_scalar_param(self):
        handle = Session(store=None).experiment("variance").scenario("flash-crowd")
        assert handle._params["trace_name"] == "flash-crowd"
        with pytest.raises(ValidationError, match="single scenario"):
            Session(store=None).experiment("variance").scenario("a", "b")

    def test_scenario_rejected_without_scenario_param(self):
        with pytest.raises(ValidationError, match="does not take a scenario"):
            Session(store=None).experiment("table3").scenario("crs")

    def test_engine_resolution_defaults_to_batched(self):
        assert Session(store=None).engine == "batched"
        assert Session(store=None, engine="reference").engine == "reference"

    def test_generic_scenario_defaults_make_registry_reachable(self):
        defaults = trace_defaults("cold-start-services")
        assert 0 < defaults["train_fraction"] < 1
        assert defaults["hp_targets"]
        with pytest.raises(KeyError, match="unknown trace name"):
            trace_defaults("azure")

    def test_run_returns_typed_resultset(self):
        result = (
            Session(store=None)
            .experiment("regularization-sensitivity")
            .run(**_TINY_REG_GRID)
        )
        assert len(result) == 2
        assert {"beta_smooth", "beta_period", "mse", "mae"} <= set(result.columns)
        assert result.column("beta_period") == [0.0, 10.0]
        assert result.to_columns()["mse"] == result.column("mse")
        assert "mse" in result.table()
        prov = result.provenance
        assert prov.experiment == "regularization-sensitivity"
        assert prov.engine == "batched"
        assert prov.n_tasks == 2
        assert prov.params["max_iterations"] == 50
        import repro

        assert prov.package_version == repro.__version__

    def test_result_schema_matches_observed_columns(self):
        """Guard against result_columns drifting from what drivers emit."""
        cases = {
            "regularization-sensitivity": _TINY_REG_GRID,
            "traces": {"trace_names": ("crs",), "scale": 0.1},
        }
        for name, params in cases.items():
            result = Session(store=None).experiment(name).run(**params)
            declared = set(get_experiment(name).result_columns)
            assert declared <= set(result.columns), name

    def test_session_seed_overrides_experiment_default(self):
        result = (
            Session(store=None, seed=123)
            .experiment("regularization-sensitivity")
            .run(**_TINY_REG_GRID)
        )
        assert result.provenance.seed == 123

    def test_to_dataframe_bridges_to_pandas_or_explains(self):
        result = (
            Session(store=None)
            .experiment("regularization-sensitivity")
            .run(**_TINY_REG_GRID)
        )
        try:
            import pandas  # noqa: F401
        except ImportError:
            with pytest.raises(ImportError, match="requires pandas"):
                result.to_dataframe()
        else:
            frame = result.to_dataframe()
            assert list(frame.columns) == list(result.columns)
            assert len(frame) == len(result)
            assert list(frame["beta_period"]) == result.column("beta_period")

    def test_progress_hook_streams_every_task(self):
        class Recorder(ProgressHook):
            def __init__(self):
                self.begun = []
                self.updates = 0
                self.finished = 0

            def begin(self, total):
                self.begun.append(total)

            def update(self, result):
                self.updates += 1

            def finish(self):
                self.finished += 1

        recorder = Recorder()
        rows = run_experiment(
            "regularization-sensitivity", _TINY_REG_GRID, progress=recorder
        )
        assert len(rows) == 2
        assert recorder.begun == [2]
        assert recorder.updates == 2
        assert recorder.finished == 1


def _subparser_map(parser: argparse.ArgumentParser) -> dict:
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return dict(action.choices)
    return {}


class TestGeneratedCLI:
    def test_every_experiment_subparser_is_fully_generated(self):
        """No orphaned hand-written flags on any experiment subcommand."""
        top = _subparser_map(build_parser())
        experiment_parsers = _subparser_map(top["experiment"])
        assert set(experiment_parsers) == set(experiment_names())
        for name, sub in experiment_parsers.items():
            orphans = audit_parser(sub, get_experiment(name))
            assert orphans == [], f"{name}: orphaned flags {orphans}"

    def test_workloads_sweep_is_generated_from_scenario_sweep(self):
        top = _subparser_map(build_parser())
        sweep = _subparser_map(top["workloads"])["sweep"]
        orphans = audit_parser(
            sweep, get_experiment("scenario-sweep"), extra_flags=SWEEP_EXTRA_FLAGS
        )
        assert orphans == []

    def test_generated_parser_matches_programmatic_defaults(self):
        parser = argparse.ArgumentParser()
        spec = get_experiment("scenario-sweep")
        add_param_arguments(parser, spec)
        add_session_arguments(parser, spec, store_env_var="REPRO_STORE_DIR")
        args = parser.parse_args(
            ["--scenario", "crs", "--scenario", "google", "--mc-samples", "60"]
        )
        assert args.scenario == ["crs", "google"]
        assert args.mc_samples == 60
        assert args.engine is None  # resolved to batched by the Session

    def test_cli_rows_match_session_rows(self, capsys):
        argv = ["experiment", "regularization-sensitivity", "--quiet"]
        for key, value in _TINY_REG_GRID.items():
            flag = {
                "beta_smooth_values": "--beta-smooth",
                "beta_period_values": "--beta-period",
            }.get(key)
            if flag is not None:
                for item in value:
                    argv += [flag, str(item)]
            else:
                argv += ["--" + key.replace("_", "-"), str(value)]
        assert main(argv) == 0
        cli_out = capsys.readouterr().out
        result = (
            Session(store=None)
            .experiment("regularization-sensitivity")
            .run(**_TINY_REG_GRID)
        )
        assert result.table("Experiment: regularization-sensitivity") in cli_out

    def test_cli_progress_line_and_quiet(self, capsys):
        argv = [
            "experiment",
            "regularization-sensitivity",
            "--beta-smooth",
            "0",
            "--beta-period",
            "0",
            "--period-seconds",
            "600",
            "--n-periods",
            "2",
            "--max-iterations",
            "40",
        ]
        assert main(argv) == 0
        err = capsys.readouterr().err
        assert "[progress]" in err and "tasks" in err
        assert main(argv + ["--quiet"]) == 0
        assert "[progress]" not in capsys.readouterr().err

    def test_cli_unknown_flag_fails(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table3", "--workers", "2"])

    def test_store_ls_runs_lists_journaled_runs(self, capsys):
        argv = [
            "experiment",
            "regularization-sensitivity",
            "--quiet",
            "--run-id",
            "api-test-run",
            "--beta-smooth",
            "0",
            "--beta-period",
            "0",
            "--period-seconds",
            "600",
            "--n-periods",
            "2",
            "--max-iterations",
            "40",
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(["store", "ls", "--runs"]) == 0
        out = capsys.readouterr().out
        assert "api-test-run" in out
        assert "completed" in out
