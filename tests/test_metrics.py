"""Tests for the evaluation metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.metrics.cost import relative_cost, total_cost
from repro.metrics.errors import mean_absolute_error, mean_squared_error
from repro.metrics.pareto import ParetoPoint, dominates, pareto_frontier
from repro.metrics.qos import hit_rate, mean_response_time, response_time_quantiles
from repro.metrics.report import format_table, summarize_result
from repro.metrics.variance import windowed_mean_variance
from repro.types import InstanceRecord, Query, QueryOutcome, SimulationResult


def _result(hits, response_times, processing: float = 1.0) -> SimulationResult:
    outcomes = []
    for i, (hit, rt) in enumerate(zip(hits, response_times)):
        query = Query(index=i, arrival_time=float(i), processing_time=processing)
        record = InstanceRecord(
            query_index=i,
            creation_time=float(i),
            ready_time=float(i) + 1.0,
            start_processing_time=float(i) + rt - processing,
            deletion_time=float(i) + rt,
            pending_time=1.0,
            proactive=hit,
        )
        outcomes.append(
            QueryOutcome(
                query=query,
                hit=bool(hit),
                waiting_time=rt - processing,
                response_time=rt,
                instance=record,
            )
        )
    return SimulationResult(scaler_name="test", trace_name="trace", outcomes=outcomes)


class TestQoSMetrics:
    def test_hit_rate(self):
        result = _result([1, 0, 1, 1], [1, 2, 1, 1])
        assert hit_rate(result) == pytest.approx(0.75)

    def test_mean_response_time(self):
        result = _result([1, 1], [2.0, 4.0])
        assert mean_response_time(result) == pytest.approx(3.0)

    def test_quantiles(self):
        rts = list(np.arange(1.0, 101.0))
        result = _result([1] * 100, rts)
        quantiles = response_time_quantiles(result, levels=(0.5, 0.99))
        assert quantiles[0.5] == pytest.approx(50.5)
        assert quantiles[0.99] > 99.0

    def test_quantiles_invalid_level(self):
        result = _result([1], [1.0])
        with pytest.raises(ValidationError):
            response_time_quantiles(result, levels=(1.5,))


class TestCostMetrics:
    def test_total_cost_includes_unused(self):
        result = _result([1, 1], [2.0, 2.0])
        result.unused_instance_cost = 5.0
        assert total_cost(result) == pytest.approx(sum(result.lifecycle_costs) + 5.0)

    def test_relative_cost(self):
        result = _result([1], [2.0])
        assert relative_cost(result, result.total_cost) == pytest.approx(1.0)

    def test_relative_cost_invalid_reference(self):
        result = _result([1], [2.0])
        with pytest.raises(ValidationError):
            relative_cost(result, 0.0)


class TestWindowedVariance:
    def test_constant_series_zero_variance(self):
        mean, variance = windowed_mean_variance(np.full(200, 3.0), 50)
        assert mean == pytest.approx(3.0)
        assert variance == pytest.approx(0.0)

    def test_alternating_blocks_have_variance(self):
        values = np.concatenate([np.zeros(50), np.ones(50), np.zeros(50), np.ones(50)])
        mean, variance = windowed_mean_variance(values, 50)
        assert mean == pytest.approx(0.5)
        assert variance == pytest.approx(0.25)

    def test_single_block_zero_variance(self):
        _, variance = windowed_mean_variance(np.arange(30, dtype=float), 50)
        assert variance == 0.0

    def test_empty_series(self):
        mean, variance = windowed_mean_variance(np.array([]), 50)
        assert np.isnan(mean)

    @given(st.lists(st.floats(min_value=0, max_value=1), min_size=100, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_block_variance_at_most_total_variance_scale(self, values):
        values = np.asarray(values)
        _, block_variance = windowed_mean_variance(values, 10)
        # Averaging within blocks can only reduce variance.
        assert block_variance <= values.var() + 1e-9


class TestPareto:
    def test_dominates_higher_qos_better(self):
        a = ParetoPoint(cost=1.0, qos=0.9)
        b = ParetoPoint(cost=2.0, qos=0.8)
        assert dominates(a, b)
        assert not dominates(b, a)

    def test_dominates_lower_qos_better(self):
        a = ParetoPoint(cost=1.0, qos=10.0)
        b = ParetoPoint(cost=2.0, qos=20.0)
        assert dominates(a, b, qos_higher_is_better=False)

    def test_frontier_removes_dominated(self):
        points = [
            ParetoPoint(cost=1.0, qos=0.5, label="a"),
            ParetoPoint(cost=2.0, qos=0.9, label="b"),
            ParetoPoint(cost=2.5, qos=0.7, label="dominated"),
        ]
        frontier = pareto_frontier(points)
        labels = [p.label for p in frontier]
        assert "dominated" not in labels
        assert labels == ["a", "b"]

    def test_frontier_sorted_by_cost(self):
        rng = np.random.default_rng(0)
        points = [
            ParetoPoint(cost=float(c), qos=float(q))
            for c, q in zip(rng.uniform(1, 5, 30), rng.uniform(0, 1, 30))
        ]
        frontier = pareto_frontier(points)
        costs = [p.cost for p in frontier]
        assert costs == sorted(costs)
        qos = [p.qos for p in frontier]
        assert qos == sorted(qos)


class TestErrors:
    def test_mse_mae(self):
        estimate = np.array([1.0, 2.0, 3.0])
        truth = np.array([1.0, 1.0, 5.0])
        assert mean_squared_error(estimate, truth) == pytest.approx(5.0 / 3.0)
        assert mean_absolute_error(estimate, truth) == pytest.approx(1.0)

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            mean_squared_error(np.array([1.0]), np.array([1.0, 2.0]))


class TestReport:
    def test_summarize_result_keys(self):
        result = _result([1, 0] * 60, [2.0, 3.0] * 60)
        summary = summarize_result(result, reference_cost=100.0)
        for key in ("hit_rate", "rt_avg", "total_cost", "relative_cost", "rt_p95"):
            assert key in summary

    def test_format_table_alignment(self):
        rows = [{"a": 1.0, "b": "x"}, {"a": 22.5, "b": "yy"}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_missing_cells(self):
        rows = [{"a": 1.0}, {"b": 2.0}]
        text = format_table(rows, columns=["a", "b"])
        assert text

    def test_format_table_empty(self):
        assert format_table([], title="nothing") == "nothing"
