"""Regenerate the golden scenario-trace fixtures.

Run from the repository root whenever the RNG draw order of scenario
generation intentionally changes (e.g. a new sampler construction)::

    PYTHONPATH=src python tests/golden/regen_golden.py

The fixtures pin the exact seeded realizations of every intensity-backed
registry scenario: query counts, first/last arrival times, and a content
digest of the full arrival/processing arrays.  ``tests/test_golden_scenarios.py``
fails loudly if a code change silently alters any seeded trace, which is the
re-baselining policy for the vectorized NHPP sampler adopted in scenario
generation: intentional changes re-run this script and commit the diff
alongside an explanation.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

#: (scale, seed) grid pinned per scenario; kept tiny so the check is fast.
CASES = ((0.05, 7), (0.05, 3))

GOLDEN_PATH = Path(__file__).parent / "scenario_traces.json"


def trace_fingerprint(trace) -> dict:
    """The comparable facts recorded for one seeded trace realization."""
    arrivals = np.ascontiguousarray(trace.arrival_times)
    processing = np.ascontiguousarray(trace.processing_times)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(arrivals.tobytes())
    digest.update(processing.tobytes())
    record = {
        "n_queries": int(trace.n_queries),
        "horizon": float(trace.horizon),
        "digest": digest.hexdigest(),
    }
    if trace.n_queries:
        record["first_arrival"] = float(arrivals[0])
        record["last_arrival"] = float(arrivals[-1])
        record["processing_sum"] = float(processing.sum())
    return record


def build_fixtures() -> dict:
    from repro.workloads import list_scenarios

    fixtures: dict = {}
    for scenario in list_scenarios():
        if scenario.kind != "intensity":
            continue  # generator-backed paper traces keep the loop sampler
        for scale, seed in CASES:
            trace = scenario.build_trace(scale=scale, seed=seed)
            key = f"{scenario.name}|scale={scale:g}|seed={seed}"
            fixtures[key] = trace_fingerprint(trace)
    return fixtures


def main() -> None:
    fixtures = build_fixtures()
    GOLDEN_PATH.write_text(json.dumps(fixtures, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(fixtures)} fixtures to {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
