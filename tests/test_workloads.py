"""Tests for the workload-scenario subsystem (primitives, registry, sweep)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import run_experiment
from repro.exceptions import ValidationError, WorkloadError
from repro.experiments.scenario_sweep import summarize_scenario_sweep
from repro.traces.catalog import get_trace
from repro.workloads import (
    DEFAULT_REGISTRY,
    Constant,
    FlashCrowd,
    GammaNoise,
    ParetoBursts,
    Pulse,
    Ramp,
    RegimeSwitching,
    Scenario,
    ScenarioRegistry,
    SeasonalBump,
    Sinusoid,
    WeeklyProfile,
    as_primitive,
    get_scenario,
    list_scenarios,
    scenario_names,
)

_DAY = 86_400.0
_HOUR = 3_600.0


@pytest.fixture
def times() -> np.ndarray:
    return (np.arange(200) + 0.5) * 60.0


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


class TestPrimitiveAlgebra:
    def test_sum_of_constants(self, times, rng):
        combined = Constant(2.0) + Constant(3.0)
        np.testing.assert_allclose(combined.sample(times, rng), 5.0)

    def test_scalar_addition_and_subtraction(self, times, rng):
        values = (1.0 + Constant(2.0) - 0.5).sample(times, rng)
        np.testing.assert_allclose(values, 2.5)

    def test_scalar_multiplication_commutes(self, times, rng):
        left = (2.0 * Constant(3.0)).sample(times, rng)
        right = (Constant(3.0) * 2.0).sample(times, rng)
        np.testing.assert_allclose(left, 6.0)
        np.testing.assert_allclose(left, right)

    def test_modulation_is_pointwise_product(self, times, rng):
        product = Constant(2.0) * Pulse(0.0, 3600.0, 4.0)
        values = product.sample(times, rng)
        inside = times < 3600.0
        np.testing.assert_allclose(values[inside], 8.0)
        np.testing.assert_allclose(values[~inside], 0.0)

    def test_negation_and_clip(self, times, rng):
        negative = -Constant(1.0)
        np.testing.assert_allclose(negative.sample(times, rng), -1.0)
        clipped = negative.clip(lower=0.0)
        np.testing.assert_allclose(clipped.sample(times, rng), 0.0)

    def test_clip_upper_bound(self, times, rng):
        values = Constant(10.0).clip(lower=0.0, upper=2.0).sample(times, rng)
        np.testing.assert_allclose(values, 2.0)

    def test_as_primitive_rejects_garbage(self):
        with pytest.raises(ValidationError):
            as_primitive("not-a-primitive")

    def test_compile_clips_negative_values(self, rng):
        intensity = (Constant(1.0) - Constant(5.0)).compile(3600.0, 60.0)
        assert float(intensity.values.min()) == 0.0

    def test_compile_rejects_bad_horizon(self):
        with pytest.raises(ValidationError):
            Constant(1.0).compile(0.0, 60.0)


class TestPrimitiveShapes:
    def test_seasonal_bump_peaks_mid_period(self, rng):
        bump = SeasonalBump(_DAY, 2.0, sharpness=8.0, base=0.1)
        times = np.linspace(0.0, _DAY, 1000, endpoint=False)
        values = bump.sample(times, rng)
        assert values.min() >= 0.1 - 1e-12
        peak_time = times[np.argmax(values)]
        assert peak_time == pytest.approx(_DAY / 2, rel=0.05)
        assert values.max() == pytest.approx(2.1, rel=0.01)

    def test_sinusoid_mean_and_amplitude(self, rng):
        wave = Sinusoid(_DAY, 1.0, 0.5)
        times = np.linspace(0.0, _DAY, 1001)
        values = wave.sample(times, rng)
        assert values.max() == pytest.approx(1.5, abs=1e-6)
        assert values.min() == pytest.approx(0.5, abs=1e-6)

    def test_weekly_profile_day_indexing(self, rng):
        profile = WeeklyProfile((1.0, 0.9, 0.8, 0.7, 0.6, 0.2, 0.1))
        monday_noon = np.array([12 * _HOUR])
        sunday_noon = np.array([6 * _DAY + 12 * _HOUR])
        assert profile.sample(monday_noon, rng)[0] == 1.0
        assert profile.sample(sunday_noon, rng)[0] == 0.1

    def test_weekly_profile_requires_seven_days(self):
        with pytest.raises(ValidationError):
            WeeklyProfile((1.0, 2.0))

    def test_linear_ramp_endpoints(self, rng):
        ramp = Ramp(1.0, 3.0, start_seconds=100.0, end_seconds=300.0)
        samples = ramp.sample(np.array([0.0, 100.0, 200.0, 300.0, 500.0]), rng)
        np.testing.assert_allclose(samples, [1.0, 1.0, 2.0, 3.0, 3.0])

    def test_exponential_ramp_is_geometric(self, rng):
        ramp = Ramp(1.0, 4.0, end_seconds=200.0, shape="exponential")
        mid = ramp.sample(np.array([100.0]), rng)[0]
        assert mid == pytest.approx(2.0)

    def test_exponential_ramp_requires_positive_levels(self):
        with pytest.raises(ValidationError):
            Ramp(0.0, 4.0, end_seconds=200.0, shape="exponential")

    def test_flash_crowd_profile(self, rng):
        crowd = FlashCrowd(1000.0, 5.0, rise_seconds=100.0, decay_seconds=200.0)
        samples = crowd.sample(
            np.array([0.0, 999.0, 1050.0, 1100.0, 1300.0]), rng
        )
        assert samples[0] == 0.0
        assert samples[1] == 0.0
        assert samples[2] == pytest.approx(2.5)
        assert samples[3] == pytest.approx(5.0)
        assert samples[4] == pytest.approx(5.0 * np.exp(-1.0))

    def test_regime_switching_values_and_determinism(self, times):
        regime = RegimeSwitching((0.1, 2.0), _HOUR, start_regime=0)
        first = regime.sample(times, np.random.default_rng(5))
        second = regime.sample(times, np.random.default_rng(5))
        np.testing.assert_array_equal(first, second)
        assert set(np.unique(first)) <= {0.1, 2.0}
        assert first[0] == 0.1  # starts in regime 0

    def test_regime_switching_requires_two_levels(self):
        with pytest.raises(ValidationError):
            RegimeSwitching((1.0,), _HOUR)

    def test_gamma_noise_unit_mean(self):
        noise = GammaNoise(0.3, correlation_bins=5)
        times = (np.arange(20_000) + 0.5) * 60.0
        values = noise.sample(times, np.random.default_rng(11))
        assert values.mean() == pytest.approx(1.0, abs=0.05)
        assert np.all(values >= 0)

    def test_gamma_noise_zero_cv_is_identity(self, times, rng):
        np.testing.assert_allclose(GammaNoise(0.0).sample(times, rng), 1.0)

    def test_gamma_noise_keeps_cv_on_tiny_grids(self):
        # Regression: when the grid is too small for smoothing, the variance
        # inflation must be skipped or the field is sqrt(correlation_bins)x
        # too noisy.  correlation_bins > size disables smoothing, so the
        # draws are i.i.d. with the requested cv.
        noise = GammaNoise(0.2, correlation_bins=10**6)
        values = noise.sample((np.arange(20_000) + 0.5) * 60.0, np.random.default_rng(7))
        assert values.std() / values.mean() == pytest.approx(0.2, rel=0.05)

    def test_pareto_bursts_zero_rate_is_silent(self, times, rng):
        bursts = ParetoBursts(0.0, 1.5, 1.0)
        np.testing.assert_allclose(bursts.sample(times, rng), 0.0)

    def test_pareto_bursts_deterministic_and_nonnegative(self, times):
        bursts = ParetoBursts(24.0, 1.5, 1.0, rise_seconds=60.0, decay_seconds=300.0)
        first = bursts.sample(times, np.random.default_rng(9))
        second = bursts.sample(times, np.random.default_rng(9))
        np.testing.assert_array_equal(first, second)
        assert np.all(first >= 0.0)
        assert first.max() > 0.0  # 24 bursts/day over ~3.3h: some burst lands

    def test_pareto_bursts_peaks_are_heavy_tailed(self):
        # With alpha = 1.2 the peak law has infinite variance: across many
        # independent realizations the maximum dwarfs the median maximum.
        times = (np.arange(500) + 0.5) * 60.0
        maxima = [
            ParetoBursts(48.0, 1.2, 1.0, rise_seconds=60.0, decay_seconds=600.0)
            .sample(times, np.random.default_rng(seed))
            .max()
            for seed in range(300)
        ]
        maxima = np.asarray(maxima)
        assert maxima.max() > 10.0 * np.median(maxima)

    def test_pareto_bursts_validation(self):
        with pytest.raises(ValidationError):
            ParetoBursts(-1.0, 1.5, 1.0)
        with pytest.raises(ValidationError):
            ParetoBursts(4.0, 0.0, 1.0)
        with pytest.raises(ValidationError):
            ParetoBursts(4.0, 1.5, 1.0, rise_seconds=0.0)

    def test_gamma_noise_unit_mean_at_boundaries(self):
        # Regression: zero-padded smoothing used to bias the first/last bins
        # toward ~0.5; the kernel-mass normalization must keep them at 1.
        noise = GammaNoise(0.3, correlation_bins=10)
        times = (np.arange(50) + 0.5) * 60.0
        rng = np.random.default_rng(3)
        first_bins = np.array([noise.sample(times, rng)[0] for _ in range(3000)])
        assert first_bins.mean() == pytest.approx(1.0, abs=0.03)


class TestScenarioSpec:
    def test_requires_exactly_one_builder(self):
        with pytest.raises(WorkloadError):
            Scenario(name="bad", description="no builder")
        with pytest.raises(WorkloadError):
            Scenario(
                name="bad",
                description="both builders",
                intensity=lambda horizon: Constant(1.0),
                generator=lambda *, seed, scale: None,
            )

    def test_rejects_bad_train_fraction(self):
        with pytest.raises(ValidationError):
            Scenario(
                name="bad",
                description="",
                intensity=lambda horizon: Constant(1.0),
                train_fraction=1.5,
            )

    def test_build_intensity_rejected_for_generator_scenarios(self):
        with pytest.raises(WorkloadError):
            get_scenario("google").build_intensity()

    def test_scaled_horizon_floor(self):
        scenario = get_scenario("steady-state")
        assert scenario.scaled_horizon(1e-9) == 10.0 * scenario.bin_seconds
        with pytest.raises(ValidationError):
            scenario.scaled_horizon(0.0)

    def test_build_split_fractions(self):
        scenario = get_scenario("steady-state")
        train, test = scenario.build_split(scale=0.05, seed=1)
        horizon = scenario.scaled_horizon(0.05)
        assert train.horizon == pytest.approx(horizon * scenario.train_fraction)
        assert test.horizon == pytest.approx(horizon * (1 - scenario.train_fraction))


class TestRegistry:
    def test_at_least_ten_scenarios(self):
        assert len(scenario_names()) >= 10

    def test_expected_names_present(self):
        names = set(scenario_names())
        assert {
            "flash-crowd",
            "diurnal-heavy",
            "weekend-dip",
            "ramp-launch",
            "bursty-batch",
            "multi-tenant-mix",
            "black-friday",
            "outage-recovery",
            "pareto-bursts",
            "pareto-bursts-extreme",
            "crs",
            "google",
            "alibaba",
        } <= names

    def test_lookup_is_case_insensitive(self):
        assert get_scenario("FLASH-CROWD").name == "flash-crowd"
        assert "Flash-Crowd" in DEFAULT_REGISTRY

    def test_unknown_scenario_raises_with_known_names(self):
        with pytest.raises(WorkloadError, match="flash-crowd"):
            get_scenario("no-such-scenario")

    def test_register_into_empty_custom_registry(self):
        # Regression: an empty registry is falsy (len == 0) and must still be
        # honoured — the scenario must not leak into the default registry.
        from repro.workloads import register_scenario

        registry = ScenarioRegistry()
        scenario = Scenario(
            name="custom-isolated",
            description="",
            intensity=lambda horizon: Constant(1.0),
        )
        register_scenario(scenario, registry=registry)
        assert "custom-isolated" in registry
        assert "custom-isolated" not in DEFAULT_REGISTRY

    def test_sweep_honours_empty_custom_registry(self):
        registry = ScenarioRegistry()
        registry.register(
            Scenario(
                name="only-me",
                description="",
                intensity=lambda horizon: Constant(0.5),
                horizon_seconds=4 * _HOUR,
            )
        )
        rows = run_experiment(
            "scenario-sweep",
            {
                "registry": registry,
                "scale": 0.5,
                "planning_interval": 30.0,
                "monte_carlo_samples": 40,
                "hp_targets": (0.7,),
                "pool_sizes": (1,),
                "adaptive_factors": (10.0,),
            },
        )
        assert {row["scenario"] for row in rows} == {"only-me"}

    def test_duplicate_registration_rejected(self):
        registry = ScenarioRegistry()
        scenario = Scenario(
            name="demo", description="", intensity=lambda horizon: Constant(1.0)
        )
        registry.register(scenario)
        with pytest.raises(WorkloadError):
            registry.register(scenario)
        registry.register(scenario, overwrite=True)
        assert len(registry) == 1

    def test_every_scenario_generates_valid_nhpp_trace(self):
        for scenario in list_scenarios():
            trace = scenario.build_trace(scale=0.03, seed=5)
            arrivals = trace.arrival_times
            assert trace.n_queries > 0, scenario.name
            assert np.all(np.diff(arrivals) >= 0), scenario.name
            assert arrivals[0] >= 0.0 and arrivals[-1] <= trace.horizon, scenario.name
            assert np.all(trace.processing_times >= 0), scenario.name

    def test_every_intensity_scenario_has_nonnegative_intensity(self):
        for scenario in list_scenarios():
            if scenario.kind != "intensity":
                continue
            intensity = scenario.build_intensity(scale=0.05, seed=3)
            assert np.all(intensity.values >= 0), scenario.name
            assert np.all(np.isfinite(intensity.values)), scenario.name
            assert intensity.total_mass > 0, scenario.name

    def test_seed_determinism_across_registry(self):
        for scenario in list_scenarios():
            first = scenario.build_trace(scale=0.03, seed=11)
            second = scenario.build_trace(scale=0.03, seed=11)
            np.testing.assert_array_equal(
                first.arrival_times, second.arrival_times, err_msg=scenario.name
            )
            np.testing.assert_array_equal(
                first.processing_times, second.processing_times, err_msg=scenario.name
            )

    def test_different_seeds_differ(self):
        scenario = get_scenario("steady-state")
        a = scenario.build_trace(scale=0.05, seed=1)
        b = scenario.build_trace(scale=0.05, seed=2)
        assert a.n_queries != b.n_queries or not np.array_equal(
            a.arrival_times, b.arrival_times
        )

    def test_paper_aliases_match_catalog(self):
        # At the scale where the alias horizon equals the catalog default,
        # the registry alias reproduces the catalog trace bit-for-bit.
        alias = get_scenario("google").build_trace(scale=0.5, seed=11)
        catalog = get_trace("google").build(seed=11)
        np.testing.assert_array_equal(alias.arrival_times, catalog.arrival_times)
        alias = get_scenario("alibaba").build_trace(scale=1.0, seed=13)
        catalog = get_trace("alibaba").build(seed=13)
        np.testing.assert_array_equal(alias.arrival_times, catalog.arrival_times)


class TestScenarioSweep:
    @pytest.fixture(scope="class")
    def sweep_rows(self) -> list[dict]:
        return run_experiment(
            "scenario-sweep",
            {
                "scenario_names": ("steady-state", "flash-crowd"),
                "scale": 0.05,
                "seed": 7,
                "planning_interval": 20.0,
                "monte_carlo_samples": 80,
                "hp_targets": (0.7,),
                "pool_sizes": (1,),
                "adaptive_factors": (10.0,),
            },
        )

    def test_rows_cover_requested_scenarios_and_scalers(self, sweep_rows):
        assert {row["scenario"] for row in sweep_rows} == {
            "steady-state",
            "flash-crowd",
        }
        scalers = {row["scaler"] for row in sweep_rows}
        assert "Reactive" in scalers
        assert any(s.startswith("BP(") for s in scalers)
        assert any(s.startswith("AdapBP") for s in scalers)
        assert any(s.startswith("RobustScaler-HP") for s in scalers)

    def test_reactive_anchors_relative_cost(self, sweep_rows):
        for row in sweep_rows:
            if row["scaler"] == "Reactive":
                assert row["relative_cost"] == pytest.approx(1.0)
                assert row["hit_rate"] == 0.0

    def test_frontier_marked_per_scenario(self, sweep_rows):
        for scenario in ("steady-state", "flash-crowd"):
            flags = [r["on_frontier"] for r in sweep_rows if r["scenario"] == scenario]
            assert any(flags)

    def test_sweep_deterministic(self, sweep_rows):
        again = run_experiment(
            "scenario-sweep",
            {
                "scenario_names": ("steady-state", "flash-crowd"),
                "scale": 0.05,
                "seed": 7,
                "planning_interval": 20.0,
                "monte_carlo_samples": 80,
                "hp_targets": (0.7,),
                "pool_sizes": (1,),
                "adaptive_factors": (10.0,),
            },
        )

        def strip_timings(rows: list[dict]) -> list[dict]:
            # Planning latencies are wall-clock measurements; everything else
            # (trace, decisions, metrics) must reproduce exactly.
            return [
                {k: v for k, v in row.items() if not k.endswith("_planning_seconds")}
                for row in rows
            ]

        assert strip_timings(again) == strip_timings(sweep_rows)

    def test_summary_one_row_per_scenario(self, sweep_rows):
        summary = summarize_scenario_sweep(sweep_rows)
        assert [row["scenario"] for row in summary] == ["flash-crowd", "steady-state"]
        for row in summary:
            assert row["frontier_scalers"]
            assert 0.0 <= row["best_hit_rate"] <= 1.0

    def test_tiny_scale_skips_gracefully(self):
        rows = run_experiment(
            "scenario-sweep",
            {"scenario_names": ("crs",), "scale": 0.5, "seed": 7, "min_test_queries": 10**9},
        )
        assert len(rows) == 1
        assert "skipped" in rows[0]["note"]
        # Skipped scenarios must remain visible in the summary view.
        summary = summarize_scenario_sweep(rows)
        assert len(summary) == 1
        assert summary[0]["scenario"] == "crs"
        assert summary[0]["n_points"] == 0
        assert "skipped" in summary[0]["note"]
