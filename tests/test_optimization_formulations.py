"""Tests for the per-query decision formulations (eqs. 3, 5, 7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.nhpp.intensity import PiecewiseConstantIntensity
from repro.optimization.formulations import (
    DecisionObjective,
    solve_batch,
    solve_cost_constrained,
    solve_hp_constrained,
    solve_rt_constrained,
)
from repro.optimization.montecarlo import ArrivalScenarios, generate_scenarios
from repro.pending import DeterministicPendingTime


def _exponential_samples(rate: float, pending: float, n: int, seed: int):
    rng = np.random.default_rng(seed)
    xi = rng.exponential(1.0 / rate, size=n)
    tau = np.full(n, pending)
    return xi, tau


class TestHPConstrained:
    def test_matches_analytic_quantile(self):
        rate, pending = 0.5, 2.0
        xi, tau = _exponential_samples(rate, pending, 200_000, 0)
        target = 0.8  # alpha = 0.2
        decision = solve_hp_constrained(xi, tau, target)
        analytic = -np.log(1.0 - 0.2) / rate - pending
        assert decision.raw_creation_time == pytest.approx(analytic, abs=0.05)

    def test_achieves_target_on_samples(self):
        xi, tau = _exponential_samples(0.3, 1.0, 50_000, 1)
        target = 0.9
        decision = solve_hp_constrained(xi, tau, target)
        hit_fraction = np.mean(xi > decision.raw_creation_time + tau)
        assert hit_fraction >= target - 0.01

    def test_infeasible_when_pending_dominates(self):
        # Queries arrive almost immediately but pending time is huge.
        xi = np.full(100, 0.5)
        tau = np.full(100, 10.0)
        decision = solve_hp_constrained(xi, tau, 0.9)
        assert not decision.feasible
        assert decision.creation_time == 0.0

    def test_target_one_gives_earliest(self):
        xi, tau = _exponential_samples(0.5, 1.0, 1000, 2)
        decision = solve_hp_constrained(xi, tau, 1.0)
        assert decision.raw_creation_time <= (xi - tau).min() + 1e-12

    def test_invalid_target_rejected(self):
        xi, tau = _exponential_samples(0.5, 1.0, 10, 3)
        with pytest.raises(ValidationError):
            solve_hp_constrained(xi, tau, 1.5)

    def test_decision_reports_expectations(self):
        xi, tau = _exponential_samples(0.5, 1.0, 5000, 4)
        decision = solve_hp_constrained(xi, tau, 0.7)
        assert decision.expected_idle_time >= 0
        assert decision.expected_waiting_time >= 0
        assert decision.objective is DecisionObjective.HIT_PROBABILITY


class TestRTConstrained:
    def test_waiting_budget_met(self):
        # Sparse arrivals (mean gap 20 s) relative to a 5-second pending time:
        # the waiting budget is feasible with a non-negative creation time.
        xi, tau = _exponential_samples(0.05, 5.0, 20_000, 5)
        budget = 1.0
        decision = solve_rt_constrained(xi, tau, budget)
        assert decision.feasible
        waiting = np.maximum(tau - np.maximum(xi - decision.creation_time, 0.0), 0.0)
        assert waiting.mean() <= budget + 0.01

    def test_infeasible_budget_clamped_to_create_now(self):
        # Dense arrivals relative to the pending time: even creating at time 0
        # cannot meet the budget, so the decision clamps to "create now".
        xi, tau = _exponential_samples(0.4, 5.0, 20_000, 5)
        decision = solve_rt_constrained(xi, tau, 1.0)
        assert not decision.feasible
        assert decision.creation_time == 0.0

    def test_larger_budget_means_later_creation(self):
        xi, tau = _exponential_samples(0.4, 5.0, 20_000, 6)
        early = solve_rt_constrained(xi, tau, 0.5)
        late = solve_rt_constrained(xi, tau, 3.0)
        assert late.raw_creation_time >= early.raw_creation_time

    def test_negative_budget_rejected(self):
        xi, tau = _exponential_samples(0.4, 5.0, 100, 7)
        with pytest.raises(ValidationError):
            solve_rt_constrained(xi, tau, -1.0)


class TestCostConstrained:
    def test_idle_budget_met(self):
        xi, tau = _exponential_samples(0.2, 2.0, 20_000, 8)
        budget = 1.0
        decision = solve_cost_constrained(xi, tau, budget)
        idle = np.maximum(xi - tau - decision.creation_time, 0.0)
        assert idle.mean() <= budget + 0.01

    def test_generous_budget_creates_immediately(self):
        xi, tau = _exponential_samples(0.2, 2.0, 10_000, 9)
        generous = float(np.maximum(xi - tau, 0.0).mean()) + 1.0
        decision = solve_cost_constrained(xi, tau, generous)
        assert decision.creation_time == 0.0

    def test_tight_budget_creates_later(self):
        xi, tau = _exponential_samples(0.2, 2.0, 10_000, 10)
        tight = solve_cost_constrained(xi, tau, 0.1)
        loose = solve_cost_constrained(xi, tau, 2.0)
        assert tight.creation_time >= loose.creation_time


class TestSolveBatch:
    def _scenarios(self) -> ArrivalScenarios:
        intensity = PiecewiseConstantIntensity(np.array([0.5]), 60.0, extrapolation="hold")
        return generate_scenarios(
            intensity, DeterministicPendingTime(2.0), n_queries=5, n_samples=2000, random_state=0
        )

    def test_batch_length(self):
        scenarios = self._scenarios()
        decisions = solve_batch(scenarios, DecisionObjective.HIT_PROBABILITY, 0.8)
        assert len(decisions) == 5

    def test_creation_times_nondecreasing_in_query_index(self):
        scenarios = self._scenarios()
        decisions = solve_batch(scenarios, DecisionObjective.HIT_PROBABILITY, 0.8)
        times = [d.raw_creation_time for d in decisions]
        assert all(b >= a - 0.3 for a, b in zip(times, times[1:]))

    def test_all_objectives_supported(self):
        scenarios = self._scenarios()
        for objective, target in (
            (DecisionObjective.HIT_PROBABILITY, 0.9),
            (DecisionObjective.RESPONSE_TIME, 0.5),
            (DecisionObjective.COST, 1.0),
        ):
            decisions = solve_batch(scenarios, objective, target)
            assert all(d.objective is objective for d in decisions)
