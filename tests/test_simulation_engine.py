"""Tests for the scaling-per-query discrete-event simulator (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SimulationConfig
from repro.scaling.base import Autoscaler, PlanningContext, ScalingResponse
from repro.scaling.backup_pool import BackupPoolScaler, ReactiveScaler
from repro.simulation.engine import ScalingPerQuerySimulator
from repro.simulation.realenv import real_environment_config
from repro.simulation.runner import evaluate_scaler, replay
from repro.types import ArrivalTrace, ScalingAction


class FixedPlanScaler(Autoscaler):
    """Test helper: creates instances at a fixed list of absolute times."""

    name = "FixedPlan"

    def __init__(self, creation_times, slow_seconds: float = 0.0):
        self._creation_times = list(creation_times)
        self._slow_seconds = slow_seconds

    def initialize(self, context: PlanningContext) -> ScalingResponse:
        if self._slow_seconds:
            import time

            time.sleep(self._slow_seconds)
        actions = [ScalingAction(creation_time=t, planned_at=0.0) for t in self._creation_times]
        return ScalingResponse(actions=actions)


class TestAlgorithmOneDynamics:
    """Each branch of Algorithm 1, checked with hand-computed outcomes."""

    def test_instance_ready_before_arrival_is_hit(self):
        # x=0, tau=10 -> ready at 10; query arrives at 20: hit, RT = processing.
        config = SimulationConfig(pending_time=10.0)
        trace = ArrivalTrace([20.0], [7.0], horizon=30.0)
        result = ScalingPerQuerySimulator(config).replay(trace, FixedPlanScaler([0.0]))
        outcome = result.outcomes[0]
        assert outcome.hit
        assert outcome.waiting_time == 0.0
        assert outcome.response_time == pytest.approx(7.0)
        # Lifecycle: creation at 0, deletion at 20 + 7.
        assert outcome.instance.lifecycle_length == pytest.approx(27.0)
        assert outcome.instance.idle_time == pytest.approx(10.0)

    def test_instance_pending_at_arrival_waits(self):
        # x=15, tau=10 -> ready at 25; query arrives at 20: waits 5 seconds.
        config = SimulationConfig(pending_time=10.0)
        trace = ArrivalTrace([20.0], [7.0], horizon=40.0)
        result = ScalingPerQuerySimulator(config).replay(trace, FixedPlanScaler([15.0]))
        outcome = result.outcomes[0]
        assert not outcome.hit
        assert outcome.waiting_time == pytest.approx(5.0)
        assert outcome.response_time == pytest.approx(12.0)
        assert outcome.instance.lifecycle_length == pytest.approx(17.0)

    def test_no_instance_triggers_cold_start(self):
        config = SimulationConfig(pending_time=10.0)
        trace = ArrivalTrace([20.0], [7.0], horizon=40.0)
        result = ScalingPerQuerySimulator(config).replay(trace, ReactiveScaler())
        outcome = result.outcomes[0]
        assert not outcome.hit
        assert outcome.waiting_time == pytest.approx(10.0)
        assert not outcome.instance.proactive
        assert outcome.instance.creation_time == pytest.approx(20.0)

    def test_scheduled_creation_cancelled_on_cold_start(self):
        # The scheduled creation at t=100 is intended for the first query, but
        # the query arrives at t=20 before it exists -> reactive creation and
        # the scheduled one must be cancelled (no unused instance cost).
        config = SimulationConfig(pending_time=10.0)
        trace = ArrivalTrace([20.0], [5.0], horizon=200.0)
        result = ScalingPerQuerySimulator(config).replay(trace, FixedPlanScaler([100.0]))
        assert result.n_queries == 1
        assert result.unused_instance_cost == 0.0

    def test_unused_instances_charged_until_horizon(self):
        config = SimulationConfig(pending_time=10.0)
        trace = ArrivalTrace([20.0], [5.0], horizon=100.0)
        # Two instances created at t=0; only one is consumed.
        result = ScalingPerQuerySimulator(config).replay(trace, FixedPlanScaler([0.0, 0.0]))
        assert result.unused_instance_cost == pytest.approx(100.0)

    def test_earliest_ready_instance_assigned_first(self):
        config = SimulationConfig(pending_time=10.0)
        trace = ArrivalTrace([30.0, 31.0], [1.0, 1.0], horizon=60.0)
        result = ScalingPerQuerySimulator(config).replay(trace, FixedPlanScaler([0.0, 15.0]))
        first, second = result.outcomes
        assert first.instance.creation_time == pytest.approx(0.0)
        assert second.instance.creation_time == pytest.approx(15.0)
        assert first.hit and second.hit


class TestSimulatorProperties:
    def test_every_query_served_exactly_once(self, small_poisson_trace, sim_config):
        result = ScalingPerQuerySimulator(sim_config).replay(
            small_poisson_trace, BackupPoolScaler(2)
        )
        assert result.n_queries == small_poisson_trace.n_queries
        served = sorted(o.query.index for o in result.outcomes)
        assert served == list(range(small_poisson_trace.n_queries))

    def test_cost_identity_per_instance(self, small_poisson_trace, sim_config):
        """lifecycle = idle + waiting-covered pending + processing, per Algorithm 1."""
        result = ScalingPerQuerySimulator(sim_config).replay(
            small_poisson_trace, BackupPoolScaler(3)
        )
        for outcome in result.outcomes:
            record = outcome.instance
            reconstructed = (
                record.idle_time
                + (record.ready_time - record.creation_time)
                + outcome.query.processing_time
            )
            assert record.lifecycle_length == pytest.approx(reconstructed, abs=1e-6)

    def test_response_time_decomposition(self, small_poisson_trace, sim_config):
        result = ScalingPerQuerySimulator(sim_config).replay(
            small_poisson_trace, BackupPoolScaler(1)
        )
        for outcome in result.outcomes:
            assert outcome.response_time == pytest.approx(
                outcome.waiting_time + outcome.query.processing_time
            )
            assert outcome.waiting_time >= 0.0

    def test_hit_iff_zero_waiting(self, small_poisson_trace, sim_config):
        result = ScalingPerQuerySimulator(sim_config).replay(
            small_poisson_trace, BackupPoolScaler(2)
        )
        for outcome in result.outcomes:
            if outcome.hit:
                assert outcome.waiting_time == pytest.approx(0.0)
            else:
                assert (
                    outcome.waiting_time > 0.0
                    or outcome.instance.ready_time > outcome.query.arrival_time
                )

    def test_deterministic_replay(self, small_poisson_trace, sim_config):
        simulator = ScalingPerQuerySimulator(sim_config)
        a = simulator.replay(small_poisson_trace, BackupPoolScaler(2))
        b = simulator.replay(small_poisson_trace, BackupPoolScaler(2))
        np.testing.assert_array_equal(a.response_times, b.response_times)
        assert a.total_cost == b.total_cost

    @given(
        st.lists(st.floats(min_value=0.1, max_value=3000.0), min_size=1, max_size=60),
        st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_waiting_bounded_by_pending_for_pool_strategies(self, raw_arrivals, pool_size):
        """With only immediate creations, no query waits longer than the pending time."""
        arrivals = np.sort(np.asarray(raw_arrivals))
        trace = ArrivalTrace(arrivals, 1.0, horizon=3100.0)
        config = SimulationConfig(pending_time=7.0)
        result = ScalingPerQuerySimulator(config).replay(trace, BackupPoolScaler(pool_size))
        assert result.n_queries == trace.n_queries
        assert np.all(result.waiting_times <= 7.0 + 1e-9)
        assert result.total_cost >= 0.0


class TestRealEnvironment:
    def test_decision_latency_delays_actions(self):
        trace = ArrivalTrace([1.0], [1.0], horizon=30.0)
        slow = FixedPlanScaler([0.0], slow_seconds=0.2)
        charged = SimulationConfig(pending_time=0.5, charge_decision_latency=True)
        uncharged = SimulationConfig(pending_time=0.5)
        hit_uncharged = ScalingPerQuerySimulator(uncharged).replay(trace, slow).outcomes[0].hit
        hit_charged = (
            ScalingPerQuerySimulator(charged)
            .replay(trace, FixedPlanScaler([0.0], slow_seconds=2.0))
            .outcomes[0]
            .hit
        )
        assert hit_uncharged
        assert not hit_charged

    def test_scheduling_latency_adds_to_ready_time(self):
        trace = ArrivalTrace([5.0], [1.0], horizon=30.0)
        config = SimulationConfig(pending_time=1.0, scheduling_latency=2.0)
        result = ScalingPerQuerySimulator(config).replay(trace, FixedPlanScaler([0.0]))
        assert result.outcomes[0].instance.ready_time == pytest.approx(3.0)

    def test_real_environment_config_factory(self):
        base = SimulationConfig(pending_time=13.0)
        real = real_environment_config(base, scheduling_latency=1.5, pending_time_jitter=2.0)
        assert real.charge_decision_latency
        assert real.scheduling_latency == 1.5
        assert real.pending_time_jitter == 2.0

    def test_jitter_clamped_to_pending_time(self):
        base = SimulationConfig(pending_time=1.0)
        real = real_environment_config(base, pending_time_jitter=5.0)
        assert real.pending_time_jitter <= real.pending_time


class TestReadyCountTracking:
    """The incremental ready count must match a brute-force pool recount.

    ``make_context`` tracks the number of ready unassigned instances with a
    sorted mirror of the pool's ready times instead of scanning the pool on
    every call; with the audit flag enabled, the engine recounts by brute
    force at every planning context and raises on any divergence.
    """

    @pytest.fixture(autouse=True)
    def _enable_audit(self, monkeypatch):
        from repro.simulation import engine as engine_module

        monkeypatch.setattr(engine_module, "_AUDIT_READY_COUNT", True)

    def test_audit_with_pool_churn(self, small_poisson_trace):
        # Jittered pending times interleave ready times across creations;
        # AdapBP adds scale-ins (tail removals) on its planning ticks.
        config = SimulationConfig(pending_time=10.0, pending_time_jitter=4.0, seed=1)
        from repro.scaling.adaptive_backup_pool import AdaptiveBackupPoolScaler

        for scaler in (
            BackupPoolScaler(3),
            AdaptiveBackupPoolScaler(40.0, update_interval=120.0),
        ):
            result = ScalingPerQuerySimulator(config).replay(
                small_poisson_trace, scaler
            )
            assert result.n_queries == small_poisson_trace.n_queries

    def test_audit_with_scheduled_materializations(self, small_poisson_trace):
        config = SimulationConfig(pending_time=5.0, pending_time_jitter=2.0, seed=2)
        creation_times = [50.0 * k for k in range(20)]
        result = ScalingPerQuerySimulator(config).replay(
            small_poisson_trace, FixedPlanScaler(creation_times)
        )
        assert result.n_queries == small_poisson_trace.n_queries

    def test_ready_count_observed_by_policy(self):
        """The count a policy sees equals an independent recount of the pool."""
        observed: list[tuple[float, int, int]] = []

        class Recorder(Autoscaler):
            name = "Recorder"

            def initialize(self, context):
                return ScalingResponse(
                    actions=[
                        ScalingAction(creation_time=t, planned_at=0.0)
                        for t in (0.0, 0.0, 0.0, 30.0)
                    ]
                )

            def on_query_arrival(self, context):
                observed.append(
                    (context.time, context.ready_unassigned, context.created_unassigned)
                )
                return ScalingResponse.empty()

        config = SimulationConfig(pending_time=10.0)
        trace = ArrivalTrace([5.0, 15.0, 45.0, 100.0], 1.0, horizon=200.0)
        ScalingPerQuerySimulator(config).replay(trace, Recorder())
        # Hand-computed: three creations at t=0 become ready at 10, the one
        # at t=30 becomes ready at 40; each arrival consumes the
        # earliest-ready instance before its hook observes the pool.
        assert [(t, ready) for t, ready, _ in observed] == [
            (5.0, 0),
            (15.0, 1),
            (45.0, 1),
            (100.0, 0),
        ]
        for _, ready, created in observed:
            assert 0 <= ready <= created


class TestRunnerHelpers:
    def test_replay_helper(self, small_poisson_trace, sim_config):
        result = replay(small_poisson_trace, ReactiveScaler(), sim_config)
        assert result.n_queries == small_poisson_trace.n_queries

    def test_evaluate_scaler_summary(self, small_poisson_trace, sim_config):
        summary = evaluate_scaler(
            small_poisson_trace,
            BackupPoolScaler(1),
            sim_config,
            reference_cost=1000.0,
        )
        assert "hit_rate" in summary
        assert "relative_cost" in summary
        assert summary["n_queries"] == small_poisson_trace.n_queries
