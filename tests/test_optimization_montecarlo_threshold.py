"""Tests for Monte Carlo scenario generation and the kappa threshold (eq. 8)."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro.exceptions import ValidationError
from repro.nhpp.intensity import PiecewiseConstantIntensity
from repro.optimization.montecarlo import ArrivalScenarios, generate_scenarios
from repro.optimization.threshold import compute_kappa
from repro.pending import DeterministicPendingTime, UniformPendingTime


class TestArrivalScenarios:
    def test_shape_validation(self):
        with pytest.raises(ValidationError):
            ArrivalScenarios(
                arrival_times=np.zeros((3, 2)), pending_times=np.zeros((3, 3))
            )
        with pytest.raises(ValidationError):
            ArrivalScenarios(arrival_times=np.zeros(3), pending_times=np.zeros(3))

    def test_for_query_and_slack(self):
        arrivals = np.array([[1.0, 2.0], [3.0, 4.0]])
        pending = np.array([[0.5, 0.5], [0.5, 0.5]])
        scenarios = ArrivalScenarios(arrival_times=arrivals, pending_times=pending)
        xi, tau = scenarios.for_query(1)
        np.testing.assert_allclose(xi, [2.0, 4.0])
        np.testing.assert_allclose(scenarios.slack(0), [0.5, 2.5])
        with pytest.raises(ValidationError):
            scenarios.for_query(2)


class TestGenerateScenarios:
    def test_shapes(self, constant_intensity, pending_model):
        scenarios = generate_scenarios(constant_intensity, pending_model, 3, 50, 0)
        assert scenarios.n_queries == 3
        assert scenarios.n_samples == 50

    def test_reproducible_with_seed(self, constant_intensity, pending_model):
        a = generate_scenarios(constant_intensity, pending_model, 2, 20, 7)
        b = generate_scenarios(constant_intensity, pending_model, 2, 20, 7)
        np.testing.assert_array_equal(a.arrival_times, b.arrival_times)

    def test_arrival_marginals_match_intensity(self, pending_model):
        rate = 0.8
        intensity = PiecewiseConstantIntensity(np.array([rate]), 60.0, extrapolation="hold")
        scenarios = generate_scenarios(intensity, pending_model, 1, 5000, 1)
        xi, _ = scenarios.for_query(0)
        result = stats.kstest(xi, "expon", args=(0, 1.0 / rate))
        assert result.pvalue > 0.01


class TestComputeKappa:
    def test_zero_pending_time_gives_zero(self):
        kappa = compute_kappa(1.0, DeterministicPendingTime(0.0), 0.9)
        assert kappa == 0

    def test_zero_intensity_gives_zero(self):
        kappa = compute_kappa(0.0, DeterministicPendingTime(13.0), 0.9)
        assert kappa == 0

    def test_matches_gamma_quantile_definition(self):
        lam, tau, target = 0.2, 13.0, 0.9
        kappa = compute_kappa(lam, DeterministicPendingTime(tau), target)
        alpha = 1.0 - target
        # Definition (8): largest i with alpha-quantile of Gamma(i,1)/lam - tau < 0.
        assert stats.gamma.ppf(alpha, a=kappa) / lam - tau < 0
        assert stats.gamma.ppf(alpha, a=kappa + 1) / lam - tau >= 0

    def test_kappa_grows_with_intensity(self):
        pending = DeterministicPendingTime(13.0)
        low = compute_kappa(0.1, pending, 0.9)
        high = compute_kappa(2.0, pending, 0.9)
        assert high > low

    def test_kappa_grows_with_target(self):
        pending = DeterministicPendingTime(13.0)
        relaxed = compute_kappa(0.5, pending, 0.5)
        strict = compute_kappa(0.5, pending, 0.99)
        assert strict >= relaxed

    def test_monte_carlo_close_to_exact_for_narrow_uniform(self):
        lam, target = 0.5, 0.9
        exact = compute_kappa(lam, DeterministicPendingTime(10.0), target)
        approx = compute_kappa(
            lam,
            UniformPendingTime(9.99, 10.01),
            target,
            n_samples=20_000,
            random_state=0,
        )
        assert abs(approx - exact) <= 1

    def test_respects_cap(self):
        kappa = compute_kappa(1000.0, DeterministicPendingTime(60.0), 0.99, max_kappa=50)
        assert kappa == 50
