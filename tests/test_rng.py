"""Tests for random-number-generator plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rng import ensure_rng, spawn_rng


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_seed_is_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            ensure_rng(True)

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestSpawnRng:
    def test_spawn_count(self):
        children = spawn_rng(np.random.default_rng(1), 4)
        assert len(children) == 4

    def test_spawn_deterministic(self):
        a = [g.random() for g in spawn_rng(np.random.default_rng(5), 3)]
        b = [g.random() for g in spawn_rng(np.random.default_rng(5), 3)]
        assert a == b

    def test_spawn_independent_streams(self):
        children = spawn_rng(np.random.default_rng(2), 2)
        assert children[0].random() != children[1].random()

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rng(np.random.default_rng(0), -1)
