"""Golden regression tests for seeded scenario-trace generation.

The fixtures in ``tests/golden/scenario_traces.json`` pin the exact
realizations produced by the vectorized NHPP sampler for every
intensity-backed registry scenario.  If these tests fail, a code change
altered the RNG draw order of scenario generation; if the change is
intentional, re-baseline with::

    PYTHONPATH=src python tests/golden/regen_golden.py

and commit the updated JSON together with the change (see the README
section on re-baselining golden fixtures).
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.workloads import get_scenario, list_scenarios


GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_PATH = GOLDEN_DIR / "scenario_traces.json"


def _load_regen_module():
    spec = importlib.util.spec_from_file_location(
        "regen_golden", GOLDEN_DIR / "regen_golden.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("regen_golden", module)
    spec.loader.exec_module(module)
    return module


_regen = _load_regen_module()


@pytest.fixture(scope="module")
def fixtures() -> dict:
    assert GOLDEN_PATH.exists(), (
        "golden fixtures missing; run "
        "`PYTHONPATH=src python tests/golden/regen_golden.py`"
    )
    return json.loads(GOLDEN_PATH.read_text())


def _cases():
    for scenario in list_scenarios():
        if scenario.kind != "intensity":
            continue
        for scale, seed in _regen.CASES:
            yield scenario.name, scale, seed


@pytest.mark.parametrize("name,scale,seed", list(_cases()))
def test_seeded_trace_matches_golden(fixtures, name, scale, seed):
    key = f"{name}|scale={scale:g}|seed={seed}"
    assert key in fixtures, f"no golden fixture for {key}; re-run regen_golden.py"
    trace = get_scenario(name).build_trace(scale=scale, seed=seed)
    assert _regen.trace_fingerprint(trace) == fixtures[key]


def test_fixture_file_covers_exactly_the_current_registry(fixtures):
    expected = {
        f"{name}|scale={scale:g}|seed={seed}" for name, scale, seed in _cases()
    }
    assert set(fixtures) == expected, (
        "golden fixtures out of sync with the scenario registry; "
        "re-run tests/golden/regen_golden.py"
    )


def test_generation_is_deterministic():
    scenario = get_scenario("pareto-bursts")
    a = scenario.build_trace(scale=0.05, seed=7)
    b = scenario.build_trace(scale=0.05, seed=7)
    assert _regen.trace_fingerprint(a) == _regen.trace_fingerprint(b)
