"""Smoke and shape tests for the experiment drivers (one per paper artifact).

These tests run every driver on deliberately tiny configurations: the goal is
to verify that each driver produces rows with the right schema and the
qualitative relationships the paper reports (orderings, monotonicities), not
to reproduce absolute numbers.  Every driver runs through the registry path
(:func:`repro.api.run_experiment`) — the same code the CLI and the fluent
Session invoke.
"""

from __future__ import annotations

import pytest

from repro.api import run_experiment
from repro.experiments.base import make_trace, prepare_workload, trace_defaults
from repro.experiments.traces_overview import run_traces_overview


class TestBaseHelpers:
    def test_make_trace_known_names(self):
        for name in ("crs", "google", "alibaba"):
            trace = make_trace(name, scale=0.2, seed=1)
            assert trace.n_queries > 0

    def test_make_trace_unknown_name(self):
        with pytest.raises(KeyError):
            make_trace("azure")

    def test_trace_defaults_unknown_name(self):
        with pytest.raises(KeyError):
            trace_defaults("azure")

    def test_prepare_workload(self):
        trace = make_trace("google", scale=0.15, seed=2)
        workload = prepare_workload(trace, train_fraction=0.75, bin_seconds=60.0)
        assert workload.reference_cost > 0
        assert workload.test.n_queries > 0
        assert workload.model.is_fitted


class TestTracesOverview:
    def test_rows_schema(self):
        rows = run_traces_overview(scale=0.15, seed=3)
        assert len(rows) == 3
        for row in rows:
            assert set(row) >= {"trace", "n_queries", "mean_qps", "period_detected"}

    def test_alibaba_burst_flagged(self):
        rows = run_traces_overview(trace_names=("alibaba",), scale=0.4, seed=3)
        assert rows[0]["max_robust_z"] > 4.0


class TestRegularizationExperiment:
    def test_periodicity_regularization_improves_error(self):
        """Table III: the periodicity penalty must reduce MSE and MAE."""
        rows = run_experiment(
            "table3",
            {
                "period_seconds": 3600.0,
                "n_periods": 5,
                "bin_seconds": 60.0,
                "max_iterations": 150,
            },
        )
        without = next(r for r in rows if "w/o" in r["model"])
        with_reg = next(r for r in rows if "w/ " in r["model"])
        improvement = next(r for r in rows if r["model"] == "improvement")
        assert with_reg["mse"] < without["mse"]
        assert with_reg["mae"] < without["mae"]
        assert improvement["mse"] > 0.0


class TestScalabilityExperiment:
    def test_runtime_grows_with_qps(self):
        """Fig. 8: decision-update runtime grows roughly linearly in QPS."""
        rows = run_experiment(
            "scalability",
            {"qps_levels": (1.0, 50.0), "monte_carlo_samples": 300, "repeats": 1},
        )
        hp_rows = [r for r in rows if r["variant"].endswith("HP")]
        assert hp_rows[0]["decisions_per_update"] < hp_rows[1]["decisions_per_update"]
        assert hp_rows[0]["runtime_seconds"] < hp_rows[1]["runtime_seconds"]

    def test_mc_accuracy_close_to_targets(self):
        """Table I: achieved levels land near the requested targets."""
        rows = run_experiment(
            "table1",
            {
                "peak_qps": 5.0,
                "period_seconds": 900.0,
                "horizon_seconds": 4 * 900.0,
                "planning_interval": 10.0,
                "monte_carlo_samples": 400,
            },
        )
        by_metric = {row["metric"]: row for row in rows}
        hp = by_metric["hit probability"]
        assert hp["achieved_level"] == pytest.approx(hp["target_level"], abs=0.15)
        rt = by_metric["waiting seconds"]
        assert rt["achieved_level"] <= rt["target_level"] + 1.5
        cost = by_metric["idle seconds per instance"]
        assert cost["achieved_level"] <= cost["target_level"] + 2.0


class TestParetoExperiment:
    def test_single_small_trace(self):
        rows = run_experiment(
            "pareto",
            {
                "trace_names": ("google",),
                "scale": 0.13,
                "planning_interval": 10.0,
                "monte_carlo_samples": 150,
                "hp_targets": (0.5, 0.9),
                "pool_sizes": (0, 2),
                "adaptive_factors": (10.0,),
                "include_rt_variant": False,
                "include_cost_variant": False,
            },
        )
        assert all(row["trace"] == "google" for row in rows)
        scalers = {row["scaler"] for row in rows}
        assert any("BP" in s for s in scalers)
        assert any("RobustScaler-HP" in s for s in scalers)
        # Reactive baseline has relative cost 1 by construction.
        reactive = next(r for r in rows if r["scaler"] == "BP(B=0)")
        assert reactive["relative_cost"] == pytest.approx(1.0)
        assert reactive["hit_rate"] == 0.0
        # Higher HP target costs more and hits more.
        rs_rows = sorted(
            (r for r in rows if "RobustScaler-HP" in r["scaler"]),
            key=lambda r: r["target_hp"],
        )
        assert rs_rows[-1]["hit_rate"] >= rs_rows[0]["hit_rate"] - 0.05
        assert rs_rows[-1]["relative_cost"] >= rs_rows[0]["relative_cost"] - 0.05


class TestVarianceExperiment:
    def test_rows_schema(self):
        rows = run_experiment(
            "variance",
            {
                "scale": 0.15,
                "hp_targets": (0.7,),
                "cost_budget_fractions": (0.05,),
                "pool_sizes": (1,),
                "adaptive_factors": (25.0,),
                "monte_carlo_samples": 150,
                "planning_interval": 10.0,
            },
        )
        families = {row["family"] for row in rows}
        assert families == {"BP", "AdapBP", "RobustScaler-HP", "RobustScaler-cost"}
        for row in rows:
            assert row["hit_rate_variance"] >= 0.0
            assert row["rt_variance"] >= 0.0


class TestPerturbationExperiment:
    def test_rows_cover_all_sizes(self):
        rows = run_experiment(
            "perturbation",
            {
                "scale": 0.15,
                "perturbation_sizes": (1.0, 4.0),
                "hp_targets": (0.7,),
                "adaptive_factors": (25.0,),
                "monte_carlo_samples": 150,
                "planning_interval": 10.0,
            },
        )
        sizes = {row["perturbation_size"] for row in rows}
        assert sizes == {1.0, 4.0}
        assert any("AdapBP" in row["scaler"] for row in rows)
        assert any("RobustScaler" in row["scaler"] for row in rows)


class TestRobustnessExperiment:
    def test_metrics_stable_under_missing_data(self):
        """Fig. 9 / Table II: metrics barely move when training data goes missing."""
        rows = run_experiment(
            "robustness",
            {
                "scale": 0.15,
                "hp_targets": (0.9,),
                "cost_budget_fractions": (0.1,),
                "monte_carlo_samples": 150,
                "planning_interval": 10.0,
                "include_alibaba": False,
            },
        )
        conditions = {row["condition"] for row in rows}
        assert conditions == {"original", "missing_data"}
        original = next(
            r for r in rows if r["condition"] == "original" and "HP" in r["scaler"]
        )
        modified = next(
            r for r in rows if r["condition"] == "missing_data" and "HP" in r["scaler"]
        )
        assert modified["hit_rate"] == pytest.approx(original["hit_rate"], abs=0.15)


class TestControlAccuracyExperiment:
    def test_nominal_actual_rows(self):
        rows = run_experiment(
            "control",
            {
                "scale": 0.15,
                "hp_targets": (0.5, 0.9),
                "waiting_budgets": (5.0,),
                "idle_budgets": (10.0,),
                "monte_carlo_samples": 150,
                "planning_interval": 10.0,
            },
        )
        panels = {row["panel"] for row in rows}
        assert panels == {"hit_probability", "waiting_time", "idle_cost"}
        hp_rows = sorted(
            (r for r in rows if r["panel"] == "hit_probability"),
            key=lambda r: r["nominal"],
        )
        # Actual hit rate increases with the nominal target.
        assert hp_rows[-1]["actual"] >= hp_rows[0]["actual"] - 0.05

    def test_planning_frequency_cost_monotone(self):
        """Fig. 10(d): longer planning intervals cost at least as much."""
        rows = run_experiment(
            "planning-frequency",
            {
                "scale": 0.15,
                "planning_intervals": (10.0, 60.0),
                "waiting_budget": 3.0,
                "monte_carlo_samples": 150,
            },
        )
        by_interval = {row["planning_interval"]: row for row in rows}
        assert (
            by_interval[60.0]["relative_cost"]
            >= by_interval[10.0]["relative_cost"] - 0.1
        )


class TestRealEnvExperiment:
    def test_real_and_simulated_close(self):
        rows = run_experiment(
            "table4",
            {"scale": 0.15, "monte_carlo_samples": 150, "planning_interval": 10.0},
        )
        assert {row["environment"] for row in rows} == {"simulated", "real"}
        simulated = next(r for r in rows if r["environment"] == "simulated")
        real = next(r for r in rows if r["environment"] == "real")
        assert real["hit_rate"] == pytest.approx(simulated["hit_rate"], abs=0.15)
        assert real["rt_avg"] == pytest.approx(simulated["rt_avg"], rel=0.15)


class TestAblations:
    def test_kappa_ablation_shows_gap(self):
        rows = run_experiment(
            "kappa-ablation",
            {"horizon_seconds": 1800.0, "monte_carlo_samples": 400},
        )
        with_kappa = next(r for r in rows if "with kappa" in r["variant"])
        without = next(r for r in rows if "no look-ahead" in r["variant"])
        assert with_kappa["hit_rate"] > without["hit_rate"]

    def test_mc_sample_ablation_error_shrinks(self):
        rows = run_experiment(
            "mc-sample-ablation", {"sample_sizes": (50, 2000), "n_trials": 10}
        )
        by_n = {row["n_samples"]: row for row in rows}
        assert by_n[2000]["mean_abs_error"] < by_n[50]["mean_abs_error"]

    def test_regularization_sensitivity_grid(self):
        rows = run_experiment(
            "regularization-sensitivity",
            {
                "period_seconds": 1800.0,
                "n_periods": 4,
                "beta_smooth_values": (0.0, 50.0),
                "beta_period_values": (0.0, 10.0),
                "max_iterations": 100,
            },
        )
        assert len(rows) == 4
        unregularized = next(
            r for r in rows if r["beta_smooth"] == 0.0 and r["beta_period"] == 0.0
        )
        best = min(rows, key=lambda r: r["mse"])
        assert best["mse"] <= unregularized["mse"]
