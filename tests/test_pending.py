"""Tests for the pending-time (startup latency) models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.pending import (
    DeterministicPendingTime,
    ExponentialPendingTime,
    UniformPendingTime,
)


class TestDeterministicPendingTime:
    def test_mean_and_bound(self):
        model = DeterministicPendingTime(13.0)
        assert model.mean == 13.0
        assert model.upper_bound == 13.0

    def test_samples_are_constant(self):
        samples = DeterministicPendingTime(5.0).sample(10, 0)
        np.testing.assert_allclose(samples, 5.0)

    def test_zero_allowed(self):
        assert DeterministicPendingTime(0.0).mean == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            DeterministicPendingTime(-1.0)


class TestUniformPendingTime:
    def test_mean(self):
        assert UniformPendingTime(4.0, 6.0).mean == pytest.approx(5.0)

    def test_samples_within_bounds(self):
        samples = UniformPendingTime(2.0, 8.0).sample(500, 1)
        assert samples.min() >= 2.0
        assert samples.max() <= 8.0

    def test_invalid_order_rejected(self):
        with pytest.raises(ValidationError):
            UniformPendingTime(5.0, 4.0)

    def test_upper_bound(self):
        assert UniformPendingTime(1.0, 3.0).upper_bound == 3.0


class TestExponentialPendingTime:
    def test_mean_matches(self):
        model = ExponentialPendingTime(10.0)
        samples = model.sample(20_000, 3)
        assert samples.mean() == pytest.approx(10.0, rel=0.05)

    def test_upper_bound_infinite(self):
        assert np.isinf(ExponentialPendingTime(1.0).upper_bound)

    def test_non_positive_mean_rejected(self):
        with pytest.raises(ValidationError):
            ExponentialPendingTime(0.0)


class TestReproducibility:
    @pytest.mark.parametrize(
        "model",
        [UniformPendingTime(1.0, 3.0), ExponentialPendingTime(2.0)],
    )
    def test_same_seed_same_samples(self, model):
        a = model.sample(20, 42)
        b = model.sample(20, 42)
        np.testing.assert_array_equal(a, b)
