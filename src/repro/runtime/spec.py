"""Declarative evaluation specs: what to run, independent of how it runs.

An :class:`EvalTask` names one point of an experiment sweep — which workload
(:class:`WorkloadSpec`), which autoscaler (:class:`ScalerSpec`), and any row
annotations — as plain picklable data.  Because tasks carry no live objects
(no fitted models, no lambdas), the same task list can execute in-process or
on a process pool and produce identical rows.

Seeding: :func:`derive_task_seeds` spawns one child
:class:`numpy.random.SeedSequence` per task from the batch's base seed, so
every task owns an independent, reproducible Monte Carlo stream that does
not depend on execution order, worker count, or how many draws other tasks
consume.
"""

from __future__ import annotations

import hashlib
import importlib
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..config import NHPPConfig, PlannerConfig, SimulationConfig
from ..exceptions import ValidationError
from ..rng import RandomState
from ..scaling.adaptive_backup_pool import AdaptiveBackupPoolScaler
from ..scaling.backup_pool import BackupPoolScaler, ReactiveScaler
from ..scaling.base import Autoscaler
from ..scaling.robustscaler import RobustScaler, RobustScalerObjective
from ..types import ArrivalTrace
from .workload import PreparedWorkload, prepare_workload

__all__ = [
    "PrepSpec",
    "WorkloadSpec",
    "ScalerSpec",
    "EvalTask",
    "FunctionTask",
    "EvalResult",
    "derive_task_seeds",
]

#: Default report-row column per scaler kind (override via ``parameter_name``).
_PARAMETER_NAMES = {
    "reactive": None,
    "bp": "pool_size",
    "adapbp": "rate_factor",
    "rs-hp": "target_hp",
    "rs-rt": "waiting_budget",
    "rs-cost": "idle_budget",
}

_RS_OBJECTIVES = {
    "rs-hp": RobustScalerObjective.HIT_PROBABILITY,
    "rs-rt": RobustScalerObjective.RESPONSE_TIME,
    "rs-cost": RobustScalerObjective.COST,
}


@dataclass(frozen=True)
class PrepSpec:
    """Workload-preparation parameters; ``None`` fields fall back to defaults.

    For scenario-backed workloads the fallback is the scenario's own
    evaluation defaults (its train/test split, fitting bin width and pending
    time); for direct traces the fallback is the library defaults of
    :func:`repro.runtime.workload.prepare_workload`.
    """

    train_fraction: float | None = None
    bin_seconds: float | None = None
    pending_time: float | None = None
    period_bins: int | None = None
    nhpp: NHPPConfig | None = None
    simulation: SimulationConfig | None = None
    #: Replay engine override (``"reference"`` / ``"batched"`` /
    #: ``"kernel"``); tasks carry
    #: it as plain data so pool workers build the right simulator.  ``None``
    #: defers to the ``simulation`` config (default: reference).
    engine: str | None = None

    def resolve(self, scenario=None) -> dict:
        """Concrete ``prepare_workload`` keyword arguments."""

        def pick(value, scenario_attr, default):
            if value is not None:
                return value
            if scenario is not None:
                return getattr(scenario, scenario_attr)
            return default

        return {
            "train_fraction": float(pick(self.train_fraction, "train_fraction", 0.75)),
            "bin_seconds": float(pick(self.bin_seconds, "bin_seconds", 60.0)),
            "pending_time": float(pick(self.pending_time, "pending_time", 13.0)),
            "period_bins": self.period_bins,
            "nhpp_config": self.nhpp,
            "simulation": self.simulation,
            "engine": self.engine,
        }

    def _key(self, scenario=None) -> tuple:
        resolved = self.resolve(scenario)
        # Key by the *effective* engine, not the raw override: engine=None
        # defers to the simulation config (default "batched"), so e.g.
        # `simulate` (explicit "batched") and the experiment drivers
        # (None) must address the same prepared-workload artifact.
        engine = resolved["engine"]
        if engine is None:
            simulation = resolved["simulation"]
            engine = (
                simulation.engine if simulation is not None else None
            ) or "batched"
        return (
            resolved["train_fraction"],
            resolved["bin_seconds"],
            resolved["pending_time"],
            resolved["period_bins"],
            resolved["nhpp_config"],
            resolved["simulation"],
            engine,
        )


def _trace_digest(trace: ArrivalTrace) -> str:
    """Content fingerprint so direct traces get stable cache keys."""
    digest = hashlib.blake2b(digest_size=16)
    digest.update(np.ascontiguousarray(trace.arrival_times).tobytes())
    digest.update(np.ascontiguousarray(trace.processing_times).tobytes())
    digest.update(repr((trace.name, trace.horizon)).encode())
    return digest.hexdigest()


@dataclass(frozen=True)
class WorkloadSpec:
    """How to obtain and prepare one workload.

    Exactly one of ``scenario`` (a name in the default scenario registry,
    regenerated deterministically wherever the task runs) and ``trace`` (a
    concrete :class:`~repro.types.ArrivalTrace`, e.g. a perturbed copy that
    exists nowhere in the registry) must be set.
    """

    scenario: str | None = None
    trace: ArrivalTrace | None = None
    scale: float = 1.0
    seed: int | None = None
    prep: PrepSpec = field(default_factory=PrepSpec)

    def __post_init__(self) -> None:
        if (self.scenario is None) == (self.trace is None):
            raise ValidationError(
                "WorkloadSpec requires exactly one of 'scenario' and 'trace'"
            )
        if not float(self.scale) > 0:
            raise ValidationError(f"scale must be positive, got {self.scale}")

    def cache_key(self) -> tuple:
        """The (workload identity, prep-config) key used by the cache."""
        if self.scenario is not None:
            identity: tuple = (
                "scenario",
                self.scenario.lower(),
                float(self.scale),
                self.seed,
            )
            scenario = self._get_scenario()
        else:
            identity = (
                "trace",
                self.trace.name,
                self.trace.n_queries,
                _trace_digest(self.trace),
            )
            scenario = None
        return identity + self.prep._key(scenario)

    def _get_scenario(self):
        from ..workloads import get_scenario

        return get_scenario(self.scenario)

    def build_trace(self) -> ArrivalTrace:
        """The raw trace this spec denotes (generated for scenario specs)."""
        if self.trace is not None:
            return self.trace
        scenario = self._get_scenario()
        return scenario.build_trace(scale=self.scale, seed=self.seed)

    def prepare(self, store=None) -> PreparedWorkload:
        """Generate the trace (if needed), fit the model, package everything.

        With a ``store``, scenario-backed specs fetch (or publish) the
        seeded trace realization through the store's ``traces`` namespace
        instead of re-sampling it — so a workload-cache miss still reuses
        the trace a driver already generated for grid derivation.
        """
        scenario = self._get_scenario() if self.scenario is not None else None
        if store is not None and scenario is not None:
            from ..store.traces import get_or_build_trace

            trace = get_or_build_trace(
                scenario, scale=self.scale, seed=self.seed, store=store
            )
        else:
            trace = self.build_trace()
        return prepare_workload(trace, **self.prep.resolve(scenario))


@dataclass(frozen=True)
class ScalerSpec:
    """A picklable recipe for one autoscaler.

    ``kind`` selects the family: ``reactive``, ``bp`` (Backup Pool, the
    parameter is the pool size), ``adapbp`` (Adaptive Backup Pool, rate
    factor), or the three RobustScaler variants ``rs-hp`` / ``rs-rt`` /
    ``rs-cost`` whose parameter is the constraint level.  RobustScaler specs
    also carry the planner settings; their Monte Carlo stream comes from the
    per-task seed at build time, never from the spec itself.
    """

    kind: str
    parameter: float | None = None
    parameter_name: str | None = None
    planning_interval: float = 2.0
    monte_carlo_samples: int = 400

    def __post_init__(self) -> None:
        if self.kind not in _PARAMETER_NAMES:
            raise ValidationError(
                f"unknown scaler kind {self.kind!r}; expected one of "
                f"{sorted(_PARAMETER_NAMES)}"
            )
        if self.kind != "reactive" and self.parameter is None:
            raise ValidationError(f"scaler kind {self.kind!r} requires a parameter")
        if not float(self.planning_interval) > 0:
            raise ValidationError(
                f"planning_interval must be positive, got {self.planning_interval}"
            )
        if int(self.monte_carlo_samples) < 1:
            raise ValidationError(
                f"monte_carlo_samples must be >= 1, got {self.monte_carlo_samples}"
            )

    @property
    def resolved_parameter_name(self) -> str | None:
        """Report-row column the sweep parameter lands in (None for reactive)."""
        if self.parameter_name is not None:
            return self.parameter_name
        return _PARAMETER_NAMES[self.kind]

    def build(
        self, workload: PreparedWorkload, random_state: RandomState = None
    ) -> Autoscaler:
        """Construct the autoscaler against a prepared workload."""
        if self.kind == "reactive":
            return ReactiveScaler()
        if self.kind == "bp":
            return BackupPoolScaler(int(self.parameter))
        if self.kind == "adapbp":
            return AdaptiveBackupPoolScaler(float(self.parameter))
        planner = PlannerConfig(
            planning_interval=self.planning_interval,
            monte_carlo_samples=self.monte_carlo_samples,
        )
        return RobustScaler(
            workload.forecast,
            workload.pending_model,
            objective=_RS_OBJECTIVES[self.kind],
            target=float(self.parameter),
            planner=planner,
            random_state=random_state,
        )


def _task_digest(canonical: tuple) -> str:
    """Content digest of a task's canonical tuple (stable across processes).

    Delegates to the store's key hashing so there is exactly one
    canonical-repr-to-digest rule in the repository.
    """
    from ..store.artifacts import key_digest

    return key_digest(canonical)


@dataclass(frozen=True)
class EvalTask:
    """One sweep point: a workload, a scaler, and row annotations.

    ``extra`` is an ordered tuple of ``(column, value)`` pairs merged into
    the result row (scenario labels, perturbation sizes, sweep families).
    ``variance_window`` additionally requests the windowed QoS statistics of
    Fig. 5 in the row; ``metrics`` requests named extra metric columns (see
    :func:`repro.runtime.workload.evaluate_prepared`).
    """

    workload: WorkloadSpec
    scaler: ScalerSpec
    extra: tuple[tuple[str, Any], ...] = ()
    variance_window: int | None = None
    metrics: tuple[str, ...] = ()

    def row_annotations(self) -> dict:
        """The ``extra`` pairs plus the scaler's sweep parameter column."""
        annotations = dict(self.extra)
        name = self.scaler.resolved_parameter_name
        if name is not None and self.scaler.parameter is not None:
            annotations.setdefault(name, float(self.scaler.parameter))
        return annotations

    def group_key(self) -> tuple:
        """Scheduling key: tasks sharing it share one workload preparation."""
        return self.workload.cache_key()

    def digest(self) -> str:
        """Content fingerprint used by the resumable-run journal.

        Any change to the task — its workload identity (trace contents
        included, via the cache key's content hash), prep config, scaler,
        annotations or requested statistics — changes the digest, so stale
        journal records can never be replayed against a different task.
        """
        scaler = self.scaler
        return _task_digest(
            (
                "eval",
                self.workload.cache_key(),
                (
                    scaler.kind,
                    scaler.parameter,
                    scaler.parameter_name,
                    scaler.planning_interval,
                    scaler.monte_carlo_samples,
                ),
                self.extra,
                self.variance_window,
                self.metrics,
            )
        )


@dataclass(frozen=True)
class FunctionTask:
    """One grid point evaluated by a named top-level function.

    Some experiment grids are not a (workload, scaler) replay — ablation
    points fit an ADMM objective or time a Monte Carlo solver.  A
    ``FunctionTask`` names such a point as plain picklable data: the dotted
    path of a module-level callable plus its keyword arguments, so the same
    batch machinery (``run_tasks``: process pools, journaling, ordered
    results) applies to every driver.

    The callable must be importable wherever the task runs, accept exactly
    ``dict(kwargs)``, be deterministic in those arguments (seeds travel as
    explicit kwargs), and return one report-row dictionary.
    """

    fn: str
    kwargs: tuple[tuple[str, Any], ...] = ()
    extra: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if "." not in self.fn:
            raise ValidationError(
                f"FunctionTask.fn must be a dotted module path, got {self.fn!r}"
            )

    def call(self) -> dict:
        """Import and invoke the target; returns its row plus ``extra``."""
        module_name, _, attr = self.fn.rpartition(".")
        target = getattr(importlib.import_module(module_name), attr)
        row = target(**dict(self.kwargs))
        if not isinstance(row, dict):
            raise ValidationError(
                f"{self.fn} returned {type(row).__name__}, expected a row dict"
            )
        if self.extra:
            row = {**dict(self.extra), **row}
        return row

    def group_key(self) -> tuple:
        """Scheduling key; function tasks share no preparation, so it is unique."""
        return ("function", self.fn, self.kwargs)

    def digest(self) -> str:
        """Content fingerprint used by the resumable-run journal."""
        return _task_digest(("function", self.fn, self.kwargs, self.extra))


@dataclass
class EvalResult:
    """The outcome of one executed task.

    ``row`` holds the deterministic report row; ``cache_hit``,
    ``wall_seconds`` and ``resumed`` are execution metadata (never part of
    the row, so rows stay bit-identical across executors).  ``resumed``
    marks results recovered from a run journal instead of executed.
    """

    index: int
    row: dict
    cache_hit: bool = False
    wall_seconds: float = 0.0
    resumed: bool = False


def derive_task_seeds(base_seed: int, n_tasks: int) -> list[np.random.SeedSequence]:
    """Spawn one independent child seed sequence per task.

    ``numpy.random.SeedSequence.spawn`` guarantees the children are
    statistically independent and a pure function of ``(base_seed, index)``,
    which is what makes serial and process-pool execution bit-identical.
    """
    if n_tasks < 0:
        raise ValidationError(f"n_tasks must be non-negative, got {n_tasks}")
    return np.random.SeedSequence(int(base_seed)).spawn(int(n_tasks))
