"""The workload-preparation cache.

Preparing a workload — generating the trace, fitting the NHPP model with
ADMM, replaying the reactive reference — dwarfs the cost of adding one more
sweep point on top of it.  The cache keys prepared workloads by
``WorkloadSpec.cache_key()`` (scenario/trace identity, scale, seed and the
resolved prep configuration) so every sweep point over the same workload
shares one preparation, per process: the serial executor threads a single
cache through the whole batch, while each pool worker keeps its own.
"""

from __future__ import annotations

from dataclasses import dataclass

from .spec import WorkloadSpec
from .workload import PreparedWorkload

__all__ = ["CacheStats", "WorkloadCache"]


@dataclass(frozen=True)
class CacheStats:
    """Counters of one cache: ``misses`` equals the number of model fits."""

    hits: int
    misses: int
    size: int

    @property
    def total(self) -> int:
        return self.hits + self.misses


class WorkloadCache:
    """Maps ``WorkloadSpec.cache_key()`` to its :class:`PreparedWorkload`."""

    def __init__(self) -> None:
        self._entries: dict[tuple, PreparedWorkload] = {}
        self.hits = 0
        self.misses = 0

    def get_or_prepare(self, spec: WorkloadSpec) -> tuple[PreparedWorkload, bool]:
        """Return ``(workload, was_cache_hit)`` for ``spec``, preparing on miss."""
        key = spec.cache_key()
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            return cached, True
        workload = spec.prepare()
        self.misses += 1
        self._entries[key] = workload
        return workload, False

    def stats(self) -> CacheStats:
        """A snapshot of the hit/miss counters."""
        return CacheStats(hits=self.hits, misses=self.misses, size=len(self._entries))

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)
