"""The workload-preparation cache.

Preparing a workload — generating the trace, fitting the NHPP model with
ADMM, replaying the reactive reference — dwarfs the cost of adding one more
sweep point on top of it.  The cache keys prepared workloads by
``WorkloadSpec.cache_key()`` (scenario/trace identity, scale, seed and the
resolved prep configuration) so every sweep point over the same workload
shares one preparation.

The cache is two-tier.  The memory tier is per process: the serial executor
threads a single cache through the whole batch, while each pool worker
keeps its own.  The optional disk tier — an
:class:`~repro.store.ArtifactStore` — is shared across pool workers *and*
across CLI invocations: a memory miss consults the store's ``workloads``
namespace before paying for a fit, and every fresh preparation is published
there for everyone else.  :class:`CacheStats` reports the tiers separately
(``hits`` / ``disk_hits``), so ``misses`` remains exactly the number of
model fits this process performed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..telemetry import get_recorder
from .spec import WorkloadSpec
from .workload import PreparedWorkload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..store import ArtifactStore

__all__ = ["CacheStats", "WorkloadCache", "WORKLOADS_NAMESPACE"]

#: Store namespace prepared workloads are published under.
WORKLOADS_NAMESPACE = "workloads"


@dataclass(frozen=True)
class CacheStats:
    """Counters of one cache: ``misses`` equals the number of model fits.

    ``hits`` counts memory-tier hits, ``disk_hits`` counts preparations
    recovered from the artifact store (no fit, one pickle load).
    """

    hits: int
    misses: int
    size: int
    disk_hits: int = 0

    @property
    def total(self) -> int:
        return self.hits + self.disk_hits + self.misses


class WorkloadCache:
    """Maps ``WorkloadSpec.cache_key()`` to its :class:`PreparedWorkload`.

    Parameters
    ----------
    store:
        Optional disk tier.  When set, memory misses consult the store
        before preparing, and fresh preparations are written back so other
        processes (pool workers, later CLI invocations) reuse them.
    """

    def __init__(self, store: "ArtifactStore | None" = None) -> None:
        self._entries: dict[tuple, PreparedWorkload] = {}
        self.store = store
        self.hits = 0
        self.disk_hits = 0
        self.misses = 0

    def get_or_prepare(self, spec: WorkloadSpec) -> tuple[PreparedWorkload, bool]:
        """Return ``(workload, was_cache_hit)`` for ``spec``, preparing on miss.

        A hit from either tier reports ``True``; only a genuine preparation
        (one model fit) reports ``False``.
        """
        recorder = get_recorder()
        key = spec.cache_key()
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            if recorder.enabled:
                recorder.inc("cache.memory_hits")
            return cached, True
        if self.store is not None:
            stored = self.store.get(WORKLOADS_NAMESPACE, key)
            if isinstance(stored, PreparedWorkload):
                self.disk_hits += 1
                if recorder.enabled:
                    recorder.inc("cache.disk_hits")
                self._entries[key] = stored
                return stored, True
        started = time.perf_counter()
        workload = spec.prepare(store=self.store)
        self.misses += 1
        if recorder.enabled:
            recorder.inc("cache.misses")
            recorder.observe("cache.fit_seconds", time.perf_counter() - started)
        self._entries[key] = workload
        if self.store is not None:
            self.store.put(WORKLOADS_NAMESPACE, key, workload)
        return workload, False

    def stats(self) -> CacheStats:
        """A snapshot of the hit/miss counters."""
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            size=len(self._entries),
            disk_hits=self.disk_hits,
        )

    def clear(self) -> None:
        """Drop all memory entries and reset the counters (disk tier untouched)."""
        self._entries.clear()
        self.hits = 0
        self.disk_hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)
