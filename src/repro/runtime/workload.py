"""Workload preparation: split a trace, fit the model, package the result.

This module hosts :class:`PreparedWorkload` and :func:`prepare_workload`,
the single place where a raw :class:`~repro.types.ArrivalTrace` becomes the
bundle every evaluation consumes — train/test split, fitted NHPP model,
forecast intensity, pending-time model, simulator configuration and the
reactive reference cost.  (They are re-exported from
:mod:`repro.experiments.base` for backwards compatibility.)

:func:`evaluate_prepared` is the one evaluation code path: both the
declarative task executor (:mod:`repro.runtime.executor`) and the legacy
in-process sweep helpers (:func:`repro.experiments.base.run_scaler_sweep`)
produce their report rows through it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping, Sequence

import numpy as np

from ..config import NHPPConfig, SimulationConfig
from ..exceptions import ValidationError
from ..metrics.report import summarize_result
from ..metrics.variance import windowed_mean_variance
from ..nhpp.intensity import PiecewiseConstantIntensity
from ..nhpp.model import NHPPModel
from ..pending import DeterministicPendingTime, PendingTimeModel
from ..scaling.backup_pool import ReactiveScaler
from ..scaling.base import Autoscaler
from ..simulation.runner import DEFAULT_ENGINE, replay
from ..telemetry import get_recorder
from ..types import ArrivalTrace, SimulationResult

__all__ = ["EXTRA_METRICS", "PreparedWorkload", "prepare_workload", "evaluate_prepared"]


def _waiting_avg(result: SimulationResult) -> float:
    waiting = result.waiting_times
    return float(waiting.mean()) if waiting.size else float("nan")


def _idle_avg(result: SimulationResult) -> float:
    # Idle time of the serving instance: ready-to-start gap, floored at 0 —
    # identical to QueryOutcome.instance.idle_time, computed columnar.
    starts = result.start_times
    if not starts.size:
        return float("nan")
    return float(np.maximum(0.0, starts - result.ready_times).mean())


#: Named extra metric columns tasks can request (``EvalTask.metrics``).
EXTRA_METRICS = {
    "waiting_avg": _waiting_avg,
    "idle_avg": _idle_avg,
}


@dataclass
class PreparedWorkload:
    """A trace split into train/test together with the fitted workload model.

    Attributes
    ----------
    name:
        Trace name (used in report rows).
    train, test:
        The training and test sub-traces; the test trace is rebased to start
        at time 0 and the forecast's origin coincides with it.
    model:
        The NHPP model fitted on the training window.
    forecast:
        The extrapolated intensity used by the RobustScaler variants.
    pending_model:
        The pending-time model shared by the planner and the simulator.
    simulation:
        Simulator configuration used for the replays.
    reference_cost:
        Total cost of the purely reactive baseline on the test trace, the
        denominator of the ``relative cost`` metric.
    """

    name: str
    train: ArrivalTrace
    test: ArrivalTrace
    model: NHPPModel
    forecast: PiecewiseConstantIntensity
    pending_model: PendingTimeModel
    simulation: SimulationConfig
    reference_cost: float

    @property
    def mean_processing_time(self) -> float:
        """Average processing time of the test queries (``mu_s``)."""
        processing = np.asarray(self.test.processing_times, dtype=float)
        return float(processing.mean()) if processing.size else 0.0

    def replay(self, scaler: Autoscaler) -> SimulationResult:
        """Replay the test trace under ``scaler``."""
        return replay(self.test, scaler, self.simulation)

    def evaluate(self, scaler: Autoscaler, **extra: float | str) -> dict:
        """Replay ``scaler`` and return a summary row for report tables."""
        return evaluate_prepared(self, scaler, extra=extra)


def prepare_workload(
    trace: ArrivalTrace,
    *,
    train_fraction: float = 0.75,
    bin_seconds: float = 60.0,
    pending_time: float = 13.0,
    nhpp_config: NHPPConfig | None = None,
    simulation: SimulationConfig | None = None,
    period_bins: int | None = None,
    engine: str | None = None,
) -> PreparedWorkload:
    """Split, fit, and package a trace for evaluation.

    Parameters
    ----------
    trace:
        The full trace (training + test).
    train_fraction:
        Fraction of the horizon used for training.
    bin_seconds:
        Bin width for the QPS series the NHPP is fitted on.
    pending_time:
        Instance startup latency (seconds) used in both planning and replay.
    nhpp_config:
        NHPP hyper-parameters; defaults to the library defaults.
    simulation:
        Simulator configuration; defaults to a deterministic pending time of
        ``pending_time`` seconds.
    period_bins:
        Explicit period (in bins) to use instead of running detection.
    engine:
        Replay engine override (``"reference"`` / ``"batched"`` /
        ``"kernel"``); ``None`` keeps whatever ``simulation`` selects,
        falling back to the legacy ``"reference"`` engine when the
        simulation config is silent too (:class:`repro.api.Session` and the
        CLI always pass an explicit engine, defaulting to ``"batched"``).
        All engines produce identical results, so this only changes replay
        speed.
    """
    recorder = get_recorder()
    train, test = trace.split(train_fraction)
    model = NHPPModel(nhpp_config, bin_seconds=bin_seconds)
    with recorder.span("prepare.fit"):
        model.fit(train, period_bins=period_bins)
    forecast = model.forecast()
    pending_model = DeterministicPendingTime(pending_time)
    sim_config = simulation or SimulationConfig(pending_time=pending_time)
    effective_engine = engine or sim_config.engine or DEFAULT_ENGINE
    if effective_engine != sim_config.engine:
        sim_config = replace(sim_config, engine=effective_engine)
    with recorder.span("prepare.reference_replay"):
        reference = replay(test, ReactiveScaler(), sim_config)
    return PreparedWorkload(
        name=trace.name,
        train=train,
        test=test,
        model=model,
        forecast=forecast,
        pending_model=pending_model,
        simulation=sim_config,
        reference_cost=reference.total_cost,
    )


def evaluate_prepared(
    workload: PreparedWorkload,
    scaler: Autoscaler,
    *,
    extra: Mapping[str, Any] | None = None,
    variance_window: int | None = None,
    metrics: Sequence[str] | None = None,
) -> dict:
    """Replay ``scaler`` on ``workload`` and build one report row.

    The row carries the trace and scaler names, any ``extra`` annotations
    (sweep parameters, scenario labels, ...), and the summary metrics of
    :func:`repro.metrics.report.summarize_result`.  When ``variance_window``
    is set the windowed QoS statistics of Fig. 5 (block means of
    ``variance_window`` consecutive queries) are appended as
    ``hit_rate_mean`` / ``hit_rate_variance`` / ``rt_mean`` /
    ``rt_variance``.  ``metrics`` names extra columns from
    :data:`EXTRA_METRICS` (``waiting_avg``, ``idle_avg``) used by the
    nominal-vs-actual drivers.
    """
    result = workload.replay(scaler)
    row: dict = {"trace": workload.name, "scaler": scaler.name}
    if extra:
        row.update(extra)
    row.update(summarize_result(result, reference_cost=workload.reference_cost))
    for name in metrics or ():
        try:
            compute = EXTRA_METRICS[name]
        except KeyError:
            raise ValidationError(
                f"unknown extra metric {name!r}; expected one of "
                f"{sorted(EXTRA_METRICS)}"
            ) from None
        row[name] = compute(result)
    if variance_window is not None:
        hit_mean, hit_var = windowed_mean_variance(
            result.hits.astype(float), variance_window
        )
        rt_mean, rt_var = windowed_mean_variance(result.response_times, variance_window)
        row.update(
            hit_rate_mean=hit_mean,
            hit_rate_variance=hit_var,
            rt_mean=rt_mean,
            rt_variance=rt_var,
        )
    return row
