"""Task executors: serial and multi-process, with identical results.

:func:`run_tasks` evaluates a batch of :class:`~repro.runtime.spec.EvalTask`
(or :class:`~repro.runtime.spec.FunctionTask`) either in-process
(``workers=1``) or on a :class:`concurrent.futures.ProcessPoolExecutor`
(``workers=N``; when the caller passes ``workers=None`` the
``REPRO_WORKERS`` environment variable is consulted, defaulting to serial).
Both paths call the same :func:`execute_task` with the same per-task seed,
so the result rows are bit-identical — only the wall-clock timing columns,
which measure real time, differ between runs.  Use :func:`strip_timing`
before comparing rows.

Scheduling is workload-aware: tasks are grouped by their
:meth:`~repro.runtime.spec.EvalTask.group_key` and each group is shipped to
the pool as one unit (largest first), so every worker process prepares a
given workload at most once in its own
:class:`~repro.runtime.cache.WorkloadCache` and the expensive preparations
are never duplicated across sweep points.  When there are fewer groups than
workers, large groups are split so the pool stays busy; a split group may
pay one extra fit, and with a disk store attached even that disappears
whenever the preparation is already published in the store's ``workloads``
namespace — always on a warm store, and on a cold one whenever the first
half finishes fitting before the second half needs it (two halves that
start simultaneously on a cold store still race to the first fit and
publish equivalent artifacts).

Persistence (:mod:`repro.store`) adds two behaviors on top:

* ``store=`` promotes every workload cache to two tiers (memory → disk),
  shared across pool workers and across CLI invocations;
* ``run_id=`` journals each task's completion into the store's ``results``
  namespace, making the batch resumable: rerunning the same task list with
  the same ``run_id`` and ``base_seed`` skips everything already journaled
  and returns rows bit-identical to an uninterrupted run (per-task
  ``SeedSequence.spawn`` seeding makes rows independent of which tasks ran
  in which process lifetime).

``on_result=`` streams results to the caller the moment each task finishes
(journal-recovered tasks first, then live completions in whatever order the
pool produces them) for incremental progress reporting; the returned list
is still in task order.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import nullcontext
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

import numpy as np

from ..exceptions import ValidationError
from ..telemetry import Recorder, get_recorder, use as telemetry_use
from .cache import WorkloadCache
from .spec import EvalResult, EvalTask, FunctionTask, derive_task_seeds
from .workload import evaluate_prepared

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..store import ArtifactStore

__all__ = [
    "WORKERS_ENV_VAR",
    "execute_task",
    "resolve_workers",
    "run_task_rows",
    "run_tasks",
    "strip_timing",
]

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: Row columns measuring wall-clock time (excluded from determinism checks).
_TIMING_SUFFIXES = ("_planning_seconds", "_time_ms")


def resolve_workers(workers: int | None = None) -> int:
    """The effective worker count: explicit argument, else env var, else 1."""
    if workers is None:
        env = os.environ.get(WORKERS_ENV_VAR, "").strip()
        if not env:
            return 1
        try:
            workers = int(env)
        except ValueError:
            raise ValidationError(
                f"{WORKERS_ENV_VAR} must be an integer, got {env!r}"
            ) from None
    workers = int(workers)
    if workers < 1:
        raise ValidationError(f"workers must be >= 1, got {workers}")
    return workers


def strip_timing(rows: Iterable[dict]) -> list[dict]:
    """Copies of ``rows`` without the wall-clock timing columns.

    Planning latencies and solver timings are real time measurements and
    therefore the only row entries that may differ between two executions of
    the same task list; compare stripped rows when asserting determinism.
    """
    return [
        {
            key: value
            for key, value in row.items()
            if not any(key.endswith(suffix) for suffix in _TIMING_SUFFIXES)
        }
        for row in rows
    ]


def execute_task(
    task: EvalTask | FunctionTask,
    *,
    seed: np.random.SeedSequence | int | None = None,
    cache: WorkloadCache | None = None,
    index: int = 0,
) -> EvalResult:
    """Evaluate one task: prepare (or fetch) the workload, build, replay.

    This is the single execution path shared by the serial and process-pool
    backends; determinism across backends reduces to calling it with the
    same ``(task, seed)`` pairs.  :class:`FunctionTask` points carry their
    seeds as explicit kwargs, so the per-task seed is unused for them.
    """
    start = time.perf_counter()
    with get_recorder().span("task.execute"):
        if isinstance(task, FunctionTask):
            row = task.call()
            return EvalResult(
                index=index, row=row, wall_seconds=time.perf_counter() - start
            )
        if cache is None:
            workload, hit = task.workload.prepare(), False
        else:
            workload, hit = cache.get_or_prepare(task.workload)
        random_state = None if seed is None else np.random.default_rng(seed)
        scaler = task.scaler.build(workload, random_state=random_state)
        row = evaluate_prepared(
            workload,
            scaler,
            extra=task.row_annotations(),
            variance_window=task.variance_window,
            metrics=task.metrics,
        )
    return EvalResult(
        index=index,
        row=row,
        cache_hit=hit,
        wall_seconds=time.perf_counter() - start,
    )


# ------------------------------------------------------------------ journal


def _journal_for(store, run_id, base_seed):
    """The run journal, or ``None`` when persistence is not requested."""
    if store is None or run_id is None:
        return None
    from ..store import RunJournal

    return RunJournal(store, run_id, base_seed)


def _load_journaled(journal, tasks) -> dict[int, EvalResult]:
    """Recover completed tasks from the journal (digest-verified)."""
    recovered: dict[int, EvalResult] = {}
    for index, task in enumerate(tasks):
        payload = journal.load(index, task.digest())
        if payload is None:
            continue
        recovered[index] = EvalResult(
            index=index,
            row=payload["row"],
            cache_hit=bool(payload.get("cache_hit", False)),
            wall_seconds=float(payload.get("wall_seconds", 0.0)),
            resumed=True,
        )
    return recovered


def _journal_record(journal, task, result: EvalResult) -> None:
    journal.record(
        result.index,
        task.digest(),
        {
            "row": result.row,
            "cache_hit": result.cache_hit,
            "wall_seconds": result.wall_seconds,
        },
    )


# ----------------------------------------------------------------- backends

#: Per-worker-process workload caches, one per store location (``None`` for
#: storeless batches), populated lazily inside pool workers.
_WORKER_CACHES: dict[str | None, WorkloadCache] = {}


def _pool_execute_chunk(
    payloads: Sequence[tuple[int, EvalTask | FunctionTask, np.random.SeedSequence]],
    store: "ArtifactStore | None" = None,
    telemetry: bool = False,
    submitted_at: float | None = None,
) -> tuple[list[EvalResult], dict | None]:
    """Top-level (picklable) pool entry point using the worker-local cache.

    The cache is keyed by the store root so one worker process can serve
    batches against different stores; with a store attached, a workload
    group split across workers re-fits only when the halves race on a cold
    store — a later worker reads the earlier worker's published artifact.

    When ``telemetry`` is on, the chunk runs under a fresh worker-local
    :class:`~repro.telemetry.Recorder` and the second element of the return
    value is its plain-dict snapshot, which the parent folds into the
    run-level recorder via
    :meth:`~repro.telemetry.Recorder.merge_snapshot`.  ``submitted_at`` is
    a ``time.time()`` wall-clock stamp taken at submission, turned into the
    ``runtime.queue_wait_seconds`` histogram (cross-process, so the
    monotonic clock cannot be used).
    """
    cache_key = None if store is None else str(store.root)
    cache = _WORKER_CACHES.get(cache_key)
    if cache is None:
        cache = _WORKER_CACHES.setdefault(cache_key, WorkloadCache(store=store))
    if not telemetry:
        results = [
            execute_task(task, seed=seed, cache=cache, index=index)
            for index, task, seed in payloads
        ]
        return results, None
    recorder = Recorder()
    results = []
    with telemetry_use(recorder):
        if submitted_at is not None:
            recorder.observe(
                "runtime.queue_wait_seconds", max(0.0, time.time() - submitted_at)
            )
        for index, task, seed in payloads:
            result = execute_task(task, seed=seed, cache=cache, index=index)
            recorder.inc("runtime.tasks")
            recorder.observe("runtime.task_seconds", result.wall_seconds)
            results.append(result)
    return results, recorder.snapshot()


def _schedule_chunks(
    payloads: Sequence[tuple[int, EvalTask | FunctionTask, np.random.SeedSequence]],
    n_workers: int,
) -> list[list[tuple[int, EvalTask | FunctionTask, np.random.SeedSequence]]]:
    """Group payloads by workload key, splitting only to keep the pool busy.

    One chunk = one unit of work for a worker.  Keeping a workload's tasks
    in a single chunk means its preparation runs once; chunks are ordered
    largest-first so long groups start before the stragglers
    (longest-processing-time-first scheduling).
    """
    groups: dict[tuple, list] = {}
    for index, task, seed in payloads:
        groups.setdefault(task.group_key(), []).append((index, task, seed))
    chunks = sorted(groups.values(), key=len, reverse=True)
    # Fewer chunks than workers would leave processes idle; halve the
    # largest splittable chunk until the pool can be saturated.  Each split
    # costs at most one duplicated preparation (with a disk store, only
    # when the halves race on a cold store; otherwise the second worker
    # finds the first worker's artifact).
    while len(chunks) < n_workers:
        chunks.sort(key=len, reverse=True)
        largest = chunks[0]
        if len(largest) < 2:
            break
        half = len(largest) // 2
        chunks[0:1] = [largest[:half], largest[half:]]
    return sorted(chunks, key=len, reverse=True)


def run_tasks(
    tasks: Sequence[EvalTask | FunctionTask],
    *,
    base_seed: int = 0,
    workers: int | None = None,
    cache: WorkloadCache | None = None,
    store: "ArtifactStore | None" = None,
    run_id: str | None = None,
    on_result: Callable[[EvalResult], None] | None = None,
    recorder: Recorder | None = None,
) -> list[EvalResult]:
    """Evaluate ``tasks`` and return their results in task order.

    Parameters
    ----------
    tasks:
        The batch to evaluate.  Order is preserved in the returned list.
    base_seed:
        Root of the per-task seed derivation
        (:func:`~repro.runtime.spec.derive_task_seeds`); two runs with the
        same task list and base seed produce identical rows regardless of
        ``workers``.
    workers:
        Process count; ``None`` consults ``REPRO_WORKERS`` and defaults to
        serial execution.
    cache:
        Workload cache for the serial path (one backed by ``store`` is
        created when omitted; pass one explicitly to share preparations
        across batches or to read the hit/miss counters).  Pool workers
        always use their own process-local caches — backed by the same
        ``store`` when one is given — and per-task ``cache_hit`` flags
        report their effectiveness either way.
    store:
        Disk tier (:class:`~repro.store.ArtifactStore`): prepared workloads
        are shared across workers and CLI invocations, and ``run_id``
        journaling becomes available.
    run_id:
        Journal completions under this identifier (requires ``store``).  A
        rerun with the same task list, ``base_seed`` and ``run_id`` resumes:
        journaled tasks are recovered (marked ``resumed``) instead of
        re-executed, and the merged rows are bit-identical to an
        uninterrupted run.
    on_result:
        Callback invoked once per task as its result becomes available
        (recovered tasks first, then live completions, not necessarily in
        task order) — the incremental-progress hook.
    recorder:
        Optional :class:`~repro.telemetry.Recorder` activated for the
        duration of the batch.  The serial path records into it directly;
        pool workers each run a fresh recorder and their snapshots are
        merged back here, so the caller sees one run-level view either
        way.  Omitted → the ambient recorder (a no-op by default) applies.
    """
    tasks = list(tasks)
    if run_id is not None and store is None:
        raise ValidationError("run_id requires a store to journal into")
    seeds = derive_task_seeds(base_seed, len(tasks))
    journal = _journal_for(store, run_id, base_seed)
    results: dict[int, EvalResult] = {}
    if journal is not None:
        results = _load_journaled(journal, tasks)
        # Register the run (task total + recovered count) in the store's
        # results-namespace index so `repro store ls --runs` can group
        # journaled artifacts by run id with per-run completion counts.
        journal.publish_index(len(tasks))
        if recorder is not None and results:
            recorder.inc("runtime.resume_hits", len(results))
        if on_result is not None:
            for index in sorted(results):
                on_result(results[index])

    pending = [
        (index, task, seeds[index])
        for index, task in enumerate(tasks)
        if index not in results
    ]

    def finish(task, result: EvalResult) -> None:
        if journal is not None:
            _journal_record(journal, task, result)
        results[result.index] = result
        if on_result is not None:
            on_result(result)

    n_workers = min(resolve_workers(workers), max(len(pending), 1))
    if recorder is not None:
        recorder.inc("runtime.batches")
        recorder.set_gauge("runtime.workers", n_workers)
    if n_workers <= 1:
        cache = WorkloadCache(store=store) if cache is None else cache
        activation = telemetry_use(recorder) if recorder is not None else nullcontext()
        with activation:
            for index, task, seed in pending:
                result = execute_task(task, seed=seed, cache=cache, index=index)
                if recorder is not None:
                    recorder.inc("runtime.tasks")
                    recorder.observe("runtime.task_seconds", result.wall_seconds)
                finish(task, result)
    else:
        chunks = _schedule_chunks(pending, n_workers)
        telemetry = recorder is not None
        submitted_at = time.time() if telemetry else None
        with ProcessPoolExecutor(max_workers=min(n_workers, len(chunks))) as pool:
            futures = {
                pool.submit(_pool_execute_chunk, chunk, store, telemetry, submitted_at)
                for chunk in chunks
            }
            # Drain completions as they land so journaling and progress
            # streaming happen the moment a chunk finishes, not at the end.
            while futures:
                done, futures = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    chunk_results, snapshot = future.result()
                    if snapshot is not None and recorder is not None:
                        recorder.merge_snapshot(snapshot)
                    for result in chunk_results:
                        finish(tasks[result.index], result)
    return [results[index] for index in range(len(tasks))]


def run_task_rows(
    tasks: Sequence[EvalTask | FunctionTask],
    *,
    base_seed: int = 0,
    workers: int | None = None,
    cache: WorkloadCache | None = None,
    store: "ArtifactStore | None" = None,
    run_id: str | None = None,
    on_result: Callable[[EvalResult], None] | None = None,
    recorder: Recorder | None = None,
) -> list[dict]:
    """Like :func:`run_tasks` but return just the report rows, in task order."""
    return [
        result.row
        for result in run_tasks(
            tasks,
            base_seed=base_seed,
            workers=workers,
            cache=cache,
            store=store,
            run_id=run_id,
            on_result=on_result,
            recorder=recorder,
        )
    ]
