"""Task executors: serial and multi-process, with identical results.

:func:`run_tasks` evaluates a batch of :class:`~repro.runtime.spec.EvalTask`
either in-process (``workers=1``) or on a
:class:`concurrent.futures.ProcessPoolExecutor` (``workers=N``; when the
caller passes ``workers=None`` the ``REPRO_WORKERS`` environment variable is
consulted, defaulting to serial).  Both paths call the same
:func:`execute_task` with the same per-task seed, so the result rows are
bit-identical — only the wall-clock planning-latency columns, which measure
real time, differ between runs.  Use :func:`strip_timing` before comparing
rows.

Scheduling is workload-aware: tasks are grouped by their workload cache key
and each group is shipped to the pool as one unit (largest first), so every
worker process prepares a given workload at most once in its own
:class:`~repro.runtime.cache.WorkloadCache` and the expensive preparations
are never duplicated across sweep points.  When there are fewer groups than
workers, large groups are split so the pool stays busy — the only case
where a preparation is repeated, and only once per extra worker.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, Sequence

import numpy as np

from ..exceptions import ValidationError
from .cache import WorkloadCache
from .spec import EvalResult, EvalTask, derive_task_seeds
from .workload import evaluate_prepared

__all__ = [
    "WORKERS_ENV_VAR",
    "execute_task",
    "resolve_workers",
    "run_task_rows",
    "run_tasks",
    "strip_timing",
]

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: Row columns measuring wall-clock time (excluded from determinism checks).
_TIMING_SUFFIXES = ("_planning_seconds",)


def resolve_workers(workers: int | None = None) -> int:
    """The effective worker count: explicit argument, else env var, else 1."""
    if workers is None:
        env = os.environ.get(WORKERS_ENV_VAR, "").strip()
        if not env:
            return 1
        try:
            workers = int(env)
        except ValueError:
            raise ValidationError(
                f"{WORKERS_ENV_VAR} must be an integer, got {env!r}"
            ) from None
    workers = int(workers)
    if workers < 1:
        raise ValidationError(f"workers must be >= 1, got {workers}")
    return workers


def strip_timing(rows: Iterable[dict]) -> list[dict]:
    """Copies of ``rows`` without the wall-clock timing columns.

    Planning latencies are real time measurements and therefore the only row
    entries that may differ between two executions of the same task list;
    compare stripped rows when asserting determinism.
    """
    return [
        {
            key: value
            for key, value in row.items()
            if not any(key.endswith(suffix) for suffix in _TIMING_SUFFIXES)
        }
        for row in rows
    ]


def execute_task(
    task: EvalTask,
    *,
    seed: np.random.SeedSequence | int | None = None,
    cache: WorkloadCache | None = None,
    index: int = 0,
) -> EvalResult:
    """Evaluate one task: prepare (or fetch) the workload, build, replay.

    This is the single execution path shared by the serial and process-pool
    backends; determinism across backends reduces to calling it with the
    same ``(task, seed)`` pairs.
    """
    start = time.perf_counter()
    if cache is None:
        workload, hit = task.workload.prepare(), False
    else:
        workload, hit = cache.get_or_prepare(task.workload)
    random_state = None if seed is None else np.random.default_rng(seed)
    scaler = task.scaler.build(workload, random_state=random_state)
    row = evaluate_prepared(
        workload,
        scaler,
        extra=task.row_annotations(),
        variance_window=task.variance_window,
    )
    return EvalResult(
        index=index,
        row=row,
        cache_hit=hit,
        wall_seconds=time.perf_counter() - start,
    )


# ----------------------------------------------------------------- backends

#: Per-worker-process workload cache (populated lazily inside pool workers).
_WORKER_CACHE: WorkloadCache | None = None


def _pool_execute_chunk(
    payloads: Sequence[tuple[int, EvalTask, np.random.SeedSequence]],
) -> list[EvalResult]:
    """Top-level (picklable) pool entry point using the worker-local cache."""
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        _WORKER_CACHE = WorkloadCache()
    return [
        execute_task(task, seed=seed, cache=_WORKER_CACHE, index=index)
        for index, task, seed in payloads
    ]


def _schedule_chunks(
    tasks: Sequence[EvalTask],
    seeds: Sequence[np.random.SeedSequence],
    n_workers: int,
) -> list[list[tuple[int, EvalTask, np.random.SeedSequence]]]:
    """Group payloads by workload key, splitting only to keep the pool busy.

    One chunk = one unit of work for a worker.  Keeping a workload's tasks
    in a single chunk means its preparation runs once; chunks are ordered
    largest-first so long groups start before the stragglers
    (longest-processing-time-first scheduling).
    """
    groups: dict[tuple, list] = {}
    for index, (task, seed) in enumerate(zip(tasks, seeds)):
        groups.setdefault(task.workload.cache_key(), []).append((index, task, seed))
    chunks = sorted(groups.values(), key=len, reverse=True)
    # Fewer chunks than workers would leave processes idle; halve the
    # largest splittable chunk until the pool can be saturated.  Each split
    # costs at most one duplicated preparation.
    while len(chunks) < n_workers:
        chunks.sort(key=len, reverse=True)
        largest = chunks[0]
        if len(largest) < 2:
            break
        half = len(largest) // 2
        chunks[0:1] = [largest[:half], largest[half:]]
    return sorted(chunks, key=len, reverse=True)


def run_tasks(
    tasks: Sequence[EvalTask],
    *,
    base_seed: int = 0,
    workers: int | None = None,
    cache: WorkloadCache | None = None,
) -> list[EvalResult]:
    """Evaluate ``tasks`` and return their results in task order.

    Parameters
    ----------
    tasks:
        The batch to evaluate.  Order is preserved in the returned list.
    base_seed:
        Root of the per-task seed derivation
        (:func:`~repro.runtime.spec.derive_task_seeds`); two runs with the
        same task list and base seed produce identical rows regardless of
        ``workers``.
    workers:
        Process count; ``None`` consults ``REPRO_WORKERS`` and defaults to
        serial execution.
    cache:
        Workload cache for the serial path (a fresh one is created when
        omitted; pass one explicitly to share preparations across batches or
        to read the hit/miss counters).  Pool workers always use their own
        process-local caches; per-task ``cache_hit`` flags report their
        effectiveness either way.
    """
    tasks = list(tasks)
    seeds = derive_task_seeds(base_seed, len(tasks))
    n_workers = min(resolve_workers(workers), max(len(tasks), 1))
    if n_workers <= 1:
        cache = WorkloadCache() if cache is None else cache
        return [
            execute_task(task, seed=seed, cache=cache, index=index)
            for index, (task, seed) in enumerate(zip(tasks, seeds))
        ]
    chunks = _schedule_chunks(tasks, seeds, n_workers)
    results: list[EvalResult] = []
    with ProcessPoolExecutor(max_workers=min(n_workers, len(chunks))) as pool:
        for chunk_results in pool.map(_pool_execute_chunk, chunks):
            results.extend(chunk_results)
    results.sort(key=lambda result: result.index)
    return results


def run_task_rows(
    tasks: Sequence[EvalTask],
    *,
    base_seed: int = 0,
    workers: int | None = None,
    cache: WorkloadCache | None = None,
) -> list[dict]:
    """Like :func:`run_tasks` but return just the report rows, in task order."""
    return [
        result.row
        for result in run_tasks(tasks, base_seed=base_seed, workers=workers, cache=cache)
    ]
