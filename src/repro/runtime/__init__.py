"""Unified evaluation runtime for the experiment drivers.

Every headline artifact of the paper — Pareto frontiers, ablation tables,
perturbation grids — is a Cartesian sweep of {workload x scaler x
parameter}.  This package turns one point of such a sweep into a
declarative, picklable :class:`~repro.runtime.spec.EvalTask` and executes
batches of tasks behind a single interface:

* :func:`~repro.runtime.executor.run_tasks` — evaluate a task list either
  serially or on a :class:`concurrent.futures.ProcessPoolExecutor`
  (``workers=N``, or the ``REPRO_WORKERS`` environment override), producing
  bit-identical result rows either way;
* :class:`~repro.runtime.cache.WorkloadCache` — a workload-preparation
  cache so a trace is generated and its NHPP model fitted once per
  (scenario, scale, seed, prep-config) key and shared across all sweep
  points;
* deterministic per-task seeding via ``numpy.random.SeedSequence.spawn``,
  so results depend only on the task list and the base seed, never on
  execution order or worker count.

The experiment drivers in :mod:`repro.experiments`, the CLI and the
benchmarks all route through this layer.
"""

from .cache import CacheStats, WorkloadCache
from .executor import (
    execute_task,
    resolve_workers,
    run_task_rows,
    run_tasks,
    strip_timing,
)
from .spec import (
    EvalResult,
    EvalTask,
    FunctionTask,
    PrepSpec,
    ScalerSpec,
    WorkloadSpec,
    derive_task_seeds,
)
from .workload import PreparedWorkload, evaluate_prepared, prepare_workload

__all__ = [
    "CacheStats",
    "EvalResult",
    "EvalTask",
    "FunctionTask",
    "PrepSpec",
    "PreparedWorkload",
    "ScalerSpec",
    "WorkloadCache",
    "WorkloadSpec",
    "derive_task_seeds",
    "evaluate_prepared",
    "execute_task",
    "prepare_workload",
    "resolve_workers",
    "run_task_rows",
    "run_tasks",
    "strip_timing",
]
