"""Stochastically constrained scaling optimization (module 4, Section VI).

The subpackage provides:

* Monte Carlo sampling of the upcoming arrival times and pending times
  (:mod:`repro.optimization.montecarlo`);
* the three per-query decision rules of the paper — HP-constrained (eq. 3),
  RT-constrained (eq. 5 via the sort-and-search Algorithm 3) and
  cost-constrained (eq. 7) — in :mod:`repro.optimization.formulations`;
* the look-ahead threshold ``kappa`` of eq. (8) in
  :mod:`repro.optimization.threshold`.
"""

from .montecarlo import ArrivalScenarios, generate_scenarios
from .formulations import (
    DecisionObjective,
    solve_cost_constrained,
    solve_hp_constrained,
    solve_rt_constrained,
)
from .sort_and_search import (
    expected_idle_time,
    expected_waiting_time,
    solve_idle_time_budget,
    solve_waiting_time_budget,
)
from .threshold import compute_kappa

__all__ = [
    "ArrivalScenarios",
    "generate_scenarios",
    "DecisionObjective",
    "solve_hp_constrained",
    "solve_rt_constrained",
    "solve_cost_constrained",
    "expected_idle_time",
    "expected_waiting_time",
    "solve_idle_time_budget",
    "solve_waiting_time_budget",
    "compute_kappa",
]
