"""Per-query scaling decision rules (Section VI-B of the paper).

Each formulation decomposes into independent single-variable problems, one
per upcoming query, so the solvers below take the Monte Carlo samples for one
query and return one creation time:

* :func:`solve_hp_constrained` — eq. (3): the creation time is the
  ``alpha``-quantile of the slack ``xi - tau``;
* :func:`solve_rt_constrained` — eq. (5): the largest creation time whose
  expected waiting time stays within the budget ``d - mu_s``, solved with the
  sort-and-search Algorithm 3;
* :func:`solve_cost_constrained` — eq. (7): the smallest creation time whose
  expected idle cost stays within the budget ``B - mu_tau - mu_s``.

Every solver returns a :class:`ScalingDecision` carrying the raw (possibly
negative) optimum, the clamped creation time actually used, and feasibility
information.  Negative optima mean the instance "should" already exist — the
sequential scheme avoids this by planning ``kappa`` queries ahead.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from .._validation import (
    as_1d_float_array,
    check_non_negative,
    check_probability,
    check_same_length,
)
from ..exceptions import ValidationError
from .montecarlo import ArrivalScenarios
from .sort_and_search import (
    expected_idle_time,
    expected_waiting_time,
    solve_idle_time_budget,
    solve_waiting_time_budget,
)

__all__ = [
    "DecisionObjective",
    "ScalingDecision",
    "solve_hp_constrained",
    "solve_rt_constrained",
    "solve_cost_constrained",
    "solve_batch",
]


class DecisionObjective(enum.Enum):
    """Which QoS/cost trade-off formulation drives the decisions."""

    HIT_PROBABILITY = "hp"
    RESPONSE_TIME = "rt"
    COST = "cost"


@dataclass(frozen=True)
class ScalingDecision:
    """The outcome of one per-query decision problem.

    Attributes
    ----------
    raw_creation_time:
        The unclamped optimum ``x_i^*`` (seconds from "now", may be negative).
    creation_time:
        ``max(raw_creation_time, 0)`` — the time actually used.
    feasible:
        ``False`` when the constraint could only be met by creating the
        instance in the past (``raw_creation_time < 0``).
    expected_waiting_time:
        Monte Carlo estimate of the waiting time at ``creation_time``.
    expected_idle_time:
        Monte Carlo estimate of the idle cost at ``creation_time``.
    objective:
        The formulation that produced this decision.
    """

    raw_creation_time: float
    creation_time: float
    feasible: bool
    expected_waiting_time: float
    expected_idle_time: float
    objective: DecisionObjective


def _finalize(
    raw_x: float,
    xi: np.ndarray,
    tau: np.ndarray,
    objective: DecisionObjective,
) -> ScalingDecision:
    creation_time = max(float(raw_x), 0.0)
    return ScalingDecision(
        raw_creation_time=float(raw_x),
        creation_time=creation_time,
        feasible=raw_x >= 0.0,
        expected_waiting_time=expected_waiting_time(creation_time, xi, tau),
        expected_idle_time=expected_idle_time(creation_time, xi, tau),
        objective=objective,
    )


def solve_hp_constrained(
    arrival_samples: np.ndarray,
    pending_samples: np.ndarray,
    target_hit_probability: float,
) -> ScalingDecision:
    """Eq. (3): latest creation time achieving the target hitting probability.

    The hitting probability of a query is ``P(xi > x + tau)``; requiring it to
    be at least ``1 - alpha`` and maximizing ``x`` (to minimize idle cost)
    gives ``x* = alpha-quantile of (xi - tau)``.

    Parameters
    ----------
    arrival_samples, pending_samples:
        Monte Carlo samples of ``xi_i`` and ``tau_i``.
    target_hit_probability:
        The desired ``1 - alpha`` in [0, 1].
    """
    xi = as_1d_float_array(arrival_samples, "arrival_samples")
    tau = as_1d_float_array(pending_samples, "pending_samples")
    check_same_length("arrival_samples", xi, "pending_samples", tau)
    if xi.size == 0:
        raise ValidationError("at least one Monte Carlo sample is required")
    target = check_probability(target_hit_probability, "target_hit_probability")
    alpha = 1.0 - target
    slack = xi - tau
    # "lower" interpolation keeps P(slack <= x*) <= alpha with empirical samples.
    raw_x = float(np.quantile(slack, alpha, method="lower")) if xi.size > 1 else float(slack[0])
    return _finalize(raw_x, xi, tau, DecisionObjective.HIT_PROBABILITY)


def solve_rt_constrained(
    arrival_samples: np.ndarray,
    pending_samples: np.ndarray,
    waiting_budget: float,
) -> ScalingDecision:
    """Eq. (5): latest creation time whose expected waiting time meets the budget.

    Parameters
    ----------
    waiting_budget:
        The response-time budget net of processing time, ``d - mu_s``
        (seconds).
    """
    xi = as_1d_float_array(arrival_samples, "arrival_samples")
    tau = as_1d_float_array(pending_samples, "pending_samples")
    check_same_length("arrival_samples", xi, "pending_samples", tau)
    check_non_negative(waiting_budget, "waiting_budget")
    raw_x = solve_waiting_time_budget(xi, tau, waiting_budget)
    return _finalize(raw_x, xi, tau, DecisionObjective.RESPONSE_TIME)


def solve_cost_constrained(
    arrival_samples: np.ndarray,
    pending_samples: np.ndarray,
    idle_budget: float,
) -> ScalingDecision:
    """Eq. (7): earliest creation time whose expected idle cost meets the budget.

    Parameters
    ----------
    idle_budget:
        The per-instance cost budget net of the irreducible pending and
        processing times, ``B - mu_tau - mu_s`` (seconds).
    """
    xi = as_1d_float_array(arrival_samples, "arrival_samples")
    tau = as_1d_float_array(pending_samples, "pending_samples")
    check_same_length("arrival_samples", xi, "pending_samples", tau)
    check_non_negative(idle_budget, "idle_budget")
    raw_x = solve_idle_time_budget(xi, tau, idle_budget)
    return _finalize(raw_x, xi, tau, DecisionObjective.COST)


def solve_batch(
    scenarios: ArrivalScenarios,
    objective: DecisionObjective,
    target: float,
) -> list[ScalingDecision]:
    """Solve the per-query problem for every upcoming query in ``scenarios``.

    Parameters
    ----------
    scenarios:
        Joint Monte Carlo samples for the next ``K`` queries.
    objective:
        Which formulation to apply.
    target:
        The formulation's constraint level: the target hitting probability,
        the waiting-time budget, or the idle-cost budget respectively.
    """
    decisions: list[ScalingDecision] = []
    for i in range(scenarios.n_queries):
        xi, tau = scenarios.for_query(i)
        if objective is DecisionObjective.HIT_PROBABILITY:
            decisions.append(solve_hp_constrained(xi, tau, target))
        elif objective is DecisionObjective.RESPONSE_TIME:
            decisions.append(solve_rt_constrained(xi, tau, target))
        elif objective is DecisionObjective.COST:
            decisions.append(solve_cost_constrained(xi, tau, target))
        else:  # pragma: no cover - exhaustive enum
            raise ValidationError(f"unknown objective {objective!r}")
    return decisions
