"""Monte Carlo scenarios of upcoming arrivals and pending times.

The stochastically constrained formulations of Section VI are solved per
upcoming query from ``R`` joint samples of the arrival time ``xi_i`` (drawn
from the forecast NHPP via time rescaling) and the pending time ``tau_i``
(drawn from the pending-time model).  :class:`ArrivalScenarios` bundles these
samples together with convenience accessors used by the solvers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_integer
from ..exceptions import ValidationError
from ..nhpp.intensity import PiecewiseConstantIntensity
from ..nhpp.sampling import sample_next_arrivals
from ..pending import PendingTimeModel
from ..rng import RandomState, ensure_rng

__all__ = ["ArrivalScenarios", "generate_scenarios"]


@dataclass(frozen=True)
class ArrivalScenarios:
    """Joint Monte Carlo samples of upcoming arrivals and pending times.

    Attributes
    ----------
    arrival_times:
        Array of shape ``(R, K)`` — sample ``r`` of the arrival time of the
        ``(i+1)``-th upcoming query is ``arrival_times[r, i]`` (seconds from
        "now").
    pending_times:
        Array of shape ``(R, K)`` with the matching pending-time samples.
    """

    arrival_times: np.ndarray
    pending_times: np.ndarray

    def __post_init__(self) -> None:
        arrivals = np.asarray(self.arrival_times, dtype=float)
        pending = np.asarray(self.pending_times, dtype=float)
        if arrivals.ndim != 2 or pending.ndim != 2:
            raise ValidationError("arrival_times and pending_times must be 2-D arrays")
        if arrivals.shape != pending.shape:
            raise ValidationError(
                "arrival_times and pending_times must have the same shape, got "
                f"{arrivals.shape} and {pending.shape}"
            )
        if arrivals.size == 0:
            raise ValidationError("scenarios must contain at least one sample")
        object.__setattr__(self, "arrival_times", arrivals)
        object.__setattr__(self, "pending_times", pending)

    @property
    def n_samples(self) -> int:
        """Number of Monte Carlo replications R."""
        return int(self.arrival_times.shape[0])

    @property
    def n_queries(self) -> int:
        """Number of upcoming queries K covered by the scenarios."""
        return int(self.arrival_times.shape[1])

    def for_query(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(xi_samples, tau_samples)`` for the ``index``-th upcoming query."""
        if not 0 <= index < self.n_queries:
            raise ValidationError(
                f"query index {index} out of range for {self.n_queries} planned queries"
            )
        return self.arrival_times[:, index], self.pending_times[:, index]

    def slack(self, index: int) -> np.ndarray:
        """Samples of ``xi_i - tau_i`` — the latest creation time that still hits."""
        xi, tau = self.for_query(index)
        return xi - tau


def generate_scenarios(
    intensity: PiecewiseConstantIntensity,
    pending_model: PendingTimeModel,
    n_queries: int,
    n_samples: int,
    random_state: RandomState = None,
) -> ArrivalScenarios:
    """Draw joint scenarios for the next ``n_queries`` arrivals.

    Parameters
    ----------
    intensity:
        Forecast intensity whose time origin is "now".
    pending_model:
        Distribution of the instance startup time.
    n_queries:
        Number of upcoming queries ``K`` to plan for.
    n_samples:
        Number of Monte Carlo replications ``R``.
    random_state:
        Seed or generator; arrival and pending samples are drawn from the
        same stream so a single seed reproduces the full scenario set.
    """
    check_integer(n_queries, "n_queries", minimum=1)
    check_integer(n_samples, "n_samples", minimum=1)
    rng = ensure_rng(random_state)
    arrivals = sample_next_arrivals(intensity, n_queries, n_samples, rng)
    pending = pending_model.sample(n_samples * n_queries, rng).reshape(n_samples, n_queries)
    return ArrivalScenarios(arrival_times=arrivals, pending_times=pending)
