"""The look-ahead threshold ``kappa`` of the sequential scaling scheme (eq. 8).

Algorithm 4 re-plans once the number of already-scheduled instances drops to
``kappa``, chosen so that for every query planned *beyond* the threshold the
HP constraint is achievable (the optimal creation time is non-negative).
Equation (8) defines

    kappa = max{ i >= 1 : alpha-quantile of (gamma_i / lambda_bar - tau_i) < 0 }

where ``gamma_i ~ Gamma(i, 1)`` is the rescaled arrival time of the ``i``-th
query under a constant upper-bound intensity ``lambda_bar`` and ``tau_i`` is
the pending time.  With a deterministic pending time the condition reduces to
``F_i^{-1}(alpha) < lambda_bar * mu_tau`` with ``F_i`` the Gamma(i, 1) cdf,
which we evaluate exactly; with a stochastic pending time we fall back to
Monte Carlo.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from .._validation import check_integer, check_non_negative, check_probability
from ..pending import DeterministicPendingTime, PendingTimeModel
from ..rng import RandomState, ensure_rng

__all__ = ["compute_kappa"]


def compute_kappa(
    intensity_upper_bound: float,
    pending_model: PendingTimeModel,
    target_hit_probability: float,
    *,
    max_kappa: int = 10_000,
    n_samples: int = 2000,
    random_state: RandomState = None,
) -> int:
    """Compute the look-ahead threshold ``kappa`` of eq. (8).

    Parameters
    ----------
    intensity_upper_bound:
        ``lambda_bar`` — an upper bound (queries per second) on the intensity
        over the planning window.  The paper recommends a *local* bound to
        keep ``kappa`` small (Section VI-C practical guidelines).
    pending_model:
        Distribution of the pending time ``tau``.
    target_hit_probability:
        The desired ``1 - alpha``.
    max_kappa:
        Safety cap on the returned value.
    n_samples:
        Monte Carlo sample size used when the pending time is stochastic.
    random_state:
        Seed or generator for the Monte Carlo fallback.

    Returns
    -------
    int
        The threshold ``kappa >= 0``; 0 means even the very next query can be
        served at the target QoS without look-ahead (e.g. zero pending time
        or negligible traffic).
    """
    lam = check_non_negative(intensity_upper_bound, "intensity_upper_bound")
    target = check_probability(target_hit_probability, "target_hit_probability")
    check_integer(max_kappa, "max_kappa", minimum=1)
    alpha = 1.0 - target

    if lam <= 0:
        # No traffic expected: the first query is arbitrarily far away, so no
        # look-ahead is ever needed.
        return 0

    if isinstance(pending_model, DeterministicPendingTime):
        return _kappa_deterministic(lam, pending_model.value, alpha, max_kappa)
    return _kappa_monte_carlo(lam, pending_model, alpha, max_kappa, n_samples, random_state)


def _kappa_deterministic(lam: float, tau: float, alpha: float, max_kappa: int) -> int:
    """Exact kappa for a constant pending time.

    Condition (8) holds for index ``i`` iff the alpha-quantile of
    ``Gamma(i, 1) / lam`` is below ``tau``, i.e. ``F_i^{-1}(alpha) < lam * tau``.
    The Gamma quantile is increasing in ``i``, so we can stop at the first
    failure.
    """
    if tau <= 0:
        return 0
    threshold = lam * tau
    kappa = 0
    for i in range(1, max_kappa + 1):
        quantile = stats.gamma.ppf(alpha, a=i)
        if quantile < threshold:
            kappa = i
        else:
            break
    return kappa


def _kappa_monte_carlo(
    lam: float,
    pending_model: PendingTimeModel,
    alpha: float,
    max_kappa: int,
    n_samples: int,
    random_state: RandomState,
) -> int:
    """Monte Carlo kappa for stochastic pending times."""
    rng = ensure_rng(random_state)
    kappa = 0
    # Reuse one set of exponential increments so gamma_i are coupled across i,
    # which makes the scan monotone in practice and cheap to evaluate.
    exponentials = rng.exponential(1.0, size=(n_samples, max_kappa))
    gammas = np.cumsum(exponentials, axis=1)
    pending = pending_model.sample(n_samples, rng)
    for i in range(1, max_kappa + 1):
        slack = gammas[:, i - 1] / lam - pending
        quantile = float(np.quantile(slack, alpha))
        if quantile < 0:
            kappa = i
        else:
            break
    return kappa
