"""Sort-and-search solvers for the stochastic root-finding problems (Alg. 3).

Two empirical expectations appear in the decision formulations:

* the **expected waiting time** ``E_hat(x) = mean((tau_r - (xi_r - x)+)+)``,
  a non-decreasing piecewise-linear function of the creation time ``x`` whose
  slope changes only at the sample points ``xi_r - tau_r`` (slope +1/R) and
  ``xi_r`` (slope -1/R); Algorithm 3 walks these breakpoints in order and
  stops inside the segment containing the target value — ``O(R log R)``
  overall;
* the **expected idle cost** ``C_hat(x) = mean((xi_r - tau_r - x)+)``, a
  non-increasing piecewise-linear function with breakpoints at
  ``xi_r - tau_r``, solved by the same technique.

Both solvers return the *smallest* ``x >= 0`` meeting the target, matching
the optimization direction of formulations (4) and (6).
"""

from __future__ import annotations

import numpy as np

from .._validation import as_1d_float_array, check_non_negative, check_same_length
from ..exceptions import InfeasibleConstraintError, ValidationError

__all__ = [
    "expected_waiting_time",
    "expected_idle_time",
    "solve_waiting_time_budget",
    "solve_idle_time_budget",
]


def expected_waiting_time(
    x: float,
    arrival_samples: np.ndarray,
    pending_samples: np.ndarray,
) -> float:
    """Empirical expected waiting time ``mean((tau - (xi - x)+)+)`` at creation time ``x``.

    This is the Monte Carlo estimate of the controllable part of the response
    time (eq. in Section VI-A); the full expected RT adds the mean processing
    time ``mu_s``.
    """
    xi = as_1d_float_array(arrival_samples, "arrival_samples")
    tau = as_1d_float_array(pending_samples, "pending_samples")
    check_same_length("arrival_samples", xi, "pending_samples", tau)
    waiting = np.maximum(tau - np.maximum(xi - x, 0.0), 0.0)
    return float(waiting.mean())


def expected_idle_time(
    x: float,
    arrival_samples: np.ndarray,
    pending_samples: np.ndarray,
) -> float:
    """Empirical expected idle time ``mean((xi - tau - x)+)`` at creation time ``x``.

    This is the controllable part of the instance cost; the full cost adds
    the irreducible ``tau + s``.
    """
    xi = as_1d_float_array(arrival_samples, "arrival_samples")
    tau = as_1d_float_array(pending_samples, "pending_samples")
    check_same_length("arrival_samples", xi, "pending_samples", tau)
    idle = np.maximum(xi - tau - x, 0.0)
    return float(idle.mean())


def solve_waiting_time_budget(
    arrival_samples: np.ndarray,
    pending_samples: np.ndarray,
    waiting_budget: float,
) -> float:
    """Algorithm 3: find the latest creation time meeting a waiting-time budget.

    Finds the largest ``x`` with ``E_hat(x) <= waiting_budget`` where
    ``E_hat`` is :func:`expected_waiting_time` — equivalently the solution of
    ``E_hat(x) = waiting_budget`` because ``E_hat`` is non-decreasing.  The
    returned value may be negative, meaning the instance would have needed to
    be created in the past; callers clamp to 0 (create immediately) exactly
    as the sequential scaling scheme does.

    Parameters
    ----------
    arrival_samples, pending_samples:
        Monte Carlo samples of ``xi_i`` and ``tau_i`` for this query.
    waiting_budget:
        The target ``d - mu_s`` of formulation (4), in seconds.

    Returns
    -------
    float
        The optimal creation time ``x_i^*`` (possibly negative).
    """
    xi = as_1d_float_array(arrival_samples, "arrival_samples")
    tau = as_1d_float_array(pending_samples, "pending_samples")
    check_same_length("arrival_samples", xi, "pending_samples", tau)
    if xi.size == 0:
        raise ValidationError("at least one Monte Carlo sample is required")
    waiting_budget = check_non_negative(waiting_budget, "waiting_budget")
    n = xi.size

    max_waiting = float(tau.mean())
    if waiting_budget >= max_waiting:
        # Even creating the instance upon arrival (x -> +inf) meets the
        # budget; the latest sensible creation time is the largest arrival.
        return float(xi.max())

    # Breakpoints: slope increases by 1/R at xi - tau, decreases by 1/R at xi.
    slack_sorted = np.sort(xi - tau)
    arrival_sorted = np.sort(xi)

    r1 = 0  # pointer into arrival_sorted (slope -1/R events)
    r2 = 0  # pointer into slack_sorted (slope +1/R events)
    slope = 0.0
    x_left = float(slack_sorted[0])
    e_left = 0.0  # E_hat at x_left; zero because E_hat(x) = 0 for x <= min(xi - tau)

    # Walk the breakpoints left to right, tracking E_hat on each linear piece.
    while r1 < n or r2 < n:
        take_arrival = r2 >= n or (r1 < n and arrival_sorted[r1] <= slack_sorted[r2])
        x_right = float(arrival_sorted[r1]) if take_arrival else float(slack_sorted[r2])
        e_right = e_left + slope * (x_right - x_left)
        if e_left <= waiting_budget <= e_right and slope > 0:
            return x_left + (waiting_budget - e_left) / slope
        if take_arrival:
            slope -= 1.0 / n
            r1 += 1
        else:
            slope += 1.0 / n
            r2 += 1
        x_left, e_left = x_right, e_right

    # The budget was not bracketed (can happen only through floating error
    # because waiting_budget < mean(tau) = E_hat(max xi)); fall back to the
    # latest arrival sample.
    return float(arrival_sorted[-1])


def solve_idle_time_budget(
    arrival_samples: np.ndarray,
    pending_samples: np.ndarray,
    idle_budget: float,
) -> float:
    """Find the earliest creation time whose expected idle time is within budget.

    Implements the root-finding step of the cost-constrained solution (7):
    the expected idle time ``C_hat(x) = mean((xi - tau - x)+)`` is
    non-increasing in ``x``; we return

    * ``0`` when ``C_hat(0) <= idle_budget`` (creating immediately is already
      affordable, which gives the best possible QoS), and
    * the smallest ``x`` with ``C_hat(x) <= idle_budget`` otherwise.

    Raises
    ------
    InfeasibleConstraintError
        If ``idle_budget`` is negative (no creation time can achieve a
        negative expected idle time).
    """
    xi = as_1d_float_array(arrival_samples, "arrival_samples")
    tau = as_1d_float_array(pending_samples, "pending_samples")
    check_same_length("arrival_samples", xi, "pending_samples", tau)
    if xi.size == 0:
        raise ValidationError("at least one Monte Carlo sample is required")
    if idle_budget < 0:
        raise InfeasibleConstraintError(
            f"idle budget must be non-negative, got {idle_budget}"
        )
    n = xi.size

    if expected_idle_time(0.0, xi, tau) <= idle_budget:
        return 0.0

    # C_hat is piecewise linear, non-increasing, with breakpoints at xi - tau.
    slack_sorted = np.sort(xi - tau)
    # Evaluate C_hat at every breakpoint via suffix sums:
    # C_hat(v_k) = sum_{j > k} (v_j - v_k) / n
    suffix_sums = np.concatenate([np.cumsum(slack_sorted[::-1])[::-1][1:], [0.0]])
    counts_after = np.arange(n - 1, -1, -1, dtype=float)
    c_at_breaks = (suffix_sums - counts_after * slack_sorted) / n

    # Find the first breakpoint where C_hat drops to or below the budget.
    idx = int(np.searchsorted(-c_at_breaks, -idle_budget, side="left"))
    if idx >= n:
        # Budget below zero is impossible here; C_hat reaches 0 at the last
        # breakpoint, so the budget is met exactly there.
        return float(max(slack_sorted[-1], 0.0))
    if idx == 0:
        # Slope before the first breakpoint is -1 (all samples active), so
        # extrapolate left from (slack_sorted[0], c_at_breaks[0]).
        x_star = slack_sorted[0] + (idle_budget - c_at_breaks[0]) / (-1.0)
        return float(max(x_star, 0.0))
    # Interpolate inside the segment [slack_sorted[idx-1], slack_sorted[idx]].
    slope = -counts_after[idx - 1] / n  # number of samples still active on this piece
    x_left = slack_sorted[idx - 1]
    c_left = c_at_breaks[idx - 1]
    if slope == 0:
        return float(max(x_left, 0.0))
    x_star = x_left + (idle_budget - c_left) / slope
    return float(max(x_star, 0.0))
