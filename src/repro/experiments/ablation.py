"""Ablation studies on the design choices called out in DESIGN.md.

Three ablations complement the paper's own experiments:

* **kappa look-ahead** — Algorithm 4 with the computed threshold ``kappa``
  versus a naive variant with no look-ahead (``kappa = 0``); the look-ahead is
  what guarantees the target hitting probability for the first queries of
  each planning block.
* **Monte Carlo sample size** — decision accuracy (against the analytic
  optimum available for exponential interarrivals) and solve time as the
  sample count ``R`` grows.
* **regularization sensitivity** — intensity-estimation error over a grid of
  the smoothness and periodicity weights ``beta_1`` and ``beta_2``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..config import ADMMConfig, PlannerConfig, SimulationConfig
from ..metrics.errors import mean_absolute_error, mean_squared_error
from ..nhpp.admm import fit_log_intensity
from ..nhpp.intensity import PiecewiseConstantIntensity
from ..nhpp.objective import RegularizedNHPPObjective
from ..nhpp.sampling import sample_counts, sample_homogeneous_arrivals
from ..optimization.formulations import solve_hp_constrained
from ..optimization.montecarlo import generate_scenarios
from ..pending import DeterministicPendingTime
from ..scaling.sequential import SequentialHPScaler
from ..simulation.runner import create_simulator
from ..traces.synthetic import beta_bump_intensity
from ..types import ArrivalTrace

__all__ = [
    "run_kappa_ablation",
    "run_mc_sample_ablation",
    "run_regularization_sensitivity",
]


@dataclass
class KappaAblationConfig:
    """Parameters of the kappa look-ahead ablation."""

    arrival_rate: float = 0.2
    horizon_seconds: float = 2 * 3600.0
    pending_time: float = 13.0
    target_hp: float = 0.9
    planning_every: int = 1
    monte_carlo_samples: int = 1000
    seed: int = 3


def run_kappa_ablation(config: KappaAblationConfig | None = None) -> list[dict]:
    """Algorithm 4 with and without the kappa look-ahead on a known-rate workload."""
    config = config or KappaAblationConfig()
    arrivals = sample_homogeneous_arrivals(
        config.arrival_rate, config.horizon_seconds, config.seed
    )
    trace = ArrivalTrace(arrivals, 20.0, name="kappa-ablation", horizon=config.horizon_seconds)
    forecast = PiecewiseConstantIntensity(
        np.array([config.arrival_rate]), 60.0, extrapolation="hold"
    )
    pending = DeterministicPendingTime(config.pending_time)
    simulator = create_simulator(SimulationConfig(pending_time=config.pending_time))
    planner = PlannerConfig(monte_carlo_samples=config.monte_carlo_samples)

    rows: list[dict] = []
    for label, upper_bound in (
        ("with kappa (eq. 8)", None),
        ("no look-ahead (kappa = 0)", 0.0),
    ):
        scaler = SequentialHPScaler(
            forecast,
            pending,
            target_hit_probability=config.target_hp,
            planning_every=config.planning_every,
            intensity_upper_bound=upper_bound,
            planner=planner,
            random_state=config.seed,
        )
        result = simulator.replay(trace, scaler)
        rows.append(
            {
                "variant": label,
                "kappa": scaler.kappa,
                "target_hp": float(config.target_hp),
                "hit_rate": result.hit_rate,
                "rt_avg": result.mean_response_time,
                "total_cost": result.total_cost,
            }
        )
    return rows


@dataclass
class MCSampleAblationConfig:
    """Parameters of the Monte Carlo sample-size ablation."""

    arrival_rate: float = 1.0
    pending_time: float = 5.0
    target_hp: float = 0.9
    sample_sizes: Sequence[int] = (50, 200, 1000, 5000)
    n_trials: int = 20
    seed: int = 0


def run_mc_sample_ablation(config: MCSampleAblationConfig | None = None) -> list[dict]:
    """Decision error and solve time versus the Monte Carlo sample size R.

    With a constant intensity the HP-constrained optimum has the closed form
    ``x* = quantile_alpha(Exp(rate)) - tau``, so the Monte Carlo decision can
    be compared against an exact reference.
    """
    config = config or MCSampleAblationConfig()
    rate = config.arrival_rate
    alpha = 1.0 - config.target_hp
    exact = -np.log(1.0 - alpha) / rate - config.pending_time
    intensity = PiecewiseConstantIntensity(np.array([rate]), 60.0, extrapolation="hold")
    pending = DeterministicPendingTime(config.pending_time)

    rows: list[dict] = []
    for n_samples in config.sample_sizes:
        errors = []
        timings = []
        for trial in range(config.n_trials):
            scenarios = generate_scenarios(
                intensity,
                pending,
                n_queries=1,
                n_samples=int(n_samples),
                random_state=config.seed + trial,
            )
            xi, tau = scenarios.for_query(0)
            started = time.perf_counter()
            decision = solve_hp_constrained(xi, tau, config.target_hp)
            timings.append(time.perf_counter() - started)
            errors.append(abs(decision.raw_creation_time - exact))
        rows.append(
            {
                "n_samples": int(n_samples),
                "exact_decision": float(exact),
                "mean_abs_error": float(np.mean(errors)),
                "solve_time_ms": 1000.0 * float(np.median(timings)),
            }
        )
    return rows


@dataclass
class RegularizationSensitivityConfig:
    """Parameters of the beta_1 / beta_2 sensitivity sweep."""

    period_seconds: float = 7200.0
    n_periods: int = 6
    bin_seconds: float = 60.0
    peak_qps: float = 1.0
    base_qps: float = 0.1
    beta_smooth_values: Sequence[float] = (0.0, 10.0, 50.0, 200.0)
    beta_period_values: Sequence[float] = (0.0, 10.0, 100.0)
    seed: int = 0
    max_iterations: int = 200


def run_regularization_sensitivity(
    config: RegularizationSensitivityConfig | None = None,
) -> list[dict]:
    """Intensity error over a grid of smoothness / periodicity weights."""
    config = config or RegularizationSensitivityConfig()
    horizon = config.period_seconds * config.n_periods
    n_bins = int(horizon / config.bin_seconds)
    times = (np.arange(n_bins) + 0.5) * config.bin_seconds
    truth = beta_bump_intensity(
        times,
        peak=config.peak_qps,
        period_seconds=config.period_seconds,
        exponent=10.0,
        base=config.base_qps,
    )
    counts = sample_counts(
        PiecewiseConstantIntensity(truth, config.bin_seconds, extrapolation="periodic"),
        horizon,
        config.seed,
    )
    period_bins = int(round(config.period_seconds / config.bin_seconds))
    admm = ADMMConfig(max_iterations=config.max_iterations)

    rows: list[dict] = []
    for beta_smooth in config.beta_smooth_values:
        for beta_period in config.beta_period_values:
            objective = RegularizedNHPPObjective(
                counts=counts,
                bin_seconds=config.bin_seconds,
                beta_smooth=float(beta_smooth),
                beta_period=float(beta_period),
                period_bins=period_bins if beta_period > 0 else None,
            )
            result = fit_log_intensity(objective, admm)
            estimate = np.exp(result.log_intensity)
            rows.append(
                {
                    "beta_smooth": float(beta_smooth),
                    "beta_period": float(beta_period),
                    "mse": mean_squared_error(estimate, truth),
                    "mae": mean_absolute_error(estimate, truth),
                }
            )
    return rows
