"""Ablation studies on the design choices called out in DESIGN.md.

Three ablations complement the paper's own experiments:

* **kappa look-ahead** — Algorithm 4 with the computed threshold ``kappa``
  versus a naive variant with no look-ahead (``kappa = 0``); the look-ahead is
  what guarantees the target hitting probability for the first queries of
  each planning block.
* **Monte Carlo sample size** — decision accuracy (against the analytic
  optimum available for exponential interarrivals) and solve time as the
  sample count ``R`` grows.
* **regularization sensitivity** — intensity-estimation error over a grid of
  the smoothness and periodicity weights ``beta_1`` and ``beta_2``.

All three are registered in :mod:`repro.api` (``kappa-ablation`` /
``mc-sample-ablation`` / ``regularization-sensitivity``), which also gives
them generated CLI subcommands for the first time.  None of these grids is
a (workload, scaler) replay, so each grid point runs as a
:class:`~repro.runtime.FunctionTask` naming one of the module-level
``*_point`` functions below: the drivers gain ``workers`` parallelism and
``run_id`` resumability from :func:`repro.runtime.run_tasks` while the
point functions stay plain, deterministic-in-their-arguments Python.
"""

from __future__ import annotations

import time

import numpy as np

from ..api import (
    ExperimentSpec,
    ParamSpec,
    register_experiment,
)
from ..api.session import RunContext
from ..config import ADMMConfig, PlannerConfig, SimulationConfig
from ..metrics.errors import mean_absolute_error, mean_squared_error
from ..nhpp.admm import fit_log_intensity
from ..nhpp.intensity import PiecewiseConstantIntensity
from ..nhpp.objective import RegularizedNHPPObjective
from ..nhpp.sampling import sample_counts, sample_homogeneous_arrivals
from ..optimization.formulations import solve_hp_constrained
from ..optimization.montecarlo import generate_scenarios
from ..pending import DeterministicPendingTime
from ..runtime import FunctionTask
from ..scaling.sequential import SequentialHPScaler
from ..simulation.runner import create_simulator
from ..traces.synthetic import beta_bump_intensity
from ..types import ArrivalTrace

__all__ = [
    "kappa_ablation_point",
    "mc_sample_point",
    "regularization_point",
]


# ------------------------------------------------------------ kappa ablation


def kappa_ablation_point(
    *,
    variant: str,
    intensity_upper_bound: float | None,
    arrival_rate: float,
    horizon_seconds: float,
    pending_time: float,
    target_hp: float,
    planning_every: int,
    monte_carlo_samples: int,
    seed: int,
    engine: str = "reference",
) -> dict:
    """One kappa-ablation variant on a known-rate homogeneous workload."""
    arrivals = sample_homogeneous_arrivals(arrival_rate, horizon_seconds, seed)
    trace = ArrivalTrace(arrivals, 20.0, name="kappa-ablation", horizon=horizon_seconds)
    forecast = PiecewiseConstantIntensity(
        np.array([arrival_rate]), 60.0, extrapolation="hold"
    )
    scaler = SequentialHPScaler(
        forecast,
        DeterministicPendingTime(pending_time),
        target_hit_probability=target_hp,
        planning_every=planning_every,
        intensity_upper_bound=intensity_upper_bound,
        planner=PlannerConfig(monte_carlo_samples=monte_carlo_samples),
        random_state=seed,
    )
    simulator = create_simulator(
        SimulationConfig(pending_time=pending_time, engine=engine)
    )
    result = simulator.replay(trace, scaler)
    return {
        "variant": variant,
        "kappa": scaler.kappa,
        "target_hp": float(target_hp),
        "hit_rate": result.hit_rate,
        "rt_avg": result.mean_response_time,
        "total_cost": result.total_cost,
    }


def _run_kappa_ablation(params: dict, ctx: RunContext) -> list[dict]:
    """Algorithm 4 with and without the kappa look-ahead on a known-rate workload."""
    tasks = [
        FunctionTask(
            fn=f"{__name__}.kappa_ablation_point",
            kwargs=(
                ("variant", variant),
                ("intensity_upper_bound", upper_bound),
                ("arrival_rate", float(params["arrival_rate"])),
                ("horizon_seconds", float(params["horizon_seconds"])),
                ("pending_time", float(params["pending_time"])),
                ("target_hp", float(params["target_hp"])),
                ("planning_every", int(params["planning_every"])),
                ("monte_carlo_samples", int(params["monte_carlo_samples"])),
                ("seed", int(params["seed"])),
                ("engine", ctx.engine),
            ),
        )
        for variant, upper_bound in (
            ("with kappa (eq. 8)", None),
            ("no look-ahead (kappa = 0)", 0.0),
        )
    ]
    return ctx.run_rows(tasks, base_seed=params["seed"])


register_experiment(
    ExperimentSpec(
        name="kappa-ablation",
        title="Algorithm 4 with vs without the kappa look-ahead",
        params=(
            ParamSpec("arrival_rate", "float", 0.2, help="true arrival rate (QPS)"),
            ParamSpec(
                "horizon_seconds", "float", 2 * 3600.0, help="replay horizon (seconds)"
            ),
            ParamSpec(
                "pending_time", "float", 13.0, help="instance startup time (seconds)"
            ),
            ParamSpec("target_hp", "float", 0.9, help="target hit probability"),
            ParamSpec(
                "planning_every", "int", 1, help="plan once every m arrivals"
            ),
            ParamSpec(
                "monte_carlo_samples",
                "int",
                1000,
                cli_flag="--mc-samples",
                help="Monte Carlo sample size R",
            ),
            ParamSpec("seed", "int", 3, help="arrival and Monte Carlo seed"),
        ),
        run=_run_kappa_ablation,
        result_columns=(
            "variant",
            "kappa",
            "target_hp",
            "hit_rate",
            "rt_avg",
            "total_cost",
        ),
    )
)



# ------------------------------------------------------ Monte Carlo ablation


def mc_sample_point(
    *,
    n_samples: int,
    arrival_rate: float,
    pending_time: float,
    target_hp: float,
    n_trials: int,
    seed: int,
) -> dict:
    """Decision error and solve time for one Monte Carlo sample size R.

    With a constant intensity the HP-constrained optimum has the closed form
    ``x* = quantile_alpha(Exp(rate)) - tau``, so the Monte Carlo decision can
    be compared against an exact reference.
    """
    alpha = 1.0 - target_hp
    exact = -np.log(1.0 - alpha) / arrival_rate - pending_time
    intensity = PiecewiseConstantIntensity(
        np.array([arrival_rate]), 60.0, extrapolation="hold"
    )
    pending = DeterministicPendingTime(pending_time)
    errors = []
    timings = []
    for trial in range(n_trials):
        scenarios = generate_scenarios(
            intensity,
            pending,
            n_queries=1,
            n_samples=int(n_samples),
            random_state=seed + trial,
        )
        xi, tau = scenarios.for_query(0)
        started = time.perf_counter()
        decision = solve_hp_constrained(xi, tau, target_hp)
        timings.append(time.perf_counter() - started)
        errors.append(abs(decision.raw_creation_time - exact))
    return {
        "n_samples": int(n_samples),
        "exact_decision": float(exact),
        "mean_abs_error": float(np.mean(errors)),
        "solve_time_ms": 1000.0 * float(np.median(timings)),
    }


def _run_mc_sample_ablation(params: dict, ctx: RunContext) -> list[dict]:
    """Decision error and solve time versus the Monte Carlo sample size R."""
    tasks = [
        FunctionTask(
            fn=f"{__name__}.mc_sample_point",
            kwargs=(
                ("n_samples", int(n_samples)),
                ("arrival_rate", float(params["arrival_rate"])),
                ("pending_time", float(params["pending_time"])),
                ("target_hp", float(params["target_hp"])),
                ("n_trials", int(params["n_trials"])),
                ("seed", int(params["seed"])),
            ),
        )
        for n_samples in params["sample_sizes"]
    ]
    return ctx.run_rows(tasks, base_seed=params["seed"])


register_experiment(
    ExperimentSpec(
        name="mc-sample-ablation",
        title="decision error and solve time vs Monte Carlo sample size",
        params=(
            ParamSpec("arrival_rate", "float", 1.0, help="true arrival rate (QPS)"),
            ParamSpec(
                "pending_time", "float", 5.0, help="instance startup time (seconds)"
            ),
            ParamSpec("target_hp", "float", 0.9, help="target hit probability"),
            ParamSpec(
                "sample_sizes",
                "int",
                (50, 200, 1000, 5000),
                sequence=True,
                cli_flag="--sample-size",
                help="Monte Carlo sample counts R to compare",
            ),
            ParamSpec("n_trials", "int", 20, help="trials per sample size"),
            ParamSpec("seed", "int", 0, help="Monte Carlo seed"),
        ),
        run=_run_mc_sample_ablation,
        result_columns=(
            "n_samples",
            "exact_decision",
            "mean_abs_error",
            "solve_time_ms",
        ),
        engine_aware=False,
    )
)



# ------------------------------------------- regularization sensitivity grid


def regularization_point(
    *,
    beta_smooth: float,
    beta_period: float,
    period_seconds: float,
    n_periods: int,
    bin_seconds: float,
    peak_qps: float,
    base_qps: float,
    seed: int,
    max_iterations: int,
) -> dict:
    """Intensity-estimation error for one (beta_smooth, beta_period) cell."""
    horizon = period_seconds * n_periods
    n_bins = int(horizon / bin_seconds)
    times = (np.arange(n_bins) + 0.5) * bin_seconds
    truth = beta_bump_intensity(
        times,
        peak=peak_qps,
        period_seconds=period_seconds,
        exponent=10.0,
        base=base_qps,
    )
    counts = sample_counts(
        PiecewiseConstantIntensity(truth, bin_seconds, extrapolation="periodic"),
        horizon,
        seed,
    )
    period_bins = int(round(period_seconds / bin_seconds))
    objective = RegularizedNHPPObjective(
        counts=counts,
        bin_seconds=bin_seconds,
        beta_smooth=float(beta_smooth),
        beta_period=float(beta_period),
        period_bins=period_bins if beta_period > 0 else None,
    )
    result = fit_log_intensity(objective, ADMMConfig(max_iterations=max_iterations))
    estimate = np.exp(result.log_intensity)
    return {
        "beta_smooth": float(beta_smooth),
        "beta_period": float(beta_period),
        "mse": mean_squared_error(estimate, truth),
        "mae": mean_absolute_error(estimate, truth),
    }


def _run_regularization_sensitivity(params: dict, ctx: RunContext) -> list[dict]:
    """Intensity error over a grid of smoothness / periodicity weights."""
    tasks = [
        FunctionTask(
            fn=f"{__name__}.regularization_point",
            kwargs=(
                ("beta_smooth", float(beta_smooth)),
                ("beta_period", float(beta_period)),
                ("period_seconds", float(params["period_seconds"])),
                ("n_periods", int(params["n_periods"])),
                ("bin_seconds", float(params["bin_seconds"])),
                ("peak_qps", float(params["peak_qps"])),
                ("base_qps", float(params["base_qps"])),
                ("seed", int(params["seed"])),
                ("max_iterations", int(params["max_iterations"])),
            ),
        )
        for beta_smooth in params["beta_smooth_values"]
        for beta_period in params["beta_period_values"]
    ]
    return ctx.run_rows(tasks, base_seed=params["seed"])


register_experiment(
    ExperimentSpec(
        name="regularization-sensitivity",
        title="intensity error over the beta_1 / beta_2 grid",
        params=(
            ParamSpec(
                "period_seconds", "float", 7200.0, help="true period (seconds)"
            ),
            ParamSpec("n_periods", "int", 6, help="observed cycles"),
            ParamSpec("bin_seconds", "float", 60.0, help="fitting bin width"),
            ParamSpec("peak_qps", "float", 1.0, help="intensity peak (QPS)"),
            ParamSpec("base_qps", "float", 0.1, help="intensity base (QPS)"),
            ParamSpec(
                "beta_smooth_values",
                "float",
                (0.0, 10.0, 50.0, 200.0),
                sequence=True,
                cli_flag="--beta-smooth",
                help="smoothness weights beta_1",
            ),
            ParamSpec(
                "beta_period_values",
                "float",
                (0.0, 10.0, 100.0),
                sequence=True,
                cli_flag="--beta-period",
                help="periodicity weights beta_2",
            ),
            ParamSpec("seed", "int", 0, help="count-sampling seed"),
            ParamSpec("max_iterations", "int", 200, help="ADMM iteration cap"),
        ),
        run=_run_regularization_sensitivity,
        result_columns=("beta_smooth", "beta_period", "mse", "mae"),
        engine_aware=False,
    )
)

