"""Adversarial search harness — find the workload that breaks a policy.

For each recipe in :mod:`repro.workloads.adversarial` the driver evaluates a
panel of autoscalers — the recipe's *target* policy plus one representative
of every other family — on the recipe's default trace and on a set of
perturbed candidates drawn from the recipe's bounded parameter space (random
sampling or axis-aligned grid ladders).  The attack metric is **QoS
violations per dollar**, ``(1 - hit_rate) / relative_cost``: a policy is
defeated when it buys fewer served queries per unit of spend than the
alternatives on the *same* trace.  The candidate maximizing the target's
violations-per-dollar is reported as the recipe's worst case.

Registered as ``"adversarial"`` in :mod:`repro.api`; execution routes
through :meth:`RunContext.run_rows`, so the harness inherits process-pool
workers, the artifact store (default traces are store-cached), journaled
resume, telemetry, and the generated ``repro experiment adversarial`` CLI.
Everything is deterministic for a fixed ``seed``: candidate parameters come
from a per-recipe seeded stream, and each evaluation is a normal
:class:`~repro.runtime.EvalTask`.
"""

from __future__ import annotations

import numpy as np

from ..api import ExperimentSpec, ParamSpec, register_experiment
from ..api.session import RunContext
from ..exceptions import ExperimentError
from ..runtime import EvalTask, PrepSpec, ScalerSpec, WorkloadSpec
from ..store.traces import get_or_build_trace
from ..types import ArrivalTrace
from ..workloads.adversarial import (
    ADVERSARIAL_PREFIX,
    ADVERSARIAL_RECIPES,
    AdversarialRecipe,
    get_recipe,
)
from ..workloads.registry import DEFAULT_REGISTRY
from ..workloads.scenarios import Scenario
from .base import robustscaler_spec

__all__ = ["violation_per_dollar", "summarize_adversarial"]

#: Guard against division by a degenerate reference cost.
_MIN_RELATIVE_COST = 1e-9


def violation_per_dollar(row: dict) -> float:
    """QoS violations bought per unit of (relative) spend for one row."""
    misses = 1.0 - float(row["hit_rate"])
    return misses / max(float(row["relative_cost"]), _MIN_RELATIVE_COST)


def _selected_recipes(params: dict) -> list[AdversarialRecipe]:
    if params["scenario_names"] is None:
        return list(ADVERSARIAL_RECIPES.values())
    recipes = [get_recipe(name) for name in params["scenario_names"]]
    if not recipes:
        raise ExperimentError("adversarial search requires at least one recipe")
    return recipes


def _candidate_params(
    recipe: AdversarialRecipe, params: dict, recipe_index: int
) -> list[dict[str, float]]:
    """The candidate parameter sets: defaults first, then the search points."""
    candidates = [recipe.defaults()]
    if params["search"] == "grid":
        candidates += recipe.grid_params(params["grid_steps"])
    else:
        rng = np.random.default_rng([int(params["seed"]), recipe_index])
        candidates += [
            recipe.sample_params(rng) for _ in range(max(0, params["n_candidates"] - 1))
        ]
    return candidates


def _panel_specs(
    recipe: AdversarialRecipe, scenario: Scenario, test: ArrivalTrace, params: dict
) -> list[tuple[str, ScalerSpec]]:
    """The evaluation panel: one spec per scaler family, target included.

    Returns ``(kind, spec)`` pairs; the spec whose kind equals the recipe's
    target is the attacked policy, the rest are the comparison panel.
    """
    mean_gap = 1.0 / max(test.mean_qps, _MIN_RELATIVE_COST)
    return [
        ("reactive", ScalerSpec("reactive")),
        ("bp", ScalerSpec("bp", int(params["pool_size"]))),
        ("adapbp", ScalerSpec("adapbp", float(params["adaptive_factor"]))),
        ("rs-hp", robustscaler_spec(params, "rs-hp", params["hp_target"])),
        (
            "rs-rt",
            robustscaler_spec(
                params,
                "rs-rt",
                scenario.pending_time * params["rt_budget_fraction"],
            ),
        ),
        (
            "rs-cost",
            robustscaler_spec(params, "rs-cost", mean_gap * params["cost_budget_fraction"]),
        ),
    ]


def _format_params(recipe: AdversarialRecipe, values: dict[str, float]) -> str:
    """Compact ``k=v`` rendering of the *searched* parameters only."""
    return ", ".join(f"{key}={values[key]:g}" for key in sorted(recipe.bounds))


def _build_tasks(params: dict, ctx: RunContext) -> tuple[list[EvalTask], list[dict]]:
    """Expand the search into runtime tasks (grouped by candidate trace)."""
    tasks: list[EvalTask] = []
    skipped: list[dict] = []
    for recipe_index, recipe in enumerate(_selected_recipes(params)):
        for candidate, values in enumerate(
            _candidate_params(recipe, params, recipe_index)
        ):
            if candidate == 0:
                # The default configuration IS the registry scenario, so the
                # realization is store-cacheable under its registry name.
                scenario = DEFAULT_REGISTRY.get(recipe.scenario_name)
                trace = get_or_build_trace(
                    scenario, scale=params["scale"], seed=params["seed"], store=ctx.store
                )
            else:
                scenario = recipe.scenario(
                    values, name=f"{ADVERSARIAL_PREFIX}{recipe.name}#{candidate}"
                )
                trace = scenario.build_trace(scale=params["scale"], seed=params["seed"])
            _, test = trace.split(scenario.train_fraction)
            if test.n_queries < params["min_test_queries"]:
                skipped.append(
                    {
                        "scenario": scenario.name,
                        "recipe": recipe.name,
                        "target": recipe.target,
                        "candidate": candidate,
                        "scaler": "-",
                        "note": (
                            f"skipped: only {test.n_queries} test queries "
                            f"at scale {params['scale']:g}"
                        ),
                    }
                )
                continue
            prep = PrepSpec(
                train_fraction=scenario.train_fraction,
                bin_seconds=scenario.bin_seconds,
                pending_time=scenario.pending_time,
                engine=ctx.engine,
            )
            # Perturbed variants are not registry-importable inside pool
            # workers, so every candidate ships its concrete trace.
            workload = WorkloadSpec(trace=trace, prep=prep)
            for kind, spec in _panel_specs(recipe, scenario, test, params):
                extra = (
                    ("scenario", scenario.name),
                    ("recipe", recipe.name),
                    ("target", recipe.target),
                    ("candidate", candidate),
                    ("params", _format_params(recipe, values)),
                    ("role", "target" if kind == recipe.target else "panel"),
                )
                tasks.append(EvalTask(workload, spec, extra=extra))
    return tasks, skipped


def _mark_worst_cases(rows: list[dict]) -> None:
    """Annotate ``violation_per_dollar`` and flag each recipe's worst case.

    The worst case is the candidate maximizing the *target* policy's
    violations-per-dollar; every row of that candidate gets
    ``worst_case=True`` so the panel comparison travels with it.
    """
    for row in rows:
        row["violation_per_dollar"] = violation_per_dollar(row)
        row["worst_case"] = False
    target_scores: dict[str, dict[int, float]] = {}
    for row in rows:
        if row["role"] == "target":
            target_scores.setdefault(row["recipe"], {})[row["candidate"]] = row[
                "violation_per_dollar"
            ]
    for recipe, by_candidate in target_scores.items():
        worst = max(sorted(by_candidate), key=lambda c: by_candidate[c])
        for row in rows:
            if row["recipe"] == recipe and row["candidate"] == worst:
                row["worst_case"] = True


def _run_adversarial(params: dict, ctx: RunContext) -> list[dict]:
    """Run the adversarial search; one row per (candidate, panel scaler)."""
    tasks, skipped = _build_tasks(params, ctx)
    rows = ctx.run_rows(tasks, base_seed=params["seed"])
    _mark_worst_cases(rows)
    return rows + skipped


register_experiment(
    ExperimentSpec(
        name="adversarial",
        title="policy-targeted worst-case search over the adversarial suite",
        params=(
            ParamSpec(
                "scenario_names",
                "str",
                None,
                sequence=True,
                cli_flag="--scenario",
                help="restrict to these adversarial recipes, by recipe or "
                "registry name (default: the whole suite)",
            ),
            ParamSpec(
                "search",
                "str",
                "random",
                choices=("random", "grid"),
                help="perturbation strategy over each recipe's parameter box",
            ),
            ParamSpec(
                "n_candidates",
                "int",
                3,
                help="candidates per recipe under random search "
                "(including the defaults)",
            ),
            ParamSpec(
                "grid_steps",
                "int",
                2,
                help="points per parameter ladder under grid search",
            ),
            ParamSpec("scale", "float", 0.1, help="trace size factor"),
            ParamSpec("seed", "int", 7, help="trace-generation and search seed"),
            ParamSpec(
                "planning_interval", "float", 10.0, help="RobustScaler Delta (seconds)"
            ),
            ParamSpec(
                "monte_carlo_samples",
                "int",
                120,
                cli_flag="--mc-samples",
                help="Monte Carlo sample size R",
            ),
            ParamSpec("hp_target", "float", 0.7, help="panel RobustScaler-HP target"),
            ParamSpec(
                "rt_budget_fraction",
                "float",
                0.5,
                help="panel RobustScaler-RT budget as a fraction of the pending time",
            ),
            ParamSpec(
                "cost_budget_fraction",
                "float",
                0.15,
                help="panel RobustScaler-cost budget as a fraction of the mean gap",
            ),
            ParamSpec("pool_size", "int", 4, help="panel Backup Pool size"),
            ParamSpec(
                "adaptive_factor",
                "float",
                10.0,
                help="panel Adaptive Backup Pool rate factor",
            ),
            ParamSpec(
                "min_test_queries",
                "int",
                8,
                help="skip candidates whose test window is smaller than this",
            ),
        ),
        run=_run_adversarial,
        result_columns=(
            "scenario",
            "recipe",
            "target",
            "candidate",
            "role",
            "scaler",
            "params",
            "n_queries",
            "hit_rate",
            "relative_cost",
            "violation_per_dollar",
            "worst_case",
            "note",
        ),
        scenario_param="scenario_names",
    )
)


def summarize_adversarial(rows: list[dict]) -> list[dict]:
    """One row per recipe: the worst-case candidate and its panel margin.

    ``defeated`` is the acceptance check — whether the target policy's
    violations-per-dollar on the worst-case trace exceeds that of at least
    one panel alternative on the same trace.
    """
    summary: list[dict] = []
    by_recipe: dict[str, list[dict]] = {}
    for row in rows:
        if "hit_rate" in row:
            by_recipe.setdefault(row["recipe"], []).append(row)
    for recipe in sorted(by_recipe):
        worst = [r for r in by_recipe[recipe] if r["worst_case"]]
        target_rows = [r for r in worst if r["role"] == "target"]
        panel_rows = [r for r in worst if r["role"] == "panel"]
        if not target_rows:
            continue
        target = target_rows[0]
        best_alternative = min(
            panel_rows, key=lambda r: r["violation_per_dollar"], default=None
        )
        summary.append(
            {
                "recipe": recipe,
                "target": target["target"],
                "params": target["params"],
                "target_vpd": target["violation_per_dollar"],
                "best_panel_vpd": (
                    None
                    if best_alternative is None
                    else best_alternative["violation_per_dollar"]
                ),
                "best_panel_scaler": (
                    None if best_alternative is None else best_alternative["scaler"]
                ),
                "defeated": best_alternative is not None
                and target["violation_per_dollar"]
                > best_alternative["violation_per_dollar"],
            }
        )
    return summary
