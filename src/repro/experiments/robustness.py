"""Fig. 9 and Table II — robustness against missing data and anomalies.

Two modifications are studied, matching Section VII-B3:

* **missing data** (CRS trace) — all queries of one entire day are removed
  from the training window and the experiments are re-run;
* **anomaly removal** (Alibaba trace) — the unexpected burst is erased with
  the robust-thinning utility and the experiments are re-run.

For each modification the driver evaluates RobustScaler-HP and
RobustScaler-cost on the original and the modified trace, reporting hit rate,
average response time, relative cost, and the high-level response-time
quantiles of Table II.  A robust autoscaler produces near-identical numbers
with and without the modification.

Registered as ``"robustness"`` in :mod:`repro.api`: the comparison is one
:mod:`repro.runtime` task batch where each (condition, trace) pair ships as
a direct-trace :class:`~repro.runtime.WorkloadSpec`, so every workload is
fitted once (and, with a store attached, persisted across CLI invocations),
the candidate evaluations parallelize with ``workers`` / ``REPRO_WORKERS``,
and ``run_id`` journaling makes interrupted runs resumable.
"""

from __future__ import annotations

from ..api import (
    ExperimentSpec,
    ParamSpec,
    register_experiment,
)
from ..api.session import RunContext
from ..runtime import EvalTask, PrepSpec, WorkloadSpec
from ..traces.perturbation import inject_missing_window, remove_anomalous_bursts
from ..types import ArrivalTrace
from .base import make_trace, robustscaler_spec, trace_defaults

__all__: list[str] = []

_DAY = 86_400.0


def _run_robustness(params: dict, ctx: RunContext) -> list[dict]:
    """Evaluate RobustScaler variants before/after trace modifications."""
    tasks: list[EvalTask] = []
    if params["include_crs"]:
        tasks.extend(_missing_data_tasks(params, ctx))
    if params["include_alibaba"]:
        tasks.extend(_anomaly_removal_tasks(params, ctx))
    return ctx.run_rows(tasks, base_seed=params["seed"])


def _missing_data_tasks(params: dict, ctx: RunContext) -> list[EvalTask]:
    """CRS trace with one full training day of queries removed."""
    trace = make_trace("crs", scale=params["scale"], seed=params["seed"])
    defaults = trace_defaults("crs")
    # Remove the last full day of the training window; the training window is
    # the first `train_fraction` of the horizon.
    train_end = trace.horizon * defaults["train_fraction"]
    missing_start = max(0.0, train_end - _DAY)
    modified = inject_missing_window(trace, missing_start, _DAY)
    return _comparison_tasks(
        "crs", trace, modified, "missing_data", params, ctx, defaults
    )


def _anomaly_removal_tasks(params: dict, ctx: RunContext) -> list[EvalTask]:
    """Alibaba trace with the unexpected burst thinned away."""
    trace = make_trace("alibaba", scale=params["scale"], seed=params["seed"])
    defaults = trace_defaults("alibaba")
    modified = remove_anomalous_bursts(trace, random_state=params["seed"])
    return _comparison_tasks(
        "alibaba", trace, modified, "anomaly_removed", params, ctx, defaults
    )


def _comparison_tasks(
    trace_key: str,
    original: ArrivalTrace,
    modified: ArrivalTrace,
    modification: str,
    params: dict,
    ctx: RunContext,
    defaults: dict,
) -> list[EvalTask]:
    """The RobustScaler-HP / RobustScaler-cost candidates on both conditions."""
    prep = PrepSpec(
        train_fraction=defaults["train_fraction"],
        bin_seconds=defaults["bin_seconds"],
        engine=ctx.engine,
    )
    tasks: list[EvalTask] = []
    for label, trace in (("original", original), (modification, modified)):
        workload = WorkloadSpec(trace=trace, prep=prep)
        _, test = trace.split(defaults["train_fraction"])
        mean_gap = 1.0 / max(test.mean_qps, 1e-9)
        extra = (("trace", trace_key), ("condition", label))
        specs = [robustscaler_spec(params, "rs-hp", t) for t in params["hp_targets"]]
        specs += [
            robustscaler_spec(params, "rs-cost", mean_gap * fraction)
            for fraction in params["cost_budget_fractions"]
        ]
        tasks += [EvalTask(workload, spec, extra=extra) for spec in specs]
    return tasks


register_experiment(
    ExperimentSpec(
        name="robustness",
        title="RobustScaler stability under missing data and anomaly removal",
        artifact="Fig. 9 / Table II",
        params=(
            ParamSpec("scale", "float", 0.25, help="trace size factor"),
            ParamSpec("seed", "int", 7, help="trace-generation and Monte Carlo seed"),
            ParamSpec(
                "hp_targets",
                "float",
                (0.5, 0.9),
                sequence=True,
                cli_flag="--hp-target",
                help="RobustScaler-HP targets",
            ),
            ParamSpec(
                "cost_budget_fractions",
                "float",
                (0.05, 0.2),
                sequence=True,
                cli_flag="--cost-budget-fraction",
                help="idle budgets as fractions of the mean inter-arrival gap",
            ),
            ParamSpec(
                "planning_interval", "float", 2.0, help="RobustScaler Delta (seconds)"
            ),
            ParamSpec(
                "monte_carlo_samples",
                "int",
                400,
                cli_flag="--mc-samples",
                help="Monte Carlo sample size R",
            ),
            ParamSpec(
                "include_alibaba",
                "bool",
                True,
                cli_flag="--alibaba",
                help="run the Alibaba anomaly-removal comparison",
            ),
            ParamSpec(
                "include_crs",
                "bool",
                True,
                cli_flag="--crs",
                help="run the CRS missing-data comparison",
            ),
        ),
        run=_run_robustness,
        result_columns=(
            "trace",
            "condition",
            "scaler",
            "target_hp",
            "idle_budget",
            "hit_rate",
            "rt_avg",
            "relative_cost",
            "rt_p95",
        ),
    )
)

