"""Fig. 9 and Table II — robustness against missing data and anomalies.

Two modifications are studied, matching Section VII-B3:

* **missing data** (CRS trace) — all queries of one entire day are removed
  from the training window and the experiments are re-run;
* **anomaly removal** (Alibaba trace) — the unexpected burst is erased with
  the robust-thinning utility and the experiments are re-run.

For each modification the driver evaluates RobustScaler-HP and
RobustScaler-cost on the original and the modified trace, reporting hit rate,
average response time, relative cost, and the high-level response-time
quantiles of Table II.  A robust autoscaler produces near-identical numbers
with and without the modification.

The comparison is expressed as one :mod:`repro.runtime` task batch: each
(condition, trace) pair ships as a direct-trace
:class:`~repro.runtime.WorkloadSpec`, so every workload is fitted once (and,
with a store attached, persisted across CLI invocations), the candidate
evaluations parallelize with ``workers`` / ``REPRO_WORKERS``, and
``run_id`` journaling makes interrupted runs resumable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..runtime import EvalTask, PrepSpec, WorkloadSpec, run_task_rows
from ..traces.perturbation import inject_missing_window, remove_anomalous_bursts
from ..types import ArrivalTrace
from .base import make_trace, robustscaler_spec, trace_defaults

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..store import ArtifactStore

__all__ = ["RobustnessExperimentConfig", "run_robustness_experiment"]

_DAY = 86_400.0


@dataclass
class RobustnessExperimentConfig:
    """Parameters of the missing-data / anomaly-removal experiment."""

    scale: float = 0.25
    seed: int = 7
    hp_targets: Sequence[float] = (0.5, 0.9)
    cost_budget_fractions: Sequence[float] = (0.05, 0.2)
    planning_interval: float = 2.0
    monte_carlo_samples: int = 400
    include_alibaba: bool = True
    include_crs: bool = True
    workers: int | None = None
    #: Replay engine ("reference" / "batched"); both give identical rows.
    engine: str | None = None
    store: "ArtifactStore | None" = None
    run_id: str | None = None


def run_robustness_experiment(
    config: RobustnessExperimentConfig | None = None,
) -> list[dict]:
    """Evaluate RobustScaler variants before/after trace modifications."""
    config = config or RobustnessExperimentConfig()
    tasks: list[EvalTask] = []
    if config.include_crs:
        tasks.extend(_missing_data_tasks(config))
    if config.include_alibaba:
        tasks.extend(_anomaly_removal_tasks(config))
    return run_task_rows(
        tasks,
        base_seed=config.seed,
        workers=config.workers,
        store=config.store,
        run_id=config.run_id,
    )


def _missing_data_tasks(config: RobustnessExperimentConfig) -> list[EvalTask]:
    """CRS trace with one full training day of queries removed."""
    trace = make_trace("crs", scale=config.scale, seed=config.seed)
    defaults = trace_defaults("crs")
    # Remove the last full day of the training window; the training window is
    # the first `train_fraction` of the horizon.
    train_end = trace.horizon * defaults["train_fraction"]
    missing_start = max(0.0, train_end - _DAY)
    modified = inject_missing_window(trace, missing_start, _DAY)
    return _comparison_tasks("crs", trace, modified, "missing_data", config, defaults)


def _anomaly_removal_tasks(config: RobustnessExperimentConfig) -> list[EvalTask]:
    """Alibaba trace with the unexpected burst thinned away."""
    trace = make_trace("alibaba", scale=config.scale, seed=config.seed)
    defaults = trace_defaults("alibaba")
    modified = remove_anomalous_bursts(trace, random_state=config.seed)
    return _comparison_tasks(
        "alibaba", trace, modified, "anomaly_removed", config, defaults
    )


def _comparison_tasks(
    trace_key: str,
    original: ArrivalTrace,
    modified: ArrivalTrace,
    modification: str,
    config: RobustnessExperimentConfig,
    defaults: dict,
) -> list[EvalTask]:
    """The RobustScaler-HP / RobustScaler-cost candidates on both conditions."""
    prep = PrepSpec(
        train_fraction=defaults["train_fraction"],
        bin_seconds=defaults["bin_seconds"],
        engine=config.engine,
    )
    tasks: list[EvalTask] = []
    for label, trace in (("original", original), (modification, modified)):
        workload = WorkloadSpec(trace=trace, prep=prep)
        _, test = trace.split(defaults["train_fraction"])
        mean_gap = 1.0 / max(test.mean_qps, 1e-9)
        extra = (("trace", trace_key), ("condition", label))
        specs = [robustscaler_spec(config, "rs-hp", t) for t in config.hp_targets]
        specs += [
            robustscaler_spec(config, "rs-cost", mean_gap * fraction)
            for fraction in config.cost_budget_fractions
        ]
        tasks += [EvalTask(workload, spec, extra=extra) for spec in specs]
    return tasks
