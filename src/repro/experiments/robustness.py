"""Fig. 9 and Table II — robustness against missing data and anomalies.

Two modifications are studied, matching Section VII-B3:

* **missing data** (CRS trace) — all queries of one entire day are removed
  from the training window and the experiments are re-run;
* **anomaly removal** (Alibaba trace) — the unexpected burst is erased with
  the robust-thinning utility and the experiments are re-run.

For each modification the driver evaluates RobustScaler-HP and
RobustScaler-cost on the original and the modified trace, reporting hit rate,
average response time, relative cost, and the high-level response-time
quantiles of Table II.  A robust autoscaler produces near-identical numbers
with and without the modification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..metrics.qos import response_time_quantiles
from ..scaling.robustscaler import RobustScalerObjective
from ..traces.perturbation import inject_missing_window, remove_anomalous_bursts
from ..types import ArrivalTrace
from .base import (
    PreparedWorkload,
    build_robustscaler,
    default_planner,
    make_trace,
    prepare_workload,
    trace_defaults,
)

__all__ = ["RobustnessExperimentConfig", "run_robustness_experiment"]

_DAY = 86_400.0


@dataclass
class RobustnessExperimentConfig:
    """Parameters of the missing-data / anomaly-removal experiment."""

    scale: float = 0.25
    seed: int = 7
    hp_targets: Sequence[float] = (0.5, 0.9)
    cost_budget_fractions: Sequence[float] = (0.05, 0.2)
    planning_interval: float = 2.0
    monte_carlo_samples: int = 400
    include_alibaba: bool = True
    include_crs: bool = True


def run_robustness_experiment(
    config: RobustnessExperimentConfig | None = None,
) -> list[dict]:
    """Evaluate RobustScaler variants before/after trace modifications."""
    config = config or RobustnessExperimentConfig()
    rows: list[dict] = []
    if config.include_crs:
        rows.extend(_run_missing_data(config))
    if config.include_alibaba:
        rows.extend(_run_anomaly_removal(config))
    return rows


def _run_missing_data(config: RobustnessExperimentConfig) -> list[dict]:
    """CRS trace with one full training day of queries removed."""
    trace = make_trace("crs", scale=config.scale, seed=config.seed)
    defaults = trace_defaults("crs")
    # Remove the last full day of the training window; the training window is
    # the first `train_fraction` of the horizon.
    train_end = trace.horizon * defaults["train_fraction"]
    missing_start = max(0.0, train_end - _DAY)
    modified = inject_missing_window(trace, missing_start, _DAY)
    return _compare(
        "crs", trace, modified, "missing_data", config, defaults
    )


def _run_anomaly_removal(config: RobustnessExperimentConfig) -> list[dict]:
    """Alibaba trace with the unexpected burst thinned away."""
    trace = make_trace("alibaba", scale=config.scale, seed=config.seed)
    defaults = trace_defaults("alibaba")
    modified = remove_anomalous_bursts(trace, random_state=config.seed)
    return _compare(
        "alibaba", trace, modified, "anomaly_removed", config, defaults
    )


def _compare(
    trace_key: str,
    original: ArrivalTrace,
    modified: ArrivalTrace,
    modification: str,
    config: RobustnessExperimentConfig,
    defaults: dict,
) -> list[dict]:
    planner = default_planner(config.planning_interval, config.monte_carlo_samples)
    rows: list[dict] = []
    for label, trace in (("original", original), (modification, modified)):
        workload = prepare_workload(
            trace,
            train_fraction=defaults["train_fraction"],
            bin_seconds=defaults["bin_seconds"],
        )
        rows.extend(
            _evaluate_variants(workload, trace_key, label, config, planner)
        )
    return rows


def _evaluate_variants(
    workload: PreparedWorkload,
    trace_key: str,
    label: str,
    config: RobustnessExperimentConfig,
    planner,
) -> list[dict]:
    rows: list[dict] = []
    mean_gap = 1.0 / max(workload.test.mean_qps, 1e-9)
    candidates = [
        ("target_hp", target, RobustScalerObjective.HIT_PROBABILITY, target)
        for target in config.hp_targets
    ] + [
        ("idle_budget", mean_gap * fraction, RobustScalerObjective.COST, mean_gap * fraction)
        for fraction in config.cost_budget_fractions
    ]
    for parameter_name, parameter, objective, target in candidates:
        scaler = build_robustscaler(workload, objective, target, planner=planner)
        result = workload.replay(scaler)
        row = {
            "trace": trace_key,
            "condition": label,
            "scaler": scaler.name,
            parameter_name: float(parameter),
            "hit_rate": result.hit_rate,
            "rt_avg": result.mean_response_time,
            "relative_cost": result.total_cost / workload.reference_cost,
        }
        for level, value in response_time_quantiles(result).items():
            row[f"rt_p{level * 100:g}"] = value
        rows.append(row)
    return rows
