"""Figs. 6 and 7 — AdapBP vs RobustScaler-HP under growing data perturbations.

The CRS trace is perturbed with the paper's protocol (hourly five-minute
deletions plus ``c`` extra copies of the queries in a shifted five-minute
window), the workload model is re-fitted on the perturbed training data, and
both AdapBP and RobustScaler-HP are swept over their trade-off parameter on
the perturbed test data.  The paper's observation is that AdapBP degrades as
``c`` grows while RobustScaler's frontier barely moves.

Each perturbed trace is shipped to the :mod:`repro.runtime` executor as a
direct-trace workload spec, so the model re-fit happens once per
perturbation size (workload cache) and the sweep points parallelize with
``workers`` / ``REPRO_WORKERS``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..runtime import EvalTask, PrepSpec, ScalerSpec, WorkloadSpec, run_task_rows
from ..store.traces import get_or_build_trace
from ..traces.perturbation import perturb_trace
from ..workloads import get_scenario
from .base import trace_defaults

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..store import ArtifactStore

__all__ = ["PerturbationExperimentConfig", "run_perturbation_experiment"]


@dataclass
class PerturbationExperimentConfig:
    """Parameters of the perturbation-robustness experiment (Figs. 6-7)."""

    trace_name: str = "crs"
    scale: float = 0.25
    seed: int = 7
    perturbation_sizes: Sequence[float] = (1.0, 2.0, 4.0, 6.0)
    hp_targets: Sequence[float] = (0.3, 0.6, 0.9)
    adaptive_factors: Sequence[float] = (25.0, 50.0, 100.0)
    planning_interval: float = 2.0
    monte_carlo_samples: int = 400
    workers: int | None = None
    #: Replay engine ("reference" / "batched"); both give identical rows.
    engine: str | None = None
    #: Disk artifact store: prepared workloads and generated traces persist
    #: across CLI invocations, and ``run_id`` journaling becomes available.
    store: "ArtifactStore | None" = None
    #: Journal per-task completions under this id (resumable runs).
    run_id: str | None = None


def run_perturbation_experiment(
    config: PerturbationExperimentConfig | None = None,
) -> list[dict]:
    """Compare AdapBP and RobustScaler-HP on increasingly perturbed traces."""
    config = config or PerturbationExperimentConfig()
    defaults = trace_defaults(config.trace_name)
    base_trace = get_or_build_trace(
        get_scenario(config.trace_name),
        scale=config.scale,
        seed=config.seed,
        store=config.store,
    )
    prep = PrepSpec(
        train_fraction=defaults["train_fraction"],
        bin_seconds=defaults["bin_seconds"],
        engine=config.engine,
    )

    tasks: list[EvalTask] = []
    for c in config.perturbation_sizes:
        perturbed = perturb_trace(base_trace, float(c), random_state=config.seed)
        workload = WorkloadSpec(trace=perturbed, prep=prep)
        extra = (
            ("trace", config.trace_name),
            ("perturbation_size", float(c)),
        )
        specs = [ScalerSpec("adapbp", float(f)) for f in config.adaptive_factors]
        specs += [
            ScalerSpec(
                "rs-hp",
                float(target),
                planning_interval=config.planning_interval,
                monte_carlo_samples=config.monte_carlo_samples,
            )
            for target in config.hp_targets
        ]
        tasks += [EvalTask(workload, spec, extra=extra) for spec in specs]
    return run_task_rows(
        tasks,
        base_seed=config.seed,
        workers=config.workers,
        store=config.store,
        run_id=config.run_id,
    )
