"""Figs. 6 and 7 — AdapBP vs RobustScaler-HP under growing data perturbations.

The base trace is perturbed with the paper's protocol (hourly five-minute
deletions plus ``c`` extra copies of the queries in a shifted five-minute
window), the workload model is re-fitted on the perturbed training data, and
both AdapBP and RobustScaler-HP are swept over their trade-off parameter on
the perturbed test data.  The paper's observation is that AdapBP degrades as
``c`` grows while RobustScaler's frontier barely moves.

Registered as ``"perturbation"`` in :mod:`repro.api`.  Each perturbed trace
is shipped to the :mod:`repro.runtime` executor as a direct-trace workload
spec, so the model re-fit happens once per perturbation size (workload
cache) and the sweep points parallelize with ``workers`` /
``REPRO_WORKERS``.
"""

from __future__ import annotations

from ..api import (
    ExperimentSpec,
    ParamSpec,
    register_experiment,
)
from ..api.session import RunContext
from ..runtime import EvalTask, PrepSpec, ScalerSpec, WorkloadSpec
from ..store.traces import get_or_build_trace
from ..traces.perturbation import perturb_trace
from ..workloads import get_scenario
from .base import trace_defaults

__all__: list[str] = []


def _run_perturbation(params: dict, ctx: RunContext) -> list[dict]:
    """Compare AdapBP and RobustScaler-HP on increasingly perturbed traces."""
    defaults = trace_defaults(params["trace_name"])
    base_trace = get_or_build_trace(
        get_scenario(params["trace_name"]),
        scale=params["scale"],
        seed=params["seed"],
        store=ctx.store,
    )
    prep = PrepSpec(
        train_fraction=defaults["train_fraction"],
        bin_seconds=defaults["bin_seconds"],
        engine=ctx.engine,
    )

    tasks: list[EvalTask] = []
    for c in params["perturbation_sizes"]:
        perturbed = perturb_trace(base_trace, float(c), random_state=params["seed"])
        workload = WorkloadSpec(trace=perturbed, prep=prep)
        extra = (
            ("trace", params["trace_name"]),
            ("perturbation_size", float(c)),
        )
        specs = [ScalerSpec("adapbp", float(f)) for f in params["adaptive_factors"]]
        specs += [
            ScalerSpec(
                "rs-hp",
                float(target),
                planning_interval=params["planning_interval"],
                monte_carlo_samples=params["monte_carlo_samples"],
            )
            for target in params["hp_targets"]
        ]
        tasks += [EvalTask(workload, spec, extra=extra) for spec in specs]
    return ctx.run_rows(tasks, base_seed=params["seed"])


register_experiment(
    ExperimentSpec(
        name="perturbation",
        title="AdapBP vs RobustScaler-HP under growing data perturbations",
        artifact="Figs. 6-7",
        params=(
            ParamSpec(
                "trace_name",
                "str",
                "crs",
                cli_flag="--trace",
                help="trace / workload scenario",
            ),
            ParamSpec("scale", "float", 0.25, help="trace size factor"),
            ParamSpec("seed", "int", 7, help="trace-generation and Monte Carlo seed"),
            ParamSpec(
                "perturbation_sizes",
                "float",
                (1.0, 2.0, 4.0, 6.0),
                sequence=True,
                cli_flag="--perturbation-size",
                help="extra-copy multipliers c of the perturbation protocol",
            ),
            ParamSpec(
                "hp_targets",
                "float",
                (0.3, 0.6, 0.9),
                sequence=True,
                cli_flag="--hp-target",
                help="RobustScaler-HP targets",
            ),
            ParamSpec(
                "adaptive_factors",
                "float",
                (25.0, 50.0, 100.0),
                sequence=True,
                cli_flag="--adaptive-factor",
                help="Adaptive Backup Pool rate factors",
            ),
            ParamSpec(
                "planning_interval", "float", 2.0, help="RobustScaler Delta (seconds)"
            ),
            ParamSpec(
                "monte_carlo_samples",
                "int",
                400,
                cli_flag="--mc-samples",
                help="Monte Carlo sample size R",
            ),
        ),
        run=_run_perturbation,
        result_columns=(
            "trace",
            "scaler",
            "perturbation_size",
            "rate_factor",
            "target_hp",
            "hit_rate",
            "rt_avg",
            "relative_cost",
        ),
        scenario_param="trace_name",
    )
)

