"""Figs. 6 and 7 — AdapBP vs RobustScaler-HP under growing data perturbations.

The CRS trace is perturbed with the paper's protocol (hourly five-minute
deletions plus ``c`` extra copies of the queries in a shifted five-minute
window), the workload model is re-fitted on the perturbed training data, and
both AdapBP and RobustScaler-HP are swept over their trade-off parameter on
the perturbed test data.  The paper's observation is that AdapBP degrades as
``c`` grows while RobustScaler's frontier barely moves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..scaling.adaptive_backup_pool import AdaptiveBackupPoolScaler
from ..scaling.robustscaler import RobustScalerObjective
from ..traces.perturbation import perturb_trace
from .base import (
    build_robustscaler,
    default_planner,
    make_trace,
    prepare_workload,
    run_scaler_sweep,
    trace_defaults,
)

__all__ = ["PerturbationExperimentConfig", "run_perturbation_experiment"]


@dataclass
class PerturbationExperimentConfig:
    """Parameters of the perturbation-robustness experiment (Figs. 6-7)."""

    trace_name: str = "crs"
    scale: float = 0.25
    seed: int = 7
    perturbation_sizes: Sequence[float] = (1.0, 2.0, 4.0, 6.0)
    hp_targets: Sequence[float] = (0.3, 0.6, 0.9)
    adaptive_factors: Sequence[float] = (25.0, 50.0, 100.0)
    planning_interval: float = 2.0
    monte_carlo_samples: int = 400


def run_perturbation_experiment(
    config: PerturbationExperimentConfig | None = None,
) -> list[dict]:
    """Compare AdapBP and RobustScaler-HP on increasingly perturbed traces."""
    config = config or PerturbationExperimentConfig()
    defaults = trace_defaults(config.trace_name)
    base_trace = make_trace(config.trace_name, scale=config.scale, seed=config.seed)
    planner = default_planner(config.planning_interval, config.monte_carlo_samples)

    rows: list[dict] = []
    for c in config.perturbation_sizes:
        perturbed = perturb_trace(base_trace, float(c), random_state=config.seed)
        workload = prepare_workload(
            perturbed,
            train_fraction=defaults["train_fraction"],
            bin_seconds=defaults["bin_seconds"],
        )
        batch = run_scaler_sweep(
            workload,
            lambda factor: AdaptiveBackupPoolScaler(float(factor)),
            list(config.adaptive_factors),
            parameter_name="rate_factor",
        )
        batch += run_scaler_sweep(
            workload,
            lambda target: build_robustscaler(
                workload, RobustScalerObjective.HIT_PROBABILITY, target, planner=planner
            ),
            list(config.hp_targets),
            parameter_name="target_hp",
        )
        for row in batch:
            row["perturbation_size"] = float(c)
            row["trace"] = config.trace_name
        rows.extend(batch)
    return rows
