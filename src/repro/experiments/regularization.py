"""Table III — impact of the periodicity regularization on intensity error.

Arrival data are generated from the paper's known daily-bump intensity
``lambda(t) = 4^10 u^10 (1-u)^10 + 0.1`` (``u`` the phase within one day)
over one week; the regularized NHPP (eq. 1) is fitted once with and once
without the periodicity penalty, and the MSE/MAE of the fitted intensity
against the ground truth is reported together with the relative improvement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import ADMMConfig, NHPPConfig
from ..metrics.errors import mean_absolute_error, mean_squared_error
from ..nhpp.admm import fit_log_intensity
from ..nhpp.objective import RegularizedNHPPObjective
from ..nhpp.sampling import sample_counts
from ..traces.synthetic import beta_bump_intensity
from ..nhpp.intensity import PiecewiseConstantIntensity

__all__ = ["RegularizationExperimentConfig", "run_regularization_experiment"]


@dataclass
class RegularizationExperimentConfig:
    """Parameters of the periodicity-regularization study (Table III).

    The paper uses a one-week horizon with a one-day period at 60-second
    bins (10 080 bins); the default here shortens the horizon but keeps the
    number of observed cycles the same so the comparison is meaningful.
    """

    period_seconds: float = 14_400.0
    n_periods: int = 7
    bin_seconds: float = 60.0
    peak_qps: float = 1.0
    base_qps: float = 0.1
    exponent: float = 10.0
    beta_smooth: float = 50.0
    beta_period: float = 10.0
    seed: int = 0
    max_iterations: int = 300


def run_regularization_experiment(
    config: RegularizationExperimentConfig | None = None,
) -> list[dict]:
    """Fit the NHPP with and without the periodicity penalty and compare errors."""
    config = config or RegularizationExperimentConfig()
    horizon = config.period_seconds * config.n_periods
    n_bins = int(horizon / config.bin_seconds)
    times = (np.arange(n_bins) + 0.5) * config.bin_seconds
    truth = beta_bump_intensity(
        times,
        peak=config.peak_qps,
        period_seconds=config.period_seconds,
        exponent=config.exponent,
        base=config.base_qps,
    )
    truth_intensity = PiecewiseConstantIntensity(
        truth, config.bin_seconds, extrapolation="periodic"
    )
    counts = sample_counts(truth_intensity, horizon, config.seed)
    period_bins = int(round(config.period_seconds / config.bin_seconds))
    admm = ADMMConfig(max_iterations=config.max_iterations)

    rows: list[dict] = []
    estimates: dict[str, np.ndarray] = {}
    for label, beta_period, period in (
        ("NHPP w/o periodicity reg.", 0.0, None),
        ("NHPP w/ periodicity reg.", config.beta_period, period_bins),
    ):
        objective = RegularizedNHPPObjective(
            counts=counts,
            bin_seconds=config.bin_seconds,
            beta_smooth=config.beta_smooth,
            beta_period=beta_period,
            period_bins=period,
        )
        result = fit_log_intensity(objective, admm)
        estimate = np.exp(result.log_intensity)
        estimates[label] = estimate
        rows.append(
            {
                "model": label,
                "mse": mean_squared_error(estimate, truth),
                "mae": mean_absolute_error(estimate, truth),
                "admm_iterations": result.n_iterations,
            }
        )

    without, with_reg = rows[0], rows[1]
    rows.append(
        {
            "model": "improvement",
            "mse": _relative_improvement(without["mse"], with_reg["mse"]),
            "mae": _relative_improvement(without["mae"], with_reg["mae"]),
            "admm_iterations": None,
        }
    )
    return rows


def _relative_improvement(baseline: float, improved: float) -> float:
    """Fractional reduction of an error metric (positive means better)."""
    if baseline <= 0:
        return 0.0
    return (baseline - improved) / baseline
