"""Table III — impact of the periodicity regularization on intensity error.

Arrival data are generated from the paper's known daily-bump intensity
``lambda(t) = 4^10 u^10 (1-u)^10 + 0.1`` (``u`` the phase within one day)
over one week; the regularized NHPP (eq. 1) is fitted once with and once
without the periodicity penalty, and the MSE/MAE of the fitted intensity
against the ground truth is reported together with the relative improvement.

Registered as ``"table3"`` in :mod:`repro.api` (a pure fitting study — no
replay, no engine, no runtime executor).
"""

from __future__ import annotations


import numpy as np

from ..api import (
    ExperimentSpec,
    ParamSpec,
    register_experiment,
)
from ..api.session import RunContext
from ..config import ADMMConfig
from ..metrics.errors import mean_absolute_error, mean_squared_error
from ..nhpp.admm import fit_log_intensity
from ..nhpp.objective import RegularizedNHPPObjective
from ..nhpp.sampling import sample_counts
from ..traces.synthetic import beta_bump_intensity
from ..nhpp.intensity import PiecewiseConstantIntensity

__all__: list[str] = []


def _run_regularization(params: dict, ctx: RunContext) -> list[dict]:
    """Fit the NHPP with and without the periodicity penalty and compare errors."""
    horizon = params["period_seconds"] * params["n_periods"]
    n_bins = int(horizon / params["bin_seconds"])
    times = (np.arange(n_bins) + 0.5) * params["bin_seconds"]
    truth = beta_bump_intensity(
        times,
        peak=params["peak_qps"],
        period_seconds=params["period_seconds"],
        exponent=params["exponent"],
        base=params["base_qps"],
    )
    truth_intensity = PiecewiseConstantIntensity(
        truth, params["bin_seconds"], extrapolation="periodic"
    )
    counts = sample_counts(truth_intensity, horizon, params["seed"])
    period_bins = int(round(params["period_seconds"] / params["bin_seconds"]))
    admm = ADMMConfig(max_iterations=params["max_iterations"])

    rows: list[dict] = []
    for label, beta_period, period in (
        ("NHPP w/o periodicity reg.", 0.0, None),
        ("NHPP w/ periodicity reg.", params["beta_period"], period_bins),
    ):
        objective = RegularizedNHPPObjective(
            counts=counts,
            bin_seconds=params["bin_seconds"],
            beta_smooth=params["beta_smooth"],
            beta_period=beta_period,
            period_bins=period,
        )
        result = fit_log_intensity(objective, admm)
        estimate = np.exp(result.log_intensity)
        rows.append(
            {
                "model": label,
                "mse": mean_squared_error(estimate, truth),
                "mae": mean_absolute_error(estimate, truth),
                "admm_iterations": result.n_iterations,
            }
        )

    without, with_reg = rows[0], rows[1]
    rows.append(
        {
            "model": "improvement",
            "mse": _relative_improvement(without["mse"], with_reg["mse"]),
            "mae": _relative_improvement(without["mae"], with_reg["mae"]),
            "admm_iterations": None,
        }
    )
    return rows


def _relative_improvement(baseline: float, improved: float) -> float:
    """Fractional reduction of an error metric (positive means better)."""
    if baseline <= 0:
        return 0.0
    return (baseline - improved) / baseline


register_experiment(
    ExperimentSpec(
        name="table3",
        title="periodicity regularization's effect on intensity error",
        artifact="Table III",
        params=(
            ParamSpec(
                "period_seconds", "float", 14_400.0, help="true period (seconds)"
            ),
            ParamSpec("n_periods", "int", 7, help="observed cycles"),
            ParamSpec("bin_seconds", "float", 60.0, help="fitting bin width"),
            ParamSpec("peak_qps", "float", 1.0, help="intensity peak (QPS)"),
            ParamSpec("base_qps", "float", 0.1, help="intensity base (QPS)"),
            ParamSpec("exponent", "float", 10.0, help="bump sharpness exponent"),
            ParamSpec(
                "beta_smooth", "float", 50.0, help="smoothness weight beta_1"
            ),
            ParamSpec(
                "beta_period", "float", 10.0, help="periodicity weight beta_2"
            ),
            ParamSpec("seed", "int", 0, help="count-sampling seed"),
            ParamSpec("max_iterations", "int", 300, help="ADMM iteration cap"),
        ),
        run=_run_regularization,
        result_columns=("model", "mse", "mae", "admm_iterations"),
        runtime=False,
        engine_aware=False,
    )
)

