"""Shared machinery for the experiment drivers.

The drivers all follow the same recipe — generate (or accept) a trace, split
it into training and test windows, fit the NHPP workload model on the
training part, and replay the test part under a set of autoscalers.  The
heavy lifting lives in :mod:`repro.runtime` (workload preparation, the
evaluation code path, batched serial/parallel execution); this module keeps
the driver-facing helpers and re-exports
:class:`~repro.runtime.workload.PreparedWorkload` /
:func:`~repro.runtime.workload.prepare_workload` from their historical
location.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

from ..config import PlannerConfig
from ..runtime.spec import ScalerSpec
from ..runtime.workload import PreparedWorkload, evaluate_prepared, prepare_workload
from ..scaling.adaptive_backup_pool import AdaptiveBackupPoolScaler
from ..scaling.backup_pool import BackupPoolScaler
from ..scaling.base import Autoscaler
from ..scaling.robustscaler import RobustScaler, RobustScalerObjective
from ..types import ArrivalTrace

__all__ = [
    "PreparedWorkload",
    "prepare_workload",
    "sweep_targets",
    "run_scaler_sweep",
    "default_planner",
    "build_robustscaler",
    "make_trace",
    "trace_defaults",
    "baseline_sweeps",
    "robustscaler_spec",
]


def default_planner(
    planning_interval: float = 2.0,
    monte_carlo_samples: int = 500,
) -> PlannerConfig:
    """Planner configuration used by the experiments (paper uses Delta = 1 s)."""
    return PlannerConfig(
        planning_interval=planning_interval,
        monte_carlo_samples=monte_carlo_samples,
    )


def build_robustscaler(
    workload: PreparedWorkload,
    objective: RobustScalerObjective,
    target: float,
    *,
    planner: PlannerConfig | None = None,
    random_state: int = 0,
) -> RobustScaler:
    """Construct a RobustScaler variant against a prepared workload."""
    return RobustScaler(
        workload.forecast,
        workload.pending_model,
        objective=objective,
        target=target,
        planner=planner or default_planner(),
        random_state=random_state,
    )


def robustscaler_spec(
    config,
    kind: str,
    target: float,
    *,
    parameter_name: str | None = None,
) -> ScalerSpec:
    """A RobustScaler :class:`~repro.runtime.ScalerSpec` bound to a driver config.

    ``config`` carries ``planning_interval`` and ``monte_carlo_samples`` —
    either as attributes (the legacy config dataclasses) or as mapping keys
    (the resolved parameter dictionaries of :mod:`repro.api`) — the one
    place the drivers' planner settings turn into declarative specs.
    """
    if isinstance(config, Mapping):
        planning_interval = config["planning_interval"]
        monte_carlo_samples = config["monte_carlo_samples"]
    else:
        planning_interval = config.planning_interval
        monte_carlo_samples = config.monte_carlo_samples
    return ScalerSpec(
        kind,
        float(target),
        parameter_name=parameter_name,
        planning_interval=planning_interval,
        monte_carlo_samples=monte_carlo_samples,
    )


def sweep_targets(values: Iterable[float]) -> list[float]:
    """Normalize a sweep of constraint levels into a sorted float list."""
    return sorted(float(v) for v in values)


def trace_defaults(name: str) -> dict:
    """Per-trace defaults (train split, bin width, sweep grids) used by drivers.

    The three paper traces carry hand-tuned grids; every other registered
    workload scenario gets generic defaults derived from its registry entry
    (its own train split, bin width and pending time plus the tag-refined
    target grids of
    :func:`repro.experiments.scenario_sweep.scenario_sweep_defaults`), which
    is what makes the whole scenario registry reachable from experiments
    that were historically limited to crs/google/alibaba.  Unknown names
    raise :class:`KeyError`.
    """
    defaults = {
        "crs": {
            "train_fraction": 0.75,
            "bin_seconds": 300.0,
            "pool_sizes": [0, 1, 2, 4, 8],
            "adaptive_factors": [0.0, 25.0, 50.0, 100.0, 200.0],
            "hp_targets": [0.3, 0.5, 0.7, 0.9, 0.99],
        },
        "google": {
            "train_fraction": 0.75,
            "bin_seconds": 60.0,
            "pool_sizes": [0, 1, 2, 4, 8, 16],
            "adaptive_factors": [0.0, 5.0, 10.0, 20.0, 40.0, 80.0],
            "hp_targets": [0.3, 0.5, 0.7, 0.9, 0.99],
        },
        "alibaba": {
            "train_fraction": 0.8,
            "bin_seconds": 60.0,
            "pool_sizes": [0, 1, 2, 4, 8, 16],
            "adaptive_factors": [0.0, 5.0, 10.0, 20.0, 40.0],
            "hp_targets": [0.3, 0.5, 0.7, 0.9, 0.99],
        },
    }
    key = name.lower()
    if key in defaults:
        return defaults[key]
    return _generic_scenario_defaults(name)


def _generic_scenario_defaults(name: str) -> dict:
    """Registry-derived defaults for scenarios beyond the paper's traces."""
    from ..exceptions import WorkloadError
    from ..workloads import get_scenario
    from .scenario_sweep import scenario_sweep_defaults

    try:
        scenario = get_scenario(name)
    except WorkloadError as exc:
        raise KeyError(
            f"unknown trace name {name!r}; expected one of "
            "['alibaba', 'crs', 'google'] or any registered workload scenario"
        ) from exc
    grids = scenario_sweep_defaults(scenario)
    return {
        "train_fraction": scenario.train_fraction,
        "bin_seconds": scenario.bin_seconds,
        "pending_time": scenario.pending_time,
        "pool_sizes": [0, 1, 2, 4, 8],
        "adaptive_factors": [0.0, 10.0, 25.0, 50.0, 100.0],
        "hp_targets": sorted(set(grids["hp_targets"]) | {0.9}),
    }


def make_trace(name: str, *, scale: float = 0.25, seed: int = 7) -> ArrivalTrace:
    """Generate any registered workload scenario at a configurable size.

    ``scale = 1.0`` approximates the paper's trace sizes (weeks of data,
    hundreds of thousands of queries for Alibaba); the default ``scale =
    0.25`` generates traces that keep the same structure — periodicity,
    spikes, noise, the Alibaba burst — but replay in seconds rather than
    minutes, which is what the test suite and the benchmark defaults use.

    Lookup goes through the scenario registry (:mod:`repro.workloads`), so
    besides the paper's ``crs``/``google``/``alibaba`` any library scenario
    name (``flash-crowd``, ``black-friday``, ...) works too.
    """
    from ..exceptions import WorkloadError
    from ..workloads import get_scenario

    scale = float(scale)
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    try:
        scenario = get_scenario(name)
    except WorkloadError as exc:
        raise KeyError(f"unknown trace name {name!r}") from exc
    return scenario.build_trace(scale=scale, seed=seed)


def run_scaler_sweep(
    workload: PreparedWorkload,
    scaler_factory: Callable[[float], Autoscaler],
    parameter_values: Sequence[float],
    *,
    parameter_name: str = "parameter",
) -> list[dict]:
    """Evaluate ``scaler_factory(value)`` for every value in the sweep.

    Returns one summary row per parameter value, each carrying the parameter
    under ``parameter_name``.  This is the in-process variant for callers
    holding live workloads and arbitrary factories; sweeps that should scale
    across processes go through :func:`repro.runtime.run_tasks` instead.
    """
    rows = []
    for value in parameter_values:
        scaler = scaler_factory(value)
        rows.append(
            evaluate_prepared(workload, scaler, extra={parameter_name: float(value)})
        )
    return rows


def baseline_sweeps(
    workload: PreparedWorkload,
    *,
    pool_sizes: Sequence[int],
    adaptive_factors: Sequence[float],
) -> list[dict]:
    """Evaluate the BP and AdapBP baselines over their parameter sweeps."""
    rows = run_scaler_sweep(
        workload,
        lambda size: BackupPoolScaler(int(size)),
        list(pool_sizes),
        parameter_name="pool_size",
    )
    rows += run_scaler_sweep(
        workload,
        lambda factor: AdaptiveBackupPoolScaler(float(factor)),
        list(adaptive_factors),
        parameter_name="rate_factor",
    )
    return rows
