"""Shared machinery for the experiment drivers.

The drivers all follow the same recipe — generate (or accept) a trace, split
it into training and test windows, fit the NHPP workload model on the
training part, and replay the test part under a set of autoscalers — so the
common steps live here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from ..config import NHPPConfig, PlannerConfig, SimulationConfig
from ..metrics.report import summarize_result
from ..nhpp.intensity import PiecewiseConstantIntensity
from ..nhpp.model import NHPPModel
from ..pending import DeterministicPendingTime, PendingTimeModel
from ..scaling.adaptive_backup_pool import AdaptiveBackupPoolScaler
from ..scaling.backup_pool import BackupPoolScaler, ReactiveScaler
from ..scaling.base import Autoscaler
from ..scaling.robustscaler import RobustScaler, RobustScalerObjective
from ..simulation.engine import ScalingPerQuerySimulator
from ..types import ArrivalTrace, SimulationResult

__all__ = [
    "PreparedWorkload",
    "prepare_workload",
    "sweep_targets",
    "run_scaler_sweep",
    "default_planner",
    "build_robustscaler",
    "make_trace",
    "trace_defaults",
]


@dataclass
class PreparedWorkload:
    """A trace split into train/test together with the fitted workload model.

    Attributes
    ----------
    name:
        Trace name (used in report rows).
    train, test:
        The training and test sub-traces; the test trace is rebased to start
        at time 0 and the forecast's origin coincides with it.
    model:
        The NHPP model fitted on the training window.
    forecast:
        The extrapolated intensity used by the RobustScaler variants.
    pending_model:
        The pending-time model shared by the planner and the simulator.
    simulation:
        Simulator configuration used for the replays.
    reference_cost:
        Total cost of the purely reactive baseline on the test trace, the
        denominator of the ``relative cost`` metric.
    """

    name: str
    train: ArrivalTrace
    test: ArrivalTrace
    model: NHPPModel
    forecast: PiecewiseConstantIntensity
    pending_model: PendingTimeModel
    simulation: SimulationConfig
    reference_cost: float

    @property
    def mean_processing_time(self) -> float:
        """Average processing time of the test queries (``mu_s``)."""
        processing = np.asarray(self.test.processing_times, dtype=float)
        return float(processing.mean()) if processing.size else 0.0

    def replay(self, scaler: Autoscaler) -> SimulationResult:
        """Replay the test trace under ``scaler``."""
        simulator = ScalingPerQuerySimulator(self.simulation)
        return simulator.replay(self.test, scaler)

    def evaluate(self, scaler: Autoscaler, **extra: float | str) -> dict:
        """Replay ``scaler`` and return a summary row for report tables."""
        result = self.replay(scaler)
        row: dict = {"trace": self.name, "scaler": scaler.name}
        row.update(extra)
        row.update(summarize_result(result, reference_cost=self.reference_cost))
        return row


def prepare_workload(
    trace: ArrivalTrace,
    *,
    train_fraction: float = 0.75,
    bin_seconds: float = 60.0,
    pending_time: float = 13.0,
    nhpp_config: NHPPConfig | None = None,
    simulation: SimulationConfig | None = None,
    period_bins: int | None = None,
) -> PreparedWorkload:
    """Split, fit, and package a trace for the experiment drivers.

    Parameters
    ----------
    trace:
        The full trace (training + test).
    train_fraction:
        Fraction of the horizon used for training.
    bin_seconds:
        Bin width for the QPS series the NHPP is fitted on.
    pending_time:
        Instance startup latency (seconds) used in both planning and replay.
    nhpp_config:
        NHPP hyper-parameters; defaults to the library defaults.
    simulation:
        Simulator configuration; defaults to a deterministic pending time of
        ``pending_time`` seconds.
    period_bins:
        Explicit period (in bins) to use instead of running detection.
    """
    train, test = trace.split(train_fraction)
    model = NHPPModel(nhpp_config, bin_seconds=bin_seconds)
    model.fit(train, period_bins=period_bins)
    forecast = model.forecast()
    pending_model = DeterministicPendingTime(pending_time)
    sim_config = simulation or SimulationConfig(pending_time=pending_time)
    simulator = ScalingPerQuerySimulator(sim_config)
    reference = simulator.replay(test, ReactiveScaler())
    return PreparedWorkload(
        name=trace.name,
        train=train,
        test=test,
        model=model,
        forecast=forecast,
        pending_model=pending_model,
        simulation=sim_config,
        reference_cost=reference.total_cost,
    )


def default_planner(
    planning_interval: float = 2.0,
    monte_carlo_samples: int = 500,
) -> PlannerConfig:
    """Planner configuration used by the experiments (paper uses Delta = 1 s)."""
    return PlannerConfig(
        planning_interval=planning_interval,
        monte_carlo_samples=monte_carlo_samples,
    )


def build_robustscaler(
    workload: PreparedWorkload,
    objective: RobustScalerObjective,
    target: float,
    *,
    planner: PlannerConfig | None = None,
    random_state: int = 0,
) -> RobustScaler:
    """Construct a RobustScaler variant against a prepared workload."""
    return RobustScaler(
        workload.forecast,
        workload.pending_model,
        objective=objective,
        target=target,
        planner=planner or default_planner(),
        random_state=random_state,
    )


def sweep_targets(values: Iterable[float]) -> list[float]:
    """Normalize a sweep of constraint levels into a sorted float list."""
    return sorted(float(v) for v in values)


def trace_defaults(name: str) -> dict:
    """Per-trace defaults (train split, bin width, sweep grids) used by drivers."""
    defaults = {
        "crs": {
            "train_fraction": 0.75,
            "bin_seconds": 300.0,
            "pool_sizes": [0, 1, 2, 4, 8],
            "adaptive_factors": [0.0, 25.0, 50.0, 100.0, 200.0],
            "hp_targets": [0.3, 0.5, 0.7, 0.9, 0.99],
        },
        "google": {
            "train_fraction": 0.75,
            "bin_seconds": 60.0,
            "pool_sizes": [0, 1, 2, 4, 8, 16],
            "adaptive_factors": [0.0, 5.0, 10.0, 20.0, 40.0, 80.0],
            "hp_targets": [0.3, 0.5, 0.7, 0.9, 0.99],
        },
        "alibaba": {
            "train_fraction": 0.8,
            "bin_seconds": 60.0,
            "pool_sizes": [0, 1, 2, 4, 8, 16],
            "adaptive_factors": [0.0, 5.0, 10.0, 20.0, 40.0],
            "hp_targets": [0.3, 0.5, 0.7, 0.9, 0.99],
        },
    }
    key = name.lower()
    if key not in defaults:
        raise KeyError(f"unknown trace name {name!r}; expected one of {sorted(defaults)}")
    return defaults[key]


def make_trace(name: str, *, scale: float = 0.25, seed: int = 7) -> ArrivalTrace:
    """Generate any registered workload scenario at a configurable size.

    ``scale = 1.0`` approximates the paper's trace sizes (weeks of data,
    hundreds of thousands of queries for Alibaba); the default ``scale =
    0.25`` generates traces that keep the same structure — periodicity,
    spikes, noise, the Alibaba burst — but replay in seconds rather than
    minutes, which is what the test suite and the benchmark defaults use.

    Lookup goes through the scenario registry (:mod:`repro.workloads`), so
    besides the paper's ``crs``/``google``/``alibaba`` any library scenario
    name (``flash-crowd``, ``black-friday``, ...) works too.
    """
    from ..exceptions import WorkloadError
    from ..workloads import get_scenario

    scale = float(scale)
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    try:
        scenario = get_scenario(name)
    except WorkloadError as exc:
        raise KeyError(f"unknown trace name {name!r}") from exc
    return scenario.build_trace(scale=scale, seed=seed)


def run_scaler_sweep(
    workload: PreparedWorkload,
    scaler_factory: Callable[[float], Autoscaler],
    parameter_values: Sequence[float],
    *,
    parameter_name: str = "parameter",
) -> list[dict]:
    """Evaluate ``scaler_factory(value)`` for every value in the sweep.

    Returns one summary row per parameter value, each carrying the parameter
    under ``parameter_name``.
    """
    rows = []
    for value in parameter_values:
        scaler = scaler_factory(value)
        rows.append(workload.evaluate(scaler, **{parameter_name: float(value)}))
    return rows


def baseline_sweeps(
    workload: PreparedWorkload,
    *,
    pool_sizes: Sequence[int],
    adaptive_factors: Sequence[float],
) -> list[dict]:
    """Evaluate the BP and AdapBP baselines over their parameter sweeps."""
    rows = run_scaler_sweep(
        workload,
        lambda size: BackupPoolScaler(int(size)),
        list(pool_sizes),
        parameter_name="pool_size",
    )
    rows += run_scaler_sweep(
        workload,
        lambda factor: AdaptiveBackupPoolScaler(float(factor)),
        list(adaptive_factors),
        parameter_name="rate_factor",
    )
    return rows
