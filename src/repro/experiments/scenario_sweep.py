"""Scenario sweep — RobustScaler vs. baselines across the whole registry.

Where the paper's Fig. 4 compares autoscalers on three traces, this driver
runs the comparison across *every* scenario in the workload registry
(:mod:`repro.workloads`): for each scenario it generates the trace, fits the
NHPP workload model on the training window, replays the test window under
the reactive baseline, Backup Pool, Adaptive Backup Pool and all three
RobustScaler variants (HP-, RT- and cost-constrained, each over a
per-scenario default target grid), and reports cost/QoS rows with the
per-scenario Pareto frontier marked (via :mod:`repro.metrics.pareto`).

Execution routes through :mod:`repro.runtime`: the sweep is expressed as a
batch of :class:`~repro.runtime.EvalTask` and evaluated either serially or
on a process pool (``workers`` / ``REPRO_WORKERS``) with bit-identical
rows.  Everything is deterministic for a fixed ``seed``: the traces, the
per-task Monte Carlo streams, and therefore every row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..exceptions import ExperimentError
from ..metrics.pareto import ParetoPoint, pareto_frontier
from ..runtime import EvalTask, PrepSpec, ScalerSpec, WorkloadSpec, run_task_rows
from ..store.traces import get_or_build_trace
from ..workloads import DEFAULT_REGISTRY, ScenarioRegistry
from ..workloads.scenarios import Scenario
from .base import robustscaler_spec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..store import ArtifactStore

__all__ = [
    "ScenarioSweepConfig",
    "scenario_sweep_defaults",
    "build_scenario_sweep_tasks",
    "run_scenario_sweep_experiment",
    "summarize_scenario_sweep",
]


#: Baseline sweep grids, refined per scenario by tag/name overrides below —
#: the registry-wide analogue of :func:`repro.experiments.base.trace_defaults`.
_SWEEP_DEFAULTS = {
    "hp_targets": (0.5, 0.9),
    "rt_budget_fractions": (0.5, 0.1),
    "cost_budget_fractions": (0.05, 0.25),
}

#: Tag-keyed refinements (applied in scenario tag order, later tags win).
_TAG_SWEEP_OVERRIDES = {
    # Spiky, hard-to-forecast traffic: chasing very high hit probabilities
    # is hopeless, so sweep moderate targets and looser waiting budgets.
    "adversarial": {"hp_targets": (0.3, 0.7), "rt_budget_fractions": (0.75, 0.25)},
    "heavy-tail": {"hp_targets": (0.3, 0.7), "rt_budget_fractions": (0.75, 0.25)},
}

#: Name-keyed refinements (highest precedence), mirroring ``trace_defaults``.
_NAME_SWEEP_OVERRIDES = {
    "crs": {"hp_targets": (0.5, 0.9, 0.99)},
    "google": {"hp_targets": (0.5, 0.9, 0.99)},
    "alibaba": {"hp_targets": (0.5, 0.9, 0.99)},
}


def scenario_sweep_defaults(scenario: Scenario) -> dict:
    """Default sweep grids for ``scenario``.

    Returns ``hp_targets`` (absolute hit probabilities),
    ``rt_budget_fractions`` (waiting budgets as fractions of the scenario's
    pending time) and ``cost_budget_fractions`` (idle budgets as fractions
    of the test window's mean inter-arrival gap).  Base grids are refined by
    tag- and then name-keyed overrides, the registry-wide mirror of the
    per-trace ``trace_defaults`` grids.
    """
    grids = dict(_SWEEP_DEFAULTS)
    for tag in scenario.tags:
        grids.update(_TAG_SWEEP_OVERRIDES.get(tag, {}))
    grids.update(_NAME_SWEEP_OVERRIDES.get(scenario.name.lower(), {}))
    return grids


@dataclass
class ScenarioSweepConfig:
    """Parameters of the scenario sweep.

    Attributes
    ----------
    scenario_names:
        Which scenarios to run; ``None`` sweeps the whole registry.
    scale:
        Trace size factor applied to every scenario (1.0 = full size).
    seed:
        Seed for trace generation and per-task Monte Carlo streams.
    planning_interval, monte_carlo_samples:
        RobustScaler planner settings.
    hp_targets:
        Target hit probabilities for the RobustScaler-HP sweep; ``None``
        uses the per-scenario defaults of :func:`scenario_sweep_defaults`.
    rt_budgets, cost_budgets:
        Explicit RT/cost constraint grids (seconds); ``None`` derives them
        from the per-scenario default fractions.
    include_rt_variant, include_cost_variant:
        Allow dropping the RT-/cost-constrained RobustScaler sweeps for
        faster runs.
    pool_sizes, adaptive_factors:
        Baseline sweep grids (Backup Pool sizes, AdapBP rate factors).
    min_test_queries:
        Scenarios whose test window holds fewer queries than this are
        reported with a ``note`` instead of being replayed.
    registry:
        Scenario registry to sweep; defaults to the global one.
    workers:
        Process count for the evaluation; ``None`` consults the
        ``REPRO_WORKERS`` environment variable and defaults to serial.
    """

    scenario_names: Sequence[str] | None = None
    scale: float = 0.1
    seed: int = 7
    planning_interval: float = 10.0
    monte_carlo_samples: int = 120
    hp_targets: Sequence[float] | None = None
    rt_budgets: Sequence[float] | None = None
    cost_budgets: Sequence[float] | None = None
    include_rt_variant: bool = True
    include_cost_variant: bool = True
    pool_sizes: Sequence[int] = (1, 4)
    adaptive_factors: Sequence[float] = (10.0,)
    min_test_queries: int = 8
    registry: ScenarioRegistry | None = None
    workers: int | None = None
    #: Replay engine ("reference" / "batched"); both give identical rows.
    engine: str | None = None
    #: Disk artifact store: prepared workloads and generated traces persist
    #: across CLI invocations, and ``run_id`` journaling becomes available.
    store: "ArtifactStore | None" = None
    #: Journal per-task completions under this id (resumable runs).
    run_id: str | None = None


def _sweep_registry(config: ScenarioSweepConfig) -> ScenarioRegistry:
    # Explicit None check: an empty ScenarioRegistry is falsy (len == 0) and
    # must not silently fall back to the global registry.
    return DEFAULT_REGISTRY if config.registry is None else config.registry


def _sweep_names(config: ScenarioSweepConfig, registry: ScenarioRegistry) -> list[str]:
    """The scenarios to sweep, in sweep order."""
    if config.scenario_names is None:
        names = registry.names()
    else:
        names = list(config.scenario_names)
    if not names:
        raise ExperimentError("scenario sweep requires at least one scenario")
    return names


def build_scenario_sweep_tasks(
    config: ScenarioSweepConfig | None = None,
) -> tuple[list[EvalTask], list[dict]]:
    """Expand the sweep configuration into runtime tasks.

    Returns ``(tasks, skipped)`` where ``tasks`` is the evaluation batch
    (grouped by scenario, so executors get good workload-cache locality) and
    ``skipped`` holds one note row per scenario whose test window is too
    small to replay at the configured scale.
    """
    config = config or ScenarioSweepConfig()
    registry = _sweep_registry(config)
    names = _sweep_names(config, registry)

    tasks: list[EvalTask] = []
    skipped: list[dict] = []
    for name in names:
        scenario = registry.get(name)
        trace = get_or_build_trace(
            scenario, scale=config.scale, seed=config.seed, store=config.store
        )
        _, test = trace.split(scenario.train_fraction)
        if test.n_queries < config.min_test_queries:
            skipped.append(
                {
                    "scenario": scenario.name,
                    "scaler": "-",
                    "note": (
                        f"skipped: only {test.n_queries} test queries "
                        f"at scale {config.scale:g}"
                    ),
                }
            )
            continue

        prep = PrepSpec(
            train_fraction=scenario.train_fraction,
            bin_seconds=scenario.bin_seconds,
            pending_time=scenario.pending_time,
            engine=config.engine,
        )
        if config.registry is None:
            workload = WorkloadSpec(
                scenario=scenario.name,
                scale=config.scale,
                seed=config.seed,
                prep=prep,
            )
        else:
            # Custom registries are not importable inside pool workers, so
            # ship the concrete trace instead of the scenario name.
            workload = WorkloadSpec(trace=trace, prep=prep)

        grids = scenario_sweep_defaults(scenario)
        hp_targets = (
            grids["hp_targets"] if config.hp_targets is None else config.hp_targets
        )
        rt_budgets = config.rt_budgets
        if rt_budgets is None:
            rt_budgets = [
                scenario.pending_time * f for f in grids["rt_budget_fractions"]
            ]
        cost_budgets = config.cost_budgets
        if cost_budgets is None:
            mean_gap = 1.0 / max(test.mean_qps, 1e-9)
            cost_budgets = [mean_gap * f for f in grids["cost_budget_fractions"]]

        extra = (("scenario", scenario.name),)
        specs: list[ScalerSpec] = [ScalerSpec("reactive")]
        specs += [ScalerSpec("bp", int(size)) for size in config.pool_sizes]
        specs += [ScalerSpec("adapbp", float(f)) for f in config.adaptive_factors]
        specs += [robustscaler_spec(config, "rs-hp", t) for t in hp_targets]
        if config.include_rt_variant:
            specs += [
                robustscaler_spec(config, "rs-rt", b)
                for b in sorted(rt_budgets, reverse=True)
            ]
        if config.include_cost_variant:
            specs += [
                robustscaler_spec(config, "rs-cost", b) for b in sorted(cost_budgets)
            ]
        tasks += [EvalTask(workload, spec, extra=extra) for spec in specs]
    return tasks, skipped


def run_scenario_sweep_experiment(
    config: ScenarioSweepConfig | None = None,
) -> list[dict]:
    """Run the autoscaler comparison on every configured scenario.

    Returns one row per (scenario, scaler, parameter) combination with the
    usual summary metrics plus ``on_frontier`` marking the scenario's
    cost/hit-rate Pareto frontier.
    """
    config = config or ScenarioSweepConfig()
    tasks, skipped = build_scenario_sweep_tasks(config)
    evaluated = run_task_rows(
        tasks,
        base_seed=config.seed,
        workers=config.workers,
        store=config.store,
        run_id=config.run_id,
    )

    by_scenario: dict[str, list[dict]] = {}
    for row in evaluated:
        by_scenario.setdefault(row["scenario"], []).append(row)
    for scenario_rows in by_scenario.values():
        _mark_frontier(scenario_rows)

    # Interleave evaluated and skipped scenarios back into sweep order.
    registry = _sweep_registry(config)
    notes = {row["scenario"]: row for row in skipped}
    rows: list[dict] = []
    for name in _sweep_names(config, registry):
        canonical = registry.get(name).name
        if canonical in by_scenario:
            rows.extend(by_scenario.pop(canonical))
        elif canonical in notes:
            rows.append(notes.pop(canonical))
    return rows


def _mark_frontier(rows: list[dict]) -> None:
    """Annotate each row with whether it sits on the (cost, hit-rate) frontier."""
    points = [
        ParetoPoint(
            cost=row.get("relative_cost", row.get("total_cost", 0.0)),
            qos=row.get("hit_rate", 0.0),
            label=id(row),
        )
        for row in rows
    ]
    frontier_ids = {point.label for point in pareto_frontier(points)}
    for row in rows:
        row["on_frontier"] = id(row) in frontier_ids


def summarize_scenario_sweep(rows: list[dict]) -> list[dict]:
    """One row per scenario: its Pareto-frontier scalers and best QoS/cost.

    The summary makes the sweep digestible — which strategies matter on
    which workloads — without re-reading the full per-parameter table.
    """
    by_scenario: dict[str, list[dict]] = {}
    notes: dict[str, str] = {}
    for row in rows:
        if "hit_rate" not in row:
            if "note" in row:
                notes[row["scenario"]] = row["note"]
            continue
        by_scenario.setdefault(row["scenario"], []).append(row)

    summary: list[dict] = []
    for scenario in sorted(set(by_scenario) | set(notes)):
        # Uniform schema so format_table (which takes columns from the first
        # row) renders skipped and evaluated scenarios alike; skipped
        # scenarios stay visible so a summary-only view cannot misrepresent
        # registry coverage.
        row = {
            "scenario": scenario,
            "n_points": 0,
            "frontier_scalers": "",
            "best_hit_rate": None,
            "best_hit_scaler": None,
            "best_hit_rel_cost": None,
            "note": notes.get(scenario, ""),
        }
        scenario_rows = by_scenario.get(scenario)
        if scenario_rows:
            frontier = [r for r in scenario_rows if r.get("on_frontier")]
            best_hit = max(scenario_rows, key=lambda r: r.get("hit_rate", 0.0))
            row.update(
                n_points=len(scenario_rows),
                frontier_scalers=", ".join(sorted({r["scaler"] for r in frontier})),
                best_hit_rate=best_hit.get("hit_rate"),
                best_hit_scaler=best_hit.get("scaler"),
                best_hit_rel_cost=best_hit.get("relative_cost"),
            )
        summary.append(row)
    return summary
