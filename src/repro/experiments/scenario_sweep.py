"""Scenario sweep — RobustScaler vs. baselines across the whole registry.

Where the paper's Fig. 4 compares autoscalers on three traces, this driver
runs the comparison across *every* scenario in the workload registry
(:mod:`repro.workloads`): for each scenario it generates the trace, fits the
NHPP workload model on the training window, replays the test window under
the reactive baseline, Backup Pool, Adaptive Backup Pool and
RobustScaler-HP, and reports cost/QoS rows with the per-scenario Pareto
frontier marked (via :mod:`repro.metrics.pareto`).

Everything is deterministic for a fixed ``seed``: the traces, the Monte
Carlo decisions, and therefore every row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..exceptions import ExperimentError
from ..metrics.pareto import ParetoPoint, pareto_frontier
from ..scaling.adaptive_backup_pool import AdaptiveBackupPoolScaler
from ..scaling.backup_pool import BackupPoolScaler, ReactiveScaler
from ..scaling.robustscaler import RobustScalerObjective
from ..workloads import DEFAULT_REGISTRY, ScenarioRegistry
from .base import (
    build_robustscaler,
    default_planner,
    prepare_workload,
    run_scaler_sweep,
)

__all__ = [
    "ScenarioSweepConfig",
    "run_scenario_sweep_experiment",
    "summarize_scenario_sweep",
]


@dataclass
class ScenarioSweepConfig:
    """Parameters of the scenario sweep.

    Attributes
    ----------
    scenario_names:
        Which scenarios to run; ``None`` sweeps the whole registry.
    scale:
        Trace size factor applied to every scenario (1.0 = full size).
    seed:
        Seed for trace generation and Monte Carlo planning.
    planning_interval, monte_carlo_samples:
        RobustScaler planner settings.
    hp_targets:
        Target hit probabilities for the RobustScaler-HP sweep.
    pool_sizes, adaptive_factors:
        Baseline sweep grids (Backup Pool sizes, AdapBP rate factors).
    min_test_queries:
        Scenarios whose test window holds fewer queries than this are
        reported with a ``note`` instead of being replayed.
    registry:
        Scenario registry to sweep; defaults to the global one.
    """

    scenario_names: Sequence[str] | None = None
    scale: float = 0.1
    seed: int = 7
    planning_interval: float = 10.0
    monte_carlo_samples: int = 120
    hp_targets: Sequence[float] = (0.5, 0.9)
    pool_sizes: Sequence[int] = (1, 4)
    adaptive_factors: Sequence[float] = (10.0,)
    min_test_queries: int = 8
    registry: ScenarioRegistry | None = None


def run_scenario_sweep_experiment(
    config: ScenarioSweepConfig | None = None,
) -> list[dict]:
    """Run the autoscaler comparison on every configured scenario.

    Returns one row per (scenario, scaler, parameter) combination with the
    usual summary metrics plus ``on_frontier`` marking the scenario's
    cost/hit-rate Pareto frontier.
    """
    config = config or ScenarioSweepConfig()
    # Explicit None check: an empty ScenarioRegistry is falsy (len == 0) and
    # must not silently fall back to the global registry.
    registry = DEFAULT_REGISTRY if config.registry is None else config.registry
    if config.scenario_names is None:
        names = registry.names()
    else:
        names = list(config.scenario_names)
    if not names:
        raise ExperimentError("scenario sweep requires at least one scenario")
    planner = default_planner(config.planning_interval, config.monte_carlo_samples)

    rows: list[dict] = []
    for name in names:
        scenario = registry.get(name)
        trace = scenario.build_trace(scale=config.scale, seed=config.seed)
        workload = prepare_workload(
            trace,
            train_fraction=scenario.train_fraction,
            bin_seconds=scenario.bin_seconds,
            pending_time=scenario.pending_time,
        )
        if workload.test.n_queries < config.min_test_queries:
            rows.append(
                {
                    "scenario": scenario.name,
                    "scaler": "-",
                    "note": (
                        f"skipped: only {workload.test.n_queries} test queries "
                        f"at scale {config.scale:g}"
                    ),
                }
            )
            continue

        scenario_rows = [workload.evaluate(ReactiveScaler())]
        scenario_rows += run_scaler_sweep(
            workload,
            lambda size: BackupPoolScaler(int(size)),
            list(config.pool_sizes),
            parameter_name="pool_size",
        )
        scenario_rows += run_scaler_sweep(
            workload,
            lambda factor: AdaptiveBackupPoolScaler(float(factor)),
            list(config.adaptive_factors),
            parameter_name="rate_factor",
        )
        scenario_rows += run_scaler_sweep(
            workload,
            lambda target: build_robustscaler(
                workload,
                RobustScalerObjective.HIT_PROBABILITY,
                target,
                planner=planner,
                random_state=config.seed,
            ),
            list(config.hp_targets),
            parameter_name="target_hp",
        )
        _mark_frontier(scenario_rows)
        for row in scenario_rows:
            row["scenario"] = scenario.name
        rows.extend(scenario_rows)
    return rows


def _mark_frontier(rows: list[dict]) -> None:
    """Annotate each row with whether it sits on the (cost, hit-rate) frontier."""
    points = [
        ParetoPoint(
            cost=row.get("relative_cost", row.get("total_cost", 0.0)),
            qos=row.get("hit_rate", 0.0),
            label=id(row),
        )
        for row in rows
    ]
    frontier_ids = {point.label for point in pareto_frontier(points)}
    for row in rows:
        row["on_frontier"] = id(row) in frontier_ids


def summarize_scenario_sweep(rows: list[dict]) -> list[dict]:
    """One row per scenario: its Pareto-frontier scalers and best QoS/cost.

    The summary makes the sweep digestible — which strategies matter on
    which workloads — without re-reading the full per-parameter table.
    """
    by_scenario: dict[str, list[dict]] = {}
    notes: dict[str, str] = {}
    for row in rows:
        if "hit_rate" not in row:
            if "note" in row:
                notes[row["scenario"]] = row["note"]
            continue
        by_scenario.setdefault(row["scenario"], []).append(row)

    summary: list[dict] = []
    for scenario in sorted(set(by_scenario) | set(notes)):
        # Uniform schema so format_table (which takes columns from the first
        # row) renders skipped and evaluated scenarios alike; skipped
        # scenarios stay visible so a summary-only view cannot misrepresent
        # registry coverage.
        row = {
            "scenario": scenario,
            "n_points": 0,
            "frontier_scalers": "",
            "best_hit_rate": None,
            "best_hit_scaler": None,
            "best_hit_rel_cost": None,
            "note": notes.get(scenario, ""),
        }
        scenario_rows = by_scenario.get(scenario)
        if scenario_rows:
            frontier = [r for r in scenario_rows if r.get("on_frontier")]
            best_hit = max(scenario_rows, key=lambda r: r.get("hit_rate", 0.0))
            row.update(
                n_points=len(scenario_rows),
                frontier_scalers=", ".join(sorted({r["scaler"] for r in frontier})),
                best_hit_rate=best_hit.get("hit_rate"),
                best_hit_scaler=best_hit.get("scaler"),
                best_hit_rel_cost=best_hit.get("relative_cost"),
            )
        summary.append(row)
    return summary
