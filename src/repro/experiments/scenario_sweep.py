"""Scenario sweep — RobustScaler vs. baselines across the whole registry.

Where the paper's Fig. 4 compares autoscalers on three traces, this driver
runs the comparison across *every* scenario in the workload registry
(:mod:`repro.workloads`): for each scenario it generates the trace, fits the
NHPP workload model on the training window, replays the test window under
the reactive baseline, Backup Pool, Adaptive Backup Pool and all three
RobustScaler variants (HP-, RT- and cost-constrained, each over a
per-scenario default target grid), and reports cost/QoS rows with the
per-scenario Pareto frontier marked (via :mod:`repro.metrics.pareto`).

Registered as ``"scenario-sweep"`` in :mod:`repro.api`; execution routes
through :mod:`repro.runtime`: the sweep is expressed as a batch of
:class:`~repro.runtime.EvalTask` and evaluated either serially or on a
process pool (``workers`` / ``REPRO_WORKERS``) with bit-identical rows.
Everything is deterministic for a fixed ``seed``: the traces, the per-task
Monte Carlo streams, and therefore every row.
"""

from __future__ import annotations

from ..api import (
    ExperimentSpec,
    ParamSpec,
    register_experiment,
)
from ..api.session import RunContext
from ..exceptions import ExperimentError
from ..metrics.pareto import ParetoPoint, pareto_frontier
from ..runtime import EvalTask, PrepSpec, ScalerSpec, WorkloadSpec
from ..store.traces import get_or_build_trace
from ..workloads import DEFAULT_REGISTRY, ScenarioRegistry
from ..workloads.scenarios import Scenario
from .base import robustscaler_spec

__all__ = [
    "scenario_sweep_defaults",
    "build_scenario_sweep_tasks",
    "summarize_scenario_sweep",
]


#: Baseline sweep grids, refined per scenario by tag/name overrides below —
#: the registry-wide analogue of :func:`repro.experiments.base.trace_defaults`.
_SWEEP_DEFAULTS = {
    "hp_targets": (0.5, 0.9),
    "rt_budget_fractions": (0.5, 0.1),
    "cost_budget_fractions": (0.05, 0.25),
}

#: Tag-keyed refinements (applied in scenario tag order, later tags win).
_TAG_SWEEP_OVERRIDES = {
    # Spiky, hard-to-forecast traffic: chasing very high hit probabilities
    # is hopeless, so sweep moderate targets and looser waiting budgets.
    "adversarial": {"hp_targets": (0.3, 0.7), "rt_budget_fractions": (0.75, 0.25)},
    "heavy-tail": {"hp_targets": (0.3, 0.7), "rt_budget_fractions": (0.75, 0.25)},
}

#: Name-keyed refinements (highest precedence), mirroring ``trace_defaults``.
_NAME_SWEEP_OVERRIDES = {
    "crs": {"hp_targets": (0.5, 0.9, 0.99)},
    "google": {"hp_targets": (0.5, 0.9, 0.99)},
    "alibaba": {"hp_targets": (0.5, 0.9, 0.99)},
}


def scenario_sweep_defaults(scenario: Scenario) -> dict:
    """Default sweep grids for ``scenario``.

    Returns ``hp_targets`` (absolute hit probabilities),
    ``rt_budget_fractions`` (waiting budgets as fractions of the scenario's
    pending time) and ``cost_budget_fractions`` (idle budgets as fractions
    of the test window's mean inter-arrival gap).  Base grids are refined by
    tag- and then name-keyed overrides, the registry-wide mirror of the
    per-trace ``trace_defaults`` grids.
    """
    grids = dict(_SWEEP_DEFAULTS)
    for tag in scenario.tags:
        grids.update(_TAG_SWEEP_OVERRIDES.get(tag, {}))
    grids.update(_NAME_SWEEP_OVERRIDES.get(scenario.name.lower(), {}))
    return grids


def _sweep_registry(params: dict) -> ScenarioRegistry:
    # Explicit None check: an empty ScenarioRegistry is falsy (len == 0) and
    # must not silently fall back to the global registry.
    registry = params["registry"]
    return DEFAULT_REGISTRY if registry is None else registry


def _sweep_names(params: dict, registry: ScenarioRegistry) -> list[str]:
    """The scenarios to sweep, in sweep order."""
    if params["scenario_names"] is None:
        names = registry.names()
    else:
        names = list(params["scenario_names"])
    if not names:
        raise ExperimentError("scenario sweep requires at least one scenario")
    return names


def _build_tasks(params: dict, ctx: RunContext) -> tuple[list[EvalTask], list[dict]]:
    """Expand the sweep parameters into runtime tasks.

    Returns ``(tasks, skipped)`` where ``tasks`` is the evaluation batch
    (grouped by scenario, so executors get good workload-cache locality) and
    ``skipped`` holds one note row per scenario whose test window is too
    small to replay at the configured scale.
    """
    registry = _sweep_registry(params)
    names = _sweep_names(params, registry)

    tasks: list[EvalTask] = []
    skipped: list[dict] = []
    for name in names:
        scenario = registry.get(name)
        trace = get_or_build_trace(
            scenario, scale=params["scale"], seed=params["seed"], store=ctx.store
        )
        _, test = trace.split(scenario.train_fraction)
        if test.n_queries < params["min_test_queries"]:
            skipped.append(
                {
                    "scenario": scenario.name,
                    "scaler": "-",
                    "note": (
                        f"skipped: only {test.n_queries} test queries "
                        f"at scale {params['scale']:g}"
                    ),
                }
            )
            continue

        prep = PrepSpec(
            train_fraction=scenario.train_fraction,
            bin_seconds=scenario.bin_seconds,
            pending_time=scenario.pending_time,
            engine=ctx.engine,
        )
        if params["registry"] is None:
            workload = WorkloadSpec(
                scenario=scenario.name,
                scale=params["scale"],
                seed=params["seed"],
                prep=prep,
            )
        else:
            # Custom registries are not importable inside pool workers, so
            # ship the concrete trace instead of the scenario name.
            workload = WorkloadSpec(trace=trace, prep=prep)

        grids = scenario_sweep_defaults(scenario)
        hp_targets = (
            grids["hp_targets"]
            if params["hp_targets"] is None
            else params["hp_targets"]
        )
        rt_budgets = params["rt_budgets"]
        if rt_budgets is None:
            rt_budgets = [
                scenario.pending_time * f for f in grids["rt_budget_fractions"]
            ]
        cost_budgets = params["cost_budgets"]
        if cost_budgets is None:
            mean_gap = 1.0 / max(test.mean_qps, 1e-9)
            cost_budgets = [mean_gap * f for f in grids["cost_budget_fractions"]]

        extra = (("scenario", scenario.name),)
        specs: list[ScalerSpec] = [ScalerSpec("reactive")]
        specs += [ScalerSpec("bp", int(size)) for size in params["pool_sizes"]]
        specs += [ScalerSpec("adapbp", float(f)) for f in params["adaptive_factors"]]
        specs += [robustscaler_spec(params, "rs-hp", t) for t in hp_targets]
        if params["include_rt_variant"]:
            specs += [
                robustscaler_spec(params, "rs-rt", b)
                for b in sorted(rt_budgets, reverse=True)
            ]
        if params["include_cost_variant"]:
            specs += [
                robustscaler_spec(params, "rs-cost", b) for b in sorted(cost_budgets)
            ]
        tasks += [EvalTask(workload, spec, extra=extra) for spec in specs]
    return tasks, skipped


def _run_scenario_sweep(params: dict, ctx: RunContext) -> list[dict]:
    """Run the autoscaler comparison on every configured scenario.

    Returns one row per (scenario, scaler, parameter) combination with the
    usual summary metrics plus ``on_frontier`` marking the scenario's
    cost/hit-rate Pareto frontier.
    """
    tasks, skipped = _build_tasks(params, ctx)
    evaluated = ctx.run_rows(tasks, base_seed=params["seed"])

    by_scenario: dict[str, list[dict]] = {}
    for row in evaluated:
        by_scenario.setdefault(row["scenario"], []).append(row)
    for scenario_rows in by_scenario.values():
        _mark_frontier(scenario_rows)

    # Interleave evaluated and skipped scenarios back into sweep order.
    registry = _sweep_registry(params)
    notes = {row["scenario"]: row for row in skipped}
    rows: list[dict] = []
    for name in _sweep_names(params, registry):
        canonical = registry.get(name).name
        if canonical in by_scenario:
            rows.extend(by_scenario.pop(canonical))
        elif canonical in notes:
            rows.append(notes.pop(canonical))
    return rows


register_experiment(
    ExperimentSpec(
        name="scenario-sweep",
        title="autoscaler comparison across the whole scenario registry",
        params=(
            ParamSpec(
                "scenario_names",
                "str",
                None,
                sequence=True,
                cli_flag="--scenario",
                help="restrict to this scenario (default: whole registry)",
            ),
            ParamSpec("scale", "float", 0.1, help="trace size factor"),
            ParamSpec("seed", "int", 7, help="trace-generation and Monte Carlo seed"),
            ParamSpec(
                "planning_interval", "float", 10.0, help="RobustScaler Delta (seconds)"
            ),
            ParamSpec(
                "monte_carlo_samples",
                "int",
                120,
                cli_flag="--mc-samples",
                help="Monte Carlo sample size R",
            ),
            ParamSpec(
                "hp_targets",
                "float",
                None,
                sequence=True,
                cli_flag="--hp-target",
                help="RobustScaler-HP targets (default: per-scenario grids)",
            ),
            ParamSpec(
                "rt_budgets",
                "float",
                None,
                sequence=True,
                cli_flag="--rt-budget",
                help="RobustScaler-RT waiting budgets in seconds "
                "(default: per-scenario fractions of the pending time)",
            ),
            ParamSpec(
                "cost_budgets",
                "float",
                None,
                sequence=True,
                cli_flag="--cost-budget",
                help="RobustScaler-cost idle budgets in seconds "
                "(default: per-scenario fractions of the mean gap)",
            ),
            ParamSpec(
                "include_rt_variant",
                "bool",
                True,
                cli_flag="--rt-variant",
                help="sweep the RT-constrained RobustScaler",
            ),
            ParamSpec(
                "include_cost_variant",
                "bool",
                True,
                cli_flag="--cost-variant",
                help="sweep the cost-constrained RobustScaler",
            ),
            ParamSpec(
                "pool_sizes",
                "int",
                (1, 4),
                sequence=True,
                cli_flag="--pool-size",
                help="Backup Pool sizes",
            ),
            ParamSpec(
                "adaptive_factors",
                "float",
                (10.0,),
                sequence=True,
                cli_flag="--adaptive-factor",
                help="Adaptive Backup Pool rate factors",
            ),
            ParamSpec(
                "min_test_queries",
                "int",
                8,
                help="skip scenarios whose test window is smaller than this",
            ),
            ParamSpec(
                "registry",
                "object",
                None,
                help="explicit ScenarioRegistry (default: the global one)",
            ),
        ),
        run=_run_scenario_sweep,
        result_columns=(
            "scenario",
            "scaler",
            "pool_size",
            "rate_factor",
            "target_hp",
            "n_queries",
            "hit_rate",
            "rt_avg",
            "relative_cost",
            "on_frontier",
            "note",
        ),
        scenario_param="scenario_names",
    )
)



def build_scenario_sweep_tasks(
    params: dict | None = None,
    *,
    engine: str | None = None,
    store=None,
) -> tuple[list[EvalTask], list[dict]]:
    """Expand sweep parameter overrides into runtime tasks.

    Kept for callers that schedule the batch themselves (the runtime and
    store benchmarks); the registry path builds its tasks internally.
    ``params`` are overrides over the ``scenario-sweep`` schema defaults.
    """
    from ..api import get_experiment
    from ..api.session import RunContext
    from ..simulation.runner import resolve_engine

    spec = get_experiment("scenario-sweep")
    ctx = RunContext(engine=resolve_engine(engine), store=store)
    return _build_tasks(spec.resolve(params), ctx)


def _mark_frontier(rows: list[dict]) -> None:
    """Annotate each row with whether it sits on the (cost, hit-rate) frontier."""
    points = [
        ParetoPoint(
            cost=row.get("relative_cost", row.get("total_cost", 0.0)),
            qos=row.get("hit_rate", 0.0),
            label=id(row),
        )
        for row in rows
    ]
    frontier_ids = {point.label for point in pareto_frontier(points)}
    for row in rows:
        row["on_frontier"] = id(row) in frontier_ids


def summarize_scenario_sweep(rows: list[dict]) -> list[dict]:
    """One row per scenario: its Pareto-frontier scalers and best QoS/cost.

    The summary makes the sweep digestible — which strategies matter on
    which workloads — without re-reading the full per-parameter table.
    """
    by_scenario: dict[str, list[dict]] = {}
    notes: dict[str, str] = {}
    for row in rows:
        if "hit_rate" not in row:
            if "note" in row:
                notes[row["scenario"]] = row["note"]
            continue
        by_scenario.setdefault(row["scenario"], []).append(row)

    summary: list[dict] = []
    for scenario in sorted(set(by_scenario) | set(notes)):
        # Uniform schema so format_table (which takes columns from the first
        # row) renders skipped and evaluated scenarios alike; skipped
        # scenarios stay visible so a summary-only view cannot misrepresent
        # registry coverage.
        row = {
            "scenario": scenario,
            "n_points": 0,
            "frontier_scalers": "",
            "best_hit_rate": None,
            "best_hit_scaler": None,
            "best_hit_rel_cost": None,
            "note": notes.get(scenario, ""),
        }
        scenario_rows = by_scenario.get(scenario)
        if scenario_rows:
            frontier = [r for r in scenario_rows if r.get("on_frontier")]
            best_hit = max(scenario_rows, key=lambda r: r.get("hit_rate", 0.0))
            row.update(
                n_points=len(scenario_rows),
                frontier_scalers=", ".join(sorted({r["scaler"] for r in frontier})),
                best_hit_rate=best_hit.get("hit_rate"),
                best_hit_scaler=best_hit.get("scaler"),
                best_hit_rel_cost=best_hit.get("relative_cost"),
            )
        summary.append(row)
    return summary
