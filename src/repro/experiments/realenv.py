"""Table IV — RobustScaler-HP in the simulated vs the "real" environment.

The paper deploys RobustScaler-HP (target hitting probability 0.9) against an
Alibaba Serverless Kubernetes cluster and finds that the achieved hitting
probability, response time and cost are close to the values obtained in the
idealized simulation where decisions are computed instantaneously.  We
reproduce the comparison by replaying the same trace twice:

* **simulated** — the default simulator (decisions are free and instantaneous);
* **real** — the :func:`repro.simulation.realenv.real_environment_config`
  simulator, which charges the planner's wall-clock latency against the plan
  and adds control-plane scheduling latency plus pod startup jitter.

Registered as ``"table4"`` in :mod:`repro.api`.  The "real" rows charge
*measured* planner wall-clock time, so unlike every other experiment they
are intentionally not bit-reproducible.
"""

from __future__ import annotations

from ..api import (
    ExperimentSpec,
    ParamSpec,
    register_experiment,
)
from ..api.session import RunContext
from ..config import SimulationConfig
from ..scaling.robustscaler import RobustScalerObjective
from ..simulation.realenv import real_environment_config
from .base import (
    build_robustscaler,
    default_planner,
    make_trace,
    prepare_workload,
    trace_defaults,
)

__all__: list[str] = []


def _run_realenv(params: dict, ctx: RunContext) -> list[dict]:
    """Replay RobustScaler-HP in the simulated and the real environment."""
    defaults = trace_defaults(params["trace_name"])
    trace = make_trace(
        params["trace_name"], scale=params["scale"], seed=params["seed"]
    )
    planner = default_planner(
        params["planning_interval"], params["monte_carlo_samples"]
    )

    rows: list[dict] = []
    simulated_config = SimulationConfig(pending_time=13.0, engine=ctx.engine)
    real_config = real_environment_config(
        simulated_config,
        scheduling_latency=params["scheduling_latency"],
        pending_time_jitter=params["pending_time_jitter"],
    )
    for label, sim_config in (("simulated", simulated_config), ("real", real_config)):
        workload = prepare_workload(
            trace,
            train_fraction=defaults["train_fraction"],
            bin_seconds=defaults["bin_seconds"],
            simulation=sim_config,
        )
        scaler = build_robustscaler(
            workload,
            RobustScalerObjective.HIT_PROBABILITY,
            params["target_hp"],
            planner=planner,
        )
        result = workload.replay(scaler)
        rows.append(
            {
                "environment": label,
                "target_hp": float(params["target_hp"]),
                "hit_rate": result.hit_rate,
                "rt_avg": result.mean_response_time,
                "cost_per_query": result.total_cost / max(result.n_queries, 1),
                "relative_cost": result.total_cost / workload.reference_cost,
                "mean_planning_ms": 1000.0
                * (sum(result.planning_times) / max(len(result.planning_times), 1)),
            }
        )
    return rows


register_experiment(
    ExperimentSpec(
        name="table4",
        title="RobustScaler-HP in the simulated vs the real environment",
        artifact="Table IV",
        params=(
            ParamSpec(
                "trace_name",
                "str",
                "crs",
                cli_flag="--trace",
                help="trace / workload scenario",
            ),
            ParamSpec("scale", "float", 0.25, help="trace size factor"),
            ParamSpec("seed", "int", 7, help="trace-generation and Monte Carlo seed"),
            ParamSpec("target_hp", "float", 0.9, help="HP target"),
            ParamSpec(
                "planning_interval", "float", 2.0, help="RobustScaler Delta (seconds)"
            ),
            ParamSpec(
                "monte_carlo_samples",
                "int",
                400,
                cli_flag="--mc-samples",
                help="Monte Carlo sample size R",
            ),
            ParamSpec(
                "scheduling_latency",
                "float",
                1.0,
                help="control-plane round trip (seconds)",
            ),
            ParamSpec(
                "pending_time_jitter",
                "float",
                2.0,
                help="pod startup jitter half-width (seconds)",
            ),
        ),
        run=_run_realenv,
        result_columns=(
            "environment",
            "target_hp",
            "hit_rate",
            "rt_avg",
            "cost_per_query",
            "relative_cost",
            "mean_planning_ms",
        ),
        runtime=False,
        engine_aware=True,
        scenario_param="trace_name",
    )
)

