"""Table IV — RobustScaler-HP in the simulated vs the "real" environment.

The paper deploys RobustScaler-HP (target hitting probability 0.9) against an
Alibaba Serverless Kubernetes cluster and finds that the achieved hitting
probability, response time and cost are close to the values obtained in the
idealized simulation where decisions are computed instantaneously.  We
reproduce the comparison by replaying the same trace twice:

* **simulated** — the default simulator (decisions are free and instantaneous);
* **real** — the :func:`repro.simulation.realenv.real_environment_config`
  simulator, which charges the planner's wall-clock latency against the plan
  and adds control-plane scheduling latency plus pod startup jitter.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SimulationConfig
from ..scaling.robustscaler import RobustScalerObjective
from ..simulation.realenv import real_environment_config
from .base import (
    build_robustscaler,
    default_planner,
    make_trace,
    prepare_workload,
    trace_defaults,
)

__all__ = ["RealEnvExperimentConfig", "run_realenv_experiment"]


@dataclass
class RealEnvExperimentConfig:
    """Parameters of the simulated-vs-real-environment comparison (Table IV)."""

    trace_name: str = "crs"
    scale: float = 0.25
    seed: int = 7
    target_hp: float = 0.9
    planning_interval: float = 2.0
    monte_carlo_samples: int = 400
    scheduling_latency: float = 1.0
    pending_time_jitter: float = 2.0


def run_realenv_experiment(config: RealEnvExperimentConfig | None = None) -> list[dict]:
    """Replay RobustScaler-HP in the simulated and the real environment."""
    config = config or RealEnvExperimentConfig()
    defaults = trace_defaults(config.trace_name)
    trace = make_trace(config.trace_name, scale=config.scale, seed=config.seed)
    planner = default_planner(config.planning_interval, config.monte_carlo_samples)

    rows: list[dict] = []
    simulated_config = SimulationConfig(pending_time=13.0)
    real_config = real_environment_config(
        simulated_config,
        scheduling_latency=config.scheduling_latency,
        pending_time_jitter=config.pending_time_jitter,
    )
    for label, sim_config in (("simulated", simulated_config), ("real", real_config)):
        workload = prepare_workload(
            trace,
            train_fraction=defaults["train_fraction"],
            bin_seconds=defaults["bin_seconds"],
            simulation=sim_config,
        )
        scaler = build_robustscaler(
            workload,
            RobustScalerObjective.HIT_PROBABILITY,
            config.target_hp,
            planner=planner,
        )
        result = workload.replay(scaler)
        rows.append(
            {
                "environment": label,
                "target_hp": float(config.target_hp),
                "hit_rate": result.hit_rate,
                "rt_avg": result.mean_response_time,
                "cost_per_query": result.total_cost / max(result.n_queries, 1),
                "relative_cost": result.total_cost / workload.reference_cost,
                "mean_planning_ms": 1000.0
                * (sum(result.planning_times) / max(len(result.planning_times), 1)),
            }
        )
    return rows
