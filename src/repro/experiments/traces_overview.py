"""Fig. 3 — overview of the QPS series of the three evaluation traces.

The paper's Fig. 3 plots the per-minute QPS of the CRS, Alibaba and Google
traces to show their qualitative character (noisy weekly pattern, recurrent
spikes, one unexpected burst).  This driver regenerates the same summary as
numbers: per-trace query counts, mean/peak QPS, detected periodicity, and the
burstiness of the series.

Registered as ``"traces"`` in :mod:`repro.api` (pure trace statistics — no
replay, no engine, no runtime executor); thanks to the registry-derived
defaults it summarizes any registered workload scenario, not just the
paper's three traces.
"""

from __future__ import annotations

import numpy as np

from ..api import ExperimentSpec, ParamSpec, register_experiment, run_experiment
from ..api.session import RunContext
from ..periodicity.detector import PeriodicityDetector
from ..timeseries.robust import robust_zscore
from .base import make_trace, trace_defaults

__all__ = ["run_traces_overview"]


def _run_traces_overview(params: dict, ctx: RunContext) -> list[dict]:
    """Summarize each evaluation trace (the numeric counterpart of Fig. 3).

    Returns one row per trace with query counts, QPS statistics, the detected
    period, and the largest robust z-score of the QPS series (which flags the
    Alibaba burst).
    """
    rows: list[dict] = []
    for name in params["trace_names"]:
        defaults = trace_defaults(name)
        trace = make_trace(name, scale=params["scale"], seed=params["seed"])
        series = trace.to_qps_series(defaults["bin_seconds"])
        detector = PeriodicityDetector()
        detection = detector.detect(series)
        z_scores = robust_zscore(np.asarray(series.counts, dtype=float))
        rows.append(
            {
                "trace": name,
                "n_queries": trace.n_queries,
                "duration_hours": trace.horizon / 3600.0,
                "mean_qps": trace.mean_qps,
                "peak_qps": float(series.qps.max()),
                "period_detected": detection.detected,
                "period_hours": detection.period_seconds / 3600.0,
                "max_robust_z": float(np.max(np.abs(z_scores)))
                if z_scores.size
                else 0.0,
            }
        )
    return rows


register_experiment(
    ExperimentSpec(
        name="traces",
        title="per-trace QPS statistics, periodicity and burstiness",
        artifact="Fig. 3",
        params=(
            ParamSpec(
                "trace_names",
                "str",
                ("crs", "google", "alibaba"),
                sequence=True,
                cli_flag="--trace",
                help="trace / workload scenario to summarize",
            ),
            ParamSpec("scale", "float", 0.25, help="trace size factor"),
            ParamSpec("seed", "int", 7, help="trace-generation seed"),
        ),
        run=_run_traces_overview,
        result_columns=(
            "trace",
            "n_queries",
            "duration_hours",
            "mean_qps",
            "peak_qps",
            "period_detected",
            "period_hours",
            "max_robust_z",
        ),
        runtime=False,
        engine_aware=False,
        scenario_param="trace_names",
    )
)


def run_traces_overview(
    *,
    trace_names: tuple[str, ...] = ("crs", "google", "alibaba"),
    scale: float = 0.25,
    seed: int = 7,
) -> list[dict]:
    """Fig. 3 trace overview (thin wrapper over the registry path)."""
    return run_experiment(
        "traces", {"trace_names": trace_names, "scale": scale, "seed": seed}
    )
