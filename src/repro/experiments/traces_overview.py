"""Fig. 3 — overview of the QPS series of the three evaluation traces.

The paper's Fig. 3 plots the per-minute QPS of the CRS, Alibaba and Google
traces to show their qualitative character (noisy weekly pattern, recurrent
spikes, one unexpected burst).  This driver regenerates the same summary as
numbers: per-trace query counts, mean/peak QPS, detected periodicity, and the
burstiness of the series.
"""

from __future__ import annotations

import numpy as np

from ..periodicity.detector import PeriodicityDetector
from ..timeseries.robust import robust_zscore
from .base import make_trace, trace_defaults

__all__ = ["run_traces_overview"]


def run_traces_overview(
    *,
    trace_names: tuple[str, ...] = ("crs", "google", "alibaba"),
    scale: float = 0.25,
    seed: int = 7,
) -> list[dict]:
    """Summarize each evaluation trace (the numeric counterpart of Fig. 3).

    Returns one row per trace with query counts, QPS statistics, the detected
    period, and the largest robust z-score of the QPS series (which flags the
    Alibaba burst).
    """
    rows: list[dict] = []
    for name in trace_names:
        defaults = trace_defaults(name)
        trace = make_trace(name, scale=scale, seed=seed)
        series = trace.to_qps_series(defaults["bin_seconds"])
        detector = PeriodicityDetector()
        detection = detector.detect(series)
        z_scores = robust_zscore(np.asarray(series.counts, dtype=float))
        rows.append(
            {
                "trace": name,
                "n_queries": trace.n_queries,
                "duration_hours": trace.horizon / 3600.0,
                "mean_qps": trace.mean_qps,
                "peak_qps": float(series.qps.max()),
                "period_detected": detection.detected,
                "period_hours": detection.period_seconds / 3600.0,
                "max_robust_z": float(np.max(np.abs(z_scores))) if z_scores.size else 0.0,
            }
        )
    return rows
