"""Experiment drivers reproducing every table and figure of the paper.

Each module exposes one ``run_*`` function returning plain row dictionaries
(so results can be rendered with :func:`repro.metrics.format_table`, asserted
in tests, or dumped to CSV) plus a small configuration dataclass whose
defaults are laptop-sized.  The mapping from paper artifact to driver is:

===========================  =============================================
Paper artifact               Driver
===========================  =============================================
Fig. 3 (trace overview)      :func:`repro.experiments.traces_overview.run_traces_overview`
Fig. 4 (Pareto plots)        :func:`repro.experiments.pareto.run_pareto_experiment`
Fig. 5 (QoS variance)        :func:`repro.experiments.variance.run_variance_experiment`
Fig. 6/7 (perturbations)     :func:`repro.experiments.perturbation.run_perturbation_experiment`
Fig. 8 (runtime vs QPS)      :func:`repro.experiments.scalability.run_scalability_experiment`
Table I (MC accuracy)        :func:`repro.experiments.scalability.run_mc_accuracy_experiment`
Fig. 9 / Table II            :func:`repro.experiments.robustness.run_robustness_experiment`
Fig. 10 (control accuracy)   :func:`repro.experiments.control_accuracy.run_control_accuracy_experiment`
Fig. 10(d) (planning freq.)  :func:`repro.experiments.control_accuracy.run_planning_frequency_experiment`
Table III (regularization)   :func:`repro.experiments.regularization.run_regularization_experiment`
Table IV (real environment)  :func:`repro.experiments.realenv.run_realenv_experiment`
===========================  =============================================

Beyond the paper, :func:`repro.experiments.scenario_sweep.run_scenario_sweep_experiment`
runs the autoscaler comparison across every scenario in the workload
registry (:mod:`repro.workloads`) and marks each scenario's cost/QoS Pareto
frontier.
"""

from .base import PreparedWorkload, prepare_workload, sweep_targets
from .traces_overview import run_traces_overview
from .pareto import ParetoExperimentConfig, run_pareto_experiment
from .variance import run_variance_experiment
from .perturbation import run_perturbation_experiment
from .scalability import run_mc_accuracy_experiment, run_scalability_experiment
from .robustness import run_robustness_experiment
from .control_accuracy import (
    run_control_accuracy_experiment,
    run_planning_frequency_experiment,
)
from .regularization import run_regularization_experiment
from .realenv import run_realenv_experiment
from .scenario_sweep import (
    ScenarioSweepConfig,
    run_scenario_sweep_experiment,
    summarize_scenario_sweep,
)
from .ablation import (
    run_kappa_ablation,
    run_mc_sample_ablation,
    run_regularization_sensitivity,
)

__all__ = [
    "PreparedWorkload",
    "prepare_workload",
    "sweep_targets",
    "run_traces_overview",
    "ParetoExperimentConfig",
    "run_pareto_experiment",
    "run_variance_experiment",
    "run_perturbation_experiment",
    "run_scalability_experiment",
    "run_mc_accuracy_experiment",
    "run_robustness_experiment",
    "run_control_accuracy_experiment",
    "run_planning_frequency_experiment",
    "run_regularization_experiment",
    "run_realenv_experiment",
    "ScenarioSweepConfig",
    "run_scenario_sweep_experiment",
    "summarize_scenario_sweep",
    "run_kappa_ablation",
    "run_mc_sample_ablation",
    "run_regularization_sensitivity",
]
