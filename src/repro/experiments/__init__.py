"""Experiment drivers reproducing every table and figure of the paper.

Every driver is registered in the declarative experiment registry of
:mod:`repro.api` (importing this package populates it): one
:class:`~repro.api.ExperimentSpec` per experiment, carrying its parameter
schema, task-batch builder and result schema.  The one documented way to
run them programmatically is the fluent :class:`repro.api.Session`; the
``repro experiment`` CLI subcommands are generated from the same registry.

The mapping from paper artifact to registry name is:

===========================  =============================================
Paper artifact               Registry / CLI name
===========================  =============================================
Fig. 3 (trace overview)      ``traces``
Fig. 4 (Pareto plots)        ``pareto``
Fig. 5 (QoS variance)        ``variance``
Fig. 6/7 (perturbations)     ``perturbation``
Fig. 8 (runtime vs QPS)      ``scalability``
Table I (MC accuracy)        ``table1``
Fig. 9 / Table II            ``robustness``
Fig. 10 (control accuracy)   ``control``
Fig. 10(d) (planning freq.)  ``planning-frequency``
Table III (regularization)   ``table3``
Table IV (real environment)  ``table4``
===========================  =============================================

Beyond the paper, ``scenario-sweep`` runs the autoscaler comparison across
every scenario in the workload registry (:mod:`repro.workloads`) and marks
each scenario's cost/QoS Pareto frontier, and the three ablations
(``kappa-ablation`` / ``mc-sample-ablation`` /
``regularization-sensitivity``) probe the design choices of DESIGN.md.

The historical ``run_*_experiment(config)`` entry points and their config
dataclasses remain importable as deprecated wrappers over the registry for
one release; they produce rows bit-identical to the new path.
"""

from .base import PreparedWorkload, prepare_workload, sweep_targets
from .traces_overview import run_traces_overview
from .pareto import ParetoExperimentConfig, run_pareto_experiment
from .variance import run_variance_experiment
from .perturbation import run_perturbation_experiment
from .scalability import run_mc_accuracy_experiment, run_scalability_experiment
from .robustness import run_robustness_experiment
from .control_accuracy import (
    run_control_accuracy_experiment,
    run_planning_frequency_experiment,
)
from .regularization import run_regularization_experiment
from .realenv import run_realenv_experiment
from .scenario_sweep import (
    ScenarioSweepConfig,
    run_scenario_sweep_experiment,
    summarize_scenario_sweep,
)
from .adversarial import summarize_adversarial, violation_per_dollar
from .ablation import (
    run_kappa_ablation,
    run_mc_sample_ablation,
    run_regularization_sensitivity,
)

__all__ = [
    "PreparedWorkload",
    "prepare_workload",
    "sweep_targets",
    "run_traces_overview",
    "ParetoExperimentConfig",
    "run_pareto_experiment",
    "run_variance_experiment",
    "run_perturbation_experiment",
    "run_scalability_experiment",
    "run_mc_accuracy_experiment",
    "run_robustness_experiment",
    "run_control_accuracy_experiment",
    "run_planning_frequency_experiment",
    "run_regularization_experiment",
    "run_realenv_experiment",
    "ScenarioSweepConfig",
    "run_scenario_sweep_experiment",
    "summarize_scenario_sweep",
    "summarize_adversarial",
    "violation_per_dollar",
    "run_kappa_ablation",
    "run_mc_sample_ablation",
    "run_regularization_sensitivity",
]
