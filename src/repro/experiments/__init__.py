"""Experiment drivers reproducing every table and figure of the paper.

Every driver is registered in the declarative experiment registry of
:mod:`repro.api` (importing this package populates it): one
:class:`~repro.api.ExperimentSpec` per experiment, carrying its parameter
schema, task-batch builder and result schema.  The one documented way to
run them programmatically is the fluent :class:`repro.api.Session`; the
``repro experiment`` CLI subcommands are generated from the same registry.

The mapping from paper artifact to registry name is:

===========================  =============================================
Paper artifact               Registry / CLI name
===========================  =============================================
Fig. 3 (trace overview)      ``traces``
Fig. 4 (Pareto plots)        ``pareto``
Fig. 5 (QoS variance)        ``variance``
Fig. 6/7 (perturbations)     ``perturbation``
Fig. 8 (runtime vs QPS)      ``scalability``
Table I (MC accuracy)        ``table1``
Fig. 9 / Table II            ``robustness``
Fig. 10 (control accuracy)   ``control``
Fig. 10(d) (planning freq.)  ``planning-frequency``
Table III (regularization)   ``table3``
Table IV (real environment)  ``table4``
===========================  =============================================

Beyond the paper, ``scenario-sweep`` runs the autoscaler comparison across
every scenario in the workload registry (:mod:`repro.workloads`) and marks
each scenario's cost/QoS Pareto frontier; ``adversarial`` searches each
policy's worst-case workload; ``fleet`` co-simulates an N-tenant fleet over
shared capacity pools (:mod:`repro.fleet`); and the three ablations
(``kappa-ablation`` / ``mc-sample-ablation`` /
``regularization-sensitivity``) probe the design choices of DESIGN.md.
"""

from .base import PreparedWorkload, prepare_workload, sweep_targets
from .traces_overview import run_traces_overview
from . import pareto as _pareto  # registers "pareto"
from . import variance as _variance  # registers "variance"
from . import perturbation as _perturbation  # registers "perturbation"
from . import scalability as _scalability  # registers "scalability", "table1"
from . import robustness as _robustness  # registers "robustness"
from . import control_accuracy as _control  # registers "control", "planning-frequency"
from . import regularization as _regularization  # registers "table3"
from . import realenv as _realenv  # registers "table4"
from . import ablation as _ablation  # registers the three ablations
from .pareto import run_single_trace_pareto
from .scenario_sweep import (
    build_scenario_sweep_tasks,
    summarize_scenario_sweep,
)
from .adversarial import summarize_adversarial, violation_per_dollar
from .fleet import summarize_fleet

__all__ = [
    "PreparedWorkload",
    "prepare_workload",
    "sweep_targets",
    "run_traces_overview",
    "run_single_trace_pareto",
    "build_scenario_sweep_tasks",
    "summarize_scenario_sweep",
    "summarize_adversarial",
    "summarize_fleet",
    "violation_per_dollar",
]
