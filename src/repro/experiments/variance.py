"""Fig. 5 — variability of the delivered QoS on the CRS trace.

For each autoscaler and each setting of its trade-off parameter, the queries
are ordered by arrival time, their per-query QoS is averaged over blocks of
50 consecutive queries, and the variance of those block means is reported
against the overall mean — the construction of Fig. 5(a) (hit rate) and
Fig. 5(b) (response time).

The sweep is a :mod:`repro.runtime` task batch whose tasks request the
windowed statistics (``variance_window``), so the single prepared workload
is shared across every candidate and the replays parallelize with
``workers`` / ``REPRO_WORKERS``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..runtime import EvalTask, PrepSpec, ScalerSpec, WorkloadSpec, run_task_rows
from ..store.traces import get_or_build_trace
from ..workloads import get_scenario
from .base import robustscaler_spec, trace_defaults

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..store import ArtifactStore

__all__ = ["VarianceExperimentConfig", "run_variance_experiment"]


@dataclass
class VarianceExperimentConfig:
    """Parameters of the QoS-variance experiment (Fig. 5)."""

    trace_name: str = "crs"
    scale: float = 0.25
    seed: int = 7
    window: int = 50
    planning_interval: float = 2.0
    monte_carlo_samples: int = 400
    hp_targets: Sequence[float] = (0.3, 0.6, 0.9)
    cost_budget_fractions: Sequence[float] = (0.02, 0.1, 0.3)
    pool_sizes: Sequence[int] = (1, 2, 4)
    adaptive_factors: Sequence[float] = (25.0, 50.0, 100.0)
    workers: int | None = None
    #: Replay engine ("reference" / "batched"); both give identical rows.
    engine: str | None = None
    #: Disk artifact store: prepared workloads and generated traces persist
    #: across CLI invocations, and ``run_id`` journaling becomes available.
    store: "ArtifactStore | None" = None
    #: Journal per-task completions under this id (resumable runs).
    run_id: str | None = None


def run_variance_experiment(config: VarianceExperimentConfig | None = None) -> list[dict]:
    """Measure windowed QoS variance for each autoscaler sweep (Fig. 5)."""
    config = config or VarianceExperimentConfig()
    defaults = trace_defaults(config.trace_name)
    trace = get_or_build_trace(
        get_scenario(config.trace_name),
        scale=config.scale,
        seed=config.seed,
        store=config.store,
    )
    _, test = trace.split(defaults["train_fraction"])
    mean_gap = 1.0 / max(test.mean_qps, 1e-9)

    workload = WorkloadSpec(
        scenario=config.trace_name,
        scale=config.scale,
        seed=config.seed,
        prep=PrepSpec(
            train_fraction=defaults["train_fraction"],
            bin_seconds=defaults["bin_seconds"],
            engine=config.engine,
        ),
    )

    def rs_spec(kind: str, target: float) -> ScalerSpec:
        return robustscaler_spec(config, kind, target, parameter_name="parameter")

    candidates: list[tuple[str, ScalerSpec]] = []
    for size in config.pool_sizes:
        candidates.append(("BP", ScalerSpec("bp", int(size), parameter_name="parameter")))
    for factor in config.adaptive_factors:
        candidates.append(
            ("AdapBP", ScalerSpec("adapbp", float(factor), parameter_name="parameter"))
        )
    for target in config.hp_targets:
        candidates.append(("RobustScaler-HP", rs_spec("rs-hp", target)))
    for fraction in config.cost_budget_fractions:
        candidates.append(("RobustScaler-cost", rs_spec("rs-cost", mean_gap * fraction)))

    tasks = [
        EvalTask(
            workload,
            spec,
            extra=(("family", family),),
            variance_window=config.window,
        )
        for family, spec in candidates
    ]
    return run_task_rows(
        tasks,
        base_seed=config.seed,
        workers=config.workers,
        store=config.store,
        run_id=config.run_id,
    )
