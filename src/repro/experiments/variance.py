"""Fig. 5 — variability of the delivered QoS on the CRS trace.

For each autoscaler and each setting of its trade-off parameter, the queries
are ordered by arrival time, their per-query QoS is averaged over blocks of
50 consecutive queries, and the variance of those block means is reported
against the overall mean — the construction of Fig. 5(a) (hit rate) and
Fig. 5(b) (response time).

Registered as ``"variance"`` in :mod:`repro.api`; the sweep is a
:mod:`repro.runtime` task batch whose tasks request the windowed statistics
(``variance_window``), so the single prepared workload is shared across
every candidate and the replays parallelize with ``workers`` /
``REPRO_WORKERS``.
"""

from __future__ import annotations

from ..api import (
    ExperimentSpec,
    ParamSpec,
    register_experiment,
)
from ..api.session import RunContext
from ..runtime import EvalTask, PrepSpec, ScalerSpec, WorkloadSpec
from ..store.traces import get_or_build_trace
from ..workloads import get_scenario
from .base import robustscaler_spec, trace_defaults

__all__: list[str] = []


def _run_variance(params: dict, ctx: RunContext) -> list[dict]:
    """Measure windowed QoS variance for each autoscaler sweep (Fig. 5)."""
    defaults = trace_defaults(params["trace_name"])
    trace = get_or_build_trace(
        get_scenario(params["trace_name"]),
        scale=params["scale"],
        seed=params["seed"],
        store=ctx.store,
    )
    _, test = trace.split(defaults["train_fraction"])
    mean_gap = 1.0 / max(test.mean_qps, 1e-9)

    workload = WorkloadSpec(
        scenario=params["trace_name"],
        scale=params["scale"],
        seed=params["seed"],
        prep=PrepSpec(
            train_fraction=defaults["train_fraction"],
            bin_seconds=defaults["bin_seconds"],
            engine=ctx.engine,
        ),
    )

    def rs_spec(kind: str, target: float) -> ScalerSpec:
        return robustscaler_spec(params, kind, target, parameter_name="parameter")

    candidates: list[tuple[str, ScalerSpec]] = []
    for size in params["pool_sizes"]:
        candidates.append(
            ("BP", ScalerSpec("bp", int(size), parameter_name="parameter"))
        )
    for factor in params["adaptive_factors"]:
        candidates.append(
            ("AdapBP", ScalerSpec("adapbp", float(factor), parameter_name="parameter"))
        )
    for target in params["hp_targets"]:
        candidates.append(("RobustScaler-HP", rs_spec("rs-hp", target)))
    for fraction in params["cost_budget_fractions"]:
        candidates.append(
            ("RobustScaler-cost", rs_spec("rs-cost", mean_gap * fraction))
        )

    tasks = [
        EvalTask(
            workload,
            spec,
            extra=(("family", family),),
            variance_window=params["window"],
        )
        for family, spec in candidates
    ]
    return ctx.run_rows(tasks, base_seed=params["seed"])


register_experiment(
    ExperimentSpec(
        name="variance",
        title="windowed QoS variance of each autoscaler sweep",
        artifact="Fig. 5",
        params=(
            ParamSpec(
                "trace_name",
                "str",
                "crs",
                cli_flag="--trace",
                help="trace / workload scenario",
            ),
            ParamSpec("scale", "float", 0.25, help="trace size factor"),
            ParamSpec("seed", "int", 7, help="trace-generation and Monte Carlo seed"),
            ParamSpec("window", "int", 50, help="queries per QoS averaging block"),
            ParamSpec(
                "planning_interval", "float", 2.0, help="RobustScaler Delta (seconds)"
            ),
            ParamSpec(
                "monte_carlo_samples",
                "int",
                400,
                cli_flag="--mc-samples",
                help="Monte Carlo sample size R",
            ),
            ParamSpec(
                "hp_targets",
                "float",
                (0.3, 0.6, 0.9),
                sequence=True,
                cli_flag="--hp-target",
                help="RobustScaler-HP targets",
            ),
            ParamSpec(
                "cost_budget_fractions",
                "float",
                (0.02, 0.1, 0.3),
                sequence=True,
                cli_flag="--cost-budget-fraction",
                help="idle budgets as fractions of the mean inter-arrival gap",
            ),
            ParamSpec(
                "pool_sizes",
                "int",
                (1, 2, 4),
                sequence=True,
                cli_flag="--pool-size",
                help="Backup Pool sizes",
            ),
            ParamSpec(
                "adaptive_factors",
                "float",
                (25.0, 50.0, 100.0),
                sequence=True,
                cli_flag="--adaptive-factor",
                help="Adaptive Backup Pool rate factors",
            ),
        ),
        run=_run_variance,
        result_columns=(
            "trace",
            "scaler",
            "family",
            "parameter",
            "hit_rate_mean",
            "hit_rate_variance",
            "rt_mean",
            "rt_variance",
        ),
        scenario_param="trace_name",
    )
)

