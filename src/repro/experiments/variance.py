"""Fig. 5 — variability of the delivered QoS on the CRS trace.

For each autoscaler and each setting of its trade-off parameter, the queries
are ordered by arrival time, their per-query QoS is averaged over blocks of
50 consecutive queries, and the variance of those block means is reported
against the overall mean — the construction of Fig. 5(a) (hit rate) and
Fig. 5(b) (response time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..metrics.variance import windowed_mean_variance
from ..scaling.adaptive_backup_pool import AdaptiveBackupPoolScaler
from ..scaling.backup_pool import BackupPoolScaler
from ..scaling.robustscaler import RobustScalerObjective
from .base import (
    build_robustscaler,
    default_planner,
    make_trace,
    prepare_workload,
    trace_defaults,
)

__all__ = ["VarianceExperimentConfig", "run_variance_experiment"]


@dataclass
class VarianceExperimentConfig:
    """Parameters of the QoS-variance experiment (Fig. 5)."""

    trace_name: str = "crs"
    scale: float = 0.25
    seed: int = 7
    window: int = 50
    planning_interval: float = 2.0
    monte_carlo_samples: int = 400
    hp_targets: Sequence[float] = (0.3, 0.6, 0.9)
    cost_budget_fractions: Sequence[float] = (0.02, 0.1, 0.3)
    pool_sizes: Sequence[int] = (1, 2, 4)
    adaptive_factors: Sequence[float] = (25.0, 50.0, 100.0)


def run_variance_experiment(config: VarianceExperimentConfig | None = None) -> list[dict]:
    """Measure windowed QoS variance for each autoscaler sweep (Fig. 5)."""
    config = config or VarianceExperimentConfig()
    defaults = trace_defaults(config.trace_name)
    trace = make_trace(config.trace_name, scale=config.scale, seed=config.seed)
    workload = prepare_workload(
        trace,
        train_fraction=defaults["train_fraction"],
        bin_seconds=defaults["bin_seconds"],
    )
    planner = default_planner(config.planning_interval, config.monte_carlo_samples)

    candidates: list = []
    for size in config.pool_sizes:
        candidates.append(("BP", size, BackupPoolScaler(int(size))))
    for factor in config.adaptive_factors:
        candidates.append(("AdapBP", factor, AdaptiveBackupPoolScaler(float(factor))))
    for target in config.hp_targets:
        candidates.append(
            (
                "RobustScaler-HP",
                target,
                build_robustscaler(
                    workload, RobustScalerObjective.HIT_PROBABILITY, target, planner=planner
                ),
            )
        )
    mean_gap = 1.0 / max(workload.test.mean_qps, 1e-9)
    for fraction in config.cost_budget_fractions:
        budget = mean_gap * fraction
        candidates.append(
            (
                "RobustScaler-cost",
                budget,
                build_robustscaler(
                    workload, RobustScalerObjective.COST, budget, planner=planner
                ),
            )
        )

    rows: list[dict] = []
    for family, parameter, scaler in candidates:
        result = workload.replay(scaler)
        hit_mean, hit_var = windowed_mean_variance(
            result.hits.astype(float), config.window
        )
        rt_mean, rt_var = windowed_mean_variance(result.response_times, config.window)
        rows.append(
            {
                "trace": config.trace_name,
                "family": family,
                "parameter": float(parameter),
                "scaler": scaler.name,
                "hit_rate_mean": hit_mean,
                "hit_rate_variance": hit_var,
                "rt_mean": rt_mean,
                "rt_variance": rt_var,
                "relative_cost": result.total_cost / workload.reference_cost,
            }
        )
    return rows
