"""Fleet co-scaling experiment — N tenants on shared capacity pools.

The driver composes an ``n_services``-tenant fleet from the scenario
registry (:func:`repro.fleet.compose_fleet`), then runs the two-phase
co-simulation:

1. **Isolation** — every service replays on a bottomless pool; the rows are
   the interference-free baselines and carry each service's per-tick demand
   profile.
2. **Allocation** — for every requested admission policy, each pool's
   capacity (given, or derived as ``capacity_fraction`` of the peak
   aggregate demand) is split into deterministic per-tick integer grants.
3. **Contention** — every service replays again per policy with its grants
   enforced as budgets.

Both replay phases shard across the process pool via
:func:`repro.fleet.partition_tasks` (one :class:`~repro.runtime.FunctionTask`
per service partition), so fleets inherit journaled resume, the artifact
store and progress streaming.  The result set interleaves three row shapes,
keyed by ``phase``: per-service ``isolation`` baselines, per-service
``contention`` rows (with ``isolation_*`` baselines, interference deltas
and grant bookkeeping), and per-``(pool, policy)`` ``fleet`` aggregates
(fleet cost, query-weighted hit rate, Jain's fairness indices,
Pareto-frontier membership).

Registered as ``"fleet"``: ``repro experiment fleet --scenario ...``.
"""

from __future__ import annotations

from ..api import ExperimentSpec, ParamSpec, register_experiment
from ..api.session import RunContext
from ..fleet import (
    POLICIES,
    FleetSpec,
    allocate_grants,
    compose_fleet,
    fleet_summary_rows,
    join_fleet_rows,
    partition_tasks,
)
from ..telemetry import get_recorder

__all__ = ["summarize_fleet"]

#: Scaler kinds :func:`repro.fleet.compose_fleet` can cycle tenants over.
_SCALER_KINDS = ("reactive", "bp", "adapbp", "rs-hp", "rs-rt", "rs-cost")


def _compose(params: dict) -> FleetSpec:
    scaler_params = {
        "pool_size": params["pool_size"],
        "adaptive_factor": params["adaptive_factor"],
        "target": params["target"],
        "planning_interval": params["planning_interval"],
        "monte_carlo_samples": params["monte_carlo_samples"],
    }
    return compose_fleet(
        params["n_services"],
        scenario_names=params["scenario_names"],
        scaler_kinds=params["scaler_kinds"],
        scale=params["scale"],
        base_seed=params["seed"],
        tick_seconds=params["tick_seconds"],
        capacity=params["capacity"],
        scaler_params=scaler_params,
    )


def _flatten(results: list[dict]) -> list[dict]:
    """Partition results (``{"rows": [...]}`` each) into one flat row list."""
    return [dict(row) for result in results for row in result["rows"]]


def _pool_capacities(
    fleet: FleetSpec, demands: dict[str, tuple[int, ...]], fraction: float
) -> dict[str, float]:
    """Each pool's tick capacity: declared, or derived from peak demand.

    The derived capacity is ``fraction`` of the pool's peak aggregate
    demand across ticks (at least 1), so contention pressure is comparable
    across fleet sizes and scales without hand-tuning a constant.
    """
    capacities: dict[str, float] = {}
    for pool in fleet.pools:
        if pool.capacity is not None:
            capacities[pool.name] = float(pool.capacity)
            continue
        profiles = [
            demands[fleet.services[index].name] for index in fleet.members(pool.name)
        ]
        n_ticks = max((len(profile) for profile in profiles), default=0)
        peak = max(
            (
                sum(profile[tick] for profile in profiles if tick < len(profile))
                for tick in range(n_ticks)
            ),
            default=0,
        )
        capacities[pool.name] = max(1.0, float(peak) * float(fraction))
    return capacities


def _policy_grants(
    fleet: FleetSpec,
    policy: str,
    demands: dict[str, tuple[int, ...]],
    capacities: dict[str, float],
) -> list[tuple[int, ...]]:
    """Per-service grant schedules (fleet order) for one admission policy."""
    grants: list[tuple[int, ...] | None] = [None] * len(fleet.services)
    for pool in fleet.pools:
        members = fleet.members(pool.name)
        member_grants = allocate_grants(
            policy,
            [demands[fleet.services[index].name] for index in members],
            capacities[pool.name],
            [fleet.services[index].weight for index in members],
            [fleet.services[index].priority for index in members],
        )
        for position, index in enumerate(members):
            grants[index] = member_grants[position]
    return [grant if grant is not None else () for grant in grants]


def _run_fleet(params: dict, ctx: RunContext) -> list[dict]:
    """Run the fleet co-simulation; isolation + contention + fleet rows."""
    fleet = _compose(params)
    policies = params["policies"] or POLICIES
    store_dir = None if ctx.store is None else str(ctx.store.root)
    recorder = ctx.recorder if ctx.recorder is not None else get_recorder()

    common = dict(
        engine=ctx.engine,
        tick_seconds=fleet.tick_seconds,
        base_seed=params["seed"],
        services_per_task=params["services_per_task"],
        store_dir=store_dir,
    )
    isolation_results = ctx.run_rows(
        partition_tasks(fleet.services, phase="isolation", **common),
        base_seed=params["seed"],
    )
    isolation_rows = _flatten(isolation_results)
    demands = {
        row["service"]: tuple(int(d) for d in row.pop("demand"))
        for row in isolation_rows
    }

    with recorder.span("fleet.allocate"):
        capacities = _pool_capacities(fleet, demands, params["capacity_fraction"])
        grants_by_policy = {
            policy: _policy_grants(fleet, policy, demands, capacities)
            for policy in policies
        }

    contention_rows: list[dict] = []
    for policy in policies:
        results = ctx.run_rows(
            partition_tasks(
                fleet.services,
                phase="contention",
                policy=policy,
                grants=grants_by_policy[policy],
                **common,
            ),
            base_seed=params["seed"],
        )
        contention_rows.extend(_flatten(results))

    grant_maps = {
        policy: {
            service.name: grants_by_policy[policy][index]
            for index, service in enumerate(fleet.services)
        }
        for policy in policies
    }
    joined = join_fleet_rows(isolation_rows, contention_rows, demands, grant_maps)
    summary = fleet_summary_rows(joined, capacities=capacities)

    if recorder.enabled:
        recorder.inc("fleet.services", len(fleet.services))
        recorder.inc("fleet.policies", len(policies))
        recorder.inc(
            "fleet.ticks", sum(len(profile) for profile in demands.values())
        )
        recorder.inc(
            "fleet.contended_ticks",
            sum(int(row.get("short_ticks", 0)) for row in joined),
        )
        recorder.inc(
            "fleet.demand_instances",
            sum(sum(profile) for profile in demands.values()),
        )
        recorder.inc(
            "fleet.granted_instances",
            sum(
                sum(sum(g) for g in grants_by_policy[policy])
                for policy in policies
            ),
        )
    return isolation_rows + joined + summary


def summarize_fleet(rows: list[dict]) -> list[dict]:
    """Just the fleet-level aggregate rows, in ``(pool, policy)`` order."""
    return [row for row in rows if row.get("phase") == "fleet"]


register_experiment(
    ExperimentSpec(
        name="fleet",
        title="multi-tenant co-scaling over shared capacity pools",
        params=(
            ParamSpec(
                "scenario_names",
                "str",
                None,
                sequence=True,
                cli_flag="--scenario",
                help="registry scenarios tenants cycle over "
                "(default: the standard fleet mix)",
            ),
            ParamSpec("n_services", "int", 100, help="fleet size (tenant count)"),
            ParamSpec(
                "scaler_kinds",
                "str",
                ("bp", "adapbp", "reactive"),
                sequence=True,
                choices=_SCALER_KINDS,
                cli_flag="--scaler",
                help="autoscaler kinds tenants cycle over",
            ),
            ParamSpec(
                "policies",
                "str",
                POLICIES,
                sequence=True,
                choices=POLICIES,
                cli_flag="--policy",
                help="admission policies to contend under (default: all)",
            ),
            ParamSpec("scale", "float", 0.02, help="trace size factor per tenant"),
            ParamSpec("seed", "int", 7, help="fleet composition and replay seed"),
            ParamSpec(
                "tick_seconds",
                "float",
                60.0,
                help="contention-resolution granularity (seconds)",
            ),
            ParamSpec(
                "capacity",
                "float",
                None,
                help="shared pool capacity in instances per tick "
                "(default: derived from peak demand)",
            ),
            ParamSpec(
                "capacity_fraction",
                "float",
                0.5,
                help="derived capacity as a fraction of peak aggregate demand",
            ),
            ParamSpec(
                "services_per_task",
                "int",
                8,
                help="services replayed per process-pool task",
            ),
            ParamSpec("pool_size", "int", 3, help="Backup Pool tenant pool size"),
            ParamSpec(
                "adaptive_factor",
                "float",
                10.0,
                help="Adaptive Backup Pool tenant rate factor",
            ),
            ParamSpec(
                "target", "float", 0.7, help="RobustScaler tenant QoS target"
            ),
            ParamSpec(
                "planning_interval",
                "float",
                10.0,
                help="RobustScaler tenant Delta (seconds)",
            ),
            ParamSpec(
                "monte_carlo_samples",
                "int",
                80,
                cli_flag="--mc-samples",
                help="RobustScaler tenant Monte Carlo sample size",
            ),
        ),
        run=_run_fleet,
        result_columns=(
            "service",
            "scenario",
            "scaler",
            "pool",
            "policy",
            "phase",
            "n_queries",
            "hit_rate",
            "rt_avg",
            "relative_cost",
            "hit_rate_delta",
            "grant_ratio",
            "short_ticks",
            "jain_satisfaction",
            "fleet_cost",
            "on_frontier",
        ),
        scenario_param="scenario_names",
    )
)
