"""Fig. 4 — Pareto comparison of autoscalers on the three traces.

For every trace the driver sweeps the trade-off parameter of each autoscaler
(pool size for BP, rate factor for AdapBP, target HP / RT / cost for the
three RobustScaler variants) and records ``hit_rate``, ``rt_avg`` and
``relative_cost`` for each point — exactly the data behind the six Pareto
plots of Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..config import SimulationConfig
from ..scaling.robustscaler import RobustScalerObjective
from ..types import ArrivalTrace
from .base import (
    PreparedWorkload,
    baseline_sweeps,
    build_robustscaler,
    default_planner,
    make_trace,
    prepare_workload,
    run_scaler_sweep,
    trace_defaults,
)

__all__ = ["ParetoExperimentConfig", "run_pareto_experiment", "run_single_trace_pareto"]


@dataclass
class ParetoExperimentConfig:
    """Parameters of the Pareto experiment.

    Attributes
    ----------
    trace_names:
        Which of the three traces to include.
    scale:
        Size factor of the generated traces (1.0 ~ paper size).
    seed:
        Seed for trace generation.
    planning_interval:
        RobustScaler planning interval Delta in seconds (paper: 1 s).
    monte_carlo_samples:
        Monte Carlo sample size R for the decision solvers.
    hp_targets, rt_budgets, cost_budgets:
        Sweep grids of the three RobustScaler variants; ``None`` uses
        per-trace defaults (RT budgets and cost budgets are expressed in
        seconds of waiting time / idle time respectively).
    include_rt_variant, include_cost_variant:
        Allow dropping the extra variants for faster runs.
    """

    trace_names: tuple[str, ...] = ("crs", "google", "alibaba")
    scale: float = 0.25
    seed: int = 7
    planning_interval: float = 2.0
    monte_carlo_samples: int = 400
    hp_targets: Sequence[float] | None = None
    rt_budgets: Sequence[float] | None = None
    cost_budgets: Sequence[float] | None = None
    include_rt_variant: bool = True
    include_cost_variant: bool = True
    pool_sizes: Sequence[int] | None = None
    adaptive_factors: Sequence[float] | None = None
    extra_simulation: SimulationConfig | None = field(default=None)


def run_pareto_experiment(config: ParetoExperimentConfig | None = None) -> list[dict]:
    """Run the Fig. 4 sweeps on every configured trace and return all rows."""
    config = config or ParetoExperimentConfig()
    rows: list[dict] = []
    for name in config.trace_names:
        trace = make_trace(name, scale=config.scale, seed=config.seed)
        rows.extend(run_single_trace_pareto(trace, trace_key=name, config=config))
    return rows


def run_single_trace_pareto(
    trace: ArrivalTrace,
    *,
    trace_key: str,
    config: ParetoExperimentConfig | None = None,
    workload: PreparedWorkload | None = None,
) -> list[dict]:
    """Run the Fig. 4 sweeps for one trace (reused by the robustness drivers)."""
    config = config or ParetoExperimentConfig()
    defaults = trace_defaults(trace_key)
    if workload is None:
        workload = prepare_workload(
            trace,
            train_fraction=defaults["train_fraction"],
            bin_seconds=defaults["bin_seconds"],
            simulation=config.extra_simulation,
        )
    planner = default_planner(config.planning_interval, config.monte_carlo_samples)

    pool_sizes = config.pool_sizes or defaults["pool_sizes"]
    adaptive_factors = config.adaptive_factors or defaults["adaptive_factors"]
    hp_targets = list(config.hp_targets or defaults["hp_targets"])

    mu_tau = workload.pending_model.mean
    rt_budgets = config.rt_budgets
    if rt_budgets is None:
        # Waiting-time budgets spanning "almost always wait the full pending
        # time" down to "almost never wait".
        rt_budgets = [mu_tau * f for f in (0.75, 0.5, 0.25, 0.1, 0.02)]
    cost_budgets = config.cost_budgets
    if cost_budgets is None:
        mean_gap = 1.0 / max(workload.test.mean_qps, 1e-9)
        cost_budgets = [mean_gap * f for f in (0.05, 0.25)]

    rows = baseline_sweeps(
        workload, pool_sizes=pool_sizes, adaptive_factors=adaptive_factors
    )
    rows += run_scaler_sweep(
        workload,
        lambda p: build_robustscaler(
            workload, RobustScalerObjective.HIT_PROBABILITY, p, planner=planner
        ),
        hp_targets,
        parameter_name="target_hp",
    )
    if config.include_rt_variant:
        rows += run_scaler_sweep(
            workload,
            lambda d: build_robustscaler(
                workload, RobustScalerObjective.RESPONSE_TIME, d, planner=planner
            ),
            sorted(rt_budgets, reverse=True),
            parameter_name="waiting_budget",
        )
    if config.include_cost_variant:
        rows += run_scaler_sweep(
            workload,
            lambda b: build_robustscaler(
                workload, RobustScalerObjective.COST, b, planner=planner
            ),
            sorted(cost_budgets),
            parameter_name="idle_budget",
        )
    for row in rows:
        row["trace"] = trace_key
    return rows
