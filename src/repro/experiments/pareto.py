"""Fig. 4 — Pareto comparison of autoscalers on the three traces.

For every trace the driver sweeps the trade-off parameter of each autoscaler
(pool size for BP, rate factor for AdapBP, target HP / RT / cost for the
three RobustScaler variants) and records ``hit_rate``, ``rt_avg`` and
``relative_cost`` for each point — exactly the data behind the six Pareto
plots of Fig. 4.

The experiment is registered as ``"pareto"`` in :mod:`repro.api`: the full
sweep is expressed as one :mod:`repro.runtime` task batch, and thanks to
the registry-derived per-scenario defaults of
:func:`repro.experiments.base.trace_defaults` it runs against *any*
registered workload scenario, not just the paper's three traces.
:func:`run_single_trace_pareto` remains the in-process variant for callers
that already hold a prepared workload (the examples).
"""

from __future__ import annotations

from typing import Sequence

from ..api import ExperimentSpec, ParamSpec, register_experiment
from ..api.session import RunContext
from ..config import SimulationConfig
from ..runtime import EvalTask, PrepSpec, ScalerSpec, WorkloadSpec
from ..scaling.robustscaler import RobustScalerObjective
from ..store.traces import get_or_build_trace
from ..types import ArrivalTrace
from ..workloads import get_scenario
from .base import (
    PreparedWorkload,
    baseline_sweeps,
    build_robustscaler,
    default_planner,
    prepare_workload,
    robustscaler_spec,
    run_scaler_sweep,
    trace_defaults,
)

__all__ = ["run_single_trace_pareto"]

#: Pending time (seconds) of the paper's deployment, the ``mu_tau`` the
#: waiting-time budget grid is expressed against.
_PENDING_TIME = 13.0


def _resolve_grids(
    trace_key: str,
    params: dict,
    *,
    mu_tau: float,
    mean_test_qps: float,
) -> dict:
    """Concrete sweep grids for one trace (param overrides, else defaults)."""
    defaults = trace_defaults(trace_key)
    rt_budgets = params["rt_budgets"]
    if rt_budgets is None:
        # Waiting-time budgets spanning "almost always wait the full pending
        # time" down to "almost never wait".
        rt_budgets = [mu_tau * f for f in (0.75, 0.5, 0.25, 0.1, 0.02)]
    cost_budgets = params["cost_budgets"]
    if cost_budgets is None:
        mean_gap = 1.0 / max(mean_test_qps, 1e-9)
        cost_budgets = [mean_gap * f for f in (0.05, 0.25)]
    return {
        "pool_sizes": list(params["pool_sizes"] or defaults["pool_sizes"]),
        "adaptive_factors": list(
            params["adaptive_factors"] or defaults["adaptive_factors"]
        ),
        "hp_targets": list(params["hp_targets"] or defaults["hp_targets"]),
        "rt_budgets": sorted(rt_budgets, reverse=True),
        "cost_budgets": sorted(cost_budgets),
    }


def _scaler_specs(grids: dict, params: dict) -> list[ScalerSpec]:
    """The per-trace sweep as declarative scaler specs (baselines first)."""
    specs = [ScalerSpec("bp", int(size)) for size in grids["pool_sizes"]]
    specs += [ScalerSpec("adapbp", float(f)) for f in grids["adaptive_factors"]]
    specs += [robustscaler_spec(params, "rs-hp", t) for t in grids["hp_targets"]]
    if params["include_rt_variant"]:
        specs += [robustscaler_spec(params, "rs-rt", b) for b in grids["rt_budgets"]]
    if params["include_cost_variant"]:
        specs += [
            robustscaler_spec(params, "rs-cost", b) for b in grids["cost_budgets"]
        ]
    return specs


def _run_pareto(params: dict, ctx: RunContext) -> list[dict]:
    """Run the Fig. 4 sweeps on every configured trace and return all rows."""
    tasks: list[EvalTask] = []
    for name in params["trace_names"]:
        defaults = trace_defaults(name)
        pending_time = defaults.get("pending_time", _PENDING_TIME)
        # The budget grids need the test window's mean QPS; generating the
        # trace here is cheap (no model fit) and bit-identical to what the
        # executor regenerates from the same (scenario, scale, seed).  With
        # a store the realization is cached on disk instead.
        trace = get_or_build_trace(
            get_scenario(name),
            scale=params["scale"],
            seed=params["seed"],
            store=ctx.store,
        )
        _, test = trace.split(defaults["train_fraction"])
        grids = _resolve_grids(
            name, params, mu_tau=pending_time, mean_test_qps=test.mean_qps
        )
        workload = WorkloadSpec(
            scenario=name,
            scale=params["scale"],
            seed=params["seed"],
            prep=PrepSpec(
                train_fraction=defaults["train_fraction"],
                bin_seconds=defaults["bin_seconds"],
                pending_time=pending_time,
                simulation=params["extra_simulation"],
                engine=ctx.engine,
            ),
        )
        tasks += [
            EvalTask(workload, spec, extra=(("trace", name),))
            for spec in _scaler_specs(grids, params)
        ]
    return ctx.run_rows(tasks, base_seed=params["seed"])


register_experiment(
    ExperimentSpec(
        name="pareto",
        title="cost/QoS Pareto sweep of every autoscaler on the paper traces",
        artifact="Fig. 4",
        params=(
            ParamSpec(
                "trace_names",
                "str",
                ("crs", "google", "alibaba"),
                sequence=True,
                cli_flag="--trace",
                help="trace / workload scenario to sweep",
            ),
            ParamSpec("scale", "float", 0.25, help="trace size factor (1.0 ~ paper)"),
            ParamSpec("seed", "int", 7, help="trace-generation and Monte Carlo seed"),
            ParamSpec(
                "planning_interval", "float", 2.0, help="RobustScaler Delta (seconds)"
            ),
            ParamSpec(
                "monte_carlo_samples",
                "int",
                400,
                cli_flag="--mc-samples",
                help="Monte Carlo sample size R",
            ),
            ParamSpec(
                "hp_targets",
                "float",
                None,
                sequence=True,
                cli_flag="--hp-target",
                help="RobustScaler-HP targets",
            ),
            ParamSpec(
                "rt_budgets",
                "float",
                None,
                sequence=True,
                cli_flag="--rt-budget",
                help="RobustScaler-RT waiting budgets (seconds)",
            ),
            ParamSpec(
                "cost_budgets",
                "float",
                None,
                sequence=True,
                cli_flag="--cost-budget",
                help="RobustScaler-cost idle budgets (seconds)",
            ),
            ParamSpec(
                "include_rt_variant",
                "bool",
                True,
                cli_flag="--rt-variant",
                help="sweep the RT-constrained RobustScaler",
            ),
            ParamSpec(
                "include_cost_variant",
                "bool",
                True,
                cli_flag="--cost-variant",
                help="sweep the cost-constrained RobustScaler",
            ),
            ParamSpec(
                "pool_sizes",
                "int",
                None,
                sequence=True,
                cli_flag="--pool-size",
                help="Backup Pool sizes",
            ),
            ParamSpec(
                "adaptive_factors",
                "float",
                None,
                sequence=True,
                cli_flag="--adaptive-factor",
                help="Adaptive Backup Pool rate factors",
            ),
            ParamSpec(
                "extra_simulation",
                "object",
                None,
                help="explicit SimulationConfig override",
            ),
        ),
        run=_run_pareto,
        result_columns=(
            "trace",
            "scaler",
            "pool_size",
            "rate_factor",
            "target_hp",
            "waiting_budget",
            "idle_budget",
            "n_queries",
            "hit_rate",
            "rt_avg",
            "relative_cost",
        ),
        scenario_param="trace_names",
    )
)


def run_single_trace_pareto(
    trace: ArrivalTrace,
    *,
    trace_key: str,
    workload: PreparedWorkload | None = None,
    planning_interval: float = 2.0,
    monte_carlo_samples: int = 400,
    hp_targets: Sequence[float] | None = None,
    rt_budgets: Sequence[float] | None = None,
    cost_budgets: Sequence[float] | None = None,
    pool_sizes: Sequence[int] | None = None,
    adaptive_factors: Sequence[float] | None = None,
    include_rt_variant: bool = True,
    include_cost_variant: bool = True,
    simulation: SimulationConfig | None = None,
    engine: str | None = None,
) -> list[dict]:
    """Run the Fig. 4 sweeps for one trace, in process.

    Unlike the registry experiment this evaluates against a concrete
    (possibly caller-prepared) workload, which is what callers holding
    modified traces need.
    """
    params = {
        "planning_interval": planning_interval,
        "monte_carlo_samples": monte_carlo_samples,
        "hp_targets": hp_targets,
        "rt_budgets": rt_budgets,
        "cost_budgets": cost_budgets,
        "pool_sizes": pool_sizes,
        "adaptive_factors": adaptive_factors,
        "include_rt_variant": include_rt_variant,
        "include_cost_variant": include_cost_variant,
    }
    defaults = trace_defaults(trace_key)
    if workload is None:
        workload = prepare_workload(
            trace,
            train_fraction=defaults["train_fraction"],
            bin_seconds=defaults["bin_seconds"],
            simulation=simulation,
            engine=engine,
        )
    planner = default_planner(
        params["planning_interval"], params["monte_carlo_samples"]
    )
    grids = _resolve_grids(
        trace_key,
        params,
        mu_tau=workload.pending_model.mean,
        mean_test_qps=workload.test.mean_qps,
    )

    rows = baseline_sweeps(
        workload,
        pool_sizes=grids["pool_sizes"],
        adaptive_factors=grids["adaptive_factors"],
    )
    rows += run_scaler_sweep(
        workload,
        lambda p: build_robustscaler(
            workload, RobustScalerObjective.HIT_PROBABILITY, p, planner=planner
        ),
        grids["hp_targets"],
        parameter_name="target_hp",
    )
    if params["include_rt_variant"]:
        rows += run_scaler_sweep(
            workload,
            lambda d: build_robustscaler(
                workload, RobustScalerObjective.RESPONSE_TIME, d, planner=planner
            ),
            grids["rt_budgets"],
            parameter_name="waiting_budget",
        )
    if params["include_cost_variant"]:
        rows += run_scaler_sweep(
            workload,
            lambda b: build_robustscaler(
                workload, RobustScalerObjective.COST, b, planner=planner
            ),
            grids["cost_budgets"],
            parameter_name="idle_budget",
        )
    for row in rows:
        row["trace"] = trace_key
    return rows
