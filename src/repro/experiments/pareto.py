"""Fig. 4 — Pareto comparison of autoscalers on the three traces.

For every trace the driver sweeps the trade-off parameter of each autoscaler
(pool size for BP, rate factor for AdapBP, target HP / RT / cost for the
three RobustScaler variants) and records ``hit_rate``, ``rt_avg`` and
``relative_cost`` for each point — exactly the data behind the six Pareto
plots of Fig. 4.

:func:`run_pareto_experiment` expresses the full sweep as one
:mod:`repro.runtime` task batch, so each trace is prepared once (workload
cache) and the points evaluate serially or on a process pool (``workers`` /
``REPRO_WORKERS``) with identical rows.  :func:`run_single_trace_pareto`
remains the in-process variant for callers that already hold a prepared
workload (the robustness drivers, the examples).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from ..config import SimulationConfig
from ..runtime import EvalTask, PrepSpec, ScalerSpec, WorkloadSpec, run_task_rows
from ..scaling.robustscaler import RobustScalerObjective
from ..store.traces import get_or_build_trace
from ..types import ArrivalTrace
from ..workloads import get_scenario
from .base import (
    PreparedWorkload,
    baseline_sweeps,
    build_robustscaler,
    default_planner,
    prepare_workload,
    robustscaler_spec,
    run_scaler_sweep,
    trace_defaults,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..store import ArtifactStore

__all__ = ["ParetoExperimentConfig", "run_pareto_experiment", "run_single_trace_pareto"]

#: Pending time (seconds) of the paper's deployment, the ``mu_tau`` the
#: waiting-time budget grid is expressed against.
_PENDING_TIME = 13.0


@dataclass
class ParetoExperimentConfig:
    """Parameters of the Pareto experiment.

    Attributes
    ----------
    trace_names:
        Which of the three traces to include.
    scale:
        Size factor of the generated traces (1.0 ~ paper size).
    seed:
        Seed for trace generation.
    planning_interval:
        RobustScaler planning interval Delta in seconds (paper: 1 s).
    monte_carlo_samples:
        Monte Carlo sample size R for the decision solvers.
    hp_targets, rt_budgets, cost_budgets:
        Sweep grids of the three RobustScaler variants; ``None`` uses
        per-trace defaults (RT budgets and cost budgets are expressed in
        seconds of waiting time / idle time respectively).
    include_rt_variant, include_cost_variant:
        Allow dropping the extra variants for faster runs.
    workers:
        Process count for the runtime executor; ``None`` consults
        ``REPRO_WORKERS`` and defaults to serial.
    """

    trace_names: tuple[str, ...] = ("crs", "google", "alibaba")
    scale: float = 0.25
    seed: int = 7
    planning_interval: float = 2.0
    monte_carlo_samples: int = 400
    hp_targets: Sequence[float] | None = None
    rt_budgets: Sequence[float] | None = None
    cost_budgets: Sequence[float] | None = None
    include_rt_variant: bool = True
    include_cost_variant: bool = True
    pool_sizes: Sequence[int] | None = None
    adaptive_factors: Sequence[float] | None = None
    extra_simulation: SimulationConfig | None = field(default=None)
    workers: int | None = None
    #: Replay engine ("reference" / "batched"); both give identical rows.
    engine: str | None = None
    #: Disk artifact store: prepared workloads and generated traces persist
    #: across CLI invocations, and ``run_id`` journaling becomes available.
    store: "ArtifactStore | None" = None
    #: Journal per-task completions under this id (resumable runs).
    run_id: str | None = None


def _resolve_grids(
    trace_key: str,
    config: ParetoExperimentConfig,
    *,
    mu_tau: float,
    mean_test_qps: float,
) -> dict:
    """Concrete sweep grids for one trace (config overrides, else defaults)."""
    defaults = trace_defaults(trace_key)
    rt_budgets = config.rt_budgets
    if rt_budgets is None:
        # Waiting-time budgets spanning "almost always wait the full pending
        # time" down to "almost never wait".
        rt_budgets = [mu_tau * f for f in (0.75, 0.5, 0.25, 0.1, 0.02)]
    cost_budgets = config.cost_budgets
    if cost_budgets is None:
        mean_gap = 1.0 / max(mean_test_qps, 1e-9)
        cost_budgets = [mean_gap * f for f in (0.05, 0.25)]
    return {
        "pool_sizes": list(config.pool_sizes or defaults["pool_sizes"]),
        "adaptive_factors": list(config.adaptive_factors or defaults["adaptive_factors"]),
        "hp_targets": list(config.hp_targets or defaults["hp_targets"]),
        "rt_budgets": sorted(rt_budgets, reverse=True),
        "cost_budgets": sorted(cost_budgets),
    }


def _scaler_specs(grids: dict, config: ParetoExperimentConfig) -> list[ScalerSpec]:
    """The per-trace sweep as declarative scaler specs (baselines first)."""
    specs = [ScalerSpec("bp", int(size)) for size in grids["pool_sizes"]]
    specs += [ScalerSpec("adapbp", float(f)) for f in grids["adaptive_factors"]]
    specs += [robustscaler_spec(config, "rs-hp", t) for t in grids["hp_targets"]]
    if config.include_rt_variant:
        specs += [robustscaler_spec(config, "rs-rt", b) for b in grids["rt_budgets"]]
    if config.include_cost_variant:
        specs += [robustscaler_spec(config, "rs-cost", b) for b in grids["cost_budgets"]]
    return specs


def run_pareto_experiment(config: ParetoExperimentConfig | None = None) -> list[dict]:
    """Run the Fig. 4 sweeps on every configured trace and return all rows."""
    config = config or ParetoExperimentConfig()
    tasks: list[EvalTask] = []
    for name in config.trace_names:
        defaults = trace_defaults(name)
        # The budget grids need the test window's mean QPS; generating the
        # trace here is cheap (no model fit) and bit-identical to what the
        # executor regenerates from the same (scenario, scale, seed).  With
        # a store the realization is cached on disk instead.
        trace = get_or_build_trace(
            get_scenario(name), scale=config.scale, seed=config.seed, store=config.store
        )
        _, test = trace.split(defaults["train_fraction"])
        grids = _resolve_grids(
            name, config, mu_tau=_PENDING_TIME, mean_test_qps=test.mean_qps
        )
        workload = WorkloadSpec(
            scenario=name,
            scale=config.scale,
            seed=config.seed,
            prep=PrepSpec(
                train_fraction=defaults["train_fraction"],
                bin_seconds=defaults["bin_seconds"],
                pending_time=_PENDING_TIME,
                simulation=config.extra_simulation,
                engine=config.engine,
            ),
        )
        tasks += [
            EvalTask(workload, spec, extra=(("trace", name),))
            for spec in _scaler_specs(grids, config)
        ]
    return run_task_rows(
        tasks,
        base_seed=config.seed,
        workers=config.workers,
        store=config.store,
        run_id=config.run_id,
    )


def run_single_trace_pareto(
    trace: ArrivalTrace,
    *,
    trace_key: str,
    config: ParetoExperimentConfig | None = None,
    workload: PreparedWorkload | None = None,
) -> list[dict]:
    """Run the Fig. 4 sweeps for one trace (reused by the robustness drivers).

    Unlike :func:`run_pareto_experiment` this evaluates in-process against a
    concrete (possibly caller-prepared) workload, which is what the
    robustness/perturbation-style drivers need for their modified traces.
    """
    config = config or ParetoExperimentConfig()
    defaults = trace_defaults(trace_key)
    if workload is None:
        workload = prepare_workload(
            trace,
            train_fraction=defaults["train_fraction"],
            bin_seconds=defaults["bin_seconds"],
            simulation=config.extra_simulation,
            engine=config.engine,
        )
    planner = default_planner(config.planning_interval, config.monte_carlo_samples)
    grids = _resolve_grids(
        trace_key,
        config,
        mu_tau=workload.pending_model.mean,
        mean_test_qps=workload.test.mean_qps,
    )

    rows = baseline_sweeps(
        workload,
        pool_sizes=grids["pool_sizes"],
        adaptive_factors=grids["adaptive_factors"],
    )
    rows += run_scaler_sweep(
        workload,
        lambda p: build_robustscaler(
            workload, RobustScalerObjective.HIT_PROBABILITY, p, planner=planner
        ),
        grids["hp_targets"],
        parameter_name="target_hp",
    )
    if config.include_rt_variant:
        rows += run_scaler_sweep(
            workload,
            lambda d: build_robustscaler(
                workload, RobustScalerObjective.RESPONSE_TIME, d, planner=planner
            ),
            grids["rt_budgets"],
            parameter_name="waiting_budget",
        )
    if config.include_cost_variant:
        rows += run_scaler_sweep(
            workload,
            lambda b: build_robustscaler(
                workload, RobustScalerObjective.COST, b, planner=planner
            ),
            grids["cost_budgets"],
            parameter_name="idle_budget",
        )
    for row in rows:
        row["trace"] = trace_key
    return rows
