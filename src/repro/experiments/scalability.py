"""Fig. 8 and Table I — scalability towards high QPS and Monte Carlo accuracy.

Fig. 8 measures how long one decision update (modules 3-4: sampling arrival
scenarios and solving (3)/(5)/(7) for every instance creation that falls in
the next planning window) takes as a function of the instantaneous QPS.  The
paper sweeps the QPS up to 10 000 using a synthetic hourly-bump intensity;
the driver below measures the same quantity on a configurable QPS grid so the
linear runtime growth can be verified at any scale.

Table I replays a synthetic trace generated from the same family of
intensities with all three RobustScaler variants and compares the achieved
QoS/cost level against the target that was requested.  The paper uses a peak
of 1000 QPS; the default here is laptop-sized but the peak is a parameter.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..config import PlannerConfig, SimulationConfig
from ..nhpp.intensity import PiecewiseConstantIntensity
from ..optimization.formulations import DecisionObjective, solve_batch
from ..optimization.montecarlo import generate_scenarios
from ..pending import DeterministicPendingTime
from ..scaling.robustscaler import RobustScaler, RobustScalerObjective
from ..simulation.runner import create_simulator
from ..traces.synthetic import beta_bump_intensity, generate_trace_from_intensity
from ..types import ArrivalTrace

__all__ = [
    "ScalabilityExperimentConfig",
    "run_scalability_experiment",
    "MCAccuracyExperimentConfig",
    "run_mc_accuracy_experiment",
]


@dataclass
class ScalabilityExperimentConfig:
    """Parameters of the runtime-vs-QPS measurement (Fig. 8)."""

    qps_levels: Sequence[float] = (0.1, 1.0, 10.0, 100.0, 1000.0, 10000.0)
    planning_window: float = 5.0
    monte_carlo_samples: int = 1000
    pending_time: float = 13.0
    target_hp: float = 0.9
    waiting_budget: float = 1.0
    idle_budget: float = 2.0
    repeats: int = 3
    seed: int = 0


def run_scalability_experiment(
    config: ScalabilityExperimentConfig | None = None,
) -> list[dict]:
    """Measure per-decision-update runtime for each QPS level and each variant.

    Each row reports the wall-clock seconds of one planning round (scenario
    sampling plus per-query solves for all instances falling in the planning
    window) at the given QPS, for the HP, RT and cost formulations.
    """
    config = config or ScalabilityExperimentConfig()
    pending = DeterministicPendingTime(config.pending_time)
    rows: list[dict] = []
    for qps in config.qps_levels:
        intensity = PiecewiseConstantIntensity(
            np.array([float(qps)]), 60.0, extrapolation="hold"
        )
        expected = qps * (config.planning_window + config.pending_time)
        n_queries = max(1, int(np.ceil(expected + 4.0 * np.sqrt(expected) + 5.0)))
        for objective, target in (
            (DecisionObjective.HIT_PROBABILITY, config.target_hp),
            (DecisionObjective.RESPONSE_TIME, config.waiting_budget),
            (DecisionObjective.COST, config.idle_budget),
        ):
            timings = []
            for repeat in range(config.repeats):
                started = time.perf_counter()
                scenarios = generate_scenarios(
                    intensity,
                    pending,
                    n_queries=n_queries,
                    n_samples=config.monte_carlo_samples,
                    random_state=config.seed + repeat,
                )
                solve_batch(scenarios, objective, target)
                timings.append(time.perf_counter() - started)
            rows.append(
                {
                    "qps": float(qps),
                    "variant": f"RobustScaler-{objective.value.upper()}",
                    "decisions_per_update": n_queries,
                    "runtime_seconds": float(np.median(timings)),
                    "runtime_per_decision_ms": 1000.0 * float(np.median(timings)) / n_queries,
                }
            )
    return rows


@dataclass
class MCAccuracyExperimentConfig:
    """Parameters of the Monte Carlo accuracy experiment (Table I).

    The paper's run uses ``peak_qps = 1000`` and a one-hour period over seven
    hours; the defaults below shrink the peak so the replay finishes in
    seconds while exercising exactly the same code path.
    """

    peak_qps: float = 20.0
    base_qps: float = 0.001
    period_seconds: float = 1800.0
    horizon_seconds: float = 4 * 1800.0
    train_fraction: float = 0.75
    pending_time: float = 13.0
    processing_time_mean: float = 20.0
    target_hp: float = 0.9
    waiting_budget: float = 1.0
    idle_budget: float = 2.0
    planning_interval: float = 5.0
    monte_carlo_samples: int = 1000
    seed: int = 0
    #: Replay engine ("reference" / "batched"); both give identical rows.
    engine: str = "reference"


def _bump_intensity(config: MCAccuracyExperimentConfig) -> PiecewiseConstantIntensity:
    bin_seconds = max(config.period_seconds / 360.0, 1.0)
    times = (np.arange(int(config.horizon_seconds / bin_seconds)) + 0.5) * bin_seconds
    values = beta_bump_intensity(
        times,
        peak=config.peak_qps,
        period_seconds=config.period_seconds,
        exponent=40.0,
        base=config.base_qps,
    )
    return PiecewiseConstantIntensity(values, bin_seconds, extrapolation="periodic")


def run_mc_accuracy_experiment(
    config: MCAccuracyExperimentConfig | None = None,
) -> list[dict]:
    """Replay the synthetic high-QPS trace with the three variants (Table I).

    Returns one row per variant with the target level and the achieved level,
    where "level" means hit rate (HP variant), mean waiting time in seconds
    (RT variant), or mean idle time per instance in seconds (cost variant).
    """
    config = config or MCAccuracyExperimentConfig()
    intensity = _bump_intensity(config)
    trace = generate_trace_from_intensity(
        intensity,
        config.horizon_seconds,
        processing_time_mean=config.processing_time_mean,
        processing_time_distribution="exponential",
        name="mc-accuracy",
        random_state=config.seed,
    )
    train, test = trace.split(config.train_fraction)
    # The ground-truth intensity is periodic, so the forecast for the test
    # window is the same profile shifted by the training duration.
    forecast = intensity.shift(train.horizon)
    pending = DeterministicPendingTime(config.pending_time)
    planner = PlannerConfig(
        planning_interval=config.planning_interval,
        monte_carlo_samples=config.monte_carlo_samples,
    )
    sim_config = SimulationConfig(pending_time=config.pending_time, engine=config.engine)
    simulator = create_simulator(sim_config)

    rows: list[dict] = []
    variants = (
        (RobustScalerObjective.HIT_PROBABILITY, config.target_hp, "hit probability"),
        (RobustScalerObjective.RESPONSE_TIME, config.waiting_budget, "waiting seconds"),
        (RobustScalerObjective.COST, config.idle_budget, "idle seconds per instance"),
    )
    for objective, target, unit in variants:
        scaler = RobustScaler(
            forecast,
            pending,
            objective=objective,
            target=target,
            planner=planner,
            random_state=config.seed,
        )
        result = simulator.replay(test, scaler)
        if objective is RobustScalerObjective.HIT_PROBABILITY:
            achieved = result.hit_rate
        elif objective is RobustScalerObjective.RESPONSE_TIME:
            achieved = float(result.waiting_times.mean())
        else:
            idle = np.array([o.instance.idle_time for o in result.outcomes])
            achieved = float(idle.mean()) if idle.size else float("nan")
        rows.append(
            {
                "variant": scaler.name,
                "metric": unit,
                "target_level": float(target),
                "achieved_level": achieved,
                "n_queries": result.n_queries,
            }
        )
    return rows
