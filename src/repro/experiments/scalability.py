"""Fig. 8 and Table I — scalability towards high QPS and Monte Carlo accuracy.

Fig. 8 measures how long one decision update (modules 3-4: sampling arrival
scenarios and solving (3)/(5)/(7) for every instance creation that falls in
the next planning window) takes as a function of the instantaneous QPS.  The
paper sweeps the QPS up to 10 000 using a synthetic hourly-bump intensity;
the driver below measures the same quantity on a configurable QPS grid so the
linear runtime growth can be verified at any scale.

Table I replays a synthetic trace generated from the same family of
intensities with all three RobustScaler variants and compares the achieved
QoS/cost level against the target that was requested.  The paper uses a peak
of 1000 QPS; the default here is laptop-sized but the peak is a parameter.

Registered as ``"scalability"`` and ``"table1"`` in :mod:`repro.api`; the
former is a pure solver-timing grid (no replay, so no engine selection),
the latter replays through whichever engine the session resolves.
"""

from __future__ import annotations

import time

import numpy as np

from ..api import (
    ExperimentSpec,
    ParamSpec,
    register_experiment,
)
from ..api.session import RunContext
from ..config import PlannerConfig, SimulationConfig
from ..nhpp.intensity import PiecewiseConstantIntensity
from ..optimization.formulations import DecisionObjective, solve_batch
from ..optimization.montecarlo import generate_scenarios
from ..pending import DeterministicPendingTime
from ..scaling.robustscaler import RobustScaler, RobustScalerObjective
from ..simulation.runner import create_simulator
from ..traces.synthetic import beta_bump_intensity, generate_trace_from_intensity

__all__: list[str] = []


def _run_scalability(params: dict, ctx: RunContext) -> list[dict]:
    """Measure per-decision-update runtime for each QPS level and each variant.

    Each row reports the wall-clock seconds of one planning round (scenario
    sampling plus per-query solves for all instances falling in the planning
    window) at the given QPS, for the HP, RT and cost formulations.
    """
    pending = DeterministicPendingTime(params["pending_time"])
    rows: list[dict] = []
    for qps in params["qps_levels"]:
        intensity = PiecewiseConstantIntensity(
            np.array([float(qps)]), 60.0, extrapolation="hold"
        )
        expected = qps * (params["planning_window"] + params["pending_time"])
        n_queries = max(1, int(np.ceil(expected + 4.0 * np.sqrt(expected) + 5.0)))
        for objective, target in (
            (DecisionObjective.HIT_PROBABILITY, params["target_hp"]),
            (DecisionObjective.RESPONSE_TIME, params["waiting_budget"]),
            (DecisionObjective.COST, params["idle_budget"]),
        ):
            timings = []
            for repeat in range(params["repeats"]):
                started = time.perf_counter()
                scenarios = generate_scenarios(
                    intensity,
                    pending,
                    n_queries=n_queries,
                    n_samples=params["monte_carlo_samples"],
                    random_state=params["seed"] + repeat,
                )
                solve_batch(scenarios, objective, target)
                timings.append(time.perf_counter() - started)
            rows.append(
                {
                    "qps": float(qps),
                    "variant": f"RobustScaler-{objective.value.upper()}",
                    "decisions_per_update": n_queries,
                    "runtime_seconds": float(np.median(timings)),
                    "runtime_per_decision_ms": 1000.0
                    * float(np.median(timings))
                    / n_queries,
                }
            )
    return rows


register_experiment(
    ExperimentSpec(
        name="scalability",
        title="decision-update runtime versus instantaneous QPS",
        artifact="Fig. 8",
        params=(
            ParamSpec(
                "qps_levels",
                "float",
                (0.1, 1.0, 10.0, 100.0, 1000.0, 10000.0),
                sequence=True,
                cli_flag="--qps",
                help="instantaneous QPS levels to time",
            ),
            ParamSpec(
                "planning_window", "float", 5.0, help="planning window (seconds)"
            ),
            ParamSpec(
                "monte_carlo_samples",
                "int",
                1000,
                cli_flag="--mc-samples",
                help="Monte Carlo sample size R",
            ),
            ParamSpec(
                "pending_time", "float", 13.0, help="instance startup time (seconds)"
            ),
            ParamSpec("target_hp", "float", 0.9, help="HP-variant target"),
            ParamSpec(
                "waiting_budget", "float", 1.0, help="RT-variant budget (seconds)"
            ),
            ParamSpec(
                "idle_budget", "float", 2.0, help="cost-variant budget (seconds)"
            ),
            ParamSpec("repeats", "int", 3, help="timing repetitions per cell"),
            ParamSpec("seed", "int", 0, help="Monte Carlo seed"),
        ),
        run=_run_scalability,
        result_columns=(
            "qps",
            "variant",
            "decisions_per_update",
            "runtime_seconds",
            "runtime_per_decision_ms",
        ),
        runtime=False,
        engine_aware=False,
    )
)



def _bump_intensity(params: dict) -> PiecewiseConstantIntensity:
    bin_seconds = max(params["period_seconds"] / 360.0, 1.0)
    times = (np.arange(int(params["horizon_seconds"] / bin_seconds)) + 0.5) * bin_seconds
    values = beta_bump_intensity(
        times,
        peak=params["peak_qps"],
        period_seconds=params["period_seconds"],
        exponent=40.0,
        base=params["base_qps"],
    )
    return PiecewiseConstantIntensity(values, bin_seconds, extrapolation="periodic")


def _run_mc_accuracy(params: dict, ctx: RunContext) -> list[dict]:
    """Replay the synthetic high-QPS trace with the three variants (Table I).

    Returns one row per variant with the target level and the achieved level,
    where "level" means hit rate (HP variant), mean waiting time in seconds
    (RT variant), or mean idle time per instance in seconds (cost variant).
    """
    intensity = _bump_intensity(params)
    trace = generate_trace_from_intensity(
        intensity,
        params["horizon_seconds"],
        processing_time_mean=params["processing_time_mean"],
        processing_time_distribution="exponential",
        name="mc-accuracy",
        random_state=params["seed"],
    )
    train, test = trace.split(params["train_fraction"])
    # The ground-truth intensity is periodic, so the forecast for the test
    # window is the same profile shifted by the training duration.
    forecast = intensity.shift(train.horizon)
    pending = DeterministicPendingTime(params["pending_time"])
    planner = PlannerConfig(
        planning_interval=params["planning_interval"],
        monte_carlo_samples=params["monte_carlo_samples"],
    )
    sim_config = SimulationConfig(
        pending_time=params["pending_time"], engine=ctx.engine
    )
    simulator = create_simulator(sim_config)

    rows: list[dict] = []
    variants = (
        (RobustScalerObjective.HIT_PROBABILITY, params["target_hp"], "hit probability"),
        (
            RobustScalerObjective.RESPONSE_TIME,
            params["waiting_budget"],
            "waiting seconds",
        ),
        (
            RobustScalerObjective.COST,
            params["idle_budget"],
            "idle seconds per instance",
        ),
    )
    for objective, target, unit in variants:
        scaler = RobustScaler(
            forecast,
            pending,
            objective=objective,
            target=target,
            planner=planner,
            random_state=params["seed"],
        )
        result = simulator.replay(test, scaler)
        if objective is RobustScalerObjective.HIT_PROBABILITY:
            achieved = result.hit_rate
        elif objective is RobustScalerObjective.RESPONSE_TIME:
            achieved = float(result.waiting_times.mean())
        else:
            idle = np.array([o.instance.idle_time for o in result.outcomes])
            achieved = float(idle.mean()) if idle.size else float("nan")
        rows.append(
            {
                "variant": scaler.name,
                "metric": unit,
                "target_level": float(target),
                "achieved_level": achieved,
                "n_queries": result.n_queries,
            }
        )
    return rows


register_experiment(
    ExperimentSpec(
        name="table1",
        title="Monte Carlo accuracy: achieved vs targeted QoS/cost levels",
        artifact="Table I",
        params=(
            ParamSpec("peak_qps", "float", 20.0, help="intensity peak (QPS)"),
            ParamSpec("base_qps", "float", 0.001, help="intensity base (QPS)"),
            ParamSpec(
                "period_seconds", "float", 1800.0, help="bump period (seconds)"
            ),
            ParamSpec(
                "horizon_seconds", "float", 4 * 1800.0, help="horizon (seconds)"
            ),
            ParamSpec("train_fraction", "float", 0.75, help="training split"),
            ParamSpec(
                "pending_time", "float", 13.0, help="instance startup time (seconds)"
            ),
            ParamSpec(
                "processing_time_mean", "float", 20.0, help="mean service time"
            ),
            ParamSpec("target_hp", "float", 0.9, help="HP-variant target"),
            ParamSpec(
                "waiting_budget", "float", 1.0, help="RT-variant budget (seconds)"
            ),
            ParamSpec(
                "idle_budget", "float", 2.0, help="cost-variant budget (seconds)"
            ),
            ParamSpec(
                "planning_interval", "float", 5.0, help="RobustScaler Delta (seconds)"
            ),
            ParamSpec(
                "monte_carlo_samples",
                "int",
                1000,
                cli_flag="--mc-samples",
                help="Monte Carlo sample size R",
            ),
            ParamSpec("seed", "int", 0, help="generation and Monte Carlo seed"),
        ),
        run=_run_mc_accuracy,
        result_columns=(
            "variant",
            "metric",
            "target_level",
            "achieved_level",
            "n_queries",
        ),
        runtime=False,
        engine_aware=True,
    )
)

