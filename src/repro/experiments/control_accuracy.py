"""Fig. 10 — accuracy of QoS/cost control and the effect of planning frequency.

Three nominal-vs-actual sweeps (panels a-c) check that requesting a hitting
probability / waiting budget / idle-cost budget of ``x`` actually yields
``approximately x`` on the replayed trace, and one sweep over the planning
interval ``Delta`` (panel d) shows that less frequent planning costs more
resources for the same QoS target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..scaling.robustscaler import RobustScalerObjective
from .base import (
    build_robustscaler,
    default_planner,
    make_trace,
    prepare_workload,
    trace_defaults,
)

__all__ = [
    "ControlAccuracyExperimentConfig",
    "run_control_accuracy_experiment",
    "run_planning_frequency_experiment",
]


@dataclass
class ControlAccuracyExperimentConfig:
    """Parameters of the nominal-vs-actual experiment (Fig. 10 a-c)."""

    trace_name: str = "crs"
    scale: float = 0.25
    seed: int = 7
    hp_targets: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 0.95)
    waiting_budgets: Sequence[float] = (1.0, 3.0, 6.0, 10.0, 13.0)
    idle_budgets: Sequence[float] = (2.0, 5.0, 10.0, 20.0, 40.0)
    planning_interval: float = 2.0
    monte_carlo_samples: int = 400


def run_control_accuracy_experiment(
    config: ControlAccuracyExperimentConfig | None = None,
) -> list[dict]:
    """Nominal vs actual HP, waiting time, and idle cost (Fig. 10 a-c)."""
    config = config or ControlAccuracyExperimentConfig()
    defaults = trace_defaults(config.trace_name)
    trace = make_trace(config.trace_name, scale=config.scale, seed=config.seed)
    workload = prepare_workload(
        trace,
        train_fraction=defaults["train_fraction"],
        bin_seconds=defaults["bin_seconds"],
    )
    planner = default_planner(config.planning_interval, config.monte_carlo_samples)

    rows: list[dict] = []
    for target in config.hp_targets:
        scaler = build_robustscaler(
            workload, RobustScalerObjective.HIT_PROBABILITY, target, planner=planner
        )
        result = workload.replay(scaler)
        rows.append(
            {
                "trace": config.trace_name,
                "panel": "hit_probability",
                "nominal": float(target),
                "actual": result.hit_rate,
                "relative_cost": result.total_cost / workload.reference_cost,
            }
        )
    for budget in config.waiting_budgets:
        scaler = build_robustscaler(
            workload, RobustScalerObjective.RESPONSE_TIME, budget, planner=planner
        )
        result = workload.replay(scaler)
        rows.append(
            {
                "trace": config.trace_name,
                "panel": "waiting_time",
                "nominal": float(budget),
                "actual": float(result.waiting_times.mean()),
                "relative_cost": result.total_cost / workload.reference_cost,
            }
        )
    for budget in config.idle_budgets:
        scaler = build_robustscaler(
            workload, RobustScalerObjective.COST, budget, planner=planner
        )
        result = workload.replay(scaler)
        idle = np.array([o.instance.idle_time for o in result.outcomes])
        rows.append(
            {
                "trace": config.trace_name,
                "panel": "idle_cost",
                "nominal": float(budget),
                "actual": float(idle.mean()) if idle.size else float("nan"),
                "relative_cost": result.total_cost / workload.reference_cost,
            }
        )
    return rows


@dataclass
class PlanningFrequencyExperimentConfig:
    """Parameters of the planning-frequency experiment (Fig. 10 d)."""

    trace_name: str = "crs"
    scale: float = 0.25
    seed: int = 7
    planning_intervals: Sequence[float] = (1.0, 5.0, 15.0, 30.0, 60.0)
    waiting_budget: float = 3.0
    monte_carlo_samples: int = 400


def run_planning_frequency_experiment(
    config: PlanningFrequencyExperimentConfig | None = None,
) -> list[dict]:
    """Cost of achieving the same waiting budget at different planning intervals."""
    config = config or PlanningFrequencyExperimentConfig()
    defaults = trace_defaults(config.trace_name)
    trace = make_trace(config.trace_name, scale=config.scale, seed=config.seed)
    workload = prepare_workload(
        trace,
        train_fraction=defaults["train_fraction"],
        bin_seconds=defaults["bin_seconds"],
    )
    rows: list[dict] = []
    for interval in config.planning_intervals:
        planner = default_planner(float(interval), config.monte_carlo_samples)
        scaler = build_robustscaler(
            workload,
            RobustScalerObjective.RESPONSE_TIME,
            config.waiting_budget,
            planner=planner,
        )
        result = workload.replay(scaler)
        rows.append(
            {
                "trace": config.trace_name,
                "planning_interval": float(interval),
                "waiting_budget": float(config.waiting_budget),
                "actual_waiting": float(result.waiting_times.mean()),
                "rt_avg": result.mean_response_time,
                "relative_cost": result.total_cost / workload.reference_cost,
            }
        )
    return rows
