"""Fig. 10 — accuracy of QoS/cost control and the effect of planning frequency.

Three nominal-vs-actual sweeps (panels a-c) check that requesting a hitting
probability / waiting budget / idle-cost budget of ``x`` actually yields
``approximately x`` on the replayed trace, and one sweep over the planning
interval ``Delta`` (panel d) shows that less frequent planning costs more
resources for the same QoS target.

Registered as ``"control"`` and ``"planning-frequency"`` in
:mod:`repro.api`.  Both run as :mod:`repro.runtime` task batches over a
single shared workload spec: the trace is generated and the NHPP model
fitted once (and persisted when a store is attached), every panel point
parallelizes with ``workers`` / ``REPRO_WORKERS``, and ``run_id``
journaling makes interrupted runs resumable.  The "actual" columns come
from the executor's named extra metrics (``waiting_avg`` / ``idle_avg``).
"""

from __future__ import annotations

from ..api import (
    ExperimentSpec,
    ParamSpec,
    register_experiment,
)
from ..api.session import RunContext
from ..runtime import EvalTask, PrepSpec, ScalerSpec, WorkloadSpec
from .base import robustscaler_spec, trace_defaults

__all__: list[str] = []

#: Panel name -> row column holding the delivered ("actual") value.
_PANEL_ACTUALS = {
    "hit_probability": "hit_rate",
    "waiting_time": "waiting_avg",
    "idle_cost": "idle_avg",
}


def _workload_spec(params: dict, ctx: RunContext) -> WorkloadSpec:
    defaults = trace_defaults(params["trace_name"])
    return WorkloadSpec(
        scenario=params["trace_name"],
        scale=params["scale"],
        seed=params["seed"],
        prep=PrepSpec(
            train_fraction=defaults["train_fraction"],
            bin_seconds=defaults["bin_seconds"],
            engine=ctx.engine,
        ),
    )


def _run_control_accuracy(params: dict, ctx: RunContext) -> list[dict]:
    """Nominal vs actual HP, waiting time, and idle cost (Fig. 10 a-c)."""
    workload = _workload_spec(params, ctx)

    def panel_task(panel: str, kind: str, nominal: float) -> EvalTask:
        return EvalTask(
            workload,
            robustscaler_spec(params, kind, nominal),
            extra=(("panel", panel), ("nominal", float(nominal))),
            metrics=("waiting_avg", "idle_avg"),
        )

    tasks = [panel_task("hit_probability", "rs-hp", t) for t in params["hp_targets"]]
    tasks += [
        panel_task("waiting_time", "rs-rt", b) for b in params["waiting_budgets"]
    ]
    tasks += [panel_task("idle_cost", "rs-cost", b) for b in params["idle_budgets"]]
    evaluated = ctx.run_rows(tasks, base_seed=params["seed"])
    return [
        {
            "trace": params["trace_name"],
            "panel": row["panel"],
            "nominal": row["nominal"],
            "actual": row[_PANEL_ACTUALS[row["panel"]]],
            "relative_cost": row["relative_cost"],
        }
        for row in evaluated
    ]


def _run_planning_frequency(params: dict, ctx: RunContext) -> list[dict]:
    """Cost of holding one waiting budget at different planning intervals."""
    workload = _workload_spec(params, ctx)
    tasks = [
        EvalTask(
            workload,
            ScalerSpec(
                "rs-rt",
                float(params["waiting_budget"]),
                planning_interval=float(interval),
                monte_carlo_samples=params["monte_carlo_samples"],
            ),
            extra=(("planning_interval", float(interval)),),
            metrics=("waiting_avg",),
        )
        for interval in params["planning_intervals"]
    ]
    evaluated = ctx.run_rows(tasks, base_seed=params["seed"])
    return [
        {
            "trace": params["trace_name"],
            "planning_interval": row["planning_interval"],
            "waiting_budget": float(params["waiting_budget"]),
            "actual_waiting": row["waiting_avg"],
            "rt_avg": row["rt_avg"],
            "relative_cost": row["relative_cost"],
        }
        for row in evaluated
    ]


_SHARED_PARAMS = (
    ParamSpec(
        "trace_name", "str", "crs", cli_flag="--trace", help="trace / workload scenario"
    ),
    ParamSpec("scale", "float", 0.25, help="trace size factor"),
    ParamSpec("seed", "int", 7, help="trace-generation and Monte Carlo seed"),
    ParamSpec(
        "monte_carlo_samples",
        "int",
        400,
        cli_flag="--mc-samples",
        help="Monte Carlo sample size R",
    ),
)

register_experiment(
    ExperimentSpec(
        name="control",
        title="nominal vs actual QoS/cost control accuracy",
        artifact="Fig. 10 a-c",
        params=_SHARED_PARAMS
        + (
            ParamSpec(
                "hp_targets",
                "float",
                (0.2, 0.4, 0.6, 0.8, 0.95),
                sequence=True,
                cli_flag="--hp-target",
                help="nominal hit probabilities",
            ),
            ParamSpec(
                "waiting_budgets",
                "float",
                (1.0, 3.0, 6.0, 10.0, 13.0),
                sequence=True,
                cli_flag="--waiting-budget",
                help="nominal waiting budgets (seconds)",
            ),
            ParamSpec(
                "idle_budgets",
                "float",
                (2.0, 5.0, 10.0, 20.0, 40.0),
                sequence=True,
                cli_flag="--idle-budget",
                help="nominal idle budgets (seconds)",
            ),
            ParamSpec(
                "planning_interval", "float", 2.0, help="RobustScaler Delta (seconds)"
            ),
        ),
        run=_run_control_accuracy,
        result_columns=("trace", "panel", "nominal", "actual", "relative_cost"),
        scenario_param="trace_name",
    )
)

register_experiment(
    ExperimentSpec(
        name="planning-frequency",
        title="cost of one waiting budget across planning intervals",
        artifact="Fig. 10 d",
        params=_SHARED_PARAMS
        + (
            ParamSpec(
                "planning_intervals",
                "float",
                (1.0, 5.0, 15.0, 30.0, 60.0),
                sequence=True,
                cli_flag="--planning-interval",
                help="planning intervals Delta to compare (seconds)",
            ),
            ParamSpec(
                "waiting_budget",
                "float",
                3.0,
                help="the waiting budget to hold (seconds)",
            ),
        ),
        run=_run_planning_frequency,
        result_columns=(
            "trace",
            "planning_interval",
            "waiting_budget",
            "actual_waiting",
            "rt_avg",
            "relative_cost",
        ),
        scenario_param="trace_name",
    )
)


