"""Fig. 10 — accuracy of QoS/cost control and the effect of planning frequency.

Three nominal-vs-actual sweeps (panels a-c) check that requesting a hitting
probability / waiting budget / idle-cost budget of ``x`` actually yields
``approximately x`` on the replayed trace, and one sweep over the planning
interval ``Delta`` (panel d) shows that less frequent planning costs more
resources for the same QoS target.

Both drivers run as :mod:`repro.runtime` task batches over a single shared
workload spec: the trace is generated and the NHPP model fitted once (and
persisted when a store is attached), every panel point parallelizes with
``workers`` / ``REPRO_WORKERS``, and ``run_id`` journaling makes
interrupted runs resumable.  The "actual" columns come from the executor's
named extra metrics (``waiting_avg`` / ``idle_avg``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..runtime import EvalTask, PrepSpec, ScalerSpec, WorkloadSpec, run_task_rows
from .base import robustscaler_spec, trace_defaults

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..store import ArtifactStore

__all__ = [
    "ControlAccuracyExperimentConfig",
    "run_control_accuracy_experiment",
    "run_planning_frequency_experiment",
]

#: Panel name -> row column holding the delivered ("actual") value.
_PANEL_ACTUALS = {
    "hit_probability": "hit_rate",
    "waiting_time": "waiting_avg",
    "idle_cost": "idle_avg",
}


@dataclass
class ControlAccuracyExperimentConfig:
    """Parameters of the nominal-vs-actual experiment (Fig. 10 a-c)."""

    trace_name: str = "crs"
    scale: float = 0.25
    seed: int = 7
    hp_targets: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 0.95)
    waiting_budgets: Sequence[float] = (1.0, 3.0, 6.0, 10.0, 13.0)
    idle_budgets: Sequence[float] = (2.0, 5.0, 10.0, 20.0, 40.0)
    planning_interval: float = 2.0
    monte_carlo_samples: int = 400
    workers: int | None = None
    #: Replay engine ("reference" / "batched"); both give identical rows.
    engine: str | None = None
    store: "ArtifactStore | None" = None
    run_id: str | None = None


def _workload_spec(config) -> WorkloadSpec:
    defaults = trace_defaults(config.trace_name)
    return WorkloadSpec(
        scenario=config.trace_name,
        scale=config.scale,
        seed=config.seed,
        prep=PrepSpec(
            train_fraction=defaults["train_fraction"],
            bin_seconds=defaults["bin_seconds"],
            engine=config.engine,
        ),
    )


def run_control_accuracy_experiment(
    config: ControlAccuracyExperimentConfig | None = None,
) -> list[dict]:
    """Nominal vs actual HP, waiting time, and idle cost (Fig. 10 a-c)."""
    config = config or ControlAccuracyExperimentConfig()
    workload = _workload_spec(config)

    def panel_task(panel: str, kind: str, nominal: float) -> EvalTask:
        return EvalTask(
            workload,
            robustscaler_spec(config, kind, nominal),
            extra=(("panel", panel), ("nominal", float(nominal))),
            metrics=("waiting_avg", "idle_avg"),
        )

    tasks = [panel_task("hit_probability", "rs-hp", t) for t in config.hp_targets]
    tasks += [panel_task("waiting_time", "rs-rt", b) for b in config.waiting_budgets]
    tasks += [panel_task("idle_cost", "rs-cost", b) for b in config.idle_budgets]
    evaluated = run_task_rows(
        tasks,
        base_seed=config.seed,
        workers=config.workers,
        store=config.store,
        run_id=config.run_id,
    )
    return [
        {
            "trace": config.trace_name,
            "panel": row["panel"],
            "nominal": row["nominal"],
            "actual": row[_PANEL_ACTUALS[row["panel"]]],
            "relative_cost": row["relative_cost"],
        }
        for row in evaluated
    ]


@dataclass
class PlanningFrequencyExperimentConfig:
    """Parameters of the planning-frequency experiment (Fig. 10 d)."""

    trace_name: str = "crs"
    scale: float = 0.25
    seed: int = 7
    planning_intervals: Sequence[float] = (1.0, 5.0, 15.0, 30.0, 60.0)
    waiting_budget: float = 3.0
    monte_carlo_samples: int = 400
    workers: int | None = None
    #: Replay engine ("reference" / "batched"); both give identical rows.
    engine: str | None = None
    store: "ArtifactStore | None" = None
    run_id: str | None = None


def run_planning_frequency_experiment(
    config: PlanningFrequencyExperimentConfig | None = None,
) -> list[dict]:
    """Cost of achieving the same waiting budget at different planning intervals."""
    config = config or PlanningFrequencyExperimentConfig()
    workload = _workload_spec(config)
    tasks = [
        EvalTask(
            workload,
            ScalerSpec(
                "rs-rt",
                float(config.waiting_budget),
                planning_interval=float(interval),
                monte_carlo_samples=config.monte_carlo_samples,
            ),
            extra=(("planning_interval", float(interval)),),
            metrics=("waiting_avg",),
        )
        for interval in config.planning_intervals
    ]
    evaluated = run_task_rows(
        tasks,
        base_seed=config.seed,
        workers=config.workers,
        store=config.store,
        run_id=config.run_id,
    )
    return [
        {
            "trace": config.trace_name,
            "planning_interval": row["planning_interval"],
            "waiting_budget": float(config.waiting_budget),
            "actual_waiting": row["waiting_avg"],
            "rt_avg": row["rt_avg"],
            "relative_cost": row["relative_cost"],
        }
        for row in evaluated
    ]
