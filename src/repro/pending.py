"""Instance pending-time (startup latency) models.

The pending time ``tau_i`` is the delay between creating an instance and the
instance becoming ready to serve a query.  Both the simulator (to realize
actual startup delays) and the scaling optimizer (to sample ``tau`` in its
Monte Carlo formulation) need the same model, so it lives in a shared module.

The paper's experiments use a fixed pod pending time (13 seconds in the
scalability study); we also provide uniformly jittered and exponential
variants for robustness experiments.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ._validation import check_integer, check_non_negative, check_positive
from .exceptions import ValidationError
from .rng import RandomState, ensure_rng

__all__ = [
    "PendingTimeModel",
    "DeterministicPendingTime",
    "UniformPendingTime",
    "ExponentialPendingTime",
    "default_pending_model",
]


def default_pending_model(pending_time: float, jitter: float = 0.0) -> "PendingTimeModel":
    """The pending-time model a simulator configuration denotes.

    A positive ``jitter`` gives a uniform model on
    ``[pending_time - jitter, pending_time + jitter]``, otherwise the
    deterministic model used in most of the paper's runs.  Both replay
    engines resolve their model through this single helper, so they can
    never drift apart on the mapping.
    """
    if jitter > 0:
        return UniformPendingTime(pending_time - jitter, pending_time + jitter)
    return DeterministicPendingTime(pending_time)


class PendingTimeModel(abc.ABC):
    """Distribution of the instance startup time ``tau``."""

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """Expected pending time ``mu_tau`` in seconds."""

    @abc.abstractmethod
    def sample(self, size: int, random_state: RandomState = None) -> np.ndarray:
        """Draw ``size`` i.i.d. pending times (seconds)."""

    @property
    def upper_bound(self) -> float:
        """A finite upper bound when one exists, otherwise ``inf``."""
        return float("inf")


@dataclass(frozen=True)
class DeterministicPendingTime(PendingTimeModel):
    """Constant pending time; the paper's default setting.

    Attributes
    ----------
    value:
        The constant startup latency in seconds.
    """

    value: float = 13.0

    def __post_init__(self) -> None:
        check_non_negative(self.value, "value")

    @property
    def mean(self) -> float:
        return float(self.value)

    @property
    def upper_bound(self) -> float:
        return float(self.value)

    def sample(self, size: int, random_state: RandomState = None) -> np.ndarray:
        check_integer(size, "size", minimum=0)
        return np.full(size, float(self.value))


@dataclass(frozen=True)
class UniformPendingTime(PendingTimeModel):
    """Pending time uniformly distributed on ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        check_non_negative(self.low, "low")
        check_non_negative(self.high, "high")
        if self.high < self.low:
            raise ValidationError(f"high ({self.high}) must be >= low ({self.low})")

    @property
    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    @property
    def upper_bound(self) -> float:
        return float(self.high)

    def sample(self, size: int, random_state: RandomState = None) -> np.ndarray:
        check_integer(size, "size", minimum=0)
        rng = ensure_rng(random_state)
        return rng.uniform(self.low, self.high, size=size)


@dataclass(frozen=True)
class ExponentialPendingTime(PendingTimeModel):
    """Exponentially distributed pending time with the given mean."""

    mean_value: float

    def __post_init__(self) -> None:
        check_positive(self.mean_value, "mean_value")

    @property
    def mean(self) -> float:
        return float(self.mean_value)

    def sample(self, size: int, random_state: RandomState = None) -> np.ndarray:
        check_integer(size, "size", minimum=0)
        rng = ensure_rng(random_state)
        return rng.exponential(self.mean_value, size=size)
