"""A small catalog of the named traces used throughout the experiments.

Each entry records how to generate the trace, the train/test split the paper
uses, and the default simulator parameters (pending time, processing time)
that go with it.  Experiment drivers and the CLI look traces up by name so
that "crs", "google" and "alibaba" mean the same thing everywhere.

The catalog is also re-exported through the scenario registry
(:mod:`repro.workloads`): ``get_scenario("crs")`` returns a registry alias
carrying the same defaults, alongside the synthetic scenario library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..exceptions import TraceError
from ..types import ArrivalTrace
from .synthetic import (
    generate_alibaba_like_trace,
    generate_crs_like_trace,
    generate_google_like_trace,
)

__all__ = ["TraceSpec", "get_trace", "list_traces"]


@dataclass(frozen=True)
class TraceSpec:
    """How to build one named trace and how the paper splits/evaluates it.

    Attributes
    ----------
    name:
        Catalog key.
    generator:
        Callable accepting a ``seed`` keyword and returning the full trace;
        the same name + seed always yields the identical trace.
    train_fraction:
        Fraction of the horizon used for training (the remainder is test).
    pending_time:
        Instance startup latency (seconds) used with this trace.
    description:
        One-line description shown by the CLI.
    default_seed:
        Seed used by :meth:`build` when the caller does not pass one.
    """

    name: str
    generator: Callable[..., ArrivalTrace]
    train_fraction: float
    pending_time: float
    description: str
    default_seed: int = 7

    def build(self, seed: int | None = None) -> ArrivalTrace:
        """Generate the full trace, deterministically for a given seed."""
        seed = self.default_seed if seed is None else int(seed)
        return self.generator(seed=seed)

    def build_split(self, seed: int | None = None) -> tuple[ArrivalTrace, ArrivalTrace]:
        """Generate the trace and return its (train, test) split."""
        return self.build(seed=seed).split(self.train_fraction)


_CATALOG: dict[str, TraceSpec] = {
    "crs": TraceSpec(
        name="crs",
        generator=generate_crs_like_trace,
        train_fraction=0.75,  # first three of four weeks
        pending_time=13.0,
        description="CRS-like container registry trace: 4 weeks, low QPS, weekly pattern",
        default_seed=7,
    ),
    "google": TraceSpec(
        name="google",
        generator=generate_google_like_trace,
        train_fraction=0.75,  # first 18 of 24 hours
        pending_time=13.0,
        description="Google-cluster-like trace: 24 hours with recurrent spikes",
        default_seed=11,
    ),
    "alibaba": TraceSpec(
        name="alibaba",
        generator=generate_alibaba_like_trace,
        train_fraction=0.8,  # first four of five days
        pending_time=13.0,
        description="Alibaba-cluster-like trace: 5 days, daily spikes plus one burst",
        default_seed=13,
    ),
}


def list_traces() -> list[TraceSpec]:
    """Return the catalog entries in a stable order."""
    return [_CATALOG[key] for key in sorted(_CATALOG)]


def get_trace(name: str) -> TraceSpec:
    """Look up a trace spec by name (case-insensitive)."""
    key = str(name).lower()
    if key not in _CATALOG:
        known = ", ".join(sorted(_CATALOG))
        raise TraceError(f"unknown trace {name!r}; known traces: {known}")
    return _CATALOG[key]
