"""Trace perturbation, missing-data injection, and anomaly removal.

These transformations drive the robustness experiments:

* :func:`perturb_trace` implements the CRS perturbation protocol of
  Figures 6 and 7 — every hour, a five-minute window is emptied and, offset
  by a few minutes, another five-minute window receives ``c`` extra copies of
  its queries;
* :func:`inject_missing_window` removes every query in a contiguous window
  (the "erase one entire day" missing-data experiment of Fig. 9 / Table II);
* :func:`remove_anomalous_bursts` thins arrivals in bins whose rate is an
  extreme outlier relative to the robust baseline (the Alibaba burst-removal
  experiment of Fig. 9).
"""

from __future__ import annotations

import numpy as np

from .._validation import check_non_negative, check_positive
from ..rng import RandomState, ensure_rng
from ..timeseries.robust import mad
from ..types import ArrivalTrace

__all__ = ["perturb_trace", "inject_missing_window", "remove_anomalous_bursts"]


def perturb_trace(
    trace: ArrivalTrace,
    perturbation_size: float,
    *,
    cycle_seconds: float = 3600.0,
    delete_window_seconds: float = 300.0,
    add_offset_seconds: float = 360.0,
    add_window_seconds: float = 300.0,
    random_state: RandomState = None,
) -> ArrivalTrace:
    """Apply the paper's hourly delete-and-amplify perturbation.

    Parameters
    ----------
    trace:
        The trace to perturb.
    perturbation_size:
        ``c`` — how many extra copies of the queries inside each "add" window
        are appended (fractional values duplicate a random subset).
    cycle_seconds:
        Length of the perturbation cycle (one hour in the paper).
    delete_window_seconds:
        Width of the window, starting at each cycle boundary, whose queries
        are deleted.
    add_offset_seconds:
        Offset from the cycle boundary to the start of the "add" window
        (the sixth minute in the paper).
    add_window_seconds:
        Width of the "add" window.
    random_state:
        Seed or generator used to jitter the duplicated arrival times.

    Returns
    -------
    ArrivalTrace
        A new trace; the input is not modified.
    """
    check_non_negative(perturbation_size, "perturbation_size")
    check_positive(cycle_seconds, "cycle_seconds")
    check_positive(delete_window_seconds, "delete_window_seconds")
    check_non_negative(add_offset_seconds, "add_offset_seconds")
    check_positive(add_window_seconds, "add_window_seconds")
    rng = ensure_rng(random_state)

    arrivals = np.asarray(trace.arrival_times, dtype=float)
    processing = np.asarray(trace.processing_times, dtype=float)
    phase = np.mod(arrivals, cycle_seconds)

    keep = phase >= delete_window_seconds
    kept_arrivals = arrivals[keep]
    kept_processing = processing[keep]
    kept_phase = phase[keep]

    in_add_window = (kept_phase >= add_offset_seconds) & (
        kept_phase < add_offset_seconds + add_window_seconds
    )
    base_arrivals = kept_arrivals[in_add_window]
    base_processing = kept_processing[in_add_window]

    extra_arrivals: list[np.ndarray] = []
    extra_processing: list[np.ndarray] = []
    full_copies = int(np.floor(perturbation_size))
    fractional = perturbation_size - full_copies
    for _ in range(full_copies):
        jitter = rng.uniform(0.0, add_window_seconds * 0.1, size=base_arrivals.size)
        extra_arrivals.append(np.minimum(base_arrivals + jitter, trace.horizon))
        extra_processing.append(base_processing.copy())
    if fractional > 0 and base_arrivals.size:
        take = rng.random(base_arrivals.size) < fractional
        jitter = rng.uniform(0.0, add_window_seconds * 0.1, size=int(take.sum()))
        extra_arrivals.append(np.minimum(base_arrivals[take] + jitter, trace.horizon))
        extra_processing.append(base_processing[take].copy())

    if extra_arrivals:
        new_arrivals = np.concatenate([kept_arrivals, *extra_arrivals])
        new_processing = np.concatenate([kept_processing, *extra_processing])
    else:
        new_arrivals = kept_arrivals
        new_processing = kept_processing
    order = np.argsort(new_arrivals, kind="stable")
    return ArrivalTrace(
        new_arrivals[order],
        new_processing[order],
        name=f"{trace.name}-perturbed-c{perturbation_size:g}",
        horizon=trace.horizon,
    )


def inject_missing_window(
    trace: ArrivalTrace,
    start_seconds: float,
    duration_seconds: float,
) -> ArrivalTrace:
    """Remove every query arriving in ``[start, start + duration)``."""
    check_non_negative(start_seconds, "start_seconds")
    check_positive(duration_seconds, "duration_seconds")
    arrivals = np.asarray(trace.arrival_times, dtype=float)
    processing = np.asarray(trace.processing_times, dtype=float)
    keep = (arrivals < start_seconds) | (arrivals >= start_seconds + duration_seconds)
    return ArrivalTrace(
        arrivals[keep],
        processing[keep],
        name=f"{trace.name}-missing",
        horizon=trace.horizon,
    )


def remove_anomalous_bursts(
    trace: ArrivalTrace,
    *,
    bin_seconds: float = 300.0,
    z_threshold: float = 6.0,
    random_state: RandomState = None,
) -> ArrivalTrace:
    """Thin arrivals in bins whose count is an extreme robust outlier.

    Bins whose count exceeds ``median + z_threshold * MAD`` are treated as
    anomalous bursts; their queries are randomly thinned down to the robust
    baseline level so the remaining trace follows the regular pattern.

    Returns
    -------
    ArrivalTrace
        A new trace with the bursts removed.
    """
    check_positive(bin_seconds, "bin_seconds")
    check_positive(z_threshold, "z_threshold")
    if trace.n_queries == 0:
        return ArrivalTrace([], [], name=f"{trace.name}-deburst", horizon=trace.horizon)
    rng = ensure_rng(random_state)

    series = trace.to_qps_series(bin_seconds)
    counts = np.asarray(series.counts, dtype=float)
    center = float(np.median(counts))
    scale = mad(counts)
    if scale <= 0:
        scale = max(center, 1.0)
    threshold = center + z_threshold * scale

    arrivals = np.asarray(trace.arrival_times, dtype=float)
    processing = np.asarray(trace.processing_times, dtype=float)
    bin_index = np.minimum((arrivals / bin_seconds).astype(int), counts.size - 1)
    keep = np.ones(arrivals.size, dtype=bool)
    baseline = max(center, 1.0)
    for b in np.nonzero(counts > threshold)[0]:
        members = np.nonzero(bin_index == b)[0]
        if members.size == 0:
            continue
        keep_probability = min(1.0, baseline / members.size)
        keep[members] = rng.random(members.size) < keep_probability
    return ArrivalTrace(
        arrivals[keep],
        processing[keep],
        name=f"{trace.name}-deburst",
        horizon=trace.horizon,
    )
