"""Synthetic workload generators standing in for the paper's three traces.

Each generator builds a non-negative intensity profile (queries per second)
on a regular grid, multiplies in noise, and samples an exact NHPP realization
from it.  The three named generators reproduce the structural features that
drive the paper's experiments:

* :func:`generate_crs_like_trace` — very low traffic, strong weekly + daily
  pattern, heavy multiplicative noise and occasional empty stretches, long
  processing times (container image builds);
* :func:`generate_google_like_trace` — moderate traffic over one day with
  recurrent sub-daily spikes;
* :func:`generate_alibaba_like_trace` — higher traffic over several days with
  a daily pattern and one large unexpected burst (the anomaly the robustness
  experiment removes).

The paper's two closed-form intensities (used for the scalability study of
Fig. 8/Table I and the regularization study of Table III) are exposed as
:func:`paper_scalability_intensity` and :func:`paper_regularization_intensity`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_non_negative, check_positive
from ..exceptions import ValidationError
from ..nhpp.intensity import PiecewiseConstantIntensity
from ..nhpp.sampling import sample_arrival_times
from ..rng import RandomState, ensure_rng
from ..types import ArrivalTrace

__all__ = [
    "IntensityProfile",
    "beta_bump_intensity",
    "generate_trace_from_intensity",
    "generate_crs_like_trace",
    "generate_google_like_trace",
    "generate_alibaba_like_trace",
    "paper_scalability_intensity",
    "paper_regularization_intensity",
]

_DAY = 86_400.0
_HOUR = 3_600.0
_WEEK = 7 * _DAY


@dataclass(frozen=True)
class IntensityProfile:
    """A ground-truth intensity profile plus metadata about its structure.

    Attributes
    ----------
    intensity:
        The piecewise-constant intensity in queries per second.
    period_seconds:
        Dominant period of the profile (0 when aperiodic).
    name:
        Human-readable identifier.
    """

    intensity: PiecewiseConstantIntensity
    period_seconds: float
    name: str


def beta_bump_intensity(
    t: np.ndarray,
    *,
    peak: float,
    period_seconds: float,
    exponent: float,
    base: float,
) -> np.ndarray:
    """The paper's beta-shaped periodic intensity family.

    Evaluates ``peak * 4^e * u^e * (1 - u)^e + base`` with
    ``u = (t mod period) / period``; the normalization ``4^e`` makes the bump
    peak exactly at ``peak + base`` in the middle of each period.
    """
    check_positive(period_seconds, "period_seconds")
    check_non_negative(peak, "peak")
    check_non_negative(base, "base")
    check_positive(exponent, "exponent")
    u = np.mod(np.asarray(t, dtype=float), period_seconds) / period_seconds
    return peak * (4.0**exponent) * (u**exponent) * ((1.0 - u) ** exponent) + base


def paper_scalability_intensity(bin_seconds: float = 10.0) -> IntensityProfile:
    """Intensity of the scalability study (Section VII-B2).

    ``lambda(t) = 1000 * 4^40 (t mod 3600 / 3600)^40 (1 - ...)^40 + 0.001``
    over a 7-hour horizon, peaking near 1000 QPS once per hour.
    """
    horizon = 25_200.0
    times = (np.arange(int(horizon / bin_seconds)) + 0.5) * bin_seconds
    values = beta_bump_intensity(
        times, peak=1000.0, period_seconds=3600.0, exponent=40.0, base=0.001
    )
    intensity = PiecewiseConstantIntensity(values, bin_seconds, extrapolation="periodic")
    return IntensityProfile(intensity=intensity, period_seconds=3600.0, name="scalability")


def paper_regularization_intensity(bin_seconds: float = 60.0) -> IntensityProfile:
    """Intensity of the periodicity-regularization study (Table III).

    ``lambda(t) = 4^10 (t mod 86400 / 86400)^10 (1 - ...)^10 + 0.1`` over one
    week (604 800 s) with a daily period.
    """
    horizon = 604_800.0
    times = (np.arange(int(horizon / bin_seconds)) + 0.5) * bin_seconds
    values = beta_bump_intensity(
        times, peak=1.0, period_seconds=86_400.0, exponent=10.0, base=0.1
    )
    intensity = PiecewiseConstantIntensity(values, bin_seconds, extrapolation="periodic")
    return IntensityProfile(intensity=intensity, period_seconds=86_400.0, name="regularization")


def generate_trace_from_intensity(
    profile: IntensityProfile | PiecewiseConstantIntensity,
    horizon_seconds: float,
    *,
    processing_time_mean: float = 20.0,
    processing_time_distribution: str = "exponential",
    name: str | None = None,
    random_state: RandomState = None,
    vectorized: bool = False,
) -> ArrivalTrace:
    """Sample an :class:`~repro.types.ArrivalTrace` from an intensity profile.

    Parameters
    ----------
    profile:
        Ground-truth intensity (or a profile wrapping one).
    horizon_seconds:
        Length of the generated trace.
    processing_time_mean:
        Mean query processing time in seconds.
    processing_time_distribution:
        ``"exponential"``, ``"lognormal"`` (sigma 0.5), ``"bimodal"``
        (cold/warm lognormal mixture: 15% of queries pay an 8x cold-start
        premium, mixture mean equal to ``processing_time_mean``) or
        ``"constant"``.
    name:
        Trace name; defaults to the profile name.
    random_state:
        Seed or generator.
    vectorized:
        Use the bulk arrival sampler (see
        :func:`repro.nhpp.sampling.sample_arrival_times`); much faster on
        long horizons but consumes the random stream in a different order,
        so seeded traces differ from the default construction.
    """
    check_positive(horizon_seconds, "horizon_seconds")
    check_non_negative(processing_time_mean, "processing_time_mean")
    rng = ensure_rng(random_state)
    if isinstance(profile, IntensityProfile):
        intensity = profile.intensity
        trace_name = name or profile.name
    else:
        intensity = profile
        trace_name = name or "synthetic"
    arrivals = sample_arrival_times(intensity, horizon_seconds, rng, vectorized=vectorized)
    processing = _sample_processing_times(
        arrivals.size, processing_time_mean, processing_time_distribution, rng
    )
    return ArrivalTrace(arrivals, processing, name=trace_name, horizon=horizon_seconds)


#: Cold/warm mixture parameters of the ``"bimodal"`` processing-time family:
#: this fraction of queries lands on a cold instance ...
_BIMODAL_COLD_FRACTION = 0.15
#: ... and pays this multiple of the warm-path mean (container pull, model
#: load, JIT warm-up), so the two modes are clearly separated.
_BIMODAL_COLD_MULTIPLIER = 8.0
#: Log-scale spreads of the warm and cold modes (warm executions cluster
#: tightly; cold starts are more dispersed).
_BIMODAL_WARM_SIGMA = 0.2
_BIMODAL_COLD_SIGMA = 0.35


def _lognormal_with_mean(
    mean: float, sigma: float, size: int, rng: np.random.Generator
) -> np.ndarray:
    mu = np.log(mean) - 0.5 * sigma**2
    return rng.lognormal(mu, sigma, size=size)


def _sample_processing_times(
    count: int,
    mean: float,
    distribution: str,
    rng: np.random.Generator,
) -> np.ndarray:
    if count == 0:
        return np.empty(0)
    if mean == 0:
        return np.zeros(count)
    if distribution == "exponential":
        return rng.exponential(mean, size=count)
    if distribution == "constant":
        return np.full(count, mean)
    if distribution == "lognormal":
        return _lognormal_with_mean(mean, 0.5, count, rng)
    if distribution == "bimodal":
        # Cold/warm mixture: most queries run on a warm instance, a minority
        # pays the cold-start premium.  The warm-mode mean is chosen so the
        # mixture's expectation equals ``mean``, keeping scenarios with this
        # family comparable to unimodal ones at the same nominal mean.
        warm_mean = mean / (
            1.0 - _BIMODAL_COLD_FRACTION
            + _BIMODAL_COLD_FRACTION * _BIMODAL_COLD_MULTIPLIER
        )
        cold = rng.random(count) < _BIMODAL_COLD_FRACTION
        times = _lognormal_with_mean(warm_mean, _BIMODAL_WARM_SIGMA, count, rng)
        n_cold = int(cold.sum())
        if n_cold:
            times[cold] = _lognormal_with_mean(
                warm_mean * _BIMODAL_COLD_MULTIPLIER,
                _BIMODAL_COLD_SIGMA,
                n_cold,
                rng,
            )
        return times
    raise ValidationError(
        "processing_time_distribution must be 'exponential', 'lognormal', "
        f"'bimodal' or 'constant', got {distribution!r}"
    )


def _noisy(
    values: np.ndarray,
    noise_level: float,
    rng: np.random.Generator,
    *,
    correlation_bins: int = 15,
) -> np.ndarray:
    """Multiplicative noise with unit mean, given coefficient of variation, and memory.

    Real workload intensities drift smoothly rather than jumping
    independently every bin, so the gamma noise is smoothed over
    ``correlation_bins`` bins before being applied; this keeps part of the
    fluctuation predictable, as it is in the paper's production traces.
    """
    if noise_level <= 0:
        return values
    # Inflate the per-bin variance so that the smoothed noise retains roughly
    # the requested coefficient of variation.
    effective_level = noise_level * np.sqrt(max(correlation_bins, 1))
    shape = 1.0 / effective_level**2
    noise = rng.gamma(shape, 1.0 / shape, size=values.size)
    if correlation_bins > 1 and values.size > correlation_bins:
        kernel = np.ones(correlation_bins) / correlation_bins
        noise = np.convolve(noise, kernel, mode="same")
    return values * noise


def generate_crs_like_trace(
    *,
    n_weeks: int = 4,
    mean_qps: float = 0.009,
    noise_level: float = 0.5,
    processing_time_mean: float = 178.0,
    bin_seconds: float = 300.0,
    seed: int = 7,
) -> ArrivalTrace:
    """A CRS-like container-registry trace: low traffic, weekly + daily cycles, noisy.

    The default parameters yield roughly the 21 000 queries over four weeks of
    the paper's CRS trace, with queries concentrated on working hours of
    weekdays and heavy multiplicative noise on top of the seasonal pattern.
    """
    check_positive(mean_qps, "mean_qps")
    rng = ensure_rng(seed)
    horizon = n_weeks * _WEEK
    n_bins = int(horizon / bin_seconds)
    times = (np.arange(n_bins) + 0.5) * bin_seconds

    day_of_week = np.floor(np.mod(times, _WEEK) / _DAY)
    weekday_factor = np.where(day_of_week < 5, 1.0, 0.35)
    hour_of_day = np.mod(times, _DAY) / _HOUR
    # Working-hours bump centered at 14:00 plus a small overnight baseline.
    daily_factor = 0.25 + 1.5 * np.exp(-0.5 * ((hour_of_day - 14.0) / 3.5) ** 2)

    profile = weekday_factor * daily_factor
    profile = _noisy(profile, noise_level, rng)
    # Occasional silent stretches (missing / zero-traffic intervals).
    quiet = rng.random(n_bins) < 0.02
    profile[quiet] = 0.0
    profile *= mean_qps / max(profile.mean(), 1e-12)

    intensity = PiecewiseConstantIntensity(profile, bin_seconds, extrapolation="periodic")
    return generate_trace_from_intensity(
        intensity,
        horizon,
        processing_time_mean=processing_time_mean,
        processing_time_distribution="lognormal",
        name="crs-like",
        random_state=rng,
    )


def generate_google_like_trace(
    *,
    n_hours: int = 24,
    mean_qps: float = 0.23,
    spike_period_hours: float = 2.0,
    spike_amplitude: float = 4.0,
    noise_level: float = 0.3,
    processing_time_mean: float = 30.0,
    bin_seconds: float = 60.0,
    seed: int = 11,
) -> ArrivalTrace:
    """A Google-cluster-like job trace: moderate traffic with recurrent spikes."""
    check_positive(mean_qps, "mean_qps")
    rng = ensure_rng(seed)
    horizon = n_hours * _HOUR
    n_bins = int(horizon / bin_seconds)
    times = (np.arange(n_bins) + 0.5) * bin_seconds

    spike_period = spike_period_hours * _HOUR
    base = np.ones(n_bins)
    spikes = beta_bump_intensity(
        times, peak=spike_amplitude, period_seconds=spike_period, exponent=12.0, base=0.0
    )
    profile = _noisy(base + spikes, noise_level, rng)
    profile *= mean_qps / max(profile.mean(), 1e-12)

    intensity = PiecewiseConstantIntensity(profile, bin_seconds, extrapolation="periodic")
    return generate_trace_from_intensity(
        intensity,
        horizon,
        processing_time_mean=processing_time_mean,
        processing_time_distribution="exponential",
        name="google-like",
        random_state=rng,
    )


def generate_alibaba_like_trace(
    *,
    n_days: int = 5,
    mean_qps: float = 1.2,
    burst_day: int = 3,
    burst_multiplier: float = 8.0,
    burst_duration_hours: float = 2.0,
    noise_level: float = 0.3,
    processing_time_mean: float = 25.0,
    bin_seconds: float = 60.0,
    seed: int = 13,
) -> ArrivalTrace:
    """An Alibaba-cluster-like trace: daily spikes plus one unexpected burst.

    The burst lands on day ``burst_day`` (0-based) and is what the robustness
    experiment of Fig. 9 removes before re-running the autoscalers.
    """
    check_positive(mean_qps, "mean_qps")
    rng = ensure_rng(seed)
    horizon = n_days * _DAY
    n_bins = int(horizon / bin_seconds)
    times = (np.arange(n_bins) + 0.5) * bin_seconds

    daily = beta_bump_intensity(
        times, peak=3.0, period_seconds=_DAY, exponent=8.0, base=0.4
    )
    # Secondary intra-day spikes every 6 hours, as in the recurrent-spike
    # structure visible in the paper's Fig. 3.
    intraday = beta_bump_intensity(
        times, peak=1.0, period_seconds=6 * _HOUR, exponent=20.0, base=0.0
    )
    profile = _noisy(daily + intraday, noise_level, rng)

    if 0 <= burst_day < n_days and burst_multiplier > 0:
        burst_start = burst_day * _DAY + 10 * _HOUR
        burst_end = burst_start + burst_duration_hours * _HOUR
        in_burst = (times >= burst_start) & (times < burst_end)
        profile[in_burst] *= burst_multiplier

    profile *= mean_qps * n_bins / max(profile.sum(), 1e-12)

    intensity = PiecewiseConstantIntensity(profile, bin_seconds, extrapolation="periodic")
    return generate_trace_from_intensity(
        intensity,
        horizon,
        processing_time_mean=processing_time_mean,
        processing_time_distribution="exponential",
        name="alibaba-like",
        random_state=rng,
    )
