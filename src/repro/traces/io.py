"""Reading and writing traces and QPS series as plain CSV files.

The on-disk formats are intentionally simple so users can export traces from
their own systems:

* **trace CSV** — header ``arrival_time,processing_time`` followed by one row
  per query, times in seconds (floats);
* **QPS CSV** — header ``bin_start,count`` with the bin width recorded in a
  ``# bin_seconds=<value>`` comment on the first line.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from ..exceptions import TraceFormatError
from ..types import ArrivalTrace, QPSSeries

__all__ = ["save_trace_csv", "load_trace_csv", "save_qps_csv", "load_qps_csv"]


def save_trace_csv(trace: ArrivalTrace, path: str | Path) -> Path:
    """Write ``trace`` to ``path`` in the trace CSV format and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["# horizon", f"{trace.horizon!r}", trace.name])
        writer.writerow(["arrival_time", "processing_time"])
        for arrival, processing in zip(trace.arrival_times, trace.processing_times):
            writer.writerow([f"{arrival:.6f}", f"{processing:.6f}"])
    return path


def load_trace_csv(path: str | Path, *, name: str | None = None) -> ArrivalTrace:
    """Read an :class:`~repro.types.ArrivalTrace` from a trace CSV file."""
    path = Path(path)
    if not path.exists():
        raise TraceFormatError(f"trace file not found: {path}")
    arrivals: list[float] = []
    processing: list[float] = []
    horizon: float | None = None
    trace_name = name or path.stem
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        for row in reader:
            if not row:
                continue
            if row[0].startswith("#"):
                if len(row) >= 2 and row[0].strip() == "# horizon":
                    try:
                        horizon = float(row[1])
                    except ValueError as exc:
                        raise TraceFormatError(f"invalid horizon in {path}: {row[1]!r}") from exc
                    if name is None and len(row) >= 3 and row[2]:
                        trace_name = row[2]
                continue
            if row[0] == "arrival_time":
                continue
            try:
                arrivals.append(float(row[0]))
                processing.append(float(row[1]) if len(row) > 1 else 0.0)
            except (ValueError, IndexError) as exc:
                raise TraceFormatError(f"malformed row in {path}: {row!r}") from exc
    return ArrivalTrace(arrivals, processing, name=trace_name, horizon=horizon)


def save_qps_csv(series: QPSSeries, path: str | Path) -> Path:
    """Write ``series`` to ``path`` in the QPS CSV format and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([f"# bin_seconds={series.bin_seconds!r}", series.name])
        writer.writerow(["bin_start", "count"])
        for start, count in zip(series.times, series.counts):
            writer.writerow([f"{start:.6f}", f"{count:.6f}"])
    return path


def load_qps_csv(path: str | Path, *, name: str | None = None) -> QPSSeries:
    """Read a :class:`~repro.types.QPSSeries` from a QPS CSV file."""
    path = Path(path)
    if not path.exists():
        raise TraceFormatError(f"QPS file not found: {path}")
    counts: list[float] = []
    bin_seconds: float | None = None
    series_name = name or path.stem
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        for row in reader:
            if not row:
                continue
            if row[0].startswith("#"):
                token = row[0].lstrip("# ").strip()
                if token.startswith("bin_seconds="):
                    try:
                        bin_seconds = float(token.split("=", 1)[1])
                    except ValueError as exc:
                        raise TraceFormatError(
                            f"invalid bin_seconds in {path}: {token!r}"
                        ) from exc
                if name is None and len(row) >= 2 and row[1]:
                    series_name = row[1]
                continue
            if row[0] == "bin_start":
                continue
            try:
                counts.append(float(row[1]))
            except (ValueError, IndexError) as exc:
                raise TraceFormatError(f"malformed row in {path}: {row!r}") from exc
    if bin_seconds is None:
        raise TraceFormatError(f"missing '# bin_seconds=' header in {path}")
    return QPSSeries(counts, bin_seconds, name=series_name)
