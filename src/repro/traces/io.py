"""Reading and writing traces and QPS series as plain CSV files.

The on-disk formats are intentionally simple so users can export traces from
their own systems:

* **trace CSV** — header ``arrival_time,processing_time`` followed by one row
  per query, times in seconds (floats);
* **QPS CSV** — header ``bin_start,count`` with the bin width recorded in a
  ``# bin_seconds=<value>`` comment on the first line.

Both loaders validate what the downstream consumers assume instead of
trusting the file: the simulation engines require sorted, finite,
non-negative arrival times, and the NHPP fitting path requires the QPS bins
to form a uniform grid starting at zero.  A file that violates either
contract raises :class:`~repro.exceptions.TraceFormatError` naming the
offending row, rather than silently corrupting every QoS number computed
from it.
"""

from __future__ import annotations

import csv
import math
from pathlib import Path

import numpy as np

from ..exceptions import TraceFormatError
from ..types import ArrivalTrace, QPSSeries

__all__ = ["save_trace_csv", "load_trace_csv", "save_qps_csv", "load_qps_csv"]

#: Relative tolerance when checking ``bin_start`` against the uniform grid
#: (CSV round-trips write 6 decimal places, so exact equality is too strict).
_BIN_START_RTOL = 1e-6


def save_trace_csv(trace: ArrivalTrace, path: str | Path) -> Path:
    """Write ``trace`` to ``path`` in the trace CSV format and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["# horizon", f"{trace.horizon!r}", trace.name])
        writer.writerow(["arrival_time", "processing_time"])
        for arrival, processing in zip(trace.arrival_times, trace.processing_times):
            writer.writerow([f"{arrival:.6f}", f"{processing:.6f}"])
    return path


def load_trace_csv(path: str | Path, *, name: str | None = None) -> ArrivalTrace:
    """Read an :class:`~repro.types.ArrivalTrace` from a trace CSV file.

    Raises
    ------
    TraceFormatError
        If the file is missing, a row cannot be parsed, any arrival or
        processing time is non-finite or negative, or the arrivals are not
        sorted in ascending order.  The message names the first offending
        row so the file can be fixed rather than silently feeding garbage
        to engines that assume sorted arrivals.
    """
    path = Path(path)
    if not path.exists():
        raise TraceFormatError(f"trace file not found: {path}")
    arrivals: list[float] = []
    processing: list[float] = []
    horizon: float | None = None
    trace_name = name or path.stem
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        for row in reader:
            if not row:
                continue
            if row[0].startswith("#"):
                if len(row) >= 2 and row[0].strip() == "# horizon":
                    try:
                        horizon = float(row[1])
                    except ValueError as exc:
                        raise TraceFormatError(f"invalid horizon in {path}: {row[1]!r}") from exc
                    if not math.isfinite(horizon):
                        raise TraceFormatError(
                            f"invalid horizon in {path}: {horizon!r} (must be finite)"
                        )
                    if name is None and len(row) >= 3 and row[2]:
                        trace_name = row[2]
                continue
            if row[0] == "arrival_time":
                continue
            try:
                arrival = float(row[0])
                proc = float(row[1]) if len(row) > 1 else 0.0
            except (ValueError, IndexError) as exc:
                raise TraceFormatError(f"malformed row in {path}: {row!r}") from exc
            if not math.isfinite(arrival) or arrival < 0:
                raise TraceFormatError(
                    f"invalid arrival_time in {path}, row {len(arrivals) + 1}: "
                    f"{row!r} (must be finite and >= 0)"
                )
            if not math.isfinite(proc) or proc < 0:
                raise TraceFormatError(
                    f"invalid processing_time in {path}, row {len(arrivals) + 1}: "
                    f"{row!r} (must be finite and >= 0)"
                )
            if arrivals and arrival < arrivals[-1]:
                raise TraceFormatError(
                    f"unsorted arrival_time in {path}, row {len(arrivals) + 1}: "
                    f"{arrival!r} after {arrivals[-1]!r} (arrivals must be "
                    "sorted in ascending order)"
                )
            arrivals.append(arrival)
            processing.append(proc)
    if horizon is not None and arrivals and horizon < arrivals[-1]:
        raise TraceFormatError(
            f"invalid horizon in {path}: {horizon!r} is earlier than the "
            f"last arrival ({arrivals[-1]!r})"
        )
    return ArrivalTrace(arrivals, processing, name=trace_name, horizon=horizon)


def save_qps_csv(series: QPSSeries, path: str | Path) -> Path:
    """Write ``series`` to ``path`` in the QPS CSV format and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([f"# bin_seconds={series.bin_seconds!r}", series.name])
        writer.writerow(["bin_start", "count"])
        for start, count in zip(series.times, series.counts):
            writer.writerow([f"{start:.6f}", f"{count:.6f}"])
    return path


def load_qps_csv(path: str | Path, *, name: str | None = None) -> QPSSeries:
    """Read a :class:`~repro.types.QPSSeries` from a QPS CSV file.

    Raises
    ------
    TraceFormatError
        If the ``# bin_seconds=`` header is missing, a row cannot be parsed,
        or any ``bin_start`` deviates from the uniform grid ``i *
        bin_seconds`` the series model assumes.  Offset or non-uniform bin
        starts used to be silently discarded — misreading such a file as
        uniform-from-zero shifts the whole fitted intensity in time.
    """
    path = Path(path)
    if not path.exists():
        raise TraceFormatError(f"QPS file not found: {path}")
    counts: list[float] = []
    bin_starts: list[float] = []
    bin_seconds: float | None = None
    series_name = name or path.stem
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        for row in reader:
            if not row:
                continue
            if row[0].startswith("#"):
                token = row[0].lstrip("# ").strip()
                if token.startswith("bin_seconds="):
                    try:
                        bin_seconds = float(token.split("=", 1)[1])
                    except ValueError as exc:
                        raise TraceFormatError(
                            f"invalid bin_seconds in {path}: {token!r}"
                        ) from exc
                if name is None and len(row) >= 2 and row[1]:
                    series_name = row[1]
                continue
            if row[0] == "bin_start":
                continue
            try:
                bin_starts.append(float(row[0]))
                counts.append(float(row[1]))
            except (ValueError, IndexError) as exc:
                raise TraceFormatError(f"malformed row in {path}: {row!r}") from exc
    if bin_seconds is None:
        raise TraceFormatError(f"missing '# bin_seconds=' header in {path}")
    if not (math.isfinite(bin_seconds) and bin_seconds > 0):
        raise TraceFormatError(
            f"invalid bin_seconds in {path}: {bin_seconds!r} (must be finite "
            "and positive)"
        )
    # QPSSeries models a uniform grid starting at zero; a file whose
    # bin_start column disagrees (offset origin, shuffled rows, skipped
    # bins) would be silently misread, shifting the fitted intensity.
    expected = np.arange(len(bin_starts)) * bin_seconds
    tolerance = max(_BIN_START_RTOL * bin_seconds, 1e-6)
    mismatched = np.nonzero(
        ~np.isclose(np.asarray(bin_starts), expected, rtol=0.0, atol=tolerance)
    )[0]
    if mismatched.size:
        i = int(mismatched[0])
        raise TraceFormatError(
            f"non-uniform bin_start in {path}, row {i + 1}: got "
            f"{bin_starts[i]!r}, expected {expected[i]!r} (bins must form "
            f"the uniform grid i * bin_seconds starting at 0; offset or "
            "shuffled bins would silently shift the fitted intensity)"
        )
    return QPSSeries(counts, bin_seconds, name=series_name)
