"""Workload traces: synthetic generators, IO, perturbation, and a catalog.

The paper evaluates on a proprietary container-registry trace (CRS), the
Google cluster trace 2019 and the Alibaba cluster trace 2018.  None of those
can be bundled offline, so this subpackage provides seeded synthetic
generators that reproduce the structural features each experiment relies on
(see DESIGN.md for the substitution rationale), together with CSV/JSONL IO
for users who want to plug in their own traces, and the perturbation /
missing-data / anomaly utilities used by the robustness experiments.
"""

from .synthetic import (
    IntensityProfile,
    beta_bump_intensity,
    generate_alibaba_like_trace,
    generate_crs_like_trace,
    generate_google_like_trace,
    generate_trace_from_intensity,
    paper_regularization_intensity,
    paper_scalability_intensity,
)
from .io import load_trace_csv, save_trace_csv, load_qps_csv, save_qps_csv
from .perturbation import (
    inject_missing_window,
    perturb_trace,
    remove_anomalous_bursts,
)
from .catalog import TraceSpec, get_trace, list_traces

__all__ = [
    "IntensityProfile",
    "beta_bump_intensity",
    "generate_crs_like_trace",
    "generate_google_like_trace",
    "generate_alibaba_like_trace",
    "generate_trace_from_intensity",
    "paper_scalability_intensity",
    "paper_regularization_intensity",
    "load_trace_csv",
    "save_trace_csv",
    "load_qps_csv",
    "save_qps_csv",
    "perturb_trace",
    "inject_missing_window",
    "remove_anomalous_bursts",
    "TraceSpec",
    "get_trace",
    "list_traces",
]
