"""Core data types shared across the RobustScaler reproduction.

The types mirror the formalism of Section III of the paper:

* a **query** arrives at a random time ``xi`` and needs processing time ``s``;
* an **instance** is created at a deterministic time ``x``, becomes ready
  after a pending/startup time ``tau``, processes exactly one query, and is
  deleted immediately afterwards;
* a **trace** is the arrival-time record replayed through the simulator;
* a **QPS series** is the per-interval query count used to fit the NHPP.

All time quantities are in seconds, measured on a single simulation clock
whose origin is the start of the trace.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

import numpy as np

from ._validation import as_1d_float_array, check_positive
from .exceptions import TraceError, ValidationError

__all__ = [
    "Query",
    "InstanceRecord",
    "ArrivalTrace",
    "QPSSeries",
    "ScalingAction",
    "ScalingPlan",
    "QueryOutcome",
    "SimulationResult",
]


@dataclass(frozen=True)
class Query:
    """A single query in a scaling-per-query workload.

    Attributes
    ----------
    index:
        Zero-based position of the query in arrival order.
    arrival_time:
        Arrival time ``xi_i`` in seconds from the trace origin.
    processing_time:
        Processing time ``s_i`` in seconds (time the instance spends serving
        the query once it starts).
    """

    index: int
    arrival_time: float
    processing_time: float

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValidationError(f"query index must be >= 0, got {self.index}")
        if not math.isfinite(self.arrival_time) or self.arrival_time < 0:
            raise ValidationError(
                f"arrival_time must be finite and >= 0, got {self.arrival_time!r}"
            )
        if not math.isfinite(self.processing_time) or self.processing_time < 0:
            raise ValidationError(
                f"processing_time must be finite and >= 0, got {self.processing_time!r}"
            )


@dataclass(frozen=True)
class InstanceRecord:
    """The full lifecycle of one instance as observed by the simulator.

    Attributes
    ----------
    query_index:
        Index of the query the instance ended up serving (instances serve
        exactly one query in the scaling-per-query model).
    creation_time:
        Wall-clock time the instance was created (either proactively by the
        scaling plan or reactively at query arrival).
    ready_time:
        ``creation_time + pending_time`` — when the instance finished startup.
    start_processing_time:
        When the instance actually began serving its query.
    deletion_time:
        When the instance was deleted (= ``start_processing_time`` plus the
        query's processing time).
    pending_time:
        Startup latency ``tau_i`` drawn for this instance.
    proactive:
        ``True`` if the instance was created by the scaling plan ahead of the
        query, ``False`` for reactive cold-start creation.
    """

    query_index: int
    creation_time: float
    ready_time: float
    start_processing_time: float
    deletion_time: float
    pending_time: float
    proactive: bool

    @property
    def lifecycle_length(self) -> float:
        """Total billed lifetime: deletion_time - creation_time (seconds)."""
        return self.deletion_time - self.creation_time

    @property
    def idle_time(self) -> float:
        """Time between becoming ready and starting to process (>= 0)."""
        return max(0.0, self.start_processing_time - self.ready_time)


class ArrivalTrace:
    """An ordered record of query arrivals and processing times.

    This is the event-level representation replayed through the simulator.
    It is immutable by convention: transformation helpers return new traces.

    Parameters
    ----------
    arrival_times:
        Ascending arrival times in seconds from the trace origin.
    processing_times:
        Per-query processing times; either one value per query or a scalar
        broadcast to every query.
    name:
        Human-readable identifier used in reports.
    horizon:
        Optional explicit end of the observation window in seconds; defaults
        to the last arrival time.
    """

    def __init__(
        self,
        arrival_times: Sequence[float],
        processing_times: Sequence[float] | float,
        *,
        name: str = "trace",
        horizon: Optional[float] = None,
    ) -> None:
        arrivals = as_1d_float_array(arrival_times, "arrival_times")
        if arrivals.size and np.any(np.diff(arrivals) < 0):
            raise TraceError("arrival_times must be sorted in ascending order")
        if arrivals.size and arrivals[0] < 0:
            raise TraceError("arrival_times must be non-negative")
        if np.isscalar(processing_times):
            processing = np.full(arrivals.size, float(processing_times))
        else:
            processing = as_1d_float_array(processing_times, "processing_times")
        if processing.size != arrivals.size:
            raise TraceError(
                "processing_times must have one entry per arrival, got "
                f"{processing.size} for {arrivals.size} arrivals"
            )
        if processing.size and np.any(processing < 0):
            raise TraceError("processing_times must be non-negative")
        self._arrivals = arrivals
        self._processing = processing
        self.name = str(name)
        if horizon is None:
            horizon = float(arrivals[-1]) if arrivals.size else 0.0
        horizon = float(horizon)
        if arrivals.size and horizon < arrivals[-1]:
            raise TraceError(
                f"horizon ({horizon}) must not be earlier than the last arrival "
                f"({arrivals[-1]})"
            )
        self.horizon = horizon

    @property
    def arrival_times(self) -> np.ndarray:
        """Read-only view of the arrival times."""
        view = self._arrivals.view()
        view.flags.writeable = False
        return view

    @property
    def processing_times(self) -> np.ndarray:
        """Read-only view of the processing times."""
        view = self._processing.view()
        view.flags.writeable = False
        return view

    @property
    def n_queries(self) -> int:
        """Number of queries in the trace."""
        return int(self._arrivals.size)

    @property
    def duration(self) -> float:
        """Length of the observation window in seconds."""
        return self.horizon

    @property
    def mean_qps(self) -> float:
        """Average queries-per-second over the observation window."""
        if self.horizon <= 0:
            return 0.0
        return self.n_queries / self.horizon

    def __len__(self) -> int:
        return self.n_queries

    def __iter__(self) -> Iterator[Query]:
        for i in range(self.n_queries):
            yield Query(
                index=i,
                arrival_time=float(self._arrivals[i]),
                processing_time=float(self._processing[i]),
            )

    def __getitem__(self, index: int) -> Query:
        i = int(index)
        if i < 0:
            i += self.n_queries
        if not 0 <= i < self.n_queries:
            raise IndexError(f"query index {index} out of range for {self.n_queries} queries")
        return Query(
            index=i,
            arrival_time=float(self._arrivals[i]),
            processing_time=float(self._processing[i]),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ArrivalTrace(name={self.name!r}, n_queries={self.n_queries}, "
            f"horizon={self.horizon:.1f}s, mean_qps={self.mean_qps:.4f})"
        )

    def slice_time(self, start: float, end: float, *, rebase: bool = True) -> "ArrivalTrace":
        """Return the sub-trace of queries arriving in ``[start, end)``.

        Parameters
        ----------
        start, end:
            Window boundaries in seconds.
        rebase:
            If ``True`` (default) arrival times in the returned trace are
            shifted so that ``start`` maps to 0.
        """
        if end < start:
            raise ValidationError(f"end ({end}) must be >= start ({start})")
        mask = (self._arrivals >= start) & (self._arrivals < end)
        arrivals = self._arrivals[mask]
        processing = self._processing[mask]
        offset = start if rebase else 0.0
        horizon = (end - offset) if rebase else end
        return ArrivalTrace(
            arrivals - offset,
            processing,
            name=f"{self.name}[{start:.0f}:{end:.0f}]",
            horizon=horizon,
        )

    def split(self, fraction: float) -> tuple["ArrivalTrace", "ArrivalTrace"]:
        """Split the trace into (train, test) at ``fraction`` of the horizon.

        The test trace is rebased so that its own origin is time 0, matching
        how the experiments in the paper train on the first weeks/days and
        test on the remainder.
        """
        fraction = float(fraction)
        if not 0.0 < fraction < 1.0:
            raise ValidationError(f"fraction must be in (0, 1), got {fraction}")
        cut = self.horizon * fraction
        train = self.slice_time(0.0, cut, rebase=False)
        train = ArrivalTrace(
            train.arrival_times, train.processing_times, name=f"{self.name}-train", horizon=cut
        )
        test = self.slice_time(cut, self.horizon, rebase=True)
        test = ArrivalTrace(
            test.arrival_times,
            test.processing_times,
            name=f"{self.name}-test",
            horizon=self.horizon - cut,
        )
        return train, test

    def to_qps_series(self, bin_seconds: float = 60.0) -> "QPSSeries":
        """Aggregate arrivals into a per-interval count series.

        Parameters
        ----------
        bin_seconds:
            Width ``delta_t`` of each counting interval in seconds.
        """
        bin_seconds = check_positive(bin_seconds, "bin_seconds")
        n_bins = max(1, int(math.ceil(self.horizon / bin_seconds)))
        if self.n_queries and self._arrivals[-1] >= n_bins * bin_seconds:
            n_bins += 1
        edges = np.arange(n_bins + 1) * bin_seconds
        counts, _ = np.histogram(self._arrivals, bins=edges)
        return QPSSeries(counts=counts, bin_seconds=bin_seconds, name=self.name)

    def with_processing_times(self, processing_times: Sequence[float] | float) -> "ArrivalTrace":
        """Return a copy of the trace with different processing times."""
        return ArrivalTrace(
            self._arrivals, processing_times, name=self.name, horizon=self.horizon
        )


class QPSSeries:
    """Per-interval query counts, the input representation for NHPP fitting.

    Attributes
    ----------
    counts:
        Integer query count ``Q_t`` in each interval of length ``bin_seconds``.
    bin_seconds:
        The interval width ``delta_t`` in seconds.
    name:
        Human-readable identifier.
    """

    def __init__(
        self,
        counts: Sequence[float],
        bin_seconds: float,
        *,
        name: str = "qps",
    ) -> None:
        counts_arr = as_1d_float_array(counts, "counts")
        if counts_arr.size == 0:
            raise ValidationError("counts must contain at least one interval")
        if np.any(counts_arr < 0):
            raise ValidationError("counts must be non-negative")
        self._counts = counts_arr
        self.bin_seconds = check_positive(bin_seconds, "bin_seconds")
        self.name = str(name)

    @property
    def counts(self) -> np.ndarray:
        """Read-only view of the interval counts."""
        view = self._counts.view()
        view.flags.writeable = False
        return view

    @property
    def qps(self) -> np.ndarray:
        """Queries-per-second in each interval (counts / bin_seconds)."""
        return self._counts / self.bin_seconds

    @property
    def n_bins(self) -> int:
        """Number of intervals in the series."""
        return int(self._counts.size)

    @property
    def duration(self) -> float:
        """Total covered duration in seconds."""
        return self.n_bins * self.bin_seconds

    @property
    def times(self) -> np.ndarray:
        """Left edge (seconds) of each interval."""
        return np.arange(self.n_bins) * self.bin_seconds

    def __len__(self) -> int:
        return self.n_bins

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"QPSSeries(name={self.name!r}, n_bins={self.n_bins}, "
            f"bin_seconds={self.bin_seconds}, total={self._counts.sum():.0f})"
        )

    def aggregate(self, factor: int) -> "QPSSeries":
        """Merge every ``factor`` consecutive bins (summing counts).

        Used by the periodicity-detection module to average out randomness
        before searching for cyclic patterns (Section IV of the paper).
        """
        if factor < 1:
            raise ValidationError(f"factor must be >= 1, got {factor}")
        factor = int(factor)
        n_full = (self.n_bins // factor) * factor
        if n_full == 0:
            raise ValidationError(
                f"series with {self.n_bins} bins is too short to aggregate by {factor}"
            )
        merged = self._counts[:n_full].reshape(-1, factor).sum(axis=1)
        return QPSSeries(merged, self.bin_seconds * factor, name=f"{self.name}@x{factor}")


@dataclass(frozen=True)
class ScalingAction:
    """A single planned instance creation.

    Attributes
    ----------
    creation_time:
        Absolute time (seconds) at which the instance should be created.
    planned_at:
        Time the decision was made; used by the real-environment simulator to
        charge decision latency.
    target_query_index:
        Index of the upcoming query this instance is intended for, if known.
    """

    creation_time: float
    planned_at: float = 0.0
    target_query_index: Optional[int] = None

    def __post_init__(self) -> None:
        if not math.isfinite(self.creation_time):
            raise ValidationError("creation_time must be finite")
        if not math.isfinite(self.planned_at):
            raise ValidationError("planned_at must be finite")


@dataclass
class ScalingPlan:
    """A batch of scaling actions emitted by an autoscaler at one planning step."""

    actions: list[ScalingAction] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.actions = sorted(self.actions, key=lambda a: a.creation_time)

    def __len__(self) -> int:
        return len(self.actions)

    def __iter__(self) -> Iterator[ScalingAction]:
        return iter(self.actions)

    @property
    def creation_times(self) -> np.ndarray:
        """Planned creation times as an array (sorted ascending)."""
        return np.array([a.creation_time for a in self.actions], dtype=float)

    def merge(self, other: "ScalingPlan") -> "ScalingPlan":
        """Return a plan containing the actions of both plans."""
        return ScalingPlan(actions=list(self.actions) + list(other.actions))


@dataclass(frozen=True)
class QueryOutcome:
    """Per-query QoS outcome recorded by the simulator.

    Attributes
    ----------
    query:
        The query this outcome belongs to.
    hit:
        ``True`` when an instance was ready at or before the arrival time
        (the paper's hitting event ``xi_i >= x_i + tau_i``).
    waiting_time:
        Time the query waited for an instance to become ready (0 on a hit).
    response_time:
        waiting_time + processing_time.
    instance:
        The lifecycle record of the instance that served this query.
    """

    query: Query
    hit: bool
    waiting_time: float
    response_time: float
    instance: InstanceRecord


class SimulationResult:
    """Aggregate output of replaying a trace with an autoscaler.

    Two interchangeable representations back the per-query data:

    * **row-wise** — an eager list of :class:`QueryOutcome` records, as
      produced by the reference engine (pass ``outcomes=``);
    * **columnar** — flat numpy arrays, one per outcome field, as produced
      by the batched engine (:meth:`from_columns`).  The ``outcomes`` list
      is then materialized lazily on first access, so metric pipelines that
      only touch the array properties never pay for building a Python
      object per query.

    Both representations expose identical values through every accessor;
    the differential-testing harness in ``tests/test_engine_parity.py``
    holds the engines to that.
    """

    def __init__(
        self,
        scaler_name: str,
        trace_name: str,
        outcomes: Optional[list[QueryOutcome]] = None,
        unused_instance_cost: float = 0.0,
        planning_times: Optional[list[float]] = None,
        *,
        n_unused_instances: int = 0,
    ) -> None:
        self.scaler_name = scaler_name
        self.trace_name = trace_name
        self._outcomes: Optional[list[QueryOutcome]] = (
            list(outcomes) if outcomes is not None else None
        )
        self._columns: Optional[dict[str, np.ndarray]] = None
        self.unused_instance_cost = unused_instance_cost
        self.planning_times: list[float] = (
            list(planning_times) if planning_times is not None else []
        )
        self.n_unused_instances = int(n_unused_instances)
        if self._outcomes is None:
            self._outcomes = []

    @classmethod
    def from_columns(
        cls,
        scaler_name: str,
        trace_name: str,
        *,
        arrival_times: np.ndarray,
        processing_times: np.ndarray,
        hits: np.ndarray,
        waiting_times: np.ndarray,
        creation_times: np.ndarray,
        ready_times: np.ndarray,
        start_times: np.ndarray,
        pending_times: np.ndarray,
        proactive: np.ndarray,
        unused_instance_cost: float = 0.0,
        planning_times: Optional[list[float]] = None,
        n_unused_instances: int = 0,
    ) -> "SimulationResult":
        """Build a result from flat per-query arrays (the batched engine's path)."""
        columns = {
            "arrival": np.asarray(arrival_times, dtype=float),
            "processing": np.asarray(processing_times, dtype=float),
            "hit": np.asarray(hits, dtype=bool),
            "waiting": np.asarray(waiting_times, dtype=float),
            "creation": np.asarray(creation_times, dtype=float),
            "ready": np.asarray(ready_times, dtype=float),
            "start": np.asarray(start_times, dtype=float),
            "pending": np.asarray(pending_times, dtype=float),
            "proactive": np.asarray(proactive, dtype=bool),
        }
        sizes = {key: value.shape[0] for key, value in columns.items()}
        if len(set(sizes.values())) > 1:
            raise ValidationError(f"column lengths disagree: {sizes}")
        result = cls(
            scaler_name,
            trace_name,
            unused_instance_cost=unused_instance_cost,
            planning_times=planning_times,
            n_unused_instances=n_unused_instances,
        )
        result._outcomes = None
        result._columns = columns
        return result

    # ------------------------------------------------------ representations

    @property
    def outcomes(self) -> list[QueryOutcome]:
        """Per-query outcome records (materialized lazily for columnar results)."""
        if self._outcomes is None:
            self._outcomes = self._materialize_outcomes()
        return self._outcomes

    def _materialize_outcomes(self) -> list[QueryOutcome]:
        cols = self._columns
        assert cols is not None
        outcomes: list[QueryOutcome] = []
        for i in range(cols["arrival"].shape[0]):
            query = Query(
                index=i,
                arrival_time=float(cols["arrival"][i]),
                processing_time=float(cols["processing"][i]),
            )
            start = float(cols["start"][i])
            waiting = float(cols["waiting"][i])
            record = InstanceRecord(
                query_index=i,
                creation_time=float(cols["creation"][i]),
                ready_time=float(cols["ready"][i]),
                start_processing_time=start,
                deletion_time=start + query.processing_time,
                pending_time=float(cols["pending"][i]),
                proactive=bool(cols["proactive"][i]),
            )
            outcomes.append(
                QueryOutcome(
                    query=query,
                    hit=bool(cols["hit"][i]),
                    waiting_time=waiting,
                    response_time=waiting + query.processing_time,
                    instance=record,
                )
            )
        return outcomes

    def _column(self, key: str, getter, dtype) -> np.ndarray:
        if self._columns is not None:
            return self._columns[key]
        return np.array([getter(o) for o in self._outcomes], dtype=dtype)

    # ----------------------------------------------------------- accessors

    @property
    def n_queries(self) -> int:
        """Number of queries that were replayed."""
        if self._columns is not None:
            return int(self._columns["arrival"].shape[0])
        return len(self._outcomes)

    @property
    def hits(self) -> np.ndarray:
        """Boolean array of per-query hit indicators."""
        return self._column("hit", lambda o: o.hit, bool)

    @property
    def response_times(self) -> np.ndarray:
        """Array of per-query response times (seconds)."""
        if self._columns is not None:
            return self._columns["waiting"] + self._columns["processing"]
        return np.array([o.response_time for o in self._outcomes], dtype=float)

    @property
    def waiting_times(self) -> np.ndarray:
        """Array of per-query waiting times (seconds)."""
        return self._column("waiting", lambda o: o.waiting_time, float)

    @property
    def arrival_times(self) -> np.ndarray:
        """Array of per-query arrival times (seconds)."""
        return self._column("arrival", lambda o: o.query.arrival_time, float)

    @property
    def processing_times(self) -> np.ndarray:
        """Array of per-query processing times (seconds)."""
        return self._column("processing", lambda o: o.query.processing_time, float)

    @property
    def creation_times(self) -> np.ndarray:
        """Creation time of the instance that served each query."""
        return self._column("creation", lambda o: o.instance.creation_time, float)

    @property
    def ready_times(self) -> np.ndarray:
        """Ready time of the instance that served each query."""
        return self._column("ready", lambda o: o.instance.ready_time, float)

    @property
    def start_times(self) -> np.ndarray:
        """Start-of-processing time of the instance that served each query."""
        return self._column(
            "start", lambda o: o.instance.start_processing_time, float
        )

    @property
    def deletion_times(self) -> np.ndarray:
        """Deletion time of the instance that served each query."""
        if self._columns is not None:
            return self._columns["start"] + self._columns["processing"]
        return np.array([o.instance.deletion_time for o in self._outcomes], dtype=float)

    @property
    def pending_times(self) -> np.ndarray:
        """Pending (startup) time drawn for the instance serving each query."""
        return self._column("pending", lambda o: o.instance.pending_time, float)

    @property
    def proactive_flags(self) -> np.ndarray:
        """Whether each query was served by a proactively created instance."""
        return self._column("proactive", lambda o: o.instance.proactive, bool)

    @property
    def lifecycle_costs(self) -> np.ndarray:
        """Array of per-instance lifecycle lengths for instances that served queries."""
        if self._columns is not None:
            return self.deletion_times - self._columns["creation"]
        return np.array(
            [o.instance.lifecycle_length for o in self._outcomes], dtype=float
        )

    @property
    def total_cost(self) -> float:
        """Total cost: sum of all lifecycle lengths plus cost of unused instances."""
        return float(self.lifecycle_costs.sum()) + float(self.unused_instance_cost)

    @property
    def hit_rate(self) -> float:
        """Fraction of queries that were hits."""
        if not self.n_queries:
            return float("nan")
        return float(self.hits.mean())

    @property
    def mean_response_time(self) -> float:
        """Average response time across all queries."""
        if not self.n_queries:
            return float("nan")
        return float(self.response_times.mean())

    def __eq__(self, other: object) -> bool:
        """Structural equality over the recorded values.

        Representation-agnostic: a row-wise result equals a columnar one
        when every per-query value, the unused-instance cost and the
        planning times agree (the former dataclass compared outcome lists;
        this preserves value semantics across both representations).
        """
        if not isinstance(other, SimulationResult):
            return NotImplemented
        if (
            self.scaler_name != other.scaler_name
            or self.trace_name != other.trace_name
            or self.unused_instance_cost != other.unused_instance_cost
            or self.n_unused_instances != other.n_unused_instances
            or self.planning_times != other.planning_times
            or self.n_queries != other.n_queries
        ):
            return False
        return all(
            np.array_equal(getattr(self, column), getattr(other, column))
            for column in (
                "arrival_times",
                "processing_times",
                "hits",
                "waiting_times",
                "creation_times",
                "ready_times",
                "start_times",
                "pending_times",
                "proactive_flags",
            )
        )

    __hash__ = None  # mutable container semantics, like the former dataclass

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"SimulationResult(scaler={self.scaler_name!r}, "
            f"trace={self.trace_name!r}, n_queries={self.n_queries})"
        )
