"""Robust periodicity detection (module 1 of the RobustScaler framework)."""

from .detector import PeriodicityDetector, PeriodicityResult, detect_period

__all__ = ["PeriodicityDetector", "PeriodicityResult", "detect_period"]
