"""Robust periodicity detection on QPS series.

The detector mirrors the first module of the RobustScaler framework
(Section IV) and the two-stage structure of RobustPeriod [18]:

1. **Time aggregation** — merge fine-grained bins to average out arrival
   randomness that would otherwise obscure cyclic structure in low-traffic
   series.
2. **Robust preprocessing** — winsorize outliers and remove a running-median
   trend so bursts and level shifts do not create spurious spectral peaks.
3. **Candidate proposal** — pick periodogram frequencies whose power stands
   well above the median power.
4. **Validation** — accept a candidate only if the autocorrelation of the
   preprocessed series at the candidate lag is a genuine local peak above a
   threshold.

The detected period is reported both in bins of the *original* series and in
seconds, which is what the NHPP model needs for its ``D_L`` regularizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import PeriodicityConfig
from ..exceptions import PeriodicityDetectionError
from ..timeseries.acf import autocorrelation
from ..timeseries.aggregation import aggregate_counts
from ..timeseries.periodogram import FrequencyCandidate, dominant_frequencies
from ..timeseries.robust import median_filter, winsorize
from ..types import QPSSeries

__all__ = ["PeriodicityDetector", "PeriodicityResult", "detect_period"]


@dataclass(frozen=True)
class PeriodicityResult:
    """Outcome of periodicity detection on one series.

    Attributes
    ----------
    detected:
        Whether any periodic pattern passed both the spectral and the ACF
        checks.
    period_bins:
        Period length in bins of the original (non-aggregated) series;
        0 when nothing was detected.
    period_seconds:
        Period length in seconds; 0.0 when nothing was detected.
    acf_value:
        Autocorrelation of the aggregated series at the accepted lag.
    candidates:
        All periodogram candidates that were examined, strongest first.
    aggregation_factor:
        The aggregation factor actually used.
    """

    detected: bool
    period_bins: int
    period_seconds: float
    acf_value: float
    candidates: list[FrequencyCandidate] = field(default_factory=list)
    aggregation_factor: int = 1


class PeriodicityDetector:
    """Detect dominant cyclic patterns in a QPS series.

    Parameters
    ----------
    config:
        Detector configuration; see :class:`~repro.config.PeriodicityConfig`.
    """

    def __init__(self, config: PeriodicityConfig | None = None) -> None:
        self.config = config or PeriodicityConfig()

    def detect(self, series: QPSSeries) -> PeriodicityResult:
        """Run detection on ``series`` and return a :class:`PeriodicityResult`."""
        cfg = self.config
        factor = self._effective_aggregation(series)
        if factor > 1:
            aggregated = aggregate_counts(series.counts, factor, how="mean")
        else:
            aggregated = np.asarray(series.counts, dtype=float)
        if aggregated.size < 16:
            raise PeriodicityDetectionError(
                f"series too short for periodicity detection: {aggregated.size} aggregated bins"
            )

        prepared = self._preprocess(aggregated)
        max_period = int(aggregated.size * cfg.max_period_fraction)
        candidates = dominant_frequencies(
            prepared,
            power_threshold=cfg.power_threshold,
            max_candidates=cfg.max_candidates,
            min_period=2,
            max_period=max(2, max_period),
        )

        acf = autocorrelation(prepared)
        for candidate in candidates:
            lag = self._validated_lag(acf, candidate.period)
            if lag is None:
                continue
            period_bins = self._refine_on_base_series(series, lag * factor, factor)
            return PeriodicityResult(
                detected=True,
                period_bins=period_bins,
                period_seconds=period_bins * series.bin_seconds,
                acf_value=float(acf[lag]),
                candidates=candidates,
                aggregation_factor=factor,
            )
        return PeriodicityResult(
            detected=False,
            period_bins=0,
            period_seconds=0.0,
            acf_value=0.0,
            candidates=candidates,
            aggregation_factor=factor,
        )

    def _effective_aggregation(self, series: QPSSeries) -> int:
        """Shrink the configured aggregation factor for short series."""
        factor = self.config.aggregation_factor
        # Keep at least 64 aggregated bins so the periodogram has resolution.
        while factor > 1 and series.n_bins // factor < 64:
            factor -= 1
        return max(1, factor)

    def _preprocess(self, aggregated: np.ndarray) -> np.ndarray:
        """Winsorize and (optionally) detrend the aggregated series."""
        cfg = self.config
        clipped = winsorize(aggregated, z_limit=5.0)
        if not cfg.detrend:
            return clipped
        trend_window = max(3, clipped.size // 4)
        if trend_window % 2 == 0:
            trend_window += 1
        trend = median_filter(clipped, trend_window)
        return clipped - trend

    def _validated_lag(self, acf: np.ndarray, candidate_lag: int) -> int | None:
        """Confirm a periodogram candidate against the ACF and refine the lag.

        The true period need not be an integer number of aggregated bins, so
        the ACF peak can sit a few lags away from the periodogram candidate.
        We search a small neighborhood around the candidate, take the lag with
        the highest autocorrelation, and accept it when that autocorrelation
        clears the configured threshold.
        """
        if candidate_lag >= acf.size or candidate_lag < 2:
            return None
        neighborhood = max(1, candidate_lag // 10)
        low = max(2, candidate_lag - neighborhood)
        high = min(acf.size - 1, candidate_lag + neighborhood)
        if low > high:
            return None
        window = acf[low: high + 1]
        best = int(low + np.argmax(window))
        if acf[best] < self.config.acf_threshold:
            return None
        return best

    def _refine_on_base_series(
        self, series: QPSSeries, coarse_period_bins: int, factor: int
    ) -> int:
        """Sharpen a period found on the aggregated series to base-bin resolution.

        Aggregation quantizes the period to multiples of the aggregation
        factor; a few percent of period error compounds into a large phase
        drift when the intensity is extrapolated over many cycles, so the lag
        is re-estimated on the original series within one aggregation step of
        the coarse estimate.
        """
        if factor <= 1:
            return coarse_period_bins
        base = winsorize(np.asarray(series.counts, dtype=float), z_limit=5.0)
        acf = autocorrelation(base)
        low = max(2, coarse_period_bins - factor)
        high = min(acf.size - 1, coarse_period_bins + factor)
        if low > high:
            return coarse_period_bins
        window = acf[low: high + 1]
        return int(low + np.argmax(window))


def detect_period(series: QPSSeries, config: PeriodicityConfig | None = None) -> PeriodicityResult:
    """Functional shortcut for ``PeriodicityDetector(config).detect(series)``."""
    return PeriodicityDetector(config).detect(series)
