"""Command-line interface for the RobustScaler reproduction.

Usage examples::

    repro traces                             # list the synthetic trace catalog
    repro simulate --trace google --scaler rs-hp --target 0.9
    repro experiment pareto                  # regenerate the Fig. 4 data
    repro experiment table3                  # periodicity-regularization study
    repro experiment scenario-sweep --workers 4   # parallel registry sweep
    repro workloads list                     # the scenario registry
    repro workloads generate --scenario flash-crowd --seed 7 --out fc.csv
    repro workloads sweep                    # autoscalers across every scenario
    repro store info                         # artifact-store footprint
    repro store gc --max-bytes 500000000     # evict oldest artifacts

The CLI is a thin wrapper over :mod:`repro.experiments`; the paper-facing
subcommands print plain-text tables mirroring the paper's artifacts, while
``workloads`` exposes the scenario registry of :mod:`repro.workloads` —
listing scenarios, generating seed-reproducible traces (optionally saved to
CSV), and sweeping RobustScaler plus the baselines across the registry.
(The installed entry points ``repro`` and ``robustscaler`` are synonyms.)

Persistence: ``simulate``, ``experiment`` and ``workloads sweep`` use the
disk artifact store of :mod:`repro.store` by default, so repeated
invocations reuse model fits and generated traces instead of recomputing
them.  ``--store-dir`` (or the ``REPRO_STORE_DIR`` environment variable)
relocates it, ``--no-store`` disables it, ``--run-id`` journals per-task
completions so an interrupted sweep resumes where it left off, and the
``store`` command group (``info`` / ``ls`` / ``gc`` / ``clear``) manages
the store's footprint.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Sequence

from .config import PlannerConfig, SimulationConfig
from .exceptions import ExperimentError, ValidationError, WorkloadError
from .experiments import (
    run_control_accuracy_experiment,
    run_mc_accuracy_experiment,
    run_pareto_experiment,
    run_perturbation_experiment,
    run_planning_frequency_experiment,
    run_realenv_experiment,
    run_regularization_experiment,
    run_robustness_experiment,
    run_scalability_experiment,
    run_scenario_sweep_experiment,
    run_traces_overview,
    run_variance_experiment,
    summarize_scenario_sweep,
)
from .experiments.control_accuracy import (
    ControlAccuracyExperimentConfig,
    PlanningFrequencyExperimentConfig,
)
from .experiments.pareto import ParetoExperimentConfig
from .experiments.perturbation import PerturbationExperimentConfig
from .experiments.robustness import RobustnessExperimentConfig
from .experiments.scenario_sweep import ScenarioSweepConfig
from .experiments.variance import VarianceExperimentConfig
from .metrics.report import format_table, summarize_result
from .pending import DeterministicPendingTime
from .runtime import PrepSpec, WorkloadCache, WorkloadSpec
from .scaling import (
    AdaptiveBackupPoolScaler,
    BackupPoolScaler,
    ReactiveScaler,
    RobustScaler,
    RobustScalerObjective,
)
from .simulation import replay
from .store import STORE_DIR_ENV_VAR, resolve_store
from .traces import get_trace, list_traces
from .traces.io import save_trace_csv
from .workloads import get_scenario, list_scenarios, scenario_names

__all__ = ["main", "build_parser"]

_EXPERIMENTS: dict[str, Callable[[], list[dict]]] = {
    "traces": run_traces_overview,
    "pareto": run_pareto_experiment,
    "variance": run_variance_experiment,
    "perturbation": run_perturbation_experiment,
    "scalability": run_scalability_experiment,
    "table1": run_mc_accuracy_experiment,
    "robustness": run_robustness_experiment,
    "control": run_control_accuracy_experiment,
    "planning-frequency": run_planning_frequency_experiment,
    "table3": run_regularization_experiment,
    "table4": run_realenv_experiment,
    "scenario-sweep": run_scenario_sweep_experiment,
}

#: Experiments routed through the parallel evaluation runtime; their config
#: classes accept ``scale``, ``workers``, ``engine``, ``store`` and
#: ``run_id``.
_RUNTIME_EXPERIMENTS = {
    "pareto": (ParetoExperimentConfig, run_pareto_experiment),
    "scenario-sweep": (ScenarioSweepConfig, run_scenario_sweep_experiment),
    "variance": (VarianceExperimentConfig, run_variance_experiment),
    "perturbation": (PerturbationExperimentConfig, run_perturbation_experiment),
    "robustness": (RobustnessExperimentConfig, run_robustness_experiment),
    "control": (ControlAccuracyExperimentConfig, run_control_accuracy_experiment),
    "planning-frequency": (
        PlanningFrequencyExperimentConfig,
        run_planning_frequency_experiment,
    ),
}


def _add_store_flags(parser: argparse.ArgumentParser) -> None:
    """The persistence flags shared by simulate / experiment / sweep."""
    parser.add_argument(
        "--store-dir",
        default=None,
        help=(
            "artifact-store directory (default: the "
            f"{STORE_DIR_ENV_VAR} environment variable, else ~/.cache/repro/store)"
        ),
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="disable the disk artifact store for this invocation",
    )


def _store_summary(store) -> str:
    """One-line report of what the store did for this invocation.

    Counters are per-handle: with ``--workers N`` the pool workers' own
    reads/writes happen in their processes and are not included here.
    """
    stats = store.stats()
    return (
        f"[store] {stats.hits} artifact reads, {stats.writes} writes "
        f"in this process ({store.root})"
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="robustscaler",
        description="Reproduction of RobustScaler (ICDE 2022): QoS-aware autoscaling",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("traces", help="list the synthetic trace catalog")

    simulate = subparsers.add_parser(
        "simulate", help="replay one trace with one autoscaler and print metrics"
    )
    simulate.add_argument(
        "--trace",
        default="crs",
        help="any registered scenario name (see 'workloads list'); default: crs",
    )
    simulate.add_argument("--scale", type=float, default=0.25, help="trace size factor")
    simulate.add_argument(
        "--scaler",
        default="rs-hp",
        choices=["reactive", "bp", "adapbp", "rs-hp", "rs-rt", "rs-cost"],
    )
    simulate.add_argument(
        "--target",
        type=float,
        default=0.9,
        help="pool size (bp), rate factor (adapbp), or constraint level (rs-*)",
    )
    simulate.add_argument("--planning-interval", type=float, default=2.0)
    simulate.add_argument("--mc-samples", type=int, default=400)
    simulate.add_argument("--seed", type=int, default=7)
    simulate.add_argument(
        "--engine",
        choices=["reference", "batched"],
        default="reference",
        help="replay engine (identical results; 'batched' is faster on large traces)",
    )
    _add_store_flags(simulate)

    experiment = subparsers.add_parser(
        "experiment", help="run one of the paper-reproduction experiments"
    )
    experiment.add_argument("name", choices=sorted(_EXPERIMENTS))
    experiment.add_argument(
        "--scale", type=float, default=None, help="trace size factor where applicable"
    )
    experiment.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "evaluation processes for the runtime-backed experiments "
            f"({', '.join(sorted(_RUNTIME_EXPERIMENTS))}); default: the "
            "REPRO_WORKERS environment variable, else serial"
        ),
    )
    experiment.add_argument(
        "--engine",
        choices=["reference", "batched"],
        default=None,
        help=(
            "replay engine for the runtime-backed experiments "
            f"({', '.join(sorted(_RUNTIME_EXPERIMENTS))}); both engines "
            "produce identical rows, 'batched' is faster on large traces"
        ),
    )
    experiment.add_argument(
        "--run-id",
        default=None,
        help=(
            "journal per-task completions under this id so an interrupted "
            "run resumes where it left off (runtime-backed experiments, "
            "requires the store)"
        ),
    )
    _add_store_flags(experiment)

    workloads = subparsers.add_parser(
        "workloads", help="workload-scenario registry: list, generate, sweep"
    )
    workloads_sub = workloads.add_subparsers(dest="workloads_command", required=True)

    workloads_sub.add_parser("list", help="list the registered workload scenarios")

    generate = workloads_sub.add_parser(
        "generate", help="generate one scenario trace and print its summary"
    )
    generate.add_argument("--scenario", required=True, help="registered scenario name")
    generate.add_argument(
        "--seed", type=int, default=None, help="seed (default: scenario default)"
    )
    generate.add_argument("--scale", type=float, default=1.0, help="trace size factor")
    generate.add_argument(
        "--out", default=None, help="optional path to save the trace as CSV"
    )

    sweep = workloads_sub.add_parser(
        "sweep", help="run RobustScaler and the baselines across scenarios"
    )
    sweep.add_argument(
        "--scenario",
        action="append",
        default=None,
        help="restrict to this scenario (repeatable; default: whole registry)",
    )
    sweep.add_argument("--scale", type=float, default=0.1, help="trace size factor")
    sweep.add_argument("--seed", type=int, default=7)
    sweep.add_argument("--planning-interval", type=float, default=10.0)
    sweep.add_argument("--mc-samples", type=int, default=120)
    sweep.add_argument(
        "--hp-target",
        action="append",
        type=float,
        default=None,
        help="RobustScaler-HP target (repeatable; default: per-scenario grids)",
    )
    sweep.add_argument(
        "--summary-only",
        action="store_true",
        help="print only the per-scenario frontier summary",
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "evaluation processes; default: the REPRO_WORKERS environment "
            "variable, else serial"
        ),
    )
    sweep.add_argument(
        "--hp-only",
        action="store_true",
        help="sweep only the HP variant of RobustScaler (skip RT and cost)",
    )
    sweep.add_argument(
        "--engine",
        choices=["reference", "batched"],
        default=None,
        help="replay engine (identical results; 'batched' is faster on large traces)",
    )
    sweep.add_argument(
        "--run-id",
        default=None,
        help=(
            "journal per-task completions under this id so an interrupted "
            "sweep resumes where it left off (requires the store)"
        ),
    )
    _add_store_flags(sweep)

    store = subparsers.add_parser(
        "store", help="manage the persistent artifact store"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_info = store_sub.add_parser(
        "info", help="store location and per-namespace footprint"
    )
    store_ls = store_sub.add_parser("ls", help="list artifacts, oldest first")
    store_ls.add_argument(
        "--namespace",
        default=None,
        help="restrict to one namespace (workloads, traces, results)",
    )
    store_ls.add_argument(
        "--limit", type=int, default=50, help="maximum entries to list (default: 50)"
    )
    store_gc = store_sub.add_parser(
        "gc", help="evict artifacts beyond age/size bounds (oldest first)"
    )
    store_gc.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="evict oldest artifacts until the store fits in this many bytes",
    )
    store_gc.add_argument(
        "--max-age-days",
        type=float,
        default=None,
        help="evict artifacts older than this many days",
    )
    store_clear = store_sub.add_parser("clear", help="remove every artifact")
    for sub in (store_info, store_ls, store_gc, store_clear):
        sub.add_argument(
            "--store-dir",
            default=None,
            help=(
                "artifact-store directory (default: the "
                f"{STORE_DIR_ENV_VAR} environment variable, else "
                "~/.cache/repro/store)"
            ),
        )

    return parser


def _command_traces() -> int:
    rows = [
        {
            "name": spec.name,
            "train_fraction": spec.train_fraction,
            "pending_time": spec.pending_time,
            "description": spec.description,
        }
        for spec in list_traces()
    ]
    print(format_table(rows, title="Synthetic trace catalog"))
    return 0


def _build_scaler(args: argparse.Namespace, workload) -> object:
    planner = PlannerConfig(
        planning_interval=args.planning_interval, monte_carlo_samples=args.mc_samples
    )
    if args.scaler == "reactive":
        return ReactiveScaler()
    if args.scaler == "bp":
        return BackupPoolScaler(int(args.target))
    if args.scaler == "adapbp":
        return AdaptiveBackupPoolScaler(float(args.target))
    objective = {
        "rs-hp": RobustScalerObjective.HIT_PROBABILITY,
        "rs-rt": RobustScalerObjective.RESPONSE_TIME,
        "rs-cost": RobustScalerObjective.COST,
    }[args.scaler]
    return RobustScaler(
        workload.forecast,
        workload.pending_model,
        objective=objective,
        target=float(args.target),
        planner=planner,
        random_state=args.seed,
    )


def _command_simulate(args: argparse.Namespace) -> int:
    store = resolve_store(args.store_dir, enabled=not args.no_store)
    cache = WorkloadCache(store=store)
    try:
        scenario = get_scenario(args.trace)
        spec = WorkloadSpec(
            scenario=scenario.name,
            scale=args.scale,
            seed=args.seed,
            prep=PrepSpec(
                train_fraction=scenario.train_fraction,
                bin_seconds=scenario.bin_seconds,
                pending_time=scenario.pending_time,
                engine=args.engine,
            ),
        )
        # Preparation validates the seed/scale and may raise too, so it
        # belongs inside the clean-error envelope.
        workload, _ = cache.get_or_prepare(spec)
    except (WorkloadError, ValidationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    scaler = _build_scaler(args, workload)
    result = workload.replay(scaler)
    summary = summarize_result(result, reference_cost=workload.reference_cost)
    rows = [{"metric": key, "value": value} for key, value in summary.items()]
    print(format_table(rows, title=f"{scaler.name} on {workload.name}"))
    if store is not None:
        stats = cache.stats()
        print(
            f"[store] {stats.disk_hits} disk hits, {stats.misses} fits "
            f"({store.root})",
            file=sys.stderr,
        )
    return 0


def _command_workloads_list() -> int:
    rows = [
        {
            "name": scenario.name,
            "kind": scenario.kind,
            "horizon_hours": scenario.horizon_seconds / 3600.0,
            "bin_seconds": scenario.bin_seconds,
            "train_fraction": scenario.train_fraction,
            "pending_time": scenario.pending_time,
            "tags": ",".join(scenario.tags),
            "description": scenario.description,
        }
        for scenario in list_scenarios()
    ]
    print(format_table(rows, title="Workload scenario registry"))
    print(f"\n{len(rows)} scenarios registered")
    return 0


def _command_workloads_generate(args: argparse.Namespace) -> int:
    scenario = get_scenario(args.scenario)
    trace = scenario.build_trace(scale=args.scale, seed=args.seed)
    qps = trace.to_qps_series(scenario.bin_seconds)
    rows = [
        {"metric": "scenario", "value": scenario.name},
        {"metric": "seed", "value": scenario.resolve_seed(args.seed)},
        {"metric": "scale", "value": float(args.scale)},
        {"metric": "n_queries", "value": trace.n_queries},
        {"metric": "duration_hours", "value": trace.duration / 3600.0},
        {"metric": "mean_qps", "value": trace.mean_qps},
        {"metric": "peak_qps", "value": float(qps.qps.max())},
        {
            "metric": "mean_processing_seconds",
            "value": float(trace.processing_times.mean()) if trace.n_queries else 0.0,
        },
    ]
    print(format_table(rows, title=f"Generated trace: {scenario.name}"))
    if args.out:
        path = save_trace_csv(trace, args.out)
        print(f"\nsaved to {path}")
    return 0


def _command_workloads_sweep(args: argparse.Namespace) -> int:
    store = resolve_store(args.store_dir, enabled=not args.no_store)
    config = ScenarioSweepConfig(
        scenario_names=args.scenario,
        scale=args.scale,
        seed=args.seed,
        planning_interval=args.planning_interval,
        monte_carlo_samples=args.mc_samples,
        hp_targets=tuple(args.hp_target) if args.hp_target else None,
        include_rt_variant=not args.hp_only,
        include_cost_variant=not args.hp_only,
        workers=args.workers,
        engine=args.engine,
        store=store,
        run_id=args.run_id,
    )
    rows = run_scenario_sweep_experiment(config)
    if store is not None:
        print(_store_summary(store), file=sys.stderr)
    if not args.summary_only:
        columns = [
            "scenario",
            "scaler",
            "pool_size",
            "rate_factor",
            "target_hp",
            "n_queries",
            "hit_rate",
            "rt_avg",
            "relative_cost",
            "on_frontier",
            "note",
        ]
        print(format_table(rows, columns=columns, title="Scenario sweep"))
        print()
    summary = summarize_scenario_sweep(rows)
    print(format_table(summary, title="Per-scenario Pareto summary"))
    return 0


def _command_workloads(args: argparse.Namespace) -> int:
    try:
        if args.workloads_command == "list":
            return _command_workloads_list()
        if args.workloads_command == "generate":
            return _command_workloads_generate(args)
        if args.workloads_command == "sweep":
            return _command_workloads_sweep(args)
    except (WorkloadError, ValidationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 2  # pragma: no cover - subparser is required


def _command_experiment(args: argparse.Namespace) -> int:
    store = None
    try:
        if args.name in _RUNTIME_EXPERIMENTS:
            store = resolve_store(args.store_dir, enabled=not args.no_store)
            config_cls, runner = _RUNTIME_EXPERIMENTS[args.name]
            kwargs: dict = {
                "workers": args.workers,
                "engine": args.engine,
                "store": store,
                "run_id": args.run_id,
            }
            if args.scale is not None:
                kwargs["scale"] = args.scale
            rows = runner(config_cls(**kwargs))
        else:
            for flag, value in (
                ("--workers", args.workers),
                ("--engine", args.engine),
                ("--run-id", args.run_id),
                ("--store-dir", args.store_dir),
                ("--no-store", args.no_store or None),
            ):
                if value is not None:
                    print(
                        f"note: {flag} is ignored by experiment {args.name!r}",
                        file=sys.stderr,
                    )
            rows = _EXPERIMENTS[args.name]()
    except (ExperimentError, ValidationError, WorkloadError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_table(rows, title=f"Experiment: {args.name}"))
    if store is not None:
        print(_store_summary(store), file=sys.stderr)
    return 0


def _command_store(args: argparse.Namespace) -> int:
    store = resolve_store(args.store_dir)
    if args.store_command == "info":
        info = store.info()
        rows = [
            {"metric": "root", "value": info["root"]},
            {"metric": "schema_version", "value": info["schema_version"]},
            {"metric": "total_entries", "value": info["total_entries"]},
            {"metric": "total_bytes", "value": info["total_bytes"]},
        ]
        for namespace, footprint in sorted(info["namespaces"].items()):
            rows.append(
                {
                    "metric": f"{namespace}",
                    "value": f"{footprint['count']} entries, {footprint['bytes']} bytes",
                }
            )
        print(format_table(rows, title="Artifact store"))
        return 0
    if args.store_command == "ls":
        try:
            entries = store.entries(args.namespace)
        except ValidationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        rows = [
            {
                "namespace": entry.namespace,
                "digest": entry.digest,
                "size_bytes": entry.size_bytes,
                "age_hours": max(0.0, (time.time() - entry.mtime) / 3600.0),
            }
            for entry in entries[: max(args.limit, 0)]
        ]
        print(format_table(rows, title=f"Artifacts ({len(entries)} total)"))
        return 0
    if args.store_command == "gc":
        max_age = (
            None if args.max_age_days is None else args.max_age_days * 86_400.0
        )
        try:
            report = store.gc(max_bytes=args.max_bytes, max_age_seconds=max_age)
        except ValidationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(
            f"removed {report.removed} artifacts ({report.freed_bytes} bytes); "
            f"kept {report.kept} ({report.kept_bytes} bytes)"
        )
        return 0
    if args.store_command == "clear":
        removed = store.clear()
        print(f"removed {removed} artifacts from {store.root}")
        return 0
    return 2  # pragma: no cover - subparser is required


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "traces":
        return _command_traces()
    if args.command == "simulate":
        return _command_simulate(args)
    if args.command == "experiment":
        return _command_experiment(args)
    if args.command == "workloads":
        return _command_workloads(args)
    if args.command == "store":
        return _command_store(args)
    parser.error(f"unknown command {args.command!r}")
    return 2  # pragma: no cover - parser.error raises


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
