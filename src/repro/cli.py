"""Command-line interface for the RobustScaler reproduction.

Usage examples::

    repro traces                             # list the synthetic trace catalog
    repro simulate --trace google --scaler rs-hp --target 0.9
    repro experiment pareto                  # regenerate the Fig. 4 data
    repro experiment table3                  # periodicity-regularization study
    repro experiment scenario-sweep --workers 4   # parallel registry sweep
    repro experiment pareto --help           # registry-generated options
    repro workloads list                     # the scenario registry
    repro workloads generate --scenario flash-crowd --seed 7 --out fc.csv
    repro workloads sweep                    # autoscalers across every scenario
    repro store info                         # artifact-store footprint
    repro store ls --runs                    # journaled runs with completion
    repro store gc --max-bytes 500000000 --pin workloads/
    repro experiment pareto --telemetry --run-id r1   # collect a snapshot
    repro telemetry show r1                  # metrics + slowest spans
    repro telemetry diff r1 r2               # compare two runs

The ``experiment`` and ``workloads sweep`` subcommands are **generated from
the experiment registry** (:mod:`repro.api`): each experiment's options come
from its declared parameter schema plus the uniform session knobs
(``--workers`` / ``--engine`` / ``--run-id`` / store flags / ``--quiet``),
so adding an experiment never touches this module.  Execution routes
through :class:`repro.api.Session` — the same facade documented for
programmatic use — with the batched replay engine as the default
(``--engine reference`` is the escape hatch; both engines produce
bit-identical rows).

Persistence: ``simulate``, ``experiment`` and ``workloads sweep`` use the
disk artifact store of :mod:`repro.store` by default, so repeated
invocations reuse model fits and generated traces instead of recomputing
them.  ``--store-dir`` (or the ``REPRO_STORE_DIR`` environment variable)
relocates it, ``--no-store`` disables it, ``--run-id`` journals per-task
completions so an interrupted sweep resumes where it left off, and the
``store`` command group (``info`` / ``ls`` / ``gc`` / ``clear``) manages
the store's footprint.  Long runs print a live ``N/M tasks, ~Xs left``
progress line on stderr; ``--quiet`` suppresses it together with every
other stderr status line (the ``[store]`` summaries included) through the
shared :class:`repro.telemetry.Console` emitter.

Observability: ``--telemetry`` on any runtime-backed command collects
metrics and spans (:mod:`repro.telemetry`); with ``--run-id`` the snapshot
persists in the store's ``telemetry`` namespace, where ``repro telemetry
show <run-id>`` and ``repro telemetry diff <a> <b>`` read it back.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from .analysis.runner import add_lint_parser, run_lint
from .api import Session, get_experiment, list_experiments
from .api.cligen import (
    add_param_arguments,
    add_session_arguments,
    collect_params,
    collect_session_kwargs,
)
from .telemetry import (
    Console,
    diff_snapshots,
    gc_orphan_snapshots,
    load_snapshot,
    span_rows,
    summarize_snapshot,
)
from .exceptions import (
    ConfigurationError,
    ExperimentError,
    ValidationError,
    WorkloadError,
)
from .experiments import summarize_scenario_sweep
from .metrics.report import format_table, summarize_result
from .runtime import PrepSpec, WorkloadCache, WorkloadSpec
from .scaling import (
    AdaptiveBackupPoolScaler,
    BackupPoolScaler,
    ReactiveScaler,
    RobustScaler,
    RobustScalerObjective,
)
from .config import PlannerConfig
from .simulation.runner import resolve_engine
from .store import STORE_DIR_ENV_VAR, list_runs, resolve_store
from .traces import list_traces
from .workloads import get_scenario, list_scenarios

__all__ = ["main", "build_parser"]

#: Presentation-only flags the workloads sweep adds on top of the generated
#: schema options (whitelisted by the registry-generation audit).
SWEEP_EXTRA_FLAGS = frozenset({"--summary-only", "--hp-only"})


def _add_store_dir_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store-dir",
        default=None,
        help=(
            "artifact-store directory (default: the "
            f"{STORE_DIR_ENV_VAR} environment variable, else ~/.cache/repro/store)"
        ),
    )


def _store_summary(store) -> str:
    """One-line report of what the store did for this invocation.

    Counters are per-handle: with ``--workers N`` the pool workers' own
    reads/writes happen in their processes and are not included here.
    """
    stats = store.stats()
    return (
        f"[store] {stats.hits} artifact reads, {stats.writes} writes "
        f"in this process ({store.root})"
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser (experiment options come from the registry)."""
    parser = argparse.ArgumentParser(
        prog="robustscaler",
        description="Reproduction of RobustScaler (ICDE 2022): QoS-aware autoscaling",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("traces", help="list the synthetic trace catalog")

    simulate = subparsers.add_parser(
        "simulate", help="replay one trace with one autoscaler and print metrics"
    )
    simulate.add_argument(
        "--trace",
        default="crs",
        help="any registered scenario name (see 'workloads list'); default: crs",
    )
    simulate.add_argument("--scale", type=float, default=0.25, help="trace size factor")
    simulate.add_argument(
        "--scaler",
        default="rs-hp",
        choices=["reactive", "bp", "adapbp", "rs-hp", "rs-rt", "rs-cost"],
    )
    simulate.add_argument(
        "--target",
        type=float,
        default=0.9,
        help="pool size (bp), rate factor (adapbp), or constraint level (rs-*)",
    )
    simulate.add_argument("--planning-interval", type=float, default=2.0)
    simulate.add_argument("--mc-samples", type=int, default=400)
    simulate.add_argument("--seed", type=int, default=7)
    simulate.add_argument(
        "--engine",
        choices=["reference", "batched", "kernel"],
        default=None,
        help=(
            "replay engine (default: batched; identical results, 'reference' "
            "is the per-query event loop, 'kernel' adds the vectorized "
            "per-arrival tier for BP/AdapBP)"
        ),
    )
    _add_store_dir_flag(simulate)
    simulate.add_argument(
        "--no-store",
        action="store_true",
        help="disable the disk artifact store for this invocation",
    )
    simulate.add_argument(
        "--quiet",
        action="store_true",
        help="suppress stderr status lines (the [store] summary)",
    )

    experiment = subparsers.add_parser(
        "experiment",
        help="run a registered experiment (options generated from its schema)",
    )
    experiment_sub = experiment.add_subparsers(dest="name", required=True)
    for spec in list_experiments():
        title = f"{spec.artifact}: {spec.title}" if spec.artifact else spec.title
        sub = experiment_sub.add_parser(
            spec.name,
            help=title,
            description=title,
            epilog="result columns: " + ", ".join(spec.result_columns),
        )
        add_param_arguments(sub, spec)
        add_session_arguments(sub, spec, store_env_var=STORE_DIR_ENV_VAR)

    workloads = subparsers.add_parser(
        "workloads", help="workload-scenario registry: list, generate, sweep"
    )
    workloads_sub = workloads.add_subparsers(dest="workloads_command", required=True)

    workloads_sub.add_parser("list", help="list the registered workload scenarios")

    generate = workloads_sub.add_parser(
        "generate", help="generate one scenario trace and print its summary"
    )
    generate.add_argument("--scenario", required=True, help="registered scenario name")
    generate.add_argument(
        "--seed", type=int, default=None, help="seed (default: scenario default)"
    )
    generate.add_argument("--scale", type=float, default=1.0, help="trace size factor")
    generate.add_argument(
        "--out", default=None, help="optional path to save the trace as CSV"
    )

    sweep = workloads_sub.add_parser(
        "sweep",
        help=(
            "run RobustScaler and the baselines across scenarios "
            "(the 'scenario-sweep' experiment with a frontier summary)"
        ),
    )
    sweep_spec = get_experiment("scenario-sweep")
    add_param_arguments(sweep, sweep_spec)
    add_session_arguments(sweep, sweep_spec, store_env_var=STORE_DIR_ENV_VAR)
    sweep.add_argument(
        "--summary-only",
        action="store_true",
        help="print only the per-scenario frontier summary",
    )
    sweep.add_argument(
        "--hp-only",
        action="store_true",
        help="sweep only the HP variant of RobustScaler (skip RT and cost)",
    )

    store = subparsers.add_parser(
        "store", help="manage the persistent artifact store"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_info = store_sub.add_parser(
        "info", help="store location and per-namespace footprint"
    )
    store_ls = store_sub.add_parser("ls", help="list artifacts, oldest first")
    store_ls.add_argument(
        "--namespace",
        default=None,
        help="restrict to one namespace (workloads, traces, results, telemetry)",
    )
    store_ls.add_argument(
        "--limit", type=int, default=50, help="maximum entries to list (default: 50)"
    )
    store_ls.add_argument(
        "--runs",
        action="store_true",
        help=(
            "list journaled runs instead of raw artifacts: one row per "
            "run id with its completion count"
        ),
    )
    store_gc = store_sub.add_parser(
        "gc", help="evict artifacts beyond age/size bounds (oldest first)"
    )
    store_gc.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="evict oldest artifacts until the store fits in this many bytes",
    )
    store_gc.add_argument(
        "--max-age-days",
        type=float,
        default=None,
        help="evict artifacts older than this many days",
    )
    store_gc.add_argument(
        "--pin",
        action="append",
        default=None,
        metavar="KEY_PREFIX",
        help=(
            "key-digest prefix (bare, or namespace/-qualified like "
            "'workloads/') whose artifacts survive eviction; repeatable"
        ),
    )
    store_clear = store_sub.add_parser("clear", help="remove every artifact")
    for sub in (store_info, store_ls, store_gc, store_clear):
        _add_store_dir_flag(sub)

    telemetry = subparsers.add_parser(
        "telemetry",
        help="inspect per-run telemetry snapshots (collected with --telemetry)",
    )
    telemetry_sub = telemetry.add_subparsers(dest="telemetry_command", required=True)
    telemetry_show = telemetry_sub.add_parser(
        "show", help="metrics and slowest spans of one run's snapshot"
    )
    telemetry_show.add_argument("run_id", help="run id the snapshot was persisted under")
    telemetry_show.add_argument(
        "--spans",
        type=int,
        default=15,
        help="how many of the slowest spans to list (default: 15)",
    )
    telemetry_diff = telemetry_sub.add_parser(
        "diff", help="compare the metrics of two runs' snapshots"
    )
    telemetry_diff.add_argument("run_a", help="baseline run id")
    telemetry_diff.add_argument("run_b", help="comparison run id")
    for sub in (telemetry_show, telemetry_diff):
        _add_store_dir_flag(sub)

    add_lint_parser(subparsers)

    return parser


def _command_traces() -> int:
    rows = [
        {
            "name": spec.name,
            "train_fraction": spec.train_fraction,
            "pending_time": spec.pending_time,
            "description": spec.description,
        }
        for spec in list_traces()
    ]
    print(format_table(rows, title="Synthetic trace catalog"))
    return 0


def _build_scaler(args: argparse.Namespace, workload) -> object:
    planner = PlannerConfig(
        planning_interval=args.planning_interval, monte_carlo_samples=args.mc_samples
    )
    if args.scaler == "reactive":
        return ReactiveScaler()
    if args.scaler == "bp":
        return BackupPoolScaler(int(args.target))
    if args.scaler == "adapbp":
        return AdaptiveBackupPoolScaler(float(args.target))
    objective = {
        "rs-hp": RobustScalerObjective.HIT_PROBABILITY,
        "rs-rt": RobustScalerObjective.RESPONSE_TIME,
        "rs-cost": RobustScalerObjective.COST,
    }[args.scaler]
    return RobustScaler(
        workload.forecast,
        workload.pending_model,
        objective=objective,
        target=float(args.target),
        planner=planner,
        random_state=args.seed,
    )


def _command_simulate(args: argparse.Namespace) -> int:
    store = resolve_store(args.store_dir, enabled=not args.no_store)
    cache = WorkloadCache(store=store)
    try:
        scenario = get_scenario(args.trace)
        spec = WorkloadSpec(
            scenario=scenario.name,
            scale=args.scale,
            seed=args.seed,
            prep=PrepSpec(
                train_fraction=scenario.train_fraction,
                bin_seconds=scenario.bin_seconds,
                pending_time=scenario.pending_time,
                engine=resolve_engine(args.engine),
            ),
        )
        # Preparation validates the seed/scale and may raise too, so it
        # belongs inside the clean-error envelope.
        workload, _ = cache.get_or_prepare(spec)
    except (WorkloadError, ValidationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    scaler = _build_scaler(args, workload)
    result = workload.replay(scaler)
    summary = summarize_result(result, reference_cost=workload.reference_cost)
    rows = [{"metric": key, "value": value} for key, value in summary.items()]
    print(format_table(rows, title=f"{scaler.name} on {workload.name}"))
    if store is not None:
        stats = cache.stats()
        console = Console(quiet=args.quiet)
        console.emit(
            f"[store] {stats.disk_hits} disk hits, {stats.misses} fits "
            f"({store.root})"
        )
    return 0


def _command_workloads_list() -> int:
    rows = [
        {
            "name": scenario.name,
            "kind": scenario.kind,
            "horizon_hours": scenario.horizon_seconds / 3600.0,
            "bin_seconds": scenario.bin_seconds,
            "train_fraction": scenario.train_fraction,
            "pending_time": scenario.pending_time,
            "tags": ",".join(scenario.tags),
            "description": scenario.description,
        }
        for scenario in list_scenarios()
    ]
    print(format_table(rows, title="Workload scenario registry"))
    print(f"\n{len(rows)} scenarios registered")
    return 0


def _command_workloads_generate(args: argparse.Namespace) -> int:
    from .traces.io import save_trace_csv

    scenario = get_scenario(args.scenario)
    trace = scenario.build_trace(scale=args.scale, seed=args.seed)
    qps = trace.to_qps_series(scenario.bin_seconds)
    rows = [
        {"metric": "scenario", "value": scenario.name},
        {"metric": "seed", "value": scenario.resolve_seed(args.seed)},
        {"metric": "scale", "value": float(args.scale)},
        {"metric": "n_queries", "value": trace.n_queries},
        {"metric": "duration_hours", "value": trace.duration / 3600.0},
        {"metric": "mean_qps", "value": trace.mean_qps},
        {"metric": "peak_qps", "value": float(qps.qps.max())},
        {
            "metric": "mean_processing_seconds",
            "value": float(trace.processing_times.mean()) if trace.n_queries else 0.0,
        },
    ]
    print(format_table(rows, title=f"Generated trace: {scenario.name}"))
    if args.out:
        path = save_trace_csv(trace, args.out)
        print(f"\nsaved to {path}")
    return 0


def _run_registry_experiment(args: argparse.Namespace, name: str):
    """Shared execution path of ``experiment`` and ``workloads sweep``.

    Returns ``(result, store, console)`` where ``result`` is the Session's
    ResultSet and ``console`` is the invocation's status emitter (quiet
    suppresses both the progress line and the ``[store]`` summaries there).
    """
    spec = get_experiment(name)
    params = collect_params(args, spec)
    session_kwargs = collect_session_kwargs(args, spec)
    console = Console(quiet=bool(getattr(args, "quiet", False)))
    store = None
    progress = None
    if spec.runtime:
        store = resolve_store(args.store_dir, enabled=not args.no_store)
        progress = console.progress()
    session = Session(
        store=store,
        workers=session_kwargs.get("workers"),
        engine=session_kwargs.get("engine"),
        run_id=session_kwargs.get("run_id"),
        progress=progress,
        telemetry=session_kwargs.get("telemetry", False),
    )
    return session.experiment(name).run(**params), store, console


def _command_experiment(args: argparse.Namespace) -> int:
    try:
        result, store, console = _run_registry_experiment(args, args.name)
    except (ExperimentError, ValidationError, WorkloadError, ConfigurationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_table(result.rows, title=f"Experiment: {args.name}"))
    if store is not None:
        console.emit(_store_summary(store))
    return 0


def _command_workloads_sweep(args: argparse.Namespace) -> int:
    if args.hp_only:
        args.rt_variant = False
        args.cost_variant = False
    result, store, console = _run_registry_experiment(args, "scenario-sweep")
    rows = result.rows
    if store is not None:
        console.emit(_store_summary(store))
    if not args.summary_only:
        columns = [
            "scenario",
            "scaler",
            "pool_size",
            "rate_factor",
            "target_hp",
            "n_queries",
            "hit_rate",
            "rt_avg",
            "relative_cost",
            "on_frontier",
            "note",
        ]
        print(format_table(rows, columns=columns, title="Scenario sweep"))
        print()
    summary = summarize_scenario_sweep(rows)
    print(format_table(summary, title="Per-scenario Pareto summary"))
    return 0


def _command_workloads(args: argparse.Namespace) -> int:
    try:
        if args.workloads_command == "list":
            return _command_workloads_list()
        if args.workloads_command == "generate":
            return _command_workloads_generate(args)
        if args.workloads_command == "sweep":
            return _command_workloads_sweep(args)
    except (ExperimentError, WorkloadError, ValidationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 2  # pragma: no cover - subparser is required


def _command_store_ls_runs(store, args: argparse.Namespace) -> int:
    if args.namespace is not None:
        print(
            "note: --namespace is ignored with --runs (the run index lives "
            "in 'results')",
            file=sys.stderr,
        )
    runs = list_runs(store)
    now = time.time()
    rows = [
        {
            "run_id": run["run_id"],
            "base_seed": run["base_seed"],
            "completed": run["completed"],
            "total": "?" if run["total"] is None else run["total"],
            "age_hours": max(0.0, (now - run["updated_at"]) / 3600.0),
        }
        for run in runs[: max(args.limit, 0)]
    ]
    print(format_table(rows, title=f"Journaled runs ({len(runs)} total)"))
    return 0


def _command_store(args: argparse.Namespace) -> int:
    store = resolve_store(args.store_dir)
    if args.store_command == "info":
        info = store.info()
        rows = [
            {"metric": "root", "value": info["root"]},
            {"metric": "schema_version", "value": info["schema_version"]},
            {"metric": "total_entries", "value": info["total_entries"]},
            {"metric": "total_bytes", "value": info["total_bytes"]},
        ]
        for namespace, footprint in sorted(info["namespaces"].items()):
            rows.append(
                {
                    "metric": f"{namespace}",
                    "value": f"{footprint['count']} entries, {footprint['bytes']} bytes",
                }
            )
        print(format_table(rows, title="Artifact store"))
        return 0
    if args.store_command == "ls":
        if args.runs:
            return _command_store_ls_runs(store, args)
        try:
            entries = store.entries(args.namespace)
        except ValidationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        rows = [
            {
                "namespace": entry.namespace,
                "digest": entry.digest,
                "size_bytes": entry.size_bytes,
                "age_hours": max(0.0, (time.time() - entry.mtime) / 3600.0),
            }
            for entry in entries[: max(args.limit, 0)]
        ]
        print(format_table(rows, title=f"Artifacts ({len(entries)} total)"))
        return 0
    if args.store_command == "gc":
        max_age = (
            None if args.max_age_days is None else args.max_age_days * 86_400.0
        )
        # Telemetry snapshots are addressed by run id; once the run journal
        # is gone they are unreachable, so reap them before the generic
        # age/size eviction.
        orphans, orphan_bytes = gc_orphan_snapshots(store)
        try:
            report = store.gc(
                max_bytes=args.max_bytes,
                max_age_seconds=max_age,
                pins=tuple(args.pin or ()),
            )
        except ValidationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        pinned = f", {report.pinned} pinned" if report.pinned else ""
        print(
            f"removed {report.removed} artifacts ({report.freed_bytes} bytes); "
            f"kept {report.kept} ({report.kept_bytes} bytes{pinned})"
        )
        if orphans:
            print(
                f"reaped {orphans} orphaned telemetry snapshots "
                f"({orphan_bytes} bytes)"
            )
        return 0
    if args.store_command == "clear":
        removed = store.clear()
        print(f"removed {removed} artifacts from {store.root}")
        return 0
    return 2  # pragma: no cover - subparser is required


def _command_telemetry(args: argparse.Namespace) -> int:
    store = resolve_store(args.store_dir)
    if args.telemetry_command == "show":
        snapshot = load_snapshot(store, args.run_id)
        if snapshot is None:
            print(
                f"error: no telemetry snapshot for run {args.run_id!r} in "
                f"{store.root} (run with --telemetry and --run-id to record one)",
                file=sys.stderr,
            )
            return 2
        provenance = snapshot.get("provenance") or {}
        header = [
            {"field": key, "value": value}
            for key, value in provenance.items()
            if value is not None
        ]
        if header:
            print(format_table(header, title=f"Run {args.run_id}: provenance"))
            print()
        print(
            format_table(
                summarize_snapshot(snapshot), title=f"Run {args.run_id}: metrics"
            )
        )
        spans = span_rows(snapshot, limit=max(args.spans, 0))
        if spans:
            print()
            print(
                format_table(
                    spans, title=f"Run {args.run_id}: slowest spans"
                )
            )
        return 0
    if args.telemetry_command == "diff":
        snapshots = {}
        for run_id in (args.run_a, args.run_b):
            snapshot = load_snapshot(store, run_id)
            if snapshot is None:
                print(
                    f"error: no telemetry snapshot for run {run_id!r} in "
                    f"{store.root}",
                    file=sys.stderr,
                )
                return 2
            snapshots[run_id] = snapshot
        rows = diff_snapshots(snapshots[args.run_a], snapshots[args.run_b])
        print(
            format_table(
                rows, title=f"Telemetry diff: {args.run_a} vs {args.run_b}"
            )
        )
        return 0
    return 2  # pragma: no cover - subparser is required


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "traces":
        return _command_traces()
    if args.command == "simulate":
        return _command_simulate(args)
    if args.command == "experiment":
        return _command_experiment(args)
    if args.command == "workloads":
        return _command_workloads(args)
    if args.command == "store":
        return _command_store(args)
    if args.command == "telemetry":
        return _command_telemetry(args)
    if args.command == "lint":
        return run_lint(args)
    parser.error(f"unknown command {args.command!r}")
    return 2  # pragma: no cover - parser.error raises


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
