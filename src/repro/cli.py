"""Command-line interface for the RobustScaler reproduction.

Usage examples::

    robustscaler traces                      # list the synthetic trace catalog
    robustscaler simulate --trace google --scaler rs-hp --target 0.9
    robustscaler experiment pareto           # regenerate the Fig. 4 data
    robustscaler experiment table3           # periodicity-regularization study

The CLI is a thin wrapper over :mod:`repro.experiments`; every subcommand
prints a plain-text table that mirrors one of the paper's artifacts.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from .config import PlannerConfig, SimulationConfig
from .experiments import (
    run_control_accuracy_experiment,
    run_mc_accuracy_experiment,
    run_pareto_experiment,
    run_perturbation_experiment,
    run_planning_frequency_experiment,
    run_realenv_experiment,
    run_regularization_experiment,
    run_robustness_experiment,
    run_scalability_experiment,
    run_traces_overview,
    run_variance_experiment,
)
from .experiments.pareto import ParetoExperimentConfig
from .metrics.report import format_table, summarize_result
from .pending import DeterministicPendingTime
from .scaling import (
    AdaptiveBackupPoolScaler,
    BackupPoolScaler,
    ReactiveScaler,
    RobustScaler,
    RobustScalerObjective,
)
from .simulation import replay
from .traces import get_trace, list_traces
from .experiments.base import prepare_workload, trace_defaults, make_trace

__all__ = ["main", "build_parser"]

_EXPERIMENTS: dict[str, Callable[[], list[dict]]] = {
    "traces": run_traces_overview,
    "pareto": run_pareto_experiment,
    "variance": run_variance_experiment,
    "perturbation": run_perturbation_experiment,
    "scalability": run_scalability_experiment,
    "table1": run_mc_accuracy_experiment,
    "robustness": run_robustness_experiment,
    "control": run_control_accuracy_experiment,
    "planning-frequency": run_planning_frequency_experiment,
    "table3": run_regularization_experiment,
    "table4": run_realenv_experiment,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="robustscaler",
        description="Reproduction of RobustScaler (ICDE 2022): QoS-aware autoscaling",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("traces", help="list the synthetic trace catalog")

    simulate = subparsers.add_parser(
        "simulate", help="replay one trace with one autoscaler and print metrics"
    )
    simulate.add_argument("--trace", default="crs", choices=["crs", "google", "alibaba"])
    simulate.add_argument("--scale", type=float, default=0.25, help="trace size factor")
    simulate.add_argument(
        "--scaler",
        default="rs-hp",
        choices=["reactive", "bp", "adapbp", "rs-hp", "rs-rt", "rs-cost"],
    )
    simulate.add_argument(
        "--target",
        type=float,
        default=0.9,
        help="pool size (bp), rate factor (adapbp), or constraint level (rs-*)",
    )
    simulate.add_argument("--planning-interval", type=float, default=2.0)
    simulate.add_argument("--mc-samples", type=int, default=400)
    simulate.add_argument("--seed", type=int, default=7)

    experiment = subparsers.add_parser(
        "experiment", help="run one of the paper-reproduction experiments"
    )
    experiment.add_argument("name", choices=sorted(_EXPERIMENTS))
    experiment.add_argument(
        "--scale", type=float, default=None, help="trace size factor where applicable"
    )

    return parser


def _command_traces() -> int:
    rows = [
        {
            "name": spec.name,
            "train_fraction": spec.train_fraction,
            "pending_time": spec.pending_time,
            "description": spec.description,
        }
        for spec in list_traces()
    ]
    print(format_table(rows, title="Synthetic trace catalog"))
    return 0


def _build_scaler(args: argparse.Namespace, workload) -> object:
    planner = PlannerConfig(
        planning_interval=args.planning_interval, monte_carlo_samples=args.mc_samples
    )
    if args.scaler == "reactive":
        return ReactiveScaler()
    if args.scaler == "bp":
        return BackupPoolScaler(int(args.target))
    if args.scaler == "adapbp":
        return AdaptiveBackupPoolScaler(float(args.target))
    objective = {
        "rs-hp": RobustScalerObjective.HIT_PROBABILITY,
        "rs-rt": RobustScalerObjective.RESPONSE_TIME,
        "rs-cost": RobustScalerObjective.COST,
    }[args.scaler]
    return RobustScaler(
        workload.forecast,
        workload.pending_model,
        objective=objective,
        target=float(args.target),
        planner=planner,
        random_state=args.seed,
    )


def _command_simulate(args: argparse.Namespace) -> int:
    defaults = trace_defaults(args.trace)
    trace = make_trace(args.trace, scale=args.scale, seed=args.seed)
    workload = prepare_workload(
        trace,
        train_fraction=defaults["train_fraction"],
        bin_seconds=defaults["bin_seconds"],
    )
    scaler = _build_scaler(args, workload)
    result = workload.replay(scaler)
    summary = summarize_result(result, reference_cost=workload.reference_cost)
    rows = [{"metric": key, "value": value} for key, value in summary.items()]
    print(format_table(rows, title=f"{scaler.name} on {trace.name}"))
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    runner = _EXPERIMENTS[args.name]
    if args.scale is not None and args.name == "pareto":
        rows = run_pareto_experiment(ParetoExperimentConfig(scale=args.scale))
    else:
        rows = runner()
    print(format_table(rows, title=f"Experiment: {args.name}"))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "traces":
        return _command_traces()
    if args.command == "simulate":
        return _command_simulate(args)
    if args.command == "experiment":
        return _command_experiment(args)
    parser.error(f"unknown command {args.command!r}")
    return 2  # pragma: no cover - parser.error raises


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
