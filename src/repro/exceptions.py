"""Exception hierarchy for the RobustScaler reproduction.

All library-specific errors derive from :class:`RobustScalerError` so callers
can catch one base class.  Specific subclasses indicate which subsystem
rejected the input or failed, which keeps error handling in the experiment
harness and CLI explicit.
"""

from __future__ import annotations


class RobustScalerError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(RobustScalerError):
    """Raised when a configuration object contains invalid values."""


class ValidationError(RobustScalerError):
    """Raised when input data fails validation (shape, dtype, range)."""


class TraceError(RobustScalerError):
    """Raised for malformed or inconsistent workload traces."""


class TraceFormatError(TraceError):
    """Raised when a trace file cannot be parsed."""


class PeriodicityDetectionError(RobustScalerError):
    """Raised when periodicity detection cannot run on the given series."""


class ModelNotFittedError(RobustScalerError):
    """Raised when a model is queried before :meth:`fit` has been called."""


class ConvergenceError(RobustScalerError):
    """Raised when an iterative solver fails to converge within its budget."""


class InfeasibleConstraintError(RobustScalerError):
    """Raised when a QoS/cost constraint cannot be met by any decision.

    The HP-constrained formulation (eq. 2 in the paper) becomes infeasible
    when the requested hitting probability cannot be reached even by creating
    the instance immediately, because the pending time alone exceeds the
    available slack.  Callers may catch this and clamp the decision to "create
    now" (x = 0), which is what the sequential scaler does.
    """


class SimulationError(RobustScalerError):
    """Raised for inconsistent states inside the scaling-per-query simulator."""


class PlanningError(RobustScalerError):
    """Raised when an autoscaler produces an invalid scaling plan."""


class ExperimentError(RobustScalerError):
    """Raised when an experiment driver is given inconsistent parameters."""


class WorkloadError(RobustScalerError):
    """Raised by the workload-scenario subsystem (unknown scenario, bad spec)."""
