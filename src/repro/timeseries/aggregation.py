"""Time aggregation utilities.

The periodicity detector first aggregates the raw QPS series into coarser
bins so that low-traffic noise does not drown out cyclic structure
(Section IV of the paper).  These helpers implement that aggregation plus a
couple of smoothing primitives used elsewhere in the library.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_1d_float_array, check_integer
from ..exceptions import ValidationError

__all__ = ["aggregate_counts", "moving_average", "rolling_sum"]


def aggregate_counts(counts: np.ndarray, factor: int, *, how: str = "sum") -> np.ndarray:
    """Merge every ``factor`` consecutive bins of a count series.

    Parameters
    ----------
    counts:
        One-dimensional array of per-bin counts.
    factor:
        Number of consecutive bins to merge; trailing bins that do not fill a
        complete group are dropped.
    how:
        ``"sum"`` (default) or ``"mean"``.

    Returns
    -------
    numpy.ndarray
        The aggregated series of length ``len(counts) // factor``.
    """
    counts = as_1d_float_array(counts, "counts")
    factor = check_integer(factor, "factor", minimum=1)
    if how not in ("sum", "mean"):
        raise ValidationError(f"how must be 'sum' or 'mean', got {how!r}")
    n_full = (counts.size // factor) * factor
    if n_full == 0:
        raise ValidationError(
            f"series of length {counts.size} is too short to aggregate by {factor}"
        )
    grouped = counts[:n_full].reshape(-1, factor)
    if how == "sum":
        return grouped.sum(axis=1)
    return grouped.mean(axis=1)


def moving_average(values: np.ndarray, window: int) -> np.ndarray:
    """Centered moving average with edge shrinkage.

    The window shrinks near the boundaries so the output has the same length
    as the input and no NaN padding is needed.
    """
    values = as_1d_float_array(values, "values")
    window = check_integer(window, "window", minimum=1)
    if window == 1 or values.size == 0:
        return values.copy()
    half = window // 2
    padded = np.concatenate([np.full(half, np.nan), values, np.full(half, np.nan)])
    out = np.empty_like(values)
    for i in range(values.size):
        segment = padded[i : i + 2 * half + 1]
        out[i] = np.nanmean(segment)
    return out


def rolling_sum(values: np.ndarray, window: int) -> np.ndarray:
    """Trailing rolling sum; the first ``window - 1`` entries sum what is available."""
    values = as_1d_float_array(values, "values")
    window = check_integer(window, "window", minimum=1)
    if values.size == 0:
        return values.copy()
    cumulative = np.concatenate([[0.0], np.cumsum(values)])
    out = np.empty_like(values)
    for i in range(values.size):
        start = max(0, i + 1 - window)
        out[i] = cumulative[i + 1] - cumulative[start]
    return out
