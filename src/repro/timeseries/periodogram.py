"""Periodogram estimation and dominant-frequency extraction.

The first stage of the robust periodicity detector computes a periodogram of
the (aggregated, detrended, outlier-clipped) QPS series and keeps frequencies
whose power stands well above the median power as period candidates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_1d_float_array, check_integer, check_positive
from ..exceptions import ValidationError

__all__ = ["periodogram", "dominant_frequencies", "FrequencyCandidate"]


@dataclass(frozen=True)
class FrequencyCandidate:
    """A candidate periodic component extracted from the periodogram.

    Attributes
    ----------
    frequency:
        Frequency in cycles per bin.
    period:
        Corresponding period in bins (``1 / frequency`` rounded to an int).
    power:
        Periodogram power at this frequency.
    score:
        Power expressed as a multiple of the median periodogram power.
    """

    frequency: float
    period: int
    power: float
    score: float


def periodogram(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(frequencies, power)`` of the standard periodogram.

    Frequencies are in cycles per bin and exclude the zero frequency (the
    mean is removed before the transform).
    """
    values = as_1d_float_array(values, "values")
    n = values.size
    if n < 4:
        raise ValidationError("periodogram requires at least 4 observations")
    centered = values - values.mean()
    spectrum = np.fft.rfft(centered)
    power = (np.abs(spectrum) ** 2) / n
    freqs = np.fft.rfftfreq(n, d=1.0)
    # Drop the zero frequency; it only carries the (removed) mean.
    return freqs[1:], power[1:]


def dominant_frequencies(
    values: np.ndarray,
    *,
    power_threshold: float = 4.0,
    max_candidates: int = 10,
    min_period: int = 2,
    max_period: int | None = None,
) -> list[FrequencyCandidate]:
    """Extract dominant frequencies from the periodogram of ``values``.

    Parameters
    ----------
    values:
        The (detrended) series to analyse.
    power_threshold:
        A frequency qualifies only if its power exceeds ``power_threshold``
        times the median periodogram power.
    max_candidates:
        Return at most this many candidates, strongest first.
    min_period, max_period:
        Period bounds in bins; candidates outside the bounds are discarded.

    Returns
    -------
    list[FrequencyCandidate]
        Candidates sorted by decreasing power.
    """
    check_positive(power_threshold, "power_threshold")
    check_integer(max_candidates, "max_candidates", minimum=1)
    check_integer(min_period, "min_period", minimum=2)
    freqs, power = periodogram(values)
    if max_period is None:
        max_period = len(np.asarray(values))
    median_power = float(np.median(power))
    if median_power <= 0:
        median_power = float(np.mean(power)) or 1.0
    candidates: list[FrequencyCandidate] = []
    order = np.argsort(power)[::-1]
    for idx in order:
        if len(candidates) >= max_candidates:
            break
        score = power[idx] / median_power
        if score < power_threshold:
            break
        freq = freqs[idx]
        if freq <= 0:
            continue
        period = int(round(1.0 / freq))
        if period < min_period or period > max_period:
            continue
        candidates.append(
            FrequencyCandidate(
                frequency=float(freq),
                period=period,
                power=float(power[idx]),
                score=float(score),
            )
        )
    return candidates
