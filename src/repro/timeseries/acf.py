"""Autocovariance and autocorrelation estimators.

The robust periodicity detector validates periodogram candidates by checking
the sample autocorrelation at the candidate lag, following the two-stage
design of RobustPeriod (periodogram proposes, ACF confirms).
"""

from __future__ import annotations

import numpy as np

from .._validation import as_1d_float_array, check_integer
from ..exceptions import ValidationError

__all__ = ["autocovariance", "autocorrelation"]


def autocovariance(values: np.ndarray, max_lag: int | None = None) -> np.ndarray:
    """Biased sample autocovariance for lags ``0 .. max_lag``.

    The biased (divide by ``n``) estimator is used because it guarantees a
    positive semi-definite autocovariance sequence, which keeps downstream
    peak detection well behaved.
    """
    values = as_1d_float_array(values, "values")
    n = values.size
    if n < 2:
        raise ValidationError("autocovariance requires at least two observations")
    if max_lag is None:
        max_lag = n - 1
    max_lag = check_integer(max_lag, "max_lag", minimum=0)
    max_lag = min(max_lag, n - 1)
    centered = values - values.mean()
    # FFT-based full autocovariance: O(n log n) instead of O(n * max_lag).
    n_fft = int(2 ** np.ceil(np.log2(2 * n - 1)))
    spectrum = np.fft.rfft(centered, n_fft)
    acov_full = np.fft.irfft(spectrum * np.conj(spectrum), n_fft)[: max_lag + 1]
    return acov_full / n


def autocorrelation(values: np.ndarray, max_lag: int | None = None) -> np.ndarray:
    """Sample autocorrelation for lags ``0 .. max_lag`` (lag 0 is 1 by definition).

    A constant series has zero variance; by convention its autocorrelation is
    returned as zero for all positive lags.
    """
    acov = autocovariance(values, max_lag)
    variance = acov[0]
    if variance <= 0:
        out = np.zeros_like(acov)
        out[0] = 1.0
        return out
    return acov / variance
