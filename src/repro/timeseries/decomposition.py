"""Robust seasonal-trend decomposition (a RobustSTL-style substitute).

The paper leverages robust decomposition (RobustSTL / Fast RobustSTL) to cope
with noise, missing data and anomalies when extracting periodic patterns.
Neither implementation is available offline, so this module provides a
self-contained robust decomposition with the same structure:

1. a robust trend estimate via running medians,
2. a seasonal component estimated by robustly averaging (median) each phase
   of the detrended series over all observed cycles,
3. a residual that carries the noise and anomalies.

It is intentionally simpler than the published RobustSTL — the NHPP model of
this library regularizes periodicity directly in the likelihood (eq. 1) — but
it preserves the behaviour that matters for the reproduction: outliers and
missing intervals do not contaminate the extracted seasonal pattern.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_integer
from ..exceptions import ValidationError
from .robust import median_filter

__all__ = ["RobustDecomposition", "robust_stl"]


@dataclass(frozen=True)
class RobustDecomposition:
    """Result of a robust seasonal-trend decomposition.

    Attributes
    ----------
    trend:
        Slowly varying component.
    seasonal:
        Periodic component with the requested period (zero if no period).
    residual:
        ``observed - trend - seasonal``.
    period:
        Period length (bins) used for the seasonal component, or 0.
    """

    trend: np.ndarray
    seasonal: np.ndarray
    residual: np.ndarray
    period: int

    @property
    def reconstructed(self) -> np.ndarray:
        """Sum of the three components (equals the input up to float error)."""
        return self.trend + self.seasonal + self.residual

    @property
    def seasonal_strength(self) -> float:
        """Fraction of detrended variance explained by the seasonal component.

        Defined as ``1 - Var(residual) / Var(seasonal + residual)``, clipped
        to [0, 1]; values near 1 indicate a strongly periodic series.
        """
        detrended_var = float(np.var(self.seasonal + self.residual))
        if detrended_var <= 0:
            return 0.0
        strength = 1.0 - float(np.var(self.residual)) / detrended_var
        return float(min(1.0, max(0.0, strength)))


def robust_stl(
    values: np.ndarray,
    period: int,
    *,
    trend_window: int | None = None,
) -> RobustDecomposition:
    """Decompose ``values`` into trend + seasonal + residual robustly.

    Parameters
    ----------
    values:
        The observed series (e.g. a QPS series); NaNs mark missing intervals
        and are interpolated before decomposition.
    period:
        Seasonal period in bins.  ``period <= 1`` disables the seasonal
        component and returns a trend + residual split.
    trend_window:
        Width of the running-median trend filter; defaults to one period
        (or 1/10 of the series when no period is given), forced to be odd.

    Returns
    -------
    RobustDecomposition
    """
    raw = np.asarray(values, dtype=float)
    if raw.ndim != 1:
        raise ValidationError(f"values must be one-dimensional, got shape {raw.shape}")
    if raw.size < 4:
        raise ValidationError("robust_stl requires at least 4 observations")
    period = check_integer(period, "period", minimum=0)

    observed = _interpolate_missing(raw)

    if trend_window is None:
        trend_window = period if period > 1 else max(3, raw.size // 10)
    trend_window = max(3, int(trend_window))
    if trend_window % 2 == 0:
        trend_window += 1
    trend = median_filter(observed, trend_window)

    detrended = observed - trend
    if period > 1 and period < raw.size:
        seasonal = _robust_seasonal(detrended, period)
    else:
        period = 0
        seasonal = np.zeros_like(observed)

    residual = observed - trend - seasonal
    return RobustDecomposition(trend=trend, seasonal=seasonal, residual=residual, period=period)


def _interpolate_missing(values: np.ndarray) -> np.ndarray:
    """Linearly interpolate NaNs; edge NaNs take the nearest finite value."""
    values = values.copy()
    finite = np.isfinite(values)
    if finite.all():
        return values
    if not finite.any():
        raise ValidationError("series contains no finite observations")
    indices = np.arange(values.size)
    values[~finite] = np.interp(indices[~finite], indices[finite], values[finite])
    return values


def _robust_seasonal(detrended: np.ndarray, period: int) -> np.ndarray:
    """Median-per-phase seasonal estimate, centered to sum to ~zero."""
    n = detrended.size
    phase_medians = np.empty(period)
    for phase in range(period):
        phase_values = detrended[phase::period]
        phase_medians[phase] = np.median(phase_values)
    phase_medians -= np.median(phase_medians)
    reps = int(np.ceil(n / period))
    return np.tile(phase_medians, reps)[:n]
