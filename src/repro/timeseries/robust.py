"""Robust statistics: MAD, robust z-scores, Huber weights, median filtering.

Real-world QPS traces carry outliers, bursts and missing intervals.  The
periodicity detector and the exploratory decomposition clip or down-weight
such points using the estimators in this module, which is what makes the
pipeline "robust" in the sense of the paper (robust decomposition and robust
periodicity detection, refs. [18], [19]).
"""

from __future__ import annotations

import numpy as np

from .._validation import as_1d_float_array, check_integer, check_positive
from ..exceptions import ValidationError

__all__ = ["mad", "robust_zscore", "winsorize", "huber_weights", "median_filter"]

#: Scale factor that makes the MAD a consistent estimator of the standard
#: deviation under a normal distribution.
_MAD_TO_SIGMA = 1.4826


def mad(values: np.ndarray, *, scale_to_sigma: bool = True) -> float:
    """Median absolute deviation of ``values``.

    Parameters
    ----------
    values:
        Input series.
    scale_to_sigma:
        When ``True`` (default) the MAD is multiplied by 1.4826 so that it is
        comparable to a standard deviation for Gaussian data.
    """
    values = as_1d_float_array(values, "values")
    if values.size == 0:
        raise ValidationError("mad requires at least one observation")
    deviation = float(np.median(np.abs(values - np.median(values))))
    return deviation * _MAD_TO_SIGMA if scale_to_sigma else deviation


def robust_zscore(values: np.ndarray) -> np.ndarray:
    """Robust z-scores: (x - median) / MAD.

    A constant series gets all-zero scores instead of dividing by zero.
    """
    values = as_1d_float_array(values, "values")
    scale = mad(values)
    if scale <= 0:
        return np.zeros_like(values)
    return (values - np.median(values)) / scale


def winsorize(values: np.ndarray, *, z_limit: float = 5.0) -> np.ndarray:
    """Clip observations whose robust z-score exceeds ``z_limit``.

    Returns a new array; points within the limit are untouched.
    """
    values = as_1d_float_array(values, "values")
    check_positive(z_limit, "z_limit")
    scale = mad(values)
    if scale <= 0:
        return values.copy()
    center = np.median(values)
    low = center - z_limit * scale
    high = center + z_limit * scale
    return np.clip(values, low, high)


def huber_weights(residuals: np.ndarray, *, delta: float = 1.345) -> np.ndarray:
    """IRLS weights of the Huber loss for standardized residuals.

    Residuals with absolute value below ``delta`` get weight 1; larger ones
    are down-weighted proportionally to ``delta / |r|``.
    """
    residuals = as_1d_float_array(residuals, "residuals")
    check_positive(delta, "delta")
    weights = np.ones_like(residuals)
    mask = np.abs(residuals) > delta
    weights[mask] = delta / np.abs(residuals[mask])
    return weights


def median_filter(values: np.ndarray, window: int) -> np.ndarray:
    """Running median with a centered window that shrinks at the edges."""
    values = as_1d_float_array(values, "values")
    window = check_integer(window, "window", minimum=1)
    if window == 1 or values.size == 0:
        return values.copy()
    half = window // 2
    out = np.empty_like(values)
    for i in range(values.size):
        start = max(0, i - half)
        end = min(values.size, i + half + 1)
        out[i] = np.median(values[start:end])
    return out
