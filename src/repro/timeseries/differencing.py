"""Sparse difference operators used in the regularized NHPP objective.

Equation (1) of the paper penalizes ``||D2 r||_1`` (smoothness, trend
filtering) and ``||D_L r||_2^2`` (periodicity) where

* ``D2`` is the second-order difference matrix of shape ``(T-2, T)``, and
* ``D_L`` is the ``L``-step forward difference matrix of shape ``(T-L, T)``.

Both matrices are constructed as ``scipy.sparse.csr_matrix`` so that the ADMM
normal equations stay sparse-banded and can be solved in ``O(T L^2)`` time.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from .._validation import check_integer
from ..exceptions import ValidationError

__all__ = [
    "first_difference_matrix",
    "second_difference_matrix",
    "seasonal_difference_matrix",
]


def first_difference_matrix(n: int) -> sparse.csr_matrix:
    """Return the ``(n-1, n)`` first-order difference operator ``D1``.

    ``(D1 x)_t = x_{t+1} - x_t``.
    """
    n = check_integer(n, "n", minimum=2)
    data = np.concatenate([-np.ones(n - 1), np.ones(n - 1)])
    rows = np.concatenate([np.arange(n - 1), np.arange(n - 1)])
    cols = np.concatenate([np.arange(n - 1), np.arange(1, n)])
    return sparse.csr_matrix((data, (rows, cols)), shape=(n - 1, n))


def second_difference_matrix(n: int) -> sparse.csr_matrix:
    """Return the ``(n-2, n)`` second-order difference operator ``D2``.

    ``(D2 x)_t = x_t - 2 x_{t+1} + x_{t+2}``, the operator used by L1 trend
    filtering (Kim et al., 2009) and by eq. (1) of the paper.
    """
    n = check_integer(n, "n", minimum=3)
    m = n - 2
    data = np.concatenate([np.ones(m), -2.0 * np.ones(m), np.ones(m)])
    rows = np.tile(np.arange(m), 3)
    cols = np.concatenate([np.arange(m), np.arange(1, m + 1), np.arange(2, m + 2)])
    return sparse.csr_matrix((data, (rows, cols)), shape=(m, n))


def seasonal_difference_matrix(n: int, period: int) -> sparse.csr_matrix:
    """Return the ``(n-period, n)`` L-step forward difference operator ``D_L``.

    ``(D_L x)_t = x_t - x_{t+L}`` with ``L = period``, exactly the matrix
    ``D_L = [I_{T-L}, 0] - [0, I_{T-L}]`` of eq. (1).
    """
    n = check_integer(n, "n", minimum=2)
    period = check_integer(period, "period", minimum=1)
    if period >= n:
        raise ValidationError(
            f"period ({period}) must be smaller than the series length ({n})"
        )
    m = n - period
    data = np.concatenate([np.ones(m), -np.ones(m)])
    rows = np.tile(np.arange(m), 2)
    cols = np.concatenate([np.arange(m), np.arange(period, period + m)])
    return sparse.csr_matrix((data, (rows, cols)), shape=(m, n))
