"""Time-series substrate: aggregation, differencing, spectra, robust filters.

This subpackage contains the low-level numerical building blocks used by the
periodicity detector and the NHPP model: sparse difference operators, robust
statistics, autocorrelation, periodograms, and a robust seasonal-trend
decomposition used for exploratory workload analysis.
"""

from .aggregation import aggregate_counts, moving_average, rolling_sum
from .differencing import (
    first_difference_matrix,
    second_difference_matrix,
    seasonal_difference_matrix,
)
from .acf import autocorrelation, autocovariance
from .periodogram import periodogram, dominant_frequencies
from .robust import (
    huber_weights,
    mad,
    median_filter,
    robust_zscore,
    winsorize,
)
from .decomposition import RobustDecomposition, robust_stl

__all__ = [
    "aggregate_counts",
    "moving_average",
    "rolling_sum",
    "first_difference_matrix",
    "second_difference_matrix",
    "seasonal_difference_matrix",
    "autocorrelation",
    "autocovariance",
    "periodogram",
    "dominant_frequencies",
    "huber_weights",
    "mad",
    "median_filter",
    "robust_zscore",
    "winsorize",
    "RobustDecomposition",
    "robust_stl",
]
