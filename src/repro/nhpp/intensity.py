"""Piecewise-constant intensity functions.

The NHPP model of the paper assumes the intensity is constant within each
time step ``delta_t`` (``lambda_t = exp(r_t)``).  This module provides the
intensity object shared by the fitter, the forecaster, the Monte Carlo
samplers and the scaling planner: it can evaluate the intensity at any time,
integrate it, and invert the integrated intensity — the operation needed to
map Gamma-distributed event counts back to arrival times.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_1d_float_array, check_non_negative, check_positive
from ..exceptions import ValidationError

__all__ = ["PiecewiseConstantIntensity"]


class PiecewiseConstantIntensity:
    """A right-open piecewise-constant intensity on ``[0, horizon)``.

    Parameters
    ----------
    values:
        Intensity (queries per second) in each bin; must be non-negative.
    bin_seconds:
        Width of each bin in seconds.
    extrapolation:
        Behaviour for times beyond the last bin:

        * ``"hold"`` — keep the last bin's value forever (default);
        * ``"periodic"`` — repeat the whole profile cyclically;
        * ``"zero"`` — intensity drops to zero.
    """

    def __init__(
        self,
        values: np.ndarray,
        bin_seconds: float,
        *,
        extrapolation: str = "hold",
    ) -> None:
        values = as_1d_float_array(values, "values")
        if values.size == 0:
            raise ValidationError("intensity requires at least one bin")
        if np.any(values < 0):
            raise ValidationError("intensity values must be non-negative")
        if extrapolation not in ("hold", "periodic", "zero"):
            raise ValidationError(
                f"extrapolation must be 'hold', 'periodic' or 'zero', got {extrapolation!r}"
            )
        self._values = values
        self.bin_seconds = check_positive(bin_seconds, "bin_seconds")
        self.extrapolation = extrapolation
        # Cumulative integral at bin edges: shape (n_bins + 1,)
        self._cum_edges = np.concatenate([[0.0], np.cumsum(values) * self.bin_seconds])

    @property
    def values(self) -> np.ndarray:
        """Read-only view of the per-bin intensity values."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    @property
    def n_bins(self) -> int:
        """Number of explicit bins."""
        return int(self._values.size)

    @property
    def duration(self) -> float:
        """Length of the explicitly specified window in seconds."""
        return self.n_bins * self.bin_seconds

    @property
    def total_mass(self) -> float:
        """Integrated intensity over the explicit window (expected count)."""
        return float(self._cum_edges[-1])

    def value(self, t: float | np.ndarray) -> np.ndarray | float:
        """Intensity at time(s) ``t`` (seconds)."""
        t_arr = np.atleast_1d(np.asarray(t, dtype=float))
        out = np.empty_like(t_arr)
        duration = self.duration
        inside = t_arr < duration
        idx = np.clip((t_arr[inside] / self.bin_seconds).astype(int), 0, self.n_bins - 1)
        out[inside] = self._values[idx]
        beyond = ~inside
        if np.any(beyond):
            out[beyond] = self._extrapolated_value(t_arr[beyond])
        out[t_arr < 0] = 0.0
        return out if np.ndim(t) else float(out[0])

    def _extrapolated_value(self, t: np.ndarray) -> np.ndarray:
        if self.extrapolation == "zero":
            return np.zeros_like(t)
        if self.extrapolation == "hold":
            return np.full_like(t, self._values[-1])
        wrapped = np.mod(t, self.duration)
        idx = np.clip((wrapped / self.bin_seconds).astype(int), 0, self.n_bins - 1)
        return self._values[idx]

    def cumulative(self, t: float | np.ndarray) -> np.ndarray | float:
        """Integrated intensity ``Lambda(t) = int_0^t lambda(u) du``."""
        t_arr = np.atleast_1d(np.asarray(t, dtype=float))
        out = np.empty_like(t_arr)
        duration = self.duration
        t_clipped = np.clip(t_arr, 0.0, None)

        inside = t_clipped <= duration
        ti = t_clipped[inside]
        idx = np.minimum((ti / self.bin_seconds).astype(int), self.n_bins - 1)
        within = ti - idx * self.bin_seconds
        out[inside] = self._cum_edges[idx] + self._values[idx] * within

        beyond = ~inside
        if np.any(beyond):
            tb = t_clipped[beyond]
            extra = tb - duration
            if self.extrapolation == "zero":
                tail = np.zeros_like(extra)
            elif self.extrapolation == "hold":
                tail = self._values[-1] * extra
            else:  # periodic
                full_cycles = np.floor(extra / duration)
                remainder = extra - full_cycles * duration
                tail = full_cycles * self.total_mass + self.cumulative(remainder)
            out[beyond] = self.total_mass + tail
        return out if np.ndim(t) else float(out[0])

    def inverse_cumulative(self, mass: float | np.ndarray) -> np.ndarray | float:
        """Smallest ``t`` with ``Lambda(t) >= mass`` (vectorized).

        Raises
        ------
        ValidationError
            If the requested mass can never be reached (e.g. zero
            extrapolation and ``mass > total_mass``).
        """
        m_arr = np.atleast_1d(np.asarray(mass, dtype=float))
        if np.any(m_arr < 0):
            raise ValidationError("mass must be non-negative")
        out = np.empty_like(m_arr)
        total = self.total_mass

        inside = m_arr <= total
        if np.any(inside):
            out[inside] = self._invert_within_window(m_arr[inside])

        beyond = ~inside
        if np.any(beyond):
            mb = m_arr[beyond]
            if self.extrapolation == "zero":
                raise ValidationError(
                    "requested cumulative mass exceeds the total mass of a "
                    "zero-extrapolated intensity"
                )
            # With a vanishingly small tail rate (or total mass) the division
            # below can overflow to inf, and two inf samples make downstream
            # diffs NaN; clamping at the largest finite float keeps the
            # inversion finite and monotone — such times are unreachable for
            # every practical purpose anyway.
            finite_max = np.finfo(float).max
            if self.extrapolation == "hold":
                rate = self._values[-1]
                if rate <= 0:
                    raise ValidationError(
                        "cannot invert cumulative intensity: held intensity is zero"
                    )
                with np.errstate(over="ignore"):
                    tail = (mb - total) / rate
                out[beyond] = self.duration + np.minimum(tail, finite_max)
            else:  # periodic
                if total <= 0:
                    raise ValidationError(
                        "cannot invert cumulative intensity: periodic profile has zero mass"
                    )
                extra = mb - total
                with np.errstate(over="ignore"):
                    cycles = np.minimum(np.floor(extra / total), finite_max)
                remainder = np.clip(extra - cycles * total, 0.0, total)
                with np.errstate(over="ignore"):
                    base = self.duration * (1.0 + cycles)
                out[beyond] = np.minimum(base, finite_max) + self._invert_within_window(
                    remainder
                )
        return out if np.ndim(mass) else float(out[0])

    def _invert_within_window(self, masses: np.ndarray) -> np.ndarray:
        """Vectorized inversion for masses within the explicit window.

        For a target mass ``m`` the smallest ``t`` with ``Lambda(t) >= m`` lies
        in the bin just before the first cumulative edge reaching ``m`` (that
        bin necessarily has positive intensity), except for ``m = 0`` which
        maps to ``t = 0``.
        """
        out = np.zeros_like(masses)
        positive = masses > 0
        if not np.any(positive):
            return out
        m = masses[positive]
        edge_index = np.searchsorted(self._cum_edges, m, side="left")
        edge_index = np.clip(edge_index, 1, self.n_bins)
        bin_index = edge_index - 1
        rates = self._values[bin_index]
        # cum_edges[bin_index] < m <= cum_edges[bin_index + 1] guarantees a
        # strictly positive rate; the maximum guards against float round-off.
        within = (m - self._cum_edges[bin_index]) / np.maximum(rates, 1e-300)
        out[positive] = bin_index * self.bin_seconds + np.minimum(within, self.bin_seconds)
        return out

    def upper_bound(self, window_seconds: float | None = None) -> float:
        """Maximum intensity over ``[0, window_seconds]`` (or the whole profile)."""
        if window_seconds is None:
            return float(self._values.max())
        check_non_negative(window_seconds, "window_seconds")
        if window_seconds >= self.duration:
            bound = float(self._values.max())
            if self.extrapolation == "hold":
                bound = max(bound, float(self._values[-1]))
            return bound
        n = max(1, int(np.ceil(window_seconds / self.bin_seconds)))
        return float(self._values[:n].max())

    def shift(self, offset_seconds: float) -> "PiecewiseConstantIntensity":
        """Return the intensity viewed from ``offset_seconds`` onwards.

        The returned object has its own time origin at ``offset_seconds`` of
        this intensity; extrapolation behaviour is preserved.  Used by the
        planner, which always reasons in "seconds from now".
        """
        check_non_negative(offset_seconds, "offset_seconds")
        horizon = self.duration
        if offset_seconds >= horizon:
            if self.extrapolation == "hold":
                return PiecewiseConstantIntensity(
                    np.array([self._values[-1]]), self.bin_seconds, extrapolation="hold"
                )
            if self.extrapolation == "zero":
                return PiecewiseConstantIntensity(
                    np.array([0.0]), self.bin_seconds, extrapolation="zero"
                )
            offset_seconds = float(np.mod(offset_seconds, horizon))
        # Sample the shifted profile on the same grid width.
        n_bins = self.n_bins
        times = offset_seconds + np.arange(n_bins) * self.bin_seconds + 0.5 * self.bin_seconds
        values = np.asarray(self.value(times), dtype=float)
        return PiecewiseConstantIntensity(
            values, self.bin_seconds, extrapolation=self.extrapolation
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"PiecewiseConstantIntensity(n_bins={self.n_bins}, "
            f"bin_seconds={self.bin_seconds}, extrapolation={self.extrapolation!r})"
        )
