"""Homogeneous Poisson baseline model and model comparison utilities.

The conventional workload model in the serverless literature is a
*homogeneous* Poisson process (constant rate).  The paper's contribution is
precisely to replace it with a regularized NHPP; this module provides the
homogeneous baseline so users (and the test suite) can quantify how much the
non-homogeneous model buys on a given workload:

* :class:`HomogeneousPoissonModel` — maximum-likelihood constant-rate fit
  with the same ``forecast()`` interface as :class:`~repro.nhpp.model.NHPPModel`;
* :func:`poisson_log_likelihood` — exact log-likelihood of a count series
  under any piecewise-constant intensity;
* :func:`compare_aic` — AIC comparison between two fitted intensities, where
  the effective number of parameters of a regularized NHPP is approximated by
  the number of distinct linear pieces of its log-intensity (the standard
  degrees-of-freedom estimate for L1 trend filtering).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import special

from .._validation import check_positive
from ..exceptions import ModelNotFittedError, ValidationError
from ..types import ArrivalTrace, QPSSeries
from .intensity import PiecewiseConstantIntensity

__all__ = [
    "HomogeneousPoissonModel",
    "poisson_log_likelihood",
    "effective_degrees_of_freedom",
    "compare_aic",
    "ModelComparison",
]


class HomogeneousPoissonModel:
    """Constant-rate Poisson arrival model (the classical baseline).

    Parameters
    ----------
    bin_seconds:
        Bin width used when the model is fitted from an
        :class:`~repro.types.ArrivalTrace`; only affects the granularity of
        the returned intensity object, not the fitted rate.
    """

    def __init__(self, bin_seconds: float = 60.0) -> None:
        self.bin_seconds = check_positive(bin_seconds, "bin_seconds")
        self._rate: float | None = None

    def fit(self, data: QPSSeries | ArrivalTrace) -> "HomogeneousPoissonModel":
        """Fit the maximum-likelihood constant rate (total count / duration)."""
        if isinstance(data, QPSSeries):
            total = float(np.sum(data.counts))
            duration = data.duration
        elif isinstance(data, ArrivalTrace):
            total = float(data.n_queries)
            duration = data.horizon
        else:
            raise ValidationError(
                f"data must be a QPSSeries or ArrivalTrace, got {type(data).__name__}"
            )
        if duration <= 0:
            raise ValidationError("cannot fit a rate on a zero-length observation window")
        self._rate = total / duration
        return self

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._rate is not None

    @property
    def rate(self) -> float:
        """The fitted arrival rate in queries per second."""
        if self._rate is None:
            raise ModelNotFittedError("HomogeneousPoissonModel must be fitted before use")
        return self._rate

    def forecast(self, horizon_seconds: float | None = None) -> PiecewiseConstantIntensity:
        """Constant-rate forecast (the rate is held forever)."""
        del horizon_seconds  # the constant rate needs no explicit horizon
        return PiecewiseConstantIntensity(
            np.array([self.rate]), self.bin_seconds, extrapolation="hold"
        )

    def expected_count(self, start: float, end: float) -> float:
        """Expected number of arrivals in ``[start, end)``."""
        if end < start:
            raise ValidationError(f"end ({end}) must be >= start ({start})")
        return self.rate * (end - start)


def poisson_log_likelihood(
    counts: np.ndarray,
    intensity_values: np.ndarray,
    bin_seconds: float,
) -> float:
    """Exact Poisson log-likelihood of ``counts`` under a per-bin intensity.

    Parameters
    ----------
    counts:
        Observed counts ``Q_t`` per bin.
    intensity_values:
        Intensity (queries per second) per bin; must be positive where the
        count is positive.
    bin_seconds:
        Bin width ``delta_t``.
    """
    counts = np.asarray(counts, dtype=float)
    values = np.asarray(intensity_values, dtype=float)
    if counts.shape != values.shape:
        raise ValidationError(
            f"counts and intensity_values must have the same shape, got "
            f"{counts.shape} and {values.shape}"
        )
    check_positive(bin_seconds, "bin_seconds")
    if np.any(values < 0):
        raise ValidationError("intensity_values must be non-negative")
    means = values * bin_seconds
    if np.any((means == 0) & (counts > 0)):
        return float("-inf")
    safe_means = np.where(means > 0, means, 1.0)
    log_pmf = counts * np.log(safe_means) - means - special.gammaln(counts + 1.0)
    log_pmf = np.where((means == 0) & (counts == 0), 0.0, log_pmf)
    return float(np.sum(log_pmf))


def effective_degrees_of_freedom(log_intensity: np.ndarray, *, tolerance: float = 1e-4) -> int:
    """Degrees of freedom of an L1-trend-filtered log-intensity.

    For L1 trend filtering the standard unbiased estimate of the degrees of
    freedom is the number of knots plus two — equivalently the number of
    distinct linear pieces plus one.  A constant-rate model therefore gets 1,
    matching its single parameter.
    """
    r = np.asarray(log_intensity, dtype=float)
    if r.size < 3:
        return int(r.size)
    second_diff = np.abs(np.diff(r, n=2))
    knots = int(np.count_nonzero(second_diff > tolerance))
    return knots + 2


@dataclass(frozen=True)
class ModelComparison:
    """Outcome of an AIC comparison between two intensity estimates.

    Attributes
    ----------
    log_likelihood_a, log_likelihood_b:
        Poisson log-likelihoods of the two candidates on the same counts.
    dof_a, dof_b:
        Effective parameter counts.
    aic_a, aic_b:
        Akaike information criteria (lower is better).
    preferred:
        ``"a"`` or ``"b"``.
    """

    log_likelihood_a: float
    log_likelihood_b: float
    dof_a: int
    dof_b: int
    aic_a: float
    aic_b: float
    preferred: str


def compare_aic(
    counts: np.ndarray,
    bin_seconds: float,
    intensity_a: np.ndarray,
    intensity_b: np.ndarray,
    *,
    dof_a: int | None = None,
    dof_b: int | None = None,
) -> ModelComparison:
    """AIC comparison of two per-bin intensity estimates on the same counts.

    Degrees of freedom default to the trend-filtering estimate of
    :func:`effective_degrees_of_freedom` applied to the log of each estimate.
    """
    counts = np.asarray(counts, dtype=float)
    a = np.asarray(intensity_a, dtype=float)
    b = np.asarray(intensity_b, dtype=float)
    if dof_a is None:
        dof_a = effective_degrees_of_freedom(np.log(np.maximum(a, 1e-300)))
    if dof_b is None:
        dof_b = effective_degrees_of_freedom(np.log(np.maximum(b, 1e-300)))
    ll_a = poisson_log_likelihood(counts, a, bin_seconds)
    ll_b = poisson_log_likelihood(counts, b, bin_seconds)
    aic_a = 2.0 * dof_a - 2.0 * ll_a
    aic_b = 2.0 * dof_b - 2.0 * ll_b
    return ModelComparison(
        log_likelihood_a=ll_a,
        log_likelihood_b=ll_b,
        dof_a=int(dof_a),
        dof_b=int(dof_b),
        aic_a=aic_a,
        aic_b=aic_b,
        preferred="a" if aic_a <= aic_b else "b",
    )
