"""Linearized ADMM for the regularized NHPP objective (Algorithm 2).

The objective (1) is split with auxiliary variables ``y = D2 r`` and
``z = D_L r``.  The ``y`` and ``z`` subproblems have closed-form proximal
solutions (soft-thresholding and ridge shrinkage); the ``r`` subproblem is
solved after a second-order Taylor expansion of the exponential likelihood
term around the current iterate, which reduces it to one sparse banded linear
system per iteration:

    A_k r_{k+1} = B_k
    A_k = delta_t * diag(exp(r_k)) + rho * D2^T D2 + rho * D_L^T D_L
    B_k = Q - delta_t * exp(r_k) + delta_t * diag(exp(r_k)) r_k
          + D2^T (nu_y + rho y) + D_L^T (nu_z + rho z)

The matrices are banded with bandwidth ``O(L)``, so the solve costs
``O(T L^2)`` as discussed in Section V of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import splu

from ..config import ADMMConfig
from ..exceptions import ConvergenceError
from .objective import RegularizedNHPPObjective, soft_threshold

__all__ = ["ADMMResult", "fit_log_intensity"]

#: Log-intensities are clipped to this symmetric range before exponentiation
#: to keep the Taylor-expanded subproblem numerically stable.
_LOG_INTENSITY_CLIP = 30.0

#: Number of trailing iterations over which the objective must be flat for
#: the objective-stagnation stopping rule to fire.
_OBJECTIVE_WINDOW = 10


@dataclass
class ADMMResult:
    """Outcome of an ADMM run.

    Attributes
    ----------
    log_intensity:
        The fitted log-intensity vector ``r``.
    converged:
        Whether the residual tolerance was met within the iteration budget.
    n_iterations:
        Number of iterations performed.
    objective_value:
        Final value of the objective (1).
    primal_residuals, dual_residuals, objective_history:
        Per-iteration diagnostics (recorded only when ``verbose`` is set in
        the configuration; otherwise only the final values are stored).
    """

    log_intensity: np.ndarray
    converged: bool
    n_iterations: int
    objective_value: float
    primal_residuals: list[float] = field(default_factory=list)
    dual_residuals: list[float] = field(default_factory=list)
    objective_history: list[float] = field(default_factory=list)


def fit_log_intensity(
    objective: RegularizedNHPPObjective,
    config: ADMMConfig | None = None,
    *,
    initial_guess: np.ndarray | None = None,
    raise_on_no_convergence: bool = False,
) -> ADMMResult:
    """Run Algorithm 2 on ``objective`` and return the fitted log-intensity.

    Parameters
    ----------
    objective:
        The regularized NHPP objective to minimize.
    config:
        ADMM hyper-parameters; defaults to :class:`~repro.config.ADMMConfig`.
    initial_guess:
        Optional warm start for ``r``; defaults to the data-driven guess of
        the objective.
    raise_on_no_convergence:
        When ``True`` a :class:`~repro.exceptions.ConvergenceError` is raised
        if the tolerance is not reached; by default the best iterate is
        returned with ``converged=False``.
    """
    cfg = config or ADMMConfig()
    rho = cfg.rho
    d2 = objective.d2
    dl = objective.dl
    counts = objective.counts
    delta_t = objective.bin_seconds
    n = objective.n_bins

    r = objective.initial_guess() if initial_guess is None else np.array(initial_guess, dtype=float)
    if r.shape != (n,):
        raise ValueError(f"initial_guess must have shape ({n},), got {r.shape}")

    y = d2 @ r
    nu_y = np.zeros(d2.shape[0])
    if dl is not None:
        z = dl @ r
        nu_z = np.zeros(dl.shape[0])
    else:
        z = None
        nu_z = None

    d2t_d2 = (d2.T @ d2).tocsc()
    static_quadratic = rho * d2t_d2
    if dl is not None:
        static_quadratic = static_quadratic + rho * (dl.T @ dl).tocsc()

    primal_residuals: list[float] = []
    dual_residuals: list[float] = []
    objective_history: list[float] = []
    recent_objectives: list[float] = []

    converged = False
    iteration = 0
    for iteration in range(1, cfg.max_iterations + 1):
        r_clipped = np.clip(r, -_LOG_INTENSITY_CLIP, _LOG_INTENSITY_CLIP)
        exp_r = np.exp(r_clipped)

        # --- r update: solve the sparse banded normal equations A_k r = B_k.
        a_matrix = static_quadratic + sparse.diags(delta_t * exp_r, format="csc")
        b_vector = (
            counts
            - delta_t * exp_r
            + delta_t * exp_r * r
            + d2.T @ (nu_y + rho * y)
        )
        if dl is not None:
            b_vector = b_vector + dl.T @ (nu_z + rho * z)
        solver = splu(a_matrix)
        r_new = solver.solve(b_vector)
        r_new = np.clip(r_new, -_LOG_INTENSITY_CLIP, _LOG_INTENSITY_CLIP)

        # --- y update: proximal operator of beta1 * ||.||_1.
        d2_r = d2 @ r_new
        y_new = soft_threshold(d2_r - nu_y / rho, objective.beta_smooth / rho)

        # --- z update: ridge shrinkage.
        if dl is not None:
            dl_r = dl @ r_new
            z_new = (rho * dl_r - nu_z) / (objective.beta_period + rho)
        else:
            dl_r = None
            z_new = None

        # --- dual updates.
        nu_y = nu_y + rho * (y_new - d2_r)
        if dl is not None:
            nu_z = nu_z + rho * (z_new - dl_r)

        # --- residuals (Boyd et al. 2011, section 3.3).
        primal = float(np.linalg.norm(y_new - d2_r))
        dual = float(rho * np.linalg.norm(d2.T @ (y_new - y)))
        split_norm = max(float(np.linalg.norm(d2_r)), float(np.linalg.norm(y_new)))
        dual_scale_vec = d2.T @ nu_y
        if dl is not None:
            primal = float(np.hypot(primal, np.linalg.norm(z_new - dl_r)))
            dual = float(np.hypot(dual, rho * np.linalg.norm(dl.T @ (z_new - z))))
            split_norm = max(
                split_norm, float(np.linalg.norm(dl_r)), float(np.linalg.norm(z_new))
            )
            dual_scale_vec = dual_scale_vec + dl.T @ nu_z
        step = float(np.linalg.norm(r_new - r) / (np.linalg.norm(r) + 1e-12))

        r, y = r_new, y_new
        if dl is not None:
            z = z_new

        current_objective = objective.value(r)
        recent_objectives.append(current_objective)
        if cfg.verbose:
            primal_residuals.append(primal)
            dual_residuals.append(dual)
            objective_history.append(current_objective)

        eps_abs = cfg.tolerance * 1e-2
        sqrt_m = np.sqrt(max(d2.shape[0] + (dl.shape[0] if dl is not None else 0), 1))
        sqrt_n = np.sqrt(max(n, 1))
        eps_primal = sqrt_m * eps_abs + cfg.tolerance * split_norm
        eps_dual = sqrt_n * eps_abs + cfg.tolerance * float(np.linalg.norm(dual_scale_vec))
        residuals_small = primal <= eps_primal and dual <= eps_dual

        # Practical stopping rules for the slow tail of ADMM: the iterate has
        # stopped moving, or the objective has been flat over the last window
        # of iterations.  Both only apply after a warm-up because the first
        # iterate can coincide exactly with the initial guess.
        stagnated = iteration >= 10 and step < eps_abs
        objective_flat = False
        if iteration >= 20 and len(recent_objectives) >= _OBJECTIVE_WINDOW:
            window_values = recent_objectives[-_OBJECTIVE_WINDOW:]
            spread = max(window_values) - min(window_values)
            objective_flat = spread <= cfg.tolerance * 1e-2 * max(1.0, abs(current_objective))
        if residuals_small or stagnated or objective_flat:
            converged = True
            break

    if not converged and raise_on_no_convergence:
        raise ConvergenceError(
            f"ADMM did not converge within {cfg.max_iterations} iterations "
            f"(last primal residual {primal:.3e}, dual {dual:.3e})"
        )

    return ADMMResult(
        log_intensity=r,
        converged=converged,
        n_iterations=iteration,
        objective_value=objective.value(r),
        primal_residuals=primal_residuals,
        dual_residuals=dual_residuals,
        objective_history=objective_history,
    )
