"""Goodness-of-fit diagnostics for fitted NHPP models.

The time-rescaling theorem states that if arrivals ``xi_1 < xi_2 < ...``
follow an NHPP with integrated intensity ``Lambda``, then the rescaled
interarrival times ``Lambda(xi_i) - Lambda(xi_{i-1})`` are i.i.d. unit
exponentials.  Comparing the empirical distribution of the rescaled
interarrivals against ``Exp(1)`` with a Kolmogorov-Smirnov statistic gives a
simple, model-agnostic goodness-of-fit check that we expose both as a
diagnostic for users and as a regression test for the fitter.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from .._validation import as_1d_float_array, check_sorted
from ..exceptions import ValidationError
from .intensity import PiecewiseConstantIntensity

__all__ = ["rescaled_interarrival_times", "ks_statistic_time_rescaling"]


def rescaled_interarrival_times(
    arrival_times: np.ndarray,
    intensity: PiecewiseConstantIntensity,
) -> np.ndarray:
    """Map arrival times through the integrated intensity and difference them.

    Returns the sequence ``Lambda(xi_i) - Lambda(xi_{i-1})`` (with
    ``Lambda(xi_0) := Lambda(0) = 0``), which is i.i.d. ``Exp(1)`` when the
    model is correct.
    """
    arrivals = as_1d_float_array(arrival_times, "arrival_times")
    check_sorted(arrivals, "arrival_times")
    if arrivals.size < 2:
        raise ValidationError("need at least two arrivals to compute interarrival times")
    cumulative = np.asarray(intensity.cumulative(arrivals), dtype=float)
    rescaled = np.diff(np.concatenate([[0.0], cumulative]))
    return rescaled


def ks_statistic_time_rescaling(
    arrival_times: np.ndarray,
    intensity: PiecewiseConstantIntensity,
) -> tuple[float, float]:
    """Kolmogorov-Smirnov test of the rescaled interarrivals against Exp(1).

    Returns
    -------
    tuple
        ``(statistic, p_value)`` from :func:`scipy.stats.kstest`.
    """
    rescaled = rescaled_interarrival_times(arrival_times, intensity)
    result = stats.kstest(rescaled, "expon")
    return float(result.statistic), float(result.pvalue)
