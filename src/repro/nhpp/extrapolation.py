"""Extrapolation of a fitted historical intensity into the future (module 3).

Given the per-bin intensity estimated on historical data, the query-arrival
prediction module extends it beyond the end of the training window:

* when a period ``L`` was detected, the last complete cycle(s) of the fitted
  intensity are repeated cyclically — the periodicity regularizer has already
  pulled each cycle towards the common pattern, so the last cycle is a robust
  template;
* when no period was detected, the median intensity of a trailing window is
  held constant, which is the natural prediction for a locally stationary
  process.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_integer, check_non_negative, check_positive
from ..exceptions import ValidationError
from .intensity import PiecewiseConstantIntensity

__all__ = ["extrapolate_intensity"]


def extrapolate_intensity(
    fitted_values: np.ndarray,
    bin_seconds: float,
    *,
    period_bins: int | None = None,
    horizon_seconds: float | None = None,
    trailing_window_bins: int = 30,
) -> PiecewiseConstantIntensity:
    """Build a forecast intensity starting at the end of the training window.

    Parameters
    ----------
    fitted_values:
        Historical per-bin intensity (queries per second) from the NHPP fit.
    bin_seconds:
        Bin width of the fitted intensity.
    period_bins:
        Detected period in bins, or ``None`` when the workload is aperiodic.
    horizon_seconds:
        Length of the forecast to materialize explicitly.  Defaults to one
        period (periodic case) or one bin (aperiodic case); the returned
        intensity extrapolates itself beyond that horizon anyway.
    trailing_window_bins:
        Number of trailing bins whose median is held constant in the
        aperiodic case.

    Returns
    -------
    PiecewiseConstantIntensity
        Forecast intensity whose time origin is the end of the training data.
    """
    values = np.asarray(fitted_values, dtype=float)
    if values.ndim != 1 or values.size == 0:
        raise ValidationError("fitted_values must be a non-empty 1-D array")
    if np.any(values < 0):
        raise ValidationError("fitted_values must be non-negative")
    bin_seconds = check_positive(bin_seconds, "bin_seconds")
    check_integer(trailing_window_bins, "trailing_window_bins", minimum=1)
    if horizon_seconds is not None:
        check_non_negative(horizon_seconds, "horizon_seconds")

    if period_bins is not None and period_bins > 0 and values.size >= period_bins:
        template = _periodic_template(values, int(period_bins))
        forecast = PiecewiseConstantIntensity(
            template, bin_seconds, extrapolation="periodic"
        )
    else:
        window = min(trailing_window_bins, values.size)
        level = float(np.median(values[-window:]))
        forecast = PiecewiseConstantIntensity(
            np.array([level]), bin_seconds, extrapolation="hold"
        )

    if horizon_seconds is None or horizon_seconds <= forecast.duration:
        return forecast
    # Materialize the requested horizon explicitly so the caller can inspect
    # the forecast as a plain array if it wants to.
    n_bins = int(np.ceil(horizon_seconds / bin_seconds))
    times = (np.arange(n_bins) + 0.5) * bin_seconds
    materialized = np.asarray(forecast.value(times), dtype=float)
    return PiecewiseConstantIntensity(
        materialized, bin_seconds, extrapolation=forecast.extrapolation
    )


def _periodic_template(values: np.ndarray, period_bins: int) -> np.ndarray:
    """Average the trailing complete cycles to form one template cycle.

    The template starts at the phase immediately following the last training
    bin so that "time 0 of the forecast" lines up with the correct phase of
    the cycle.
    """
    n = values.size
    n_cycles = n // period_bins
    usable = values[n - n_cycles * period_bins:]
    cycles = usable.reshape(n_cycles, period_bins)
    # Robust average across cycles: the median resists a single anomalous cycle.
    template = np.median(cycles, axis=0)
    # ``usable`` covers a whole number of cycles ending exactly at the last
    # training bin, so the template's index 0 is already the phase of the
    # first forecast bin; no further alignment is needed.
    return template
