"""The regularized NHPP objective of equation (1) and related primitives.

The negative log-likelihood of observing counts ``Q_t`` in intervals of
length ``delta_t`` under a piecewise-constant intensity ``exp(r_t)`` is
(up to constants)

    lkh(r) = -Q^T r + delta_t * 1^T exp(r)

and the full objective adds an L1 trend-filtering penalty on the second
difference of ``r`` and, when a period ``L`` is detected, a squared L2
penalty on the ``L``-step forward difference:

    F(r) = lkh(r) + beta1 * ||D2 r||_1 + (beta2 / 2) * ||D_L r||_2^2
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from .._validation import as_1d_float_array, check_non_negative, check_positive
from ..exceptions import ValidationError
from ..timeseries.differencing import second_difference_matrix, seasonal_difference_matrix

__all__ = ["soft_threshold", "RegularizedNHPPObjective"]


def soft_threshold(x: np.ndarray | float, threshold: float) -> np.ndarray | float:
    """Elementwise soft-thresholding ``sign(x) * max(|x| - threshold, 0)``.

    This is the proximal operator of ``threshold * ||.||_1`` used in line 3 of
    Algorithm 2.
    """
    threshold = check_non_negative(threshold, "threshold")
    x_arr = np.asarray(x, dtype=float)
    out = np.sign(x_arr) * np.maximum(np.abs(x_arr) - threshold, 0.0)
    return out if np.ndim(x) else float(out)


@dataclass
class RegularizedNHPPObjective:
    """Evaluates the objective (1) and exposes its building blocks.

    Parameters
    ----------
    counts:
        Observed per-interval counts ``Q_t``.
    bin_seconds:
        Interval width ``delta_t``.
    beta_smooth:
        Weight ``beta_1`` of the L1 second-difference penalty.
    beta_period:
        Weight ``beta_2`` of the squared L2 seasonal-difference penalty.
    period_bins:
        Detected period ``L`` in bins, or ``None`` / 0 to disable the
        periodicity penalty.
    """

    counts: np.ndarray
    bin_seconds: float
    beta_smooth: float
    beta_period: float
    period_bins: int | None = None

    def __post_init__(self) -> None:
        self.counts = as_1d_float_array(self.counts, "counts")
        if self.counts.size < 3:
            raise ValidationError("NHPP fitting requires at least 3 intervals")
        if np.any(self.counts < 0):
            raise ValidationError("counts must be non-negative")
        self.bin_seconds = check_positive(self.bin_seconds, "bin_seconds")
        self.beta_smooth = check_non_negative(self.beta_smooth, "beta_smooth")
        self.beta_period = check_non_negative(self.beta_period, "beta_period")
        if self.period_bins is not None and self.period_bins <= 0:
            self.period_bins = None
        if self.period_bins is not None and self.period_bins >= self.counts.size:
            # A period longer than the series cannot be penalized; drop it.
            self.period_bins = None

        n = self.counts.size
        self._d2 = second_difference_matrix(n)
        if self.period_bins is not None and self.beta_period > 0:
            self._dl = seasonal_difference_matrix(n, int(self.period_bins))
        else:
            self._dl = None

    @property
    def n_bins(self) -> int:
        """Number of intervals T."""
        return int(self.counts.size)

    @property
    def d2(self) -> sparse.csr_matrix:
        """The second-order difference operator ``D2``."""
        return self._d2

    @property
    def dl(self) -> sparse.csr_matrix | None:
        """The seasonal difference operator ``D_L`` or ``None`` if disabled."""
        return self._dl

    @property
    def has_period_penalty(self) -> bool:
        """Whether the periodicity regularization term is active."""
        return self._dl is not None

    def negative_log_likelihood(self, log_intensity: np.ndarray) -> float:
        """``-Q^T r + delta_t * sum(exp(r))`` for log-intensity ``r``."""
        r = as_1d_float_array(log_intensity, "log_intensity")
        if r.size != self.n_bins:
            raise ValidationError(
                f"log_intensity must have length {self.n_bins}, got {r.size}"
            )
        return float(-self.counts @ r + self.bin_seconds * np.exp(r).sum())

    def penalty(self, log_intensity: np.ndarray) -> float:
        """Value of the regularization terms at ``log_intensity``."""
        r = as_1d_float_array(log_intensity, "log_intensity")
        value = self.beta_smooth * float(np.abs(self._d2 @ r).sum())
        if self._dl is not None:
            seasonal_diff = self._dl @ r
            value += 0.5 * self.beta_period * float(seasonal_diff @ seasonal_diff)
        return value

    def value(self, log_intensity: np.ndarray) -> float:
        """Full objective ``F(r)``."""
        return self.negative_log_likelihood(log_intensity) + self.penalty(log_intensity)

    def initial_guess(self) -> np.ndarray:
        """Data-driven starting point: ``log(max(Q_t, 0.5) / delta_t)``.

        Empty intervals are floored at half a query so the logarithm is
        finite; the smoothness penalty pulls those bins toward their
        neighbours during the first iterations.
        """
        floored = np.maximum(self.counts, 0.5)
        return np.log(floored / self.bin_seconds)

    def maximum_likelihood_log_intensity(self) -> np.ndarray:
        """Unregularized MLE ``log(Q_t / delta_t)`` with empty-bin flooring.

        This is the estimate the paper warns about: it tracks every noisy bin
        exactly and serves as the "no regularization" ablation baseline.
        """
        floored = np.maximum(self.counts, 1e-3)
        return np.log(floored / self.bin_seconds)
