"""Rolling (online) NHPP forecasting.

The paper notes that the NHPP model "only needs to be retrained at a low
frequency (e.g. every half an hour)".  :class:`RollingNHPPForecaster` packages
that operational pattern: it maintains a sliding window of observed arrivals,
refits the regularized NHPP whenever the refresh interval has elapsed, and
serves the current forecast (shifted to "now") to the planner in between
refits.  The object is deliberately independent of the simulator so it can be
wired into a real control loop as easily as into an experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import check_non_negative, check_positive
from ..config import NHPPConfig, PeriodicityConfig
from ..exceptions import ModelNotFittedError, ValidationError
from ..types import QPSSeries
from .intensity import PiecewiseConstantIntensity
from .model import NHPPModel

__all__ = ["RollingNHPPForecaster"]


@dataclass
class _RefitRecord:
    """Bookkeeping for one refit (exposed for diagnostics/tests)."""

    refit_time: float
    n_observations: int
    period_bins: int
    converged: bool = field(default=True)


class RollingNHPPForecaster:
    """Maintain an NHPP forecast over a stream of observed arrivals.

    Parameters
    ----------
    bin_seconds:
        Bin width of the QPS series the model is refitted on.
    window_seconds:
        Length of the trailing observation window used for each refit.
    refresh_seconds:
        Minimum wall-clock spacing between refits (the paper suggests around
        half an hour).
    config:
        NHPP hyper-parameters.
    periodicity_config:
        Configuration of the embedded periodicity detector.
    min_observations:
        Refits are skipped while fewer arrivals than this are in the window.
    """

    def __init__(
        self,
        *,
        bin_seconds: float = 60.0,
        window_seconds: float = 7 * 86_400.0,
        refresh_seconds: float = 1800.0,
        config: NHPPConfig | None = None,
        periodicity_config: PeriodicityConfig | None = None,
        min_observations: int = 30,
    ) -> None:
        self.bin_seconds = check_positive(bin_seconds, "bin_seconds")
        self.window_seconds = check_positive(window_seconds, "window_seconds")
        self.refresh_seconds = check_positive(refresh_seconds, "refresh_seconds")
        self.min_observations = int(min_observations)
        self.config = config or NHPPConfig()
        self.periodicity_config = periodicity_config or PeriodicityConfig()
        self._arrivals: list[float] = []
        self._last_refit_time: float | None = None
        self._forecast: PiecewiseConstantIntensity | None = None
        self._forecast_origin: float = 0.0
        self._history: list[_RefitRecord] = []

    # ----------------------------------------------------------- ingestion

    def observe(self, arrival_times: np.ndarray | float) -> None:
        """Record one or more observed arrival times (absolute seconds)."""
        values = np.atleast_1d(np.asarray(arrival_times, dtype=float))
        if values.size == 0:
            return
        if np.any(~np.isfinite(values)) or np.any(values < 0):
            raise ValidationError("arrival times must be finite and non-negative")
        if self._arrivals and values.min() < self._arrivals[-1] - 1e-9:
            raise ValidationError(
                "arrival times must be observed in non-decreasing order"
            )
        self._arrivals.extend(float(v) for v in np.sort(values))

    @property
    def n_observations(self) -> int:
        """Number of arrivals currently retained (within the sliding window)."""
        return len(self._arrivals)

    @property
    def refit_history(self) -> list[_RefitRecord]:
        """Diagnostics for every refit performed so far."""
        return list(self._history)

    # ------------------------------------------------------------ refitting

    def _trim_window(self, now: float) -> None:
        cutoff = now - self.window_seconds
        if cutoff <= 0 or not self._arrivals:
            return
        arrivals = np.asarray(self._arrivals)
        keep_from = int(np.searchsorted(arrivals, cutoff, side="left"))
        if keep_from:
            self._arrivals = self._arrivals[keep_from:]

    def maybe_refit(self, now: float, *, force: bool = False) -> bool:
        """Refit the model if the refresh interval has elapsed.

        Parameters
        ----------
        now:
            Current time in seconds (same clock as the observed arrivals).
        force:
            Refit even if the refresh interval has not elapsed yet.

        Returns
        -------
        bool
            ``True`` when a refit was performed.
        """
        check_non_negative(now, "now")
        due = (
            force
            or self._last_refit_time is None
            or now - self._last_refit_time >= self.refresh_seconds
        )
        if not due:
            return False
        self._trim_window(now)
        if len(self._arrivals) < self.min_observations:
            return False

        arrivals = np.asarray(self._arrivals, dtype=float)
        window_start = max(0.0, now - self.window_seconds)
        relative = arrivals - window_start
        n_bins = max(3, int(np.ceil((now - window_start) / self.bin_seconds)))
        edges = np.arange(n_bins + 1) * self.bin_seconds
        counts, _ = np.histogram(relative, bins=edges)
        series = QPSSeries(counts, self.bin_seconds, name="rolling-window")

        model = NHPPModel(
            self.config,
            periodicity_config=self.periodicity_config,
            bin_seconds=self.bin_seconds,
        ).fit(series)
        self._forecast = model.forecast()
        self._forecast_origin = window_start + series.duration
        self._last_refit_time = now
        self._history.append(
            _RefitRecord(
                refit_time=now,
                n_observations=int(arrivals.size),
                period_bins=model.period_bins,
                converged=model.fit_result.admm.converged,
            )
        )
        return True

    # ------------------------------------------------------------- serving

    @property
    def is_ready(self) -> bool:
        """Whether at least one successful refit has happened."""
        return self._forecast is not None

    def forecast_at(self, now: float) -> PiecewiseConstantIntensity:
        """The current forecast shifted so that its origin is ``now``."""
        if self._forecast is None:
            raise ModelNotFittedError(
                "RollingNHPPForecaster has no fitted model yet; call maybe_refit first"
            )
        offset = max(0.0, float(now) - self._forecast_origin)
        return self._forecast.shift(offset)

    def expected_arrivals(self, now: float, horizon_seconds: float) -> float:
        """Expected number of arrivals in ``[now, now + horizon_seconds)``."""
        check_non_negative(horizon_seconds, "horizon_seconds")
        return float(self.forecast_at(now).cumulative(horizon_seconds))
