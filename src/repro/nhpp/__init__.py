"""Non-homogeneous Poisson process (NHPP) arrival modeling (modules 2-3).

This subpackage implements the paper's regularized NHPP intensity model
(eq. 1), the specialized linearized ADMM solver (Algorithm 2), periodic
extrapolation of the fitted intensity into the future, exact samplers for
piecewise-constant intensities, and goodness-of-fit diagnostics based on the
time-rescaling theorem.
"""

from .intensity import PiecewiseConstantIntensity
from .objective import RegularizedNHPPObjective, soft_threshold
from .admm import ADMMResult, fit_log_intensity
from .model import NHPPModel, NHPPFitResult
from .extrapolation import extrapolate_intensity
from .homogeneous import (
    HomogeneousPoissonModel,
    ModelComparison,
    compare_aic,
    effective_degrees_of_freedom,
    poisson_log_likelihood,
)
from .online import RollingNHPPForecaster
from .sampling import (
    sample_arrival_times,
    sample_counts,
    sample_next_arrivals,
    sample_homogeneous_arrivals,
)
from .validation import ks_statistic_time_rescaling, rescaled_interarrival_times

__all__ = [
    "PiecewiseConstantIntensity",
    "RegularizedNHPPObjective",
    "soft_threshold",
    "ADMMResult",
    "fit_log_intensity",
    "NHPPModel",
    "NHPPFitResult",
    "extrapolate_intensity",
    "HomogeneousPoissonModel",
    "ModelComparison",
    "compare_aic",
    "effective_degrees_of_freedom",
    "poisson_log_likelihood",
    "RollingNHPPForecaster",
    "sample_arrival_times",
    "sample_counts",
    "sample_next_arrivals",
    "sample_homogeneous_arrivals",
    "ks_statistic_time_rescaling",
    "rescaled_interarrival_times",
]
