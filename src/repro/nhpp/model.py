"""High-level NHPP workload model (modules 1-3 of the framework glued together).

:class:`NHPPModel` wraps periodicity detection, the ADMM fit of the
regularized log-intensity, and periodic extrapolation behind a small
scikit-learn-like interface:

>>> model = NHPPModel()
>>> model.fit(qps_series)                 # doctest: +SKIP
>>> forecast = model.forecast()           # doctest: +SKIP
>>> forecast.value(120.0)                 # intensity 2 minutes from "now"
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..config import NHPPConfig, PeriodicityConfig, WorkloadModelConfig
from ..exceptions import ModelNotFittedError, PeriodicityDetectionError, ValidationError
from ..periodicity.detector import PeriodicityDetector, PeriodicityResult
from ..telemetry import get_recorder
from ..types import ArrivalTrace, QPSSeries
from .admm import ADMMResult, fit_log_intensity
from .extrapolation import extrapolate_intensity
from .intensity import PiecewiseConstantIntensity
from .objective import RegularizedNHPPObjective

__all__ = ["NHPPModel", "NHPPFitResult"]


@dataclass(frozen=True)
class NHPPFitResult:
    """Summary of one NHPP fit.

    Attributes
    ----------
    log_intensity:
        Fitted log-intensity per training bin.
    intensity:
        ``exp(log_intensity)`` in queries per second.
    period_bins:
        Period used for the seasonal penalty (0 if none).
    periodicity:
        Full periodicity-detection result (``None`` when detection was
        skipped because a period was supplied explicitly).
    admm:
        Diagnostics of the ADMM run.
    bin_seconds:
        Width of the training bins.
    """

    log_intensity: np.ndarray
    intensity: np.ndarray
    period_bins: int
    periodicity: Optional[PeriodicityResult]
    admm: ADMMResult
    bin_seconds: float


class NHPPModel:
    """Regularized non-homogeneous Poisson process workload model.

    Parameters
    ----------
    config:
        NHPP hyper-parameters (regularization weights, ADMM settings).
    periodicity_config:
        Configuration of the embedded periodicity detector.
    bin_seconds:
        Default bin width used when fitting directly from an
        :class:`~repro.types.ArrivalTrace`.
    """

    def __init__(
        self,
        config: NHPPConfig | None = None,
        *,
        periodicity_config: PeriodicityConfig | None = None,
        bin_seconds: float = 60.0,
    ) -> None:
        self.config = config or NHPPConfig()
        self.periodicity_config = periodicity_config or PeriodicityConfig()
        self.bin_seconds = float(bin_seconds)
        self._fit_result: NHPPFitResult | None = None

    @classmethod
    def from_workload_config(cls, config: WorkloadModelConfig) -> "NHPPModel":
        """Build a model from a :class:`~repro.config.WorkloadModelConfig`."""
        return cls(
            config.nhpp,
            periodicity_config=config.periodicity,
            bin_seconds=config.bin_seconds,
        )

    # ------------------------------------------------------------------ fit

    def fit(
        self,
        data: QPSSeries | ArrivalTrace,
        *,
        period_bins: int | None = None,
        detect_periodicity: bool = True,
    ) -> "NHPPModel":
        """Fit the regularized NHPP to ``data``.

        Parameters
        ----------
        data:
            Either a :class:`~repro.types.QPSSeries` or an
            :class:`~repro.types.ArrivalTrace` (aggregated internally using
            ``bin_seconds``).
        period_bins:
            Explicit period to use for the seasonal penalty, bypassing
            detection.  ``0`` disables the penalty.
        detect_periodicity:
            When ``True`` (default) and no explicit period is given, the
            robust periodicity detector chooses the period.
        """
        series = self._as_series(data)
        periodicity_result: PeriodicityResult | None = None

        if period_bins is None and detect_periodicity:
            detector = PeriodicityDetector(self.periodicity_config)
            try:
                periodicity_result = detector.detect(series)
            except PeriodicityDetectionError:
                periodicity_result = None
            if periodicity_result is not None and periodicity_result.detected:
                period_bins = periodicity_result.period_bins
            else:
                period_bins = 0
        elif period_bins is None:
            period_bins = 0

        objective = RegularizedNHPPObjective(
            counts=series.counts,
            bin_seconds=series.bin_seconds,
            beta_smooth=self.config.beta_smooth,
            beta_period=self.config.beta_period,
            period_bins=period_bins or None,
        )
        with get_recorder().span("fit.admm"):
            admm_result = fit_log_intensity(objective, self.config.admm)
        intensity = np.maximum(np.exp(admm_result.log_intensity), self.config.min_intensity)

        self._fit_result = NHPPFitResult(
            log_intensity=admm_result.log_intensity,
            intensity=intensity,
            period_bins=int(period_bins or 0),
            periodicity=periodicity_result,
            admm=admm_result,
            bin_seconds=series.bin_seconds,
        )
        return self

    def _as_series(self, data: QPSSeries | ArrivalTrace) -> QPSSeries:
        if isinstance(data, QPSSeries):
            return data
        if isinstance(data, ArrivalTrace):
            return data.to_qps_series(self.bin_seconds)
        raise ValidationError(
            f"data must be a QPSSeries or ArrivalTrace, got {type(data).__name__}"
        )

    # -------------------------------------------------------------- queries

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called successfully."""
        return self._fit_result is not None

    @property
    def fit_result(self) -> NHPPFitResult:
        """Full fit diagnostics; raises if the model is not fitted."""
        if self._fit_result is None:
            raise ModelNotFittedError("NHPPModel must be fitted before use")
        return self._fit_result

    @property
    def fitted_intensity(self) -> PiecewiseConstantIntensity:
        """The fitted historical intensity as a piecewise-constant function."""
        result = self.fit_result
        return PiecewiseConstantIntensity(
            result.intensity, result.bin_seconds, extrapolation="hold"
        )

    @property
    def period_bins(self) -> int:
        """Period (bins) used during fitting; 0 when aperiodic."""
        return self.fit_result.period_bins

    @property
    def period_seconds(self) -> float:
        """Period in seconds; 0.0 when aperiodic."""
        result = self.fit_result
        return result.period_bins * result.bin_seconds

    def intensity_at(self, t: float | np.ndarray) -> np.ndarray | float:
        """Fitted historical intensity at training time(s) ``t`` (seconds)."""
        return self.fitted_intensity.value(t)

    def forecast(self, horizon_seconds: float | None = None) -> PiecewiseConstantIntensity:
        """Forecast intensity whose origin is the end of the training window.

        Parameters
        ----------
        horizon_seconds:
            Optional explicit horizon to materialize; the returned intensity
            extrapolates itself beyond its explicit window in either case.
        """
        result = self.fit_result
        return extrapolate_intensity(
            result.intensity,
            result.bin_seconds,
            period_bins=result.period_bins or None,
            horizon_seconds=horizon_seconds,
        )

    def expected_count(self, start: float, end: float) -> float:
        """Expected number of arrivals in ``[start, end)`` of training time."""
        if end < start:
            raise ValidationError(f"end ({end}) must be >= start ({start})")
        intensity = self.fitted_intensity
        return float(intensity.cumulative(end) - intensity.cumulative(start))
