"""Exact samplers for (non-)homogeneous Poisson processes.

Three sampling tasks appear in the pipeline:

* generating synthetic workload traces from a known intensity
  (:func:`sample_arrival_times`);
* generating per-bin counts for QPS-level simulations (:func:`sample_counts`);
* drawing Monte Carlo samples of the arrival times of the next ``K`` queries
  given a forecast intensity, which is what the stochastically constrained
  optimizer consumes (:func:`sample_next_arrivals`).

For a piecewise-constant intensity the first two are exact via per-bin
Poisson counts with uniform placement; the third uses the time-rescaling
representation: the ``i``-th arrival after time 0 occurs where the integrated
intensity reaches a ``Gamma(i, 1)`` variate.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_integer, check_non_negative, check_positive
from ..rng import RandomState, ensure_rng
from .intensity import PiecewiseConstantIntensity

__all__ = [
    "sample_counts",
    "sample_arrival_times",
    "sample_next_arrivals",
    "sample_homogeneous_arrivals",
]


def sample_counts(
    intensity: PiecewiseConstantIntensity,
    horizon_seconds: float,
    random_state: RandomState = None,
) -> np.ndarray:
    """Sample per-bin Poisson counts over ``[0, horizon_seconds)``.

    The returned array has one entry per ``intensity.bin_seconds`` bin.
    """
    check_positive(horizon_seconds, "horizon_seconds")
    rng = ensure_rng(random_state)
    n_bins = int(np.ceil(horizon_seconds / intensity.bin_seconds))
    times = (np.arange(n_bins) + 0.5) * intensity.bin_seconds
    rates = np.asarray(intensity.value(times), dtype=float) * intensity.bin_seconds
    # The final bin may be truncated by the horizon.
    last_width = horizon_seconds - (n_bins - 1) * intensity.bin_seconds
    rates[-1] *= last_width / intensity.bin_seconds
    return rng.poisson(np.maximum(rates, 0.0))


def sample_arrival_times(
    intensity: PiecewiseConstantIntensity,
    horizon_seconds: float,
    random_state: RandomState = None,
    *,
    vectorized: bool = False,
) -> np.ndarray:
    """Sample exact NHPP arrival times over ``[0, horizon_seconds)``.

    For each bin the number of arrivals is Poisson with mean
    ``lambda_bin * width`` and, conditionally on the count, the arrival times
    are i.i.d. uniform in the bin — the standard exact construction for
    piecewise-constant intensities.

    ``vectorized=True`` selects the bulk construction — one
    ``rng.poisson`` call over all bins, bin offsets placed with a single
    uniform draw via ``np.repeat`` — which samples from exactly the same
    distribution and is orders of magnitude faster on long horizons
    (~200x at 1e5 bins), but consumes the random stream in a different
    order: the same seed yields a different (equally valid) realization
    than the default per-bin loop.  The flag is opt-in so seeded baselines
    recorded with the loop construction stay bit-for-bit reproducible.
    """
    check_positive(horizon_seconds, "horizon_seconds")
    rng = ensure_rng(random_state)
    bin_seconds = intensity.bin_seconds
    n_bins = int(np.ceil(horizon_seconds / bin_seconds))
    if vectorized:
        starts = np.arange(n_bins) * bin_seconds
        widths = np.minimum(starts + bin_seconds, horizon_seconds) - starts
        keep = widths > 0
        starts, widths = starts[keep], widths[keep]
        rates = np.asarray(
            intensity.value(starts + 0.5 * widths), dtype=float
        ) * widths
        counts = rng.poisson(np.maximum(rates, 0.0))
        total = int(counts.sum())
        if total == 0:
            return np.empty(0)
        offsets = rng.uniform(0.0, 1.0, size=total) * np.repeat(widths, counts)
        out = np.repeat(starts, counts) + offsets
        out.sort()
        return out
    arrivals: list[np.ndarray] = []
    for b in range(n_bins):
        start = b * bin_seconds
        end = min((b + 1) * bin_seconds, horizon_seconds)
        width = end - start
        if width <= 0:
            continue
        rate = float(intensity.value(start + 0.5 * width)) * width
        count = int(rng.poisson(max(rate, 0.0)))
        if count:
            arrivals.append(start + rng.uniform(0.0, width, size=count))
    if not arrivals:
        return np.empty(0)
    out = np.concatenate(arrivals)
    out.sort()
    return out


def sample_next_arrivals(
    intensity: PiecewiseConstantIntensity,
    n_arrivals: int,
    n_samples: int,
    random_state: RandomState = None,
) -> np.ndarray:
    """Monte Carlo samples of the arrival times of the next ``n_arrivals`` queries.

    Parameters
    ----------
    intensity:
        Forecast intensity whose origin is "now".
    n_arrivals:
        Number of upcoming arrivals ``K`` to sample.
    n_samples:
        Number of Monte Carlo replications ``R``.
    random_state:
        Seed or generator.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(n_samples, n_arrivals)`` where column ``i`` holds
        samples of the arrival time of the ``(i+1)``-th upcoming query.

    Notes
    -----
    The construction uses the time-rescaling theorem: with
    ``Lambda(t) = int_0^t lambda``, the ``i``-th arrival time equals
    ``Lambda^{-1}(gamma_i)`` with ``gamma_i ~ Gamma(i, 1)``.  Sampling the
    cumulative sums of ``n_arrivals`` unit exponentials per replication gives
    all the Gamma variates at once.
    """
    check_integer(n_arrivals, "n_arrivals", minimum=1)
    check_integer(n_samples, "n_samples", minimum=1)
    rng = ensure_rng(random_state)
    exponentials = rng.exponential(1.0, size=(n_samples, n_arrivals))
    gammas = np.cumsum(exponentials, axis=1)
    flat = gammas.reshape(-1)
    times = np.asarray(intensity.inverse_cumulative(flat), dtype=float)
    return times.reshape(n_samples, n_arrivals)


def sample_homogeneous_arrivals(
    rate: float,
    horizon_seconds: float,
    random_state: RandomState = None,
) -> np.ndarray:
    """Sample arrival times of a homogeneous Poisson process with ``rate`` per second."""
    check_non_negative(rate, "rate")
    check_positive(horizon_seconds, "horizon_seconds")
    rng = ensure_rng(random_state)
    if rate == 0:
        return np.empty(0)
    count = int(rng.poisson(rate * horizon_seconds))
    if count == 0:
        return np.empty(0)
    times = rng.uniform(0.0, horizon_seconds, size=count)
    times.sort()
    return times
