"""The Adaptive Backup Pool (AdapBP) heuristic.

AdapBP adjusts the pool size to the traffic level: every ``update_interval``
seconds it estimates the current arrival rate as the average QPS over the
most recent ``rate_window`` seconds and resets the pool target to
``ceil(rate * rate_factor)``.  Between updates it behaves like Backup Pool
with the current target (replenish on every arrival, scale in when the target
drops).
"""

from __future__ import annotations

import math

from .._validation import check_non_negative, check_positive
from .base import Autoscaler, PlanningContext, ScalingResponse

__all__ = ["AdaptiveBackupPoolScaler"]


class AdaptiveBackupPoolScaler(Autoscaler):
    """Backup pool whose size tracks the recent arrival rate.

    Parameters
    ----------
    rate_factor:
        The pre-fixed constant multiplying the estimated QPS; the paper
        sweeps it from zero to hundreds.
    rate_window:
        Length (seconds) of the trailing window used to estimate the QPS
        (ten minutes in the paper).
    update_interval:
        Seconds between pool-size updates (ten minutes in the paper).
    max_pool_size:
        Safety cap on the pool target.
    """

    def __init__(
        self,
        rate_factor: float,
        *,
        rate_window: float = 600.0,
        update_interval: float = 600.0,
        max_pool_size: int = 100_000,
    ) -> None:
        self.rate_factor = check_non_negative(rate_factor, "rate_factor")
        self.rate_window = check_positive(rate_window, "rate_window")
        self.update_interval = check_positive(update_interval, "update_interval")
        self.max_pool_size = int(max_pool_size)
        self.name = f"AdapBP(factor={self.rate_factor:g})"
        self._target = 0

    @property
    def planning_interval(self) -> float:
        return self.update_interval

    @property
    def current_target(self) -> int:
        """The pool size currently being maintained."""
        return self._target

    def reset(self) -> None:
        self._target = 0

    def on_planning_tick(self, context: PlanningContext) -> ScalingResponse:
        """Re-estimate the arrival rate and resize the pool to match."""
        rate = context.recent_arrival_rate(self.rate_window)
        self._target = min(int(math.ceil(rate * self.rate_factor)), self.max_pool_size)
        return self._rebalance(context)

    def on_query_arrival(self, context: PlanningContext) -> ScalingResponse:
        """Replenish the pool to the current target after each arrival."""
        return self._rebalance(context, allow_scale_in=False)

    def arrival_kernel(self):
        """AdapBP's arrival hook is a pool top-up; the target only moves at
        planning ticks, so reading it once per chunk is exact."""
        from ..simulation.kernels import PoolTopUpKernel

        return PoolTopUpKernel(lambda: self._target)

    def _rebalance(
        self, context: PlanningContext, *, allow_scale_in: bool = True
    ) -> ScalingResponse:
        deficit = self._target - context.outstanding_instances
        if deficit > 0:
            return ScalingResponse.create_now(context.time, deficit)
        if deficit < 0 and allow_scale_in:
            return ScalingResponse(scale_in=-deficit)
        return ScalingResponse.empty()
