"""The query-count-based sequential scaling scheme (Algorithm 4).

This is the form of the scheme analysed by Propositions 1 and 2: planning is
triggered every ``m`` query arrivals and always stays ``kappa`` arrivals
ahead, where ``kappa`` (eq. 8) is the smallest look-ahead that makes the
HP-constrained decision feasible for every query under an intensity upper
bound ``lambda_bar``.

The time-based variant used in the experiments lives in
:mod:`repro.scaling.robustscaler`; this class exists both as a faithful
implementation of the published algorithm and as the vehicle for the
Proposition 1 regression test (empirical hit rate ``≈ 1 - alpha`` when the
true intensity is known).
"""

from __future__ import annotations


from .._validation import check_integer, check_probability
from ..config import PlannerConfig
from ..nhpp.intensity import PiecewiseConstantIntensity
from ..optimization.formulations import solve_hp_constrained
from ..optimization.montecarlo import generate_scenarios
from ..optimization.threshold import compute_kappa
from ..pending import PendingTimeModel
from ..rng import RandomState, ensure_rng
from ..types import ScalingAction
from .base import Autoscaler, PlanningContext, ScalingResponse

__all__ = ["SequentialHPScaler"]


class SequentialHPScaler(Autoscaler):
    """HP-constrained sequential scaling with ``kappa`` look-ahead (Algorithm 4).

    Parameters
    ----------
    forecast:
        Intensity of the upcoming arrivals with its origin at the start of
        the replayed trace; in the idealized setting of Proposition 1 this is
        the true intensity.
    pending_model:
        Distribution of the pending time ``tau``.
    target_hit_probability:
        The desired ``1 - alpha``.
    planning_every:
        ``m`` — plan once every ``m`` query arrivals.
    intensity_upper_bound:
        ``lambda_bar`` used in eq. (8); defaults to the maximum of the
        forecast over its explicit window.
    planner:
        Monte Carlo configuration (sample count, kappa cap).
    random_state:
        Seed or generator for the Monte Carlo scenarios.
    """

    def __init__(
        self,
        forecast: PiecewiseConstantIntensity,
        pending_model: PendingTimeModel,
        *,
        target_hit_probability: float = 0.9,
        planning_every: int = 1,
        intensity_upper_bound: float | None = None,
        planner: PlannerConfig | None = None,
        random_state: RandomState = None,
    ) -> None:
        self.forecast = forecast
        self.pending_model = pending_model
        self.target = check_probability(
            target_hit_probability, "target_hit_probability"
        )
        self.planning_every = check_integer(planning_every, "planning_every", minimum=1)
        self.planner = planner or PlannerConfig()
        if intensity_upper_bound is None:
            intensity_upper_bound = forecast.upper_bound()
        self.intensity_upper_bound = float(intensity_upper_bound)
        self._seed = random_state
        self._rng = ensure_rng(random_state)
        self.kappa = compute_kappa(
            self.intensity_upper_bound,
            pending_model,
            self.target,
            max_kappa=self.planner.kappa_cap,
            n_samples=self.planner.monte_carlo_samples,
            random_state=self._rng,
        )
        self.name = f"SequentialHP(target={self.target:g}, m={self.planning_every})"

    # ----------------------------------------------------------- interface

    def reset(self) -> None:
        self._rng = ensure_rng(self._seed)

    def initialize(self, context: PlanningContext) -> ScalingResponse:
        """Line 4 of Algorithm 4: plan the first ``kappa + m`` queries at time 0."""
        return self._plan_block(context, first_index=0, count=self.kappa + self.planning_every)

    def on_query_arrival(self, context: PlanningContext) -> ScalingResponse:
        """Lines 5-9: every ``m`` arrivals, plan the next block of ``m`` queries."""
        if context.n_arrivals % self.planning_every != 0:
            return ScalingResponse.empty()
        # Plan queries kappa+1 .. kappa+m ahead of the ones seen so far; the
        # first kappa upcoming queries are covered by the previous round.
        return self._plan_block(context, first_index=self.kappa, count=self.planning_every)

    # ------------------------------------------------------------ internal

    def _plan_block(
        self, context: PlanningContext, first_index: int, count: int
    ) -> ScalingResponse:
        """Plan creation times for upcoming queries ``first_index .. first_index+count-1``.

        Indices are 0-based positions among the not-yet-arrived queries as
        seen from ``context.time``.
        """
        if count <= 0:
            return ScalingResponse.empty()
        local_intensity = self.forecast.shift(context.time)
        scenarios = generate_scenarios(
            local_intensity,
            self.pending_model,
            n_queries=first_index + count,
            n_samples=self.planner.monte_carlo_samples,
            random_state=self._rng,
        )
        actions: list[ScalingAction] = []
        for index in range(first_index, first_index + count):
            xi, tau = scenarios.for_query(index)
            decision = solve_hp_constrained(xi, tau, self.target)
            actions.append(
                ScalingAction(
                    creation_time=context.time + decision.creation_time,
                    planned_at=context.time,
                    target_query_index=context.n_arrivals + index,
                )
            )
        return ScalingResponse(actions=actions)
