"""Autoscaling policies: heuristic baselines and the RobustScaler variants.

Every policy implements the :class:`~repro.scaling.base.Autoscaler` interface
consumed by the simulator: it is consulted at time zero, at every query
arrival, and (optionally) on a periodic planning tick, and responds with
instance creations, cancellations of scheduled creations, and scale-ins.
"""

from .base import Autoscaler, PlanningContext, ScalingResponse
from .backup_pool import BackupPoolScaler, ReactiveScaler
from .adaptive_backup_pool import AdaptiveBackupPoolScaler
from .robustscaler import RobustScaler, RobustScalerObjective
from .sequential import SequentialHPScaler
from .calibration import CalibrationResult, calibrate_hit_probability

__all__ = [
    "Autoscaler",
    "PlanningContext",
    "ScalingResponse",
    "BackupPoolScaler",
    "ReactiveScaler",
    "AdaptiveBackupPoolScaler",
    "RobustScaler",
    "RobustScalerObjective",
    "SequentialHPScaler",
    "CalibrationResult",
    "calibrate_hit_probability",
]
