"""Nominal-to-actual hitting-probability calibration (Section VI-C guidelines).

The hitting probability attained on real traffic can deviate from the nominal
target when the intensity estimate carries error (Proposition 2).  The paper
therefore recommends running the autoscaler on training data with a grid of
nominal levels, recording the achieved hitting probabilities, and using the
resulting mapping to pick the nominal level that realizes a desired actual
level.  :func:`calibrate_hit_probability` performs that procedure against the
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .._validation import as_1d_float_array
from ..config import SimulationConfig
from ..exceptions import ValidationError
from ..types import ArrivalTrace
from .base import Autoscaler

__all__ = ["CalibrationResult", "calibrate_hit_probability"]


@dataclass(frozen=True)
class CalibrationResult:
    """The fitted nominal-to-actual hitting-probability mapping.

    Attributes
    ----------
    nominal_levels:
        The nominal targets that were simulated, ascending.
    achieved_levels:
        The hit rates actually achieved for each nominal target.
    """

    nominal_levels: np.ndarray
    achieved_levels: np.ndarray

    def nominal_for(self, desired_actual: float) -> float:
        """Nominal level to request so the achieved hit rate is ``desired_actual``.

        Uses monotone linear interpolation of the calibration curve; desired
        levels outside the achieved range are clamped to the nearest endpoint.
        """
        if not 0.0 <= desired_actual <= 1.0:
            raise ValidationError(
                f"desired_actual must lie in [0, 1], got {desired_actual}"
            )
        achieved = self.achieved_levels
        nominal = self.nominal_levels
        order = np.argsort(achieved)
        achieved_sorted = achieved[order]
        nominal_sorted = nominal[order]
        return float(np.interp(desired_actual, achieved_sorted, nominal_sorted))

    def achieved_for(self, nominal: float) -> float:
        """Predicted achieved hit rate when requesting ``nominal``."""
        return float(np.interp(nominal, self.nominal_levels, self.achieved_levels))


def calibrate_hit_probability(
    scaler_factory: Callable[[float], Autoscaler],
    training_trace: ArrivalTrace,
    nominal_levels: Sequence[float],
    *,
    simulation_config: SimulationConfig | None = None,
) -> CalibrationResult:
    """Run the autoscaler on training data over a grid of nominal HP levels.

    Parameters
    ----------
    scaler_factory:
        Callable mapping a nominal hitting-probability target to a fresh
        autoscaler instance (e.g. ``lambda p: RobustScaler(..., target=p)``).
    training_trace:
        The trace to replay for calibration (training data, not test data).
    nominal_levels:
        The grid ``0 < p_1 < ... < p_B < 1`` of nominal targets to try.
    simulation_config:
        Simulator configuration used for the calibration replays.
    """
    # Imported lazily to avoid a circular import: the simulator package
    # depends on the autoscaler interface defined in this package.
    from ..config import SimulationConfig
    from ..simulation.runner import DEFAULT_ENGINE, create_simulator
    from dataclasses import replace

    if simulation_config is None:
        simulation_config = SimulationConfig(engine=DEFAULT_ENGINE)
    elif simulation_config.engine is None:
        # Choose the engine here so the caller's engine-less config does not
        # route through the deprecated implicit create_simulator path.
        simulation_config = replace(simulation_config, engine=DEFAULT_ENGINE)

    levels = as_1d_float_array(nominal_levels, "nominal_levels")
    if levels.size == 0:
        raise ValidationError("nominal_levels must not be empty")
    if np.any((levels <= 0) | (levels >= 1)):
        raise ValidationError("nominal_levels must lie strictly in (0, 1)")
    levels = np.sort(levels)
    simulator = create_simulator(simulation_config)
    achieved = np.empty_like(levels)
    for i, level in enumerate(levels):
        scaler = scaler_factory(float(level))
        result = simulator.replay(training_trace, scaler)
        achieved[i] = result.hit_rate
    return CalibrationResult(nominal_levels=levels, achieved_levels=achieved)
