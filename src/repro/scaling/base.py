"""The autoscaler interface shared by all policies.

The simulator drives a policy through three hooks:

* :meth:`Autoscaler.initialize` — once, at simulation time 0;
* :meth:`Autoscaler.on_query_arrival` — after every query arrival has been
  resolved (the policy sees the updated pool state);
* :meth:`Autoscaler.on_planning_tick` — every ``planning_interval`` seconds,
  when the policy declares one.

Each hook receives a :class:`PlanningContext` snapshot of what the policy is
allowed to observe (time, arrival history, pool occupancy — never the future
of the trace) and returns a :class:`ScalingResponse` describing instance
creations, cancellations of previously scheduled creations, and scale-ins of
idle instances.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from ..types import ScalingAction

__all__ = ["PlanningContext", "ScalingResponse", "Autoscaler"]


@dataclass(frozen=True)
class PlanningContext:
    """What a policy observes when it is asked for a decision.

    Attributes
    ----------
    time:
        Current simulation time in seconds.
    n_arrivals:
        Number of queries that have arrived so far (including the one that
        triggered an arrival hook).
    arrival_history:
        Arrival times (seconds) of all queries seen so far, oldest first.
    created_unassigned:
        Instances that exist (created, possibly still pending) and have not
        been assigned to a query yet.
    ready_unassigned:
        Subset of ``created_unassigned`` that has finished startup.
    scheduled_creations:
        Scaling actions accepted earlier whose creation time has not been
        reached yet.
    """

    time: float
    n_arrivals: int
    arrival_history: np.ndarray
    created_unassigned: int
    ready_unassigned: int
    scheduled_creations: int

    @property
    def outstanding_instances(self) -> int:
        """Instances already committed to future queries (created + scheduled)."""
        return self.created_unassigned + self.scheduled_creations

    def recent_arrival_rate(self, window_seconds: float) -> float:
        """Average arrival rate (queries/second) over the trailing window.

        Returns 0 when the window is empty.  Used by the adaptive-backup-pool
        heuristic, which tracks the QPS of the most recent ten minutes.
        """
        if window_seconds <= 0:
            return 0.0
        start = self.time - window_seconds
        # The history is sorted by construction, so a binary search suffices.
        first = int(np.searchsorted(self.arrival_history, start, side="left"))
        count = self.arrival_history.size - first
        return count / window_seconds


@dataclass
class ScalingResponse:
    """A policy's answer to one hook invocation.

    Attributes
    ----------
    actions:
        New instance creations to schedule; creation times are absolute
        simulation times and may equal the current time ("create now").
    cancel_scheduled:
        Number of not-yet-executed scheduled creations to cancel, earliest
        first.
    scale_in:
        Number of idle (created, unassigned) instances to delete immediately,
        latest-ready first.
    """

    actions: list[ScalingAction] = field(default_factory=list)
    cancel_scheduled: int = 0
    scale_in: int = 0

    @classmethod
    def empty(cls) -> "ScalingResponse":
        """A response that does nothing."""
        return cls()

    @classmethod
    def create_now(cls, time: float, count: int = 1) -> "ScalingResponse":
        """A response that creates ``count`` instances immediately."""
        actions = [ScalingAction(creation_time=time, planned_at=time) for _ in range(count)]
        return cls(actions=actions)


class Autoscaler(abc.ABC):
    """Base class for scaling-per-query autoscaling policies."""

    #: Human-readable policy name used in reports; subclasses override.
    name: str = "autoscaler"

    #: Set to ``False`` by policies whose :meth:`on_query_arrival` is
    #: guaranteed to return an empty response, allowing batched engines to
    #: vectorize over arrival chunks instead of calling the hook per query.
    #: The reference engine ignores the flag (it still invokes the no-op
    #: hook), so declaring it never changes simulation outcomes.
    reacts_to_arrivals: bool = True

    @property
    def arrival_hook_is_passive(self) -> bool:
        """True when per-arrival hook calls provably cannot change state.

        Either the policy declares :attr:`reacts_to_arrivals` as ``False``
        or it never overrode the base-class no-op hook.
        """
        if not self.reacts_to_arrivals:
            return True
        return type(self).on_query_arrival is Autoscaler.on_query_arrival

    @property
    def planning_interval(self) -> float | None:
        """Seconds between planning ticks, or ``None`` for no periodic ticks."""
        return None

    def initialize(self, context: PlanningContext) -> ScalingResponse:
        """Called once at simulation time 0 before any arrival."""
        return ScalingResponse.empty()

    def on_query_arrival(self, context: PlanningContext) -> ScalingResponse:
        """Called after each query arrival has been matched to an instance.

        The context is only valid for the duration of the call: fast engines
        may reuse one mutable snapshot across arrivals, so policies must not
        stash it for later inspection (read what you need, then return).
        """
        return ScalingResponse.empty()

    def arrival_kernel(self):
        """Optional array-program equivalent of :meth:`on_query_arrival`.

        Policies whose per-arrival decision can be expressed over flat
        numpy arrays may return a
        :class:`repro.simulation.kernels.ArrivalKernel`; kernel-enabled
        engines then serve whole chunks of arrivals (everything between two
        planning ticks) through it instead of dispatching the hook per
        query, with bit-identical results.  Returning a kernel is a
        *promise of equivalence*: the kernel must reproduce the hook's
        decisions exactly (see :class:`~repro.simulation.kernels.ArrivalKernel`
        for the contract).  The default is ``None`` — no kernel, per-query
        hook dispatch.  The reference engine ignores kernels entirely, so
        declaring one never changes simulation outcomes.
        """
        return None

    def on_planning_tick(self, context: PlanningContext) -> ScalingResponse:
        """Called every :attr:`planning_interval` seconds (if not ``None``)."""
        return ScalingResponse.empty()

    def reset(self) -> None:
        """Clear any per-run state; called by the runner before each replay."""

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(name={self.name!r})"
