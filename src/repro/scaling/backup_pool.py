"""The Backup Pool (BP) heuristic and the purely reactive baseline.

BP constantly maintains a pool of ``B`` warm (or warming) instances: upon
each query arrival one instance is taken from the pool and the pool is
immediately replenished with a fresh instance.  ``B = 0`` degenerates to the
purely reactive strategy that cold-starts an instance for every query, which
is also the cost reference for the "relative cost" metric.
"""

from __future__ import annotations

from .._validation import check_integer
from .base import Autoscaler, PlanningContext, ScalingResponse

__all__ = ["BackupPoolScaler", "ReactiveScaler"]


class BackupPoolScaler(Autoscaler):
    """Maintain a fixed-size pool of ``pool_size`` instances.

    Parameters
    ----------
    pool_size:
        The number of instances ``B`` kept warm at all times.
    """

    def __init__(self, pool_size: int) -> None:
        self.pool_size = check_integer(pool_size, "pool_size", minimum=0)
        self.name = f"BP(B={self.pool_size})"

    def initialize(self, context: PlanningContext) -> ScalingResponse:
        """Fill the pool at time zero."""
        return ScalingResponse.create_now(context.time, self.pool_size)

    def on_query_arrival(self, context: PlanningContext) -> ScalingResponse:
        """Top the pool back up to ``pool_size`` after each arrival."""
        deficit = self.pool_size - context.outstanding_instances
        if deficit <= 0:
            return ScalingResponse.empty()
        return ScalingResponse.create_now(context.time, deficit)

    def arrival_kernel(self):
        """BP's arrival hook is a pool top-up with a constant target."""
        from ..simulation.kernels import PoolTopUpKernel

        return PoolTopUpKernel(lambda: self.pool_size)


class ReactiveScaler(BackupPoolScaler):
    """Purely reactive scaling: no pool, every query cold-starts an instance.

    Equivalent to ``BackupPoolScaler(0)``; exists as a named class because it
    doubles as the cost reference for the ``relative cost`` metric.
    """

    #: With a zero-size pool the arrival hook's deficit is never positive,
    #: so batched engines may skip it and vectorize whole arrival chunks.
    reacts_to_arrivals = False

    def __init__(self) -> None:
        super().__init__(0)
        self.name = "Reactive"
