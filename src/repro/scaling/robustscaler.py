"""RobustScaler: the proposed proactive autoscaler (time-based planning).

This is the variant evaluated throughout Section VII: planning runs every
``planning_interval`` seconds and, in each round, the instance creation times
that fall inside the upcoming planning window are computed from the forecast
NHPP intensity through one of the three stochastically constrained
formulations:

* ``RobustScaler-HP``   — HP-constrained decisions, eq. (3);
* ``RobustScaler-RT``   — RT-constrained decisions, eq. (5) / Algorithm 3;
* ``RobustScaler-cost`` — cost-constrained decisions, eq. (7).

At every planning tick the policy

1. shifts the forecast intensity so that its origin is "now",
2. draws joint Monte Carlo scenarios of the arrival and pending times of the
   next ``K`` queries, where ``K`` generously covers the planning window,
3. skips the queries already covered by outstanding instances (the look-ahead
   role played by ``kappa`` in the query-count-based Algorithm 4), and
4. emits creation actions for the remaining queries whose optimal creation
   time lands inside the window; negative optima are clamped to "create now".
"""

from __future__ import annotations

import numpy as np

from .._validation import check_non_negative
from ..config import PlannerConfig
from ..exceptions import PlanningError
from ..nhpp.intensity import PiecewiseConstantIntensity
from ..nhpp.model import NHPPModel
from ..optimization.formulations import (
    DecisionObjective,
    solve_cost_constrained,
    solve_hp_constrained,
    solve_rt_constrained,
)
from ..optimization.montecarlo import generate_scenarios
from ..pending import PendingTimeModel
from ..rng import RandomState, ensure_rng
from ..types import ScalingAction
from .base import Autoscaler, PlanningContext, ScalingResponse

__all__ = ["RobustScaler", "RobustScalerObjective"]

#: Public alias matching the paper's naming of the three variants.
RobustScalerObjective = DecisionObjective


class RobustScaler(Autoscaler):
    """NHPP-driven proactive autoscaler with stochastically constrained decisions.

    Parameters
    ----------
    forecast:
        Forecast intensity whose time origin coincides with the start of the
        replayed (test) trace — typically ``NHPPModel.forecast()``.
    pending_model:
        Distribution of the instance startup time ``tau``.
    objective:
        Which formulation drives the decisions (HP, RT or cost).
    target:
        The constraint level: target hitting probability ``1 - alpha`` for
        HP, waiting-time budget ``d - mu_s`` (seconds) for RT, or idle-cost
        budget ``B - mu_tau - mu_s`` (seconds) for cost.
    planner:
        Planning-frequency and Monte Carlo configuration.
    random_state:
        Seed or generator for the Monte Carlo scenarios.
    """

    def __init__(
        self,
        forecast: PiecewiseConstantIntensity,
        pending_model: PendingTimeModel,
        *,
        objective: DecisionObjective = DecisionObjective.HIT_PROBABILITY,
        target: float = 0.9,
        planner: PlannerConfig | None = None,
        random_state: RandomState = None,
    ) -> None:
        if not isinstance(forecast, PiecewiseConstantIntensity):
            raise PlanningError("forecast must be a PiecewiseConstantIntensity")
        self.forecast = forecast
        self.pending_model = pending_model
        self.objective = objective
        self.target = self._validate_target(objective, target)
        self.planner = planner or PlannerConfig()
        self._seed = random_state
        self._rng = ensure_rng(random_state)
        self.name = f"RobustScaler-{objective.value.upper()}(target={target:g})"

    @classmethod
    def from_model(
        cls,
        model: NHPPModel,
        pending_model: PendingTimeModel,
        *,
        objective: DecisionObjective = DecisionObjective.HIT_PROBABILITY,
        target: float = 0.9,
        planner: PlannerConfig | None = None,
        random_state: RandomState = None,
    ) -> "RobustScaler":
        """Build the policy directly from a fitted :class:`NHPPModel`."""
        return cls(
            model.forecast(),
            pending_model,
            objective=objective,
            target=target,
            planner=planner,
            random_state=random_state,
        )

    @staticmethod
    def _validate_target(objective: DecisionObjective, target: float) -> float:
        if objective is DecisionObjective.HIT_PROBABILITY:
            if not 0.0 <= target <= 1.0:
                raise PlanningError(
                    f"HP target must lie in [0, 1], got {target}"
                )
            return float(target)
        return check_non_negative(float(target), "target")

    # ----------------------------------------------------------- interface

    @property
    def planning_interval(self) -> float:
        return self.planner.planning_interval

    def reset(self) -> None:
        self._rng = ensure_rng(self._seed)

    def initialize(self, context: PlanningContext) -> ScalingResponse:
        return self._plan(context)

    def on_planning_tick(self, context: PlanningContext) -> ScalingResponse:
        return self._plan(context)

    # ------------------------------------------------------------ planning

    def _plan(self, context: PlanningContext) -> ScalingResponse:
        """One planning round: commit decisions for every query that needs one.

        Two kinds of upcoming queries get a committed creation time in this
        round (decisions, once committed, are never revisited — that is what
        makes the stochastic-constraint guarantee of Section VI-C hold):

        * queries whose optimal creation time falls inside the upcoming
          planning window (they must be acted on before the next round), and
        * the next ``m_t`` uncovered queries regardless of how far in the
          future their creation time lies, where ``m_t`` covers the arrivals
          expected before the next round (at least one).  This is the
          time-based counterpart of planning ``kappa + m`` arrivals ahead in
          Algorithm 4; without it a low-traffic workload would have its
          decisions perpetually postponed and degenerate to reactive scaling.
        """
        now = context.time
        window = self.planner.planning_interval + self.planner.lookahead_margin
        local_intensity = self.forecast.shift(now)

        expected_in_window = float(local_intensity.cumulative(window))
        min_commitments = max(
            1, int(np.ceil(expected_in_window + 2.0 * np.sqrt(expected_in_window)))
        )
        n_to_plan = self._queries_to_consider(
            local_intensity, window, context, min_commitments
        )
        outstanding = context.outstanding_instances
        if n_to_plan <= outstanding:
            return ScalingResponse.empty()

        scenarios = generate_scenarios(
            local_intensity,
            self.pending_model,
            n_queries=n_to_plan,
            n_samples=self.planner.monte_carlo_samples,
            random_state=self._rng,
        )

        actions: list[ScalingAction] = []
        committed_beyond_window = 0
        for index in range(outstanding, n_to_plan):
            xi, tau = scenarios.for_query(index)
            decision = self._solve(xi, tau)
            relative_creation = decision.creation_time
            within_window = relative_creation <= window
            if not within_window:
                # Algorithm 4 plans "kappa + m" arrivals ahead: the queries
                # whose creation falls inside the window play the role of the
                # kappa part, and we additionally commit the next
                # ``min_commitments`` queries beyond the window so that the
                # arrivals expected before the next round are already covered.
                if committed_beyond_window >= min_commitments:
                    break
                committed_beyond_window += 1
            if relative_creation > self.planner.max_plan_horizon:
                break
            actions.append(
                ScalingAction(
                    creation_time=now + relative_creation,
                    planned_at=now,
                    target_query_index=context.n_arrivals + index,
                )
            )
        return ScalingResponse(actions=actions)

    def _queries_to_consider(
        self,
        local_intensity: PiecewiseConstantIntensity,
        window: float,
        context: PlanningContext,
        min_commitments: int,
    ) -> int:
        """Upper bound on how many upcoming queries could need creation in this round.

        A query's creation time can precede its arrival by at most (roughly)
        the pending-time upper bound plus the waiting/cost budget, so queries
        arriving within ``window + slack`` are the only window candidates.
        The Poisson count over that horizon is bounded by its mean plus a few
        standard deviations; on top of that we always consider the mandatory
        look-ahead commitments.
        """
        slack = window + self._lookahead_slack()
        expected = float(local_intensity.cumulative(slack))
        bound = int(np.ceil(expected + 4.0 * np.sqrt(expected) + 5.0)) + min_commitments
        cap = context.outstanding_instances + 20_000
        return min(bound, cap)

    def _lookahead_slack(self) -> float:
        pending_bound = self.pending_model.upper_bound
        if not np.isfinite(pending_bound):
            pending_bound = 4.0 * self.pending_model.mean
        if self.objective is DecisionObjective.HIT_PROBABILITY:
            return pending_bound
        if self.objective is DecisionObjective.RESPONSE_TIME:
            return pending_bound + self.target
        return pending_bound + self.target

    def _solve(self, xi: np.ndarray, tau: np.ndarray):
        if self.objective is DecisionObjective.HIT_PROBABILITY:
            return solve_hp_constrained(xi, tau, self.target)
        if self.objective is DecisionObjective.RESPONSE_TIME:
            return solve_rt_constrained(xi, tau, self.target)
        return solve_cost_constrained(xi, tau, self.target)
