"""Per-run telemetry snapshots: the persisted, diffable performance record.

A snapshot is the plain-dict summary of one run's :class:`~repro.telemetry.Recorder`
— merged metrics from every process that worked on the run, the top-N
slowest spans, and enough provenance (experiment, engine, workers, package
version) to interpret the numbers later.  When a run executes with both a
store and a ``run_id``, the snapshot is persisted in the store's
``telemetry/`` namespace keyed by the run id, which is what the

    repro telemetry show <run-id>
    repro telemetry diff <run-a> <run-b>

CLI subcommands read.  ``diff`` turns perf regressions between two runs
(reference vs batched engine, cold vs warm store) into a one-command
comparison of counters and latency distributions.

Snapshots are advisory observability artifacts: losing one never affects
results or resumability, so :func:`gc_orphan_snapshots` freely reaps
snapshots whose run journal has disappeared from the store.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..store.artifacts import ArtifactStore

from .recorder import Recorder

__all__ = [
    "TELEMETRY_NAMESPACE",
    "build_snapshot",
    "diff_snapshots",
    "gc_orphan_snapshots",
    "load_snapshot",
    "persist_snapshot",
    "snapshot_key",
    "span_rows",
    "summarize_snapshot",
]

#: Store namespace telemetry snapshots are persisted under.
TELEMETRY_NAMESPACE = "telemetry"

#: Version of the snapshot payload layout.
SNAPSHOT_SCHEMA = 1

#: Spans kept in the persisted snapshot (slowest first).
DEFAULT_TOP_SPANS = 50


def snapshot_key(run_id: str) -> tuple:
    """The store key of ``run_id``'s telemetry snapshot."""
    return ("telemetry-snapshot", str(run_id))


def build_snapshot(
    recorder: Recorder,
    *,
    run_id: str | None = None,
    provenance: Mapping | None = None,
    top_spans: int = DEFAULT_TOP_SPANS,
) -> dict:
    """Package ``recorder``'s state as a persistable snapshot payload.

    Spans are ranked by duration and truncated to ``top_spans`` (the full
    count is preserved in ``n_spans``); metrics are carried whole.
    """
    state = recorder.snapshot()
    spans = sorted(
        state["spans"], key=lambda record: record["duration_seconds"], reverse=True
    )[: max(int(top_spans), 0)]
    return {
        "schema": SNAPSHOT_SCHEMA,
        "run_id": None if run_id is None else str(run_id),
        "created_at": time.time(),
        "provenance": dict(provenance or {}),
        "counters": state["counters"],
        "gauges": state["gauges"],
        "histograms": state["histograms"],
        "spans": spans,
        "n_spans": state["n_spans"],
    }


def persist_snapshot(store: "ArtifactStore", snapshot: Mapping) -> None:
    """Install ``snapshot`` in the store's ``telemetry/`` namespace.

    The snapshot must carry a ``run_id`` — that is the handle ``repro
    telemetry show`` addresses it by.
    """
    run_id = snapshot.get("run_id")
    if not run_id:
        raise ValueError("cannot persist a telemetry snapshot without a run_id")
    store.put(TELEMETRY_NAMESPACE, snapshot_key(run_id), dict(snapshot))


def load_snapshot(store: "ArtifactStore", run_id: str) -> dict | None:
    """The persisted snapshot of ``run_id``, or ``None`` when absent."""
    payload = store.get(TELEMETRY_NAMESPACE, snapshot_key(run_id))
    if not isinstance(payload, dict) or "counters" not in payload:
        return None
    return payload


# ------------------------------------------------------------ presentation


def _scalar_metrics(snapshot: Mapping) -> dict[str, int | float | None]:
    """Counters and gauges of ``snapshot`` as one flat name → value map."""
    flat: dict[str, int | float | None] = {}
    flat.update(snapshot.get("counters") or {})
    flat.update(snapshot.get("gauges") or {})
    return flat


def _histogram_summaries(snapshot: Mapping) -> dict[str, dict]:
    """Histograms reduced to count/mean/max rows (keyed ``name.stat``)."""
    flat: dict[str, dict] = {}
    for name, payload in (snapshot.get("histograms") or {}).items():
        count = int(payload.get("count", 0))
        total = float(payload.get("sum", 0.0))
        flat[name] = {
            "count": count,
            "mean": total / count if count else None,
            "max": payload.get("max"),
        }
    return flat


def summarize_snapshot(snapshot: Mapping) -> list[dict]:
    """One ``{"metric", "value"}`` row per recorded metric, sorted by name."""
    rows = [
        {"metric": name, "value": value}
        for name, value in sorted(_scalar_metrics(snapshot).items())
    ]
    for name, summary in sorted(_histogram_summaries(snapshot).items()):
        mean = summary["mean"]
        peak = summary["max"]
        rows.append(
            {
                "metric": name,
                "value": (
                    f"n={summary['count']}"
                    + (f", mean={mean:.6g}" if mean is not None else "")
                    + (f", max={peak:.6g}" if peak is not None else "")
                ),
            }
        )
    return rows


def span_rows(snapshot: Mapping, limit: int = 15) -> list[dict]:
    """The snapshot's top spans as report rows, slowest first."""
    spans = sorted(
        snapshot.get("spans") or (),
        key=lambda record: record["duration_seconds"],
        reverse=True,
    )
    return [
        {
            "span": record["name"],
            "depth": record["depth"],
            "start_s": round(float(record["start"]), 4),
            "duration_s": round(float(record["duration_seconds"]), 6),
        }
        for record in spans[: max(int(limit), 0)]
    ]


def diff_snapshots(a: Mapping, b: Mapping) -> list[dict]:
    """Metric-by-metric comparison rows between two snapshots.

    Counters and gauges compare by value; histograms compare their count
    and mean.  ``delta`` is ``b - a`` and ``ratio`` is ``b / a`` (``None``
    where undefined), so regressions read directly off the ratio column.
    """
    rows: list[dict] = []

    def compare(name: str, left: object, right: object) -> dict:
        delta = None
        ratio = None
        if isinstance(left, (int, float)) and isinstance(right, (int, float)):
            delta = right - left
            ratio = right / left if left else None
        return {
            "metric": name,
            "a": left,
            "b": right,
            "delta": delta,
            "ratio": None if ratio is None else round(ratio, 4),
        }

    scalars_a = _scalar_metrics(a)
    scalars_b = _scalar_metrics(b)
    for name in sorted(set(scalars_a) | set(scalars_b)):
        rows.append(compare(name, scalars_a.get(name), scalars_b.get(name)))
    hists_a = _histogram_summaries(a)
    hists_b = _histogram_summaries(b)
    for name in sorted(set(hists_a) | set(hists_b)):
        left = hists_a.get(name, {})
        right = hists_b.get(name, {})
        rows.append(compare(f"{name}.count", left.get("count"), right.get("count")))
        rows.append(compare(f"{name}.mean", left.get("mean"), right.get("mean")))
    return rows


# ------------------------------------------------------------- maintenance


def gc_orphan_snapshots(store: "ArtifactStore") -> tuple[int, int]:
    """Reap telemetry snapshots whose run journal is gone from ``store``.

    A snapshot is an observability artifact *about* a journaled run; once
    the run's journal records and index entry have been evicted (or the
    run id was never journaled in this store), the snapshot describes
    nothing that can be resumed or re-read and is reclaimed.  Returns
    ``(removed, freed_bytes)``.
    """
    from ..store.runs import list_runs

    live = {row["run_id"] for row in list_runs(store)}
    removed = 0
    freed = 0
    for entry in store.entries(TELEMETRY_NAMESPACE):
        payload = store.read_entry(entry)
        run_id = payload.get("run_id") if isinstance(payload, dict) else None
        if run_id is not None and run_id in live:
            continue
        try:
            entry.path.unlink()
        except OSError:
            continue
        removed += 1
        freed += entry.size_bytes
    return removed, freed
