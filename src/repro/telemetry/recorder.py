"""The :class:`Recorder`: one object collecting a run's metrics and spans.

A recorder bundles a :class:`~repro.telemetry.metrics.MetricsRegistry` with
a lightweight span collector.  Spans are ``time.perf_counter`` intervals
with parent/child nesting::

    with recorder.span("fit.admm"):
        ...

Each closed span becomes one flat record (``id`` / ``parent`` / ``name`` /
``start`` / ``duration_seconds`` / ``depth``), so the whole trace serializes
as JSONL (:meth:`Recorder.trace_jsonl`) and the snapshot artifact keeps the
top-N slowest spans without reconstructing a tree.

**Activation.**  Instrumented code (the engines, the store, the workload
cache) does not take a recorder argument — it asks for the ambient one via
:func:`get_recorder`, which defaults to the :data:`NULL_RECORDER`.  The null
recorder's ``enabled`` flag is ``False`` and every method is a no-op, so
the disabled path costs one attribute check at the instrumentation sites
(which are themselves placed outside per-query hot loops).  Callers that
want telemetry activate a real recorder for a dynamic extent::

    with telemetry.use(recorder):
        run_tasks(...)

Activation is process-global (one ambient recorder per process, matching
the one-run-at-a-time execution model); each pool worker activates its own
recorder for the duration of a chunk and ships the snapshot back to the
parent, which folds it in via :meth:`Recorder.merge_snapshot`.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Mapping

from .metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "get_recorder",
    "set_recorder",
    "use",
]

#: Spans kept per recorder before further spans are counted but dropped
#: (a runaway instrumentation loop must not exhaust memory).
MAX_SPANS = 100_000


class _Span:
    """One ``with``-scoped measurement; created by :meth:`Recorder.span`."""

    __slots__ = ("_recorder", "name", "_id", "_parent", "_started")

    def __init__(self, recorder: "Recorder", name: str) -> None:
        self._recorder = recorder
        self.name = name

    def __enter__(self) -> "_Span":
        recorder = self._recorder
        self._id = recorder._next_span_id
        recorder._next_span_id += 1
        stack = recorder._span_stack
        self._parent = stack[-1] if stack else None
        stack.append(self._id)
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        ended = time.perf_counter()
        recorder = self._recorder
        recorder._span_stack.pop()
        if len(recorder.spans) >= MAX_SPANS:
            recorder.dropped_spans += 1
            return
        recorder.spans.append(
            {
                "id": self._id,
                "parent": self._parent,
                "name": self.name,
                "start": self._started - recorder._t0,
                "duration_seconds": ended - self._started,
                "depth": len(recorder._span_stack),
            }
        )


class _NullSpan:
    """Reusable no-op context manager handed out by the null recorder."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


class _NullMetric:
    """No-op counter/gauge/histogram stand-in."""

    __slots__ = ()

    def inc(self, amount: int | float = 1) -> None:
        pass

    def set(self, value: int | float) -> None:
        pass

    def observe(self, value: int | float) -> None:
        pass


_NULL_SPAN = _NullSpan()
_NULL_METRIC = _NullMetric()


class NullRecorder:
    """The disabled recorder: every operation is a no-op.

    Instrumentation sites guard their work with ``if recorder.enabled`` so
    the disabled path performs no bookkeeping at all; the methods below
    exist so unguarded convenience calls (spans, one-off counters) remain
    legal without allocating anything.
    """

    enabled = False

    def counter(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str, buckets: tuple[float, ...] | None = None) -> _NullMetric:
        return _NULL_METRIC

    def inc(self, name: str, amount: int | float = 1) -> None:
        pass

    def set_gauge(self, name: str, value: int | float) -> None:
        pass

    def observe(self, name: str, value: int | float) -> None:
        pass

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN


#: The process-wide disabled recorder (also the default ambient recorder).
NULL_RECORDER = NullRecorder()


class Recorder:
    """Collects one run's metrics and spans; merge-safe across processes."""

    enabled = True

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()
        self.spans: list[dict] = []
        self.dropped_spans = 0
        self._span_stack: list[int] = []
        self._next_span_id = 0
        self._t0 = time.perf_counter()

    # ------------------------------------------------------------- metrics

    def counter(self, name: str) -> Counter:
        return self.metrics.counter(name)

    def gauge(self, name: str) -> Gauge:
        return self.metrics.gauge(name)

    def histogram(self, name: str, buckets: tuple[float, ...] | None = None) -> Histogram:
        return self.metrics.histogram(name, buckets)

    def inc(self, name: str, amount: int | float = 1) -> None:
        self.metrics.counter(name).inc(amount)

    def set_gauge(self, name: str, value: int | float) -> None:
        self.metrics.gauge(name).set(value)

    def observe(self, name: str, value: int | float) -> None:
        self.metrics.histogram(name).observe(value)

    # --------------------------------------------------------------- spans

    def span(self, name: str) -> _Span:
        return _Span(self, name)

    def trace_jsonl(self) -> str:
        """The span trace as JSON-lines text (one flat record per span)."""
        return "\n".join(json.dumps(record) for record in self.spans)

    def write_trace(self, path: str | Path) -> None:
        """Write the JSONL span trace to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            trace = self.trace_jsonl()
            if trace:
                handle.write(trace + "\n")

    # ----------------------------------------------------------- snapshots

    def snapshot(self) -> dict:
        """Plain-dict view of everything recorded so far (JSON/pickle-safe)."""
        snapshot = self.metrics.snapshot()
        snapshot["spans"] = [dict(record) for record in self.spans]
        snapshot["n_spans"] = len(self.spans) + self.dropped_spans
        snapshot["dropped_spans"] = self.dropped_spans
        return snapshot

    def merge_snapshot(self, snapshot: Mapping) -> None:
        """Fold a worker's snapshot into this recorder.

        Metrics merge per kind (counters add, gauges take the max,
        histograms add bucket counts).  Spans are appended with their ids
        rebased past this recorder's id space, so parent links stay
        consistent within each merged trace and never collide across
        processes.
        """
        self.metrics.merge(snapshot)
        offset = self._next_span_id
        max_seen = -1
        for record in snapshot.get("spans", ()):
            record = dict(record)
            span_id = int(record["id"])
            max_seen = max(max_seen, span_id)
            record["id"] = span_id + offset
            if record.get("parent") is not None:
                record["parent"] = int(record["parent"]) + offset
            if len(self.spans) >= MAX_SPANS:
                self.dropped_spans += 1
                continue
            self.spans.append(record)
        if max_seen >= 0:
            self._next_span_id = offset + max_seen + 1
        self.dropped_spans += int(snapshot.get("dropped_spans", 0))


# ----------------------------------------------------------------- ambient

_ACTIVE: NullRecorder | Recorder = NULL_RECORDER


def get_recorder() -> NullRecorder | Recorder:
    """The ambient recorder (the null recorder unless one is activated)."""
    return _ACTIVE


def set_recorder(recorder: NullRecorder | Recorder | None) -> None:
    """Install ``recorder`` as the ambient recorder (``None`` deactivates)."""
    global _ACTIVE
    _ACTIVE = NULL_RECORDER if recorder is None else recorder


@contextmanager
def use(recorder: NullRecorder | Recorder | None) -> Iterator[NullRecorder | Recorder]:
    """Activate ``recorder`` for a dynamic extent, restoring the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = NULL_RECORDER if recorder is None else recorder
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous
