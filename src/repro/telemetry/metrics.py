"""The metrics registry: counters, gauges and fixed-bucket histograms.

Three metric shapes cover everything the reproduction wants to observe:

* :class:`Counter` — a monotonically increasing total (queries simulated,
  store hits, bytes written).  Merging adds.
* :class:`Gauge` — a last-written level (worker count, pool size).  Merging
  keeps the maximum, which is the useful semantics when per-worker
  snapshots of the same knob are combined into one run-level view.
* :class:`Histogram` — a fixed-bucket distribution with ``sum`` / ``count``
  / ``min`` / ``max`` side totals (task seconds, chunk sizes, fit times).
  Buckets are chosen at creation and never rebinned, so two histograms of
  the same metric merge by adding bucket counts.

All updates are plain attribute mutations executed under the GIL — safe for
the in-process case — and cross-process aggregation goes through
:meth:`MetricsRegistry.snapshot` / :meth:`MetricsRegistry.merge`: each pool
worker records into its own registry and ships a plain-dict snapshot back
to the parent, which merges it into the run-level registry.  Snapshots are
pure built-in containers (JSON- and pickle-friendly), which is what the
store's ``telemetry/`` namespace persists.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Callable, Mapping, cast

from ..exceptions import ValidationError

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Default histogram buckets: upper bounds in seconds, spanning sub-ms
#: policy hooks through multi-minute model fits.  Values above the last
#: bound land in the implicit overflow bucket.
DEFAULT_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    60.0,
    300.0,
)


class Counter:
    """A monotonically increasing total; merging adds."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def to_value(self) -> int | float:
        return self.value

    def merge_value(self, value: int | float) -> None:
        self.value += value


class Gauge:
    """A last-written level; merging keeps the maximum."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value: int | float | None = None

    def set(self, value: int | float) -> None:
        self.value = value

    def to_value(self) -> int | float | None:
        return self.value

    def merge_value(self, value: int | float | None) -> None:
        if value is None:
            return
        if self.value is None or value > self.value:
            self.value = value


class Histogram:
    """A fixed-bucket distribution with sum/count/min/max side totals.

    ``buckets`` are inclusive upper bounds; one extra overflow bucket
    catches everything beyond the last bound, so ``counts`` has
    ``len(buckets) + 1`` cells and every observation lands somewhere.
    """

    __slots__ = ("buckets", "counts", "sum", "count", "min", "max")
    kind = "histogram"

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValidationError(
                f"histogram buckets must be strictly increasing, got {buckets!r}"
            )
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: int | float) -> None:
        value = float(value)
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")

    def to_value(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    def merge_value(self, value: Mapping) -> None:
        if tuple(value.get("buckets", ())) != self.buckets:
            raise ValidationError(
                "cannot merge histograms with different bucket bounds"
            )
        for index, count in enumerate(value.get("counts", ())):
            self.counts[index] += count
        self.sum += float(value.get("sum", 0.0))
        self.count += int(value.get("count", 0))
        other_min = value.get("min")
        other_max = value.get("max")
        if other_min is not None and other_min < self.min:
            self.min = other_min
        if other_max is not None and other_max > self.max:
            self.max = other_max


#: Snapshot section name per metric kind.
_SECTIONS = {"counter": "counters", "gauge": "gauges", "histogram": "histograms"}


class MetricsRegistry:
    """Name → metric mapping with get-or-create accessors and merge."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def _get_or_create(
        self,
        name: str,
        factory: Callable[[], Counter | Gauge | Histogram],
        kind: str,
    ) -> Counter | Gauge | Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = factory()
        elif metric.kind != kind:
            raise ValidationError(
                f"metric {name!r} is a {metric.kind}, not a {kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return cast(Counter, self._get_or_create(name, Counter, "counter"))

    def gauge(self, name: str) -> Gauge:
        return cast(Gauge, self._get_or_create(name, Gauge, "gauge"))

    def histogram(
        self, name: str, buckets: tuple[float, ...] | None = None
    ) -> Histogram:
        factory = Histogram if buckets is None else (lambda: Histogram(buckets))
        return cast(Histogram, self._get_or_create(name, factory, "histogram"))

    def snapshot(self) -> dict:
        """Plain-dict view: ``{"counters": {...}, "gauges": {...}, "histograms": {...}}``."""
        sections: dict[str, dict] = {name: {} for name in _SECTIONS.values()}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            sections[_SECTIONS[metric.kind]][name] = metric.to_value()
        return sections

    def merge(self, snapshot: Mapping) -> None:
        """Fold another registry's :meth:`snapshot` into this one."""
        for name, value in (snapshot.get("counters") or {}).items():
            self.counter(name).merge_value(value)
        for name, value in (snapshot.get("gauges") or {}).items():
            self.gauge(name).merge_value(value)
        for name, value in (snapshot.get("histograms") or {}).items():
            buckets = tuple(value.get("buckets", ()))
            self.histogram(name, buckets or None).merge_value(value)
